//! End-to-end checks for the observability layer: the registry snapshot a
//! figure run emits must be byte-for-byte deterministic, must carry the
//! sections the `metrics.json` schema promises (DESIGN.md §9), and
//! arming the flight recorder must not perturb the simulation itself.

use mpichgq_bench::{fig1_tcp_sawtooth_run, Fig1Cfg};
use mpichgq_sim::SimTime;

fn short_cfg() -> Fig1Cfg {
    Fig1Cfg {
        duration: SimTime::from_secs(5),
        ..Fig1Cfg::default()
    }
}

#[test]
fn fig1_metrics_snapshot_is_deterministic() {
    let (series_a, a) = fig1_tcp_sawtooth_run(short_cfg(), 256);
    let (series_b, b) = fig1_tcp_sawtooth_run(short_cfg(), 256);
    assert_eq!(a.events, b.events, "event counts diverged between runs");
    assert_eq!(
        a.metrics_json, b.metrics_json,
        "metrics snapshot is not deterministic"
    );
    assert_eq!(series_a.points(), series_b.points());
}

#[test]
fn fig1_metrics_carry_the_documented_schema() {
    let (_, m) = fig1_tcp_sawtooth_run(short_cfg(), 256);
    let j = &m.metrics_json;
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"trace\"",
        "\"net.pkts.sent\"",
        "\"net.pkts.delivered\"",
        "\"net.drops.policed\"",
        "\"engine.events_processed\"",
        "\"engine.pending_events\"",
        "\"gara.reservations_granted\"",
        "\"capacity\":256",
        "\"events\":[",
        "\"high_water\"",
    ] {
        assert!(j.contains(key), "snapshot missing {key}: {j}");
    }
    // Figure 1 deliberately overruns its 40 Mb/s reservation, so the run
    // must observe policer drops, both as a counter and as trace events.
    assert!(
        j.contains("\"drop.policed\""),
        "expected policed-drop trace events in: {j}"
    );
}

#[test]
fn arming_the_flight_recorder_does_not_perturb_the_simulation() {
    let (series_off, off) = fig1_tcp_sawtooth_run(short_cfg(), 0);
    let (series_on, on) = fig1_tcp_sawtooth_run(short_cfg(), 1024);
    assert_eq!(
        off.events, on.events,
        "tracing changed the number of simulated events"
    );
    assert_eq!(series_off.points(), series_on.points());
    // The disabled run still publishes counters (they are always live) but
    // records no trace events.
    assert!(off.metrics_json.contains("\"recorded\":0"));
    assert!(!on.metrics_json.contains("\"recorded\":0"));
}
