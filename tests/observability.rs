//! End-to-end checks for the observability layer: the registry snapshot a
//! figure run emits must be byte-for-byte deterministic, must carry the
//! sections the `metrics.json` schema promises (DESIGN.md §9), and
//! arming the flight recorder must not perturb the simulation itself.

use mpichgq_bench::{
    fig1_tcp_sawtooth_run, fig1_tcp_sawtooth_run_timeline, fig7_seq_trace_run_timeline, Fig1Cfg,
};
use mpichgq_obs::{parse, FlightRecorder, Histogram, JsonWriter};
use mpichgq_sim::{SimDelta, SimTime};

fn short_cfg() -> Fig1Cfg {
    Fig1Cfg {
        duration: SimTime::from_secs(5),
        ..Fig1Cfg::default()
    }
}

#[test]
fn fig1_metrics_snapshot_is_deterministic() {
    let (series_a, a) = fig1_tcp_sawtooth_run(short_cfg(), 256);
    let (series_b, b) = fig1_tcp_sawtooth_run(short_cfg(), 256);
    assert_eq!(a.events, b.events, "event counts diverged between runs");
    assert_eq!(
        a.metrics_json, b.metrics_json,
        "metrics snapshot is not deterministic"
    );
    assert_eq!(series_a.points(), series_b.points());
}

#[test]
fn fig1_metrics_carry_the_documented_schema() {
    let (_, m) = fig1_tcp_sawtooth_run(short_cfg(), 256);
    let j = &m.metrics_json;
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"trace\"",
        "\"net.pkts.sent\"",
        "\"net.pkts.delivered\"",
        "\"net.drops.policed\"",
        "\"engine.events_processed\"",
        "\"engine.pending_events\"",
        "\"gara.reservations_granted\"",
        "\"capacity\":256",
        "\"events\":[",
        "\"high_water\"",
        // Lifecycle tracing rides along with the flight recorder: per-class
        // and per-flow histograms plus the SLO conformance section.
        "\"histograms\"",
        "\"phb.be.queue_wait_ns\"",
        "\"p99\"",
        "\"slo\"",
        "\"total_misses\"",
    ] {
        assert!(j.contains(key), "snapshot missing {key}: {j}");
    }
    // Figure 1 deliberately overruns its 40 Mb/s reservation, so the run
    // must observe policer drops, both as a counter and as trace events.
    assert!(
        j.contains("\"drop.policed\""),
        "expected policed-drop trace events in: {j}"
    );
}

#[test]
fn arming_the_flight_recorder_does_not_perturb_the_simulation() {
    let (series_off, off) = fig1_tcp_sawtooth_run(short_cfg(), 0);
    let (series_on, on) = fig1_tcp_sawtooth_run(short_cfg(), 1024);
    assert_eq!(
        off.events, on.events,
        "tracing changed the number of simulated events"
    );
    assert_eq!(series_off.points(), series_on.points());
    // The disabled run still publishes counters (they are always live) but
    // records no trace events, no histograms, and no SLO section.
    assert!(off.metrics_json.contains("\"recorded\":0"));
    assert!(!on.metrics_json.contains("\"recorded\":0"));
    assert!(off.metrics_json.contains("\"histograms\":{}"));
    assert!(!off.metrics_json.contains("\"slo\""));
    assert!(off.trace_json.contains("\"traceEvents\":[]"));
}

/// Two identical sampled runs must serialize byte-identical timelines,
/// and the document must pass the same shape gate CI runs (`qtop --check`)
/// while carrying the series the instrumented layers promise.
#[test]
fn fig1_timeline_is_byte_stable_and_passes_qtop_check() {
    let interval = Some(SimDelta::from_millis(100));
    let (_, a) = fig1_tcp_sawtooth_run_timeline(short_cfg(), 256, interval);
    let (_, b) = fig1_tcp_sawtooth_run_timeline(short_cfg(), 256, interval);
    let ta = a.timeline_json.expect("sampling was armed");
    let tb = b.timeline_json.expect("sampling was armed");
    assert_eq!(ta, tb, "timeline snapshot is not byte-stable");
    mpichgq_apps::qtop::check(&ta)
        .unwrap_or_else(|errs| panic!("timeline fails qtop --check: {errs:?}"));
    let doc = parse(&ta).expect("timeline parses");
    assert_eq!(doc.get("timeline").unwrap().as_u64(), Some(1));
    assert_eq!(
        doc.get("interval_ns").unwrap().as_u64(),
        Some(100_000_000),
        "interval must round-trip"
    );
    for series in [
        "engine.events_processed",
        "engine.pending_events",
        "net.pkts.delivered",
        "net.drops.policed",
        "slo.misses",
    ] {
        assert!(
            doc.get("series").unwrap().get(series).is_some(),
            "timeline missing series {series}: {ta}"
        );
    }
}

/// The sampler must be provably free: with sampling off, every other
/// artifact of the run — metrics snapshot, figure series, trace export,
/// event count — is bit-identical to a sampled run's.
#[test]
fn sampling_off_is_bit_identical_for_fig1() {
    let (series_off, off) = fig1_tcp_sawtooth_run_timeline(short_cfg(), 256, None);
    let (series_on, on) =
        fig1_tcp_sawtooth_run_timeline(short_cfg(), 256, Some(SimDelta::from_millis(100)));
    assert_eq!(off.events, on.events, "sampling changed the event count");
    assert_eq!(series_off.points(), series_on.points());
    assert_eq!(off.metrics_json, on.metrics_json);
    assert_eq!(off.trace_json, on.trace_json);
    assert!(off.timeline_json.is_none());
    assert!(on.timeline_json.is_some());
}

#[test]
fn sampling_off_is_bit_identical_for_fig7() {
    let window = SimTime::from_secs(4);
    let (series_off, off) = fig7_seq_trace_run_timeline(30.0, window, 256, None);
    let (series_on, on) =
        fig7_seq_trace_run_timeline(30.0, window, 256, Some(SimDelta::from_millis(100)));
    assert_eq!(off.events, on.events, "sampling changed the event count");
    assert_eq!(series_off.points(), series_on.points());
    assert_eq!(off.metrics_json, on.metrics_json);
    assert_eq!(off.trace_json, on.trace_json);
    assert!(off.timeline_json.is_none());
    let tl = on.timeline_json.expect("sampling was armed");
    mpichgq_apps::qtop::check(&tl)
        .unwrap_or_else(|errs| panic!("fig7 timeline fails qtop --check: {errs:?}"));
}

/// The flight-recorder JSON schema pins `key` as u64 and `value` as i64
/// (see `FlightRecorder::write_json`): the full u64 key range and negative
/// values must survive a parse round-trip without narrowing.
#[test]
fn flight_recorder_json_key_and_value_types_round_trip() {
    let mut fr = FlightRecorder::default();
    fr.enable(8);
    fr.record(SimTime::from_nanos(5), "probe", u64::MAX, -42);
    fr.record(SimTime::from_nanos(9), "probe", 0, i64::MIN);
    let mut w = JsonWriter::new();
    fr.write_json(&mut w);
    let doc = parse(&w.finish()).expect("recorder snapshot parses");
    let events = doc.get("events").unwrap().as_array().unwrap();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].get("t_ns").unwrap().as_u64(), Some(5));
    assert_eq!(events[0].get("kind").unwrap().as_str(), Some("probe"));
    assert_eq!(events[0].get("key").unwrap().as_u64(), Some(u64::MAX));
    assert_eq!(events[0].get("value").unwrap().as_i64(), Some(-42));
    assert_eq!(events[1].get("value").unwrap().as_i64(), Some(i64::MIN));
    // The asymmetry is intentional: a u64-range key must NOT be readable
    // as i64, and the negative value must not alias into u64 range.
    assert_eq!(events[0].get("key").unwrap().as_i64(), None);
    assert_eq!(events[0].get("value").unwrap().as_u64(), None);
}

/// Histogram snapshots depend only on the recorded distribution, not on
/// insertion or merge order — byte-identical JSON either way.
#[test]
fn histogram_snapshots_are_order_independent() {
    let values = [0u64, 1, 15, 16, 17, 255, 4096, 1 << 20, u64::MAX, 77, 77];
    let mut fwd = Histogram::new();
    for &v in &values {
        fwd.observe(v);
    }
    let mut rev = Histogram::new();
    for &v in values.iter().rev() {
        rev.observe(v);
    }
    let mut split_a = Histogram::new();
    let mut split_b = Histogram::new();
    for (i, &v) in values.iter().enumerate() {
        if i % 2 == 0 {
            split_a.observe(v);
        } else {
            split_b.observe(v);
        }
    }
    split_b.merge(&split_a);
    let snap = |h: &Histogram| {
        let mut w = JsonWriter::new();
        h.write_json(&mut w);
        w.finish()
    };
    assert_eq!(snap(&fwd), snap(&rev));
    assert_eq!(snap(&fwd), snap(&split_b));
    assert_eq!(fwd.quantile(0.5), split_b.quantile(0.5));
}
