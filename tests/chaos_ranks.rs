//! Shape and determinism tests for the chaos-ranks experiment: rolling
//! `HostCrash`/`HostRestart` faults plus one correlated two-host outage
//! across premium streamer pairs, with checkpoint/restart recovery and
//! the crash-release → restart-re-reserve adaptation path.
//!
//! Uses [`ChaosRanksCfg::fast`] — the same compressed schedule the CI
//! figures job runs with `--fast` — so the asserted shape matches what
//! `results/chaos_ranks/metrics.json` is generated from.

use mpichgq_bench::{chaos_ranks_run, chaos_ranks_run_windowed, ChaosRanksCfg};
use mpichgq_sim::SimDelta;

#[test]
fn chaos_ranks_survivors_hold_slo_through_rolling_failures() {
    let cfg = ChaosRanksCfg::fast();
    let (_metrics, out) = chaos_ranks_run(cfg, 2048);

    // The acceptance bar: ≥90% of surviving premium pairs meet their
    // SLO through the whole plan (every pair survives — all crashed
    // hosts restart).
    assert!(
        out.slo_fraction >= 0.9,
        "{}/{} pairs met SLO",
        out.pairs_meeting_slo,
        out.scores.len()
    );

    // Pairs the plan never touched stream unimpeded and stay in budget.
    for s in out.scores.iter().filter(|s| !s.crashed) {
        assert!(s.slo_met, "untouched pair {} missed its SLO: {s:?}", s.pair);
        assert!(
            s.frames > 50,
            "untouched pair {} barely streamed: {s:?}",
            s.pair
        );
        assert_eq!((s.sender_epoch, s.receiver_epoch), (0, 0));
    }

    // Crashed pairs resume from their checkpoints: a second incarnation
    // ran on every crashed host, and the stream made progress well past
    // anything a single pre-crash window allows.
    for s in out.scores.iter().filter(|s| s.crashed) {
        assert!(
            s.frames > 20,
            "crashed pair {} never resumed: {s:?}",
            s.pair
        );
        assert_eq!(s.sender_epoch, 1, "pair {} sender respawned once", s.pair);
    }
    let last = out.scores.last().expect("pairs scored");
    assert_eq!(
        (last.sender_epoch, last.receiver_epoch),
        (1, 1),
        "the correlated outage restarts both hosts of the last pair"
    );

    // The fault ledger matches the plan: one crash+restart per rolling
    // victim, two for the correlated pair — and the crash semantics held
    // (nothing was ever delivered to a down host).
    let crashes = (cfg.rolling_crashes + 2) as u64;
    assert_eq!(out.faults.host_crashes, crashes);
    assert_eq!(out.faults.host_restarts, crashes);
    assert_eq!(out.faults.dead_deliveries, 0);

    // The adaptive pair's reservation followed its host down and back up.
    assert_eq!(out.crash_releases, 1);
    assert_eq!(out.restart_rereserves, 1);
    assert_eq!(out.grants, 2, "initial grant + restart re-grant");

    // Checkpoint traffic happened on both sides of every stream, the
    // dead-peer burn-down left no leaked unexpected-queue entries, and
    // requests to dead ranks errored instead of hanging.
    let total_frames: u64 = out.scores.iter().map(|s| s.frames).sum();
    assert!(out.checkpoints >= total_frames, "both sides checkpoint");
    assert_eq!(out.unexpected_depth, 0.0, "unexpected queue drained");
    assert!(out.reqs_failed >= 1, "requests to dead peers must error");
}

#[test]
fn chaos_ranks_metrics_expose_the_failure_ledger() {
    // The flight recorder is a bounded ring; arm it large enough that
    // the contention blaster's per-packet drop events cannot evict the
    // sparse crash/restart markers.
    let (metrics, _out) = chaos_ranks_run(ChaosRanksCfg::fast(), 65_536);
    for key in [
        "faults.drops.host_down",
        "faults.host_crashes",
        "faults.host_restarts",
        "mpi.checkpoints",
        "mpi.reqs_failed",
        "agent.crash_releases",
        "agent.restart_rereserves",
        "gara.reservations_granted",
        "slo.misses",
    ] {
        assert!(
            metrics.metrics_json.contains(&format!("\"{key}\"")),
            "metrics.json missing {key}"
        );
    }
    for kind in ["fault.host_crash", "fault.host_restart"] {
        assert!(
            metrics.metrics_json.contains(kind),
            "trace missing {kind} events"
        );
    }
}

/// Replays are bit-identical, and so is the parallel engine's lock-step
/// window schedule (the 1-thread vs N-thread guarantee: lab topologies
/// are a single shard, so the windowed event order must match the plain
/// run byte for byte).
#[test]
fn chaos_ranks_is_bit_identical_across_replays_and_windows() {
    let cfg = ChaosRanksCfg::fast();
    let (a, oa) = chaos_ranks_run(cfg, 2048);
    let (b, ob) = chaos_ranks_run(cfg, 2048);
    let (w, ow) = chaos_ranks_run_windowed(cfg, 2048, SimDelta::from_millis(10));
    assert_eq!(a.events, b.events, "replay event counts diverged");
    assert_eq!(a.metrics_json, b.metrics_json, "replay snapshots diverged");
    assert_eq!(a.timeline_json, b.timeline_json);
    assert_eq!(a.events, w.events, "windowed event count diverged");
    assert_eq!(a.metrics_json, w.metrics_json, "windowed snapshot diverged");
    assert_eq!(a.timeline_json, w.timeline_json);
    let frames = |o: &mpichgq_bench::ChaosRanksOutcome| -> Vec<u64> {
        o.scores.iter().map(|s| s.frames).collect()
    };
    assert_eq!(frames(&oa), frames(&ob));
    assert_eq!(frames(&oa), frames(&ow));
}
