//! End-to-end checks for packet-lifecycle tracing and the `qtrace`
//! analyzer: a figure run's Chrome trace must be byte-stable across
//! identical runs, structurally valid (`qtrace --check`'s gate), and the
//! rendered report must decompose delay per hop and carry the SLO table.

use mpichgq_apps::qtrace;
use mpichgq_bench::{fig7_seq_trace_run, TRACE_CAPACITY};
use mpichgq_obs::parse;
use mpichgq_sim::SimTime;

fn fig7_trace() -> String {
    let (_, m) = fig7_seq_trace_run(10.0, SimTime::from_secs(1), TRACE_CAPACITY);
    m.trace_json
}

#[test]
fn fig7_trace_and_qtrace_report_are_byte_stable() {
    let a = fig7_trace();
    let b = fig7_trace();
    assert_eq!(a, b, "trace export is not deterministic");
    let report_a = qtrace::summarize(&a, 10).unwrap();
    let report_b = qtrace::summarize(&b, 10).unwrap();
    assert_eq!(report_a, report_b, "qtrace report is not deterministic");
}

#[test]
fn fig7_trace_passes_shape_check_and_loads_as_chrome_trace() {
    let json = fig7_trace();
    qtrace::check(&json).unwrap_or_else(|errs| panic!("shape check failed: {errs:?}"));
    // The document is what Perfetto expects: a traceEvents array whose
    // complete spans carry ts/dur and whose metadata names every process.
    let doc = parse(&json).unwrap();
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(
        events.len() > 100,
        "expected a busy trace, got {}",
        events.len()
    );
    let phases: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("ph").and_then(|v| v.as_str()))
        .collect();
    assert!(phases.contains(&"M") && phases.contains(&"X"));
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
        .collect();
    for hop in ["queue", "tx", "wire", "e2e"] {
        assert!(names.contains(&hop), "missing {hop} spans");
    }
}

#[test]
fn qtrace_report_decomposes_delay_and_reports_slo() {
    let report = qtrace::summarize(&fig7_trace(), 10).unwrap();
    assert!(report.contains("flows by p99 one-way delay"));
    assert!(report.contains("per-hop delay decomposition"));
    // The premium path's hops appear with their endpoint names.
    assert!(report.contains("premium-src->"));
    // The fig7 data flow runs premium without contention: a populated SLO
    // table with zero misses against the 10 ms deadline.
    assert!(report.contains("SLO conformance (total misses: 0)"));
    assert!(report.contains("10.000ms"));
}
