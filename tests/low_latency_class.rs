//! The low-latency QoS class: "'low-latency' (suitable for small message
//! traffic: e.g., certain collective operations)" (§4.1). Small-message
//! round-trip times under a best-effort flood must collapse to near the
//! propagation delay once the flow is marked EF, because EF packets bypass
//! the swollen best-effort queue.

use mpichgq::apps::GarnetLab;
use mpichgq::core::{enable_qos, QosAgentCfg, QosAttribute};
use mpichgq::mpi::{JobBuilder, Mpi, MpiProgram, Poll, ReqId};
use mpichgq::netsim::GarnetCfg;
use mpichgq::sim::{SimTime, TimeSeries};
use std::cell::RefCell;
use std::rc::Rc;

/// Ping-pong that records each round-trip time.
struct LatencyProbe {
    rounds: u32,
    qos: Option<(mpichgq::core::QosEnv, QosAttribute)>,
    rtts: Rc<RefCell<Vec<f64>>>,
    state: u8,
    sent_at: SimTime,
    req: Option<ReqId>,
    done_rounds: u32,
}

impl MpiProgram for LatencyProbe {
    fn poll(&mut self, mpi: &mut Mpi) -> Poll {
        let w = mpi.comm_world();
        loop {
            match self.state {
                0 => {
                    if let Some((env, attr)) = self.qos.take() {
                        mpi.attr_put(w, env.keyval(), Rc::new(attr));
                        assert!(env.outcome(mpi, w).is_granted());
                    }
                    // Let the contention fill the trunk queues first.
                    mpi.set_timer(mpichgq::sim::SimDelta::from_secs(3), 7);
                    self.state = 10;
                }
                10 => {
                    if !mpi.take_timer(7) {
                        return Poll::Pending;
                    }
                    self.state = 1;
                }
                1 => {
                    if self.done_rounds == self.rounds {
                        return Poll::Done;
                    }
                    self.sent_at = mpi.now();
                    mpi.isend(w, 1, 1, 512);
                    self.req = Some(mpi.irecv(w, Some(1), Some(1)));
                    self.state = 2;
                }
                2 => match mpi.test(self.req.unwrap()) {
                    Some(_) => {
                        let rtt = mpi.now().since(self.sent_at).as_secs_f64() * 1e3;
                        self.rtts.borrow_mut().push(rtt);
                        self.done_rounds += 1;
                        self.state = 1;
                    }
                    None => return Poll::Pending,
                },
                _ => unreachable!(),
            }
        }
    }
}

struct Echo {
    req: Option<ReqId>,
    qos: Option<(mpichgq::core::QosEnv, QosAttribute)>,
}
impl MpiProgram for Echo {
    fn poll(&mut self, mpi: &mut Mpi) -> Poll {
        let w = mpi.comm_world();
        // The reply direction needs its own reservation (each side reserves
        // its outgoing flows, as in the paper's ping-pong: the total
        // reservation is twice the one-way value).
        if let Some((env, attr)) = self.qos.take() {
            mpi.attr_put(w, env.keyval(), Rc::new(attr));
            assert!(env.outcome(mpi, w).is_granted());
        }
        loop {
            if self.req.is_none() {
                self.req = Some(mpi.irecv(w, Some(0), Some(1)));
            }
            match mpi.test(self.req.unwrap()) {
                Some(info) => {
                    self.req = None;
                    mpi.isend(w, 0, 1, info.len);
                }
                None => return Poll::Pending,
            }
        }
    }
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn run(low_latency: bool) -> (f64, f64) {
    // OC-12 host attachments: the contention arrives at the edge router
    // faster than the OC-3 trunk can drain it, keeping the trunk's
    // best-effort queue persistently full (with OC-3 attachments the
    // blaster is access-limited and the trunk queue never builds).
    let cfg = GarnetCfg {
        host_link: mpichgq::netsim::LinkCfg::atm_vc(
            622_080_000,
            mpichgq::sim::SimDelta::from_micros(25),
        ),
        ..GarnetCfg::default()
    };
    let mut lab = GarnetLab::new(cfg, 0.7);
    lab.add_contention(170_000_000, SimTime::ZERO, SimTime::from_secs(30));
    lab.add_contention_reverse(170_000_000, SimTime::ZERO, SimTime::from_secs(30));
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let rtts = Rc::new(RefCell::new(Vec::new()));
    // 2 Mb/s covers the probe's back-to-back request rate comfortably.
    let qos = low_latency.then(|| (env.clone(), QosAttribute::low_latency(2_000.0, 512)));
    let qos_echo = low_latency.then(|| (env, QosAttribute::low_latency(2_000.0, 512)));
    let probe = LatencyProbe {
        rounds: 40,
        qos,
        rtts: rtts.clone(),
        state: 0,
        sent_at: SimTime::ZERO,
        req: None,
        done_rounds: 0,
    };
    let job = builder
        .rank(lab.premium_src, Box::new(probe))
        .rank(
            lab.premium_dst,
            Box::new(Echo {
                req: None,
                qos: qos_echo,
            }),
        )
        .launch(&mut lab.sim);
    lab.run_until(SimTime::from_secs(30));
    let _ = job;
    let v = rtts.borrow().clone();
    assert!(!v.is_empty(), "no rounds completed");
    let med = median(v.clone());
    let max = v.iter().cloned().fold(0.0, f64::max);
    (med, max)
}

#[test]
fn low_latency_class_bypasses_queueing() {
    let (be_med, _be_max) = run(false);
    let (ll_med, ll_max) = run(true);
    // Propagation RTT is ~4.1 ms. Best-effort pings queue behind the flood
    // (and may be dropped and retransmitted); EF pings do not.
    assert!(
        ll_med < 6.0,
        "low-latency median RTT should be near propagation: {ll_med:.2} ms"
    );
    assert!(
        ll_max < 12.0,
        "low-latency worst case stays bounded: {ll_max:.2} ms"
    );
    assert!(
        be_med > 2.0 * ll_med,
        "best-effort should queue: median {be_med:.2} vs EF {ll_med:.2} ms"
    );
}

#[test]
fn latency_series_types_integrate() {
    // Smoke-check the TimeSeries plumbing used above stays stable.
    let mut ts = TimeSeries::default();
    ts.push(SimTime::from_millis(1), 1.0);
    assert_eq!(ts.len(), 1);
}
