//! The qcheck pinned corpus (DESIGN.md §12): the invariant battery
//! applied to the canonical paper scenarios and to a fixed seed range of
//! fuzzed scenarios, plus the end-to-end failure pipeline (inject →
//! detect → shrink → artifact → bit-identical replay) exercised against
//! the deliberately re-introducible Karn bug.
//!
//! Every snapshot-level check here runs the same identities the live
//! auditor enforces, but from published counters/gauges alone — so any
//! experiment's `metrics.json` can be audited after the fact.

use mpichgq::qcheck::{
    audit_metrics_json, parse_repro, replay, repro_json, run_spec, shrink, Inject, ScenarioSpec,
};
use mpichgq_bench::{chaos_run, fig1_tcp_sawtooth_run, fig7_seq_trace_run, ChaosCfg, Fig1Cfg};
use mpichgq_sim::SimTime;

fn fig1_cfg() -> Fig1Cfg {
    Fig1Cfg {
        duration: SimTime::from_secs(5),
        ..Fig1Cfg::default()
    }
}

#[test]
fn fig1_snapshot_satisfies_the_conservation_battery() {
    let (_, m) = fig1_tcp_sawtooth_run(fig1_cfg(), 256);
    let viols = audit_metrics_json(&m.metrics_json).expect("snapshot parses");
    assert!(viols.is_empty(), "fig1 snapshot violations: {viols:?}");
}

#[test]
fn fig7_snapshot_satisfies_the_conservation_battery() {
    let (_, m) = fig7_seq_trace_run(10.0, SimTime::from_secs(3), 256);
    let viols = audit_metrics_json(&m.metrics_json).expect("snapshot parses");
    assert!(viols.is_empty(), "fig7 snapshot violations: {viols:?}");
}

#[test]
fn chaos_snapshot_satisfies_the_conservation_battery() {
    let (_, m, _) = chaos_run(ChaosCfg::fast(), 2048);
    let viols = audit_metrics_json(&m.metrics_json).expect("snapshot parses");
    assert!(viols.is_empty(), "chaos snapshot violations: {viols:?}");
}

/// The pinned fuzz corpus: these seeds ran clean when the suite was
/// written and must stay clean. A failure here is a real regression in
/// some layer's bookkeeping (or a nondeterminism leak), not fuzz noise.
#[test]
fn pinned_seed_corpus_runs_clean() {
    for seed in 0..16 {
        let out = run_spec(&ScenarioSpec::from_seed(seed), &Inject::default());
        assert!(
            out.ok(),
            "seed {seed} violated {:?}",
            out.violations.first()
        );
        assert!(out.events > 0, "seed {seed} simulated nothing");
    }
}

/// Fingerprint values pinned at the moment the slot table moved from a
/// flat re-scan to the interval tree (PR 7), captured from the flat
/// implementation. The GARA script scenarios in this corpus exercise
/// reserve/modify/cancel/revoke through the broker on every seed, so
/// these staying bit-identical is the "the swap changed no observable
/// behavior" acceptance check — and any future admission change that
/// alters grant/reject decisions will trip it loudly.
///
/// Since the queue-discipline refactor this doubles as the strict-priority
/// bit-identicality proof: `qdisc` is pinned to 0 (the legacy SP +
/// drop-tail path, which draws nothing from the `"qdisc"` RNG stream), so
/// these fingerprints matching means the pluggable-discipline rebuild of
/// the queue layer changed no observable behavior under the default.
#[test]
fn pinned_corpus_fingerprints_are_unchanged_by_the_interval_tree_swap() {
    const PINNED: [(u64, u64, u64); 16] = [
        (0, 0x24d941e6b7eca1e7, 19606),
        (1, 0xa5fa70d0da02659e, 3190),
        (2, 0x62d81e0c8b8fdcc6, 6807),
        (3, 0x2fe047084db5aefb, 17760),
        (4, 0x4527f85217ab5e42, 12980),
        (5, 0x4b1a305716db8690, 16114),
        (6, 0x0de13ca03d199983, 3484),
        (7, 0x404d2bdf7ead852e, 9361),
        (8, 0xf51bf855d0c23d22, 8336),
        (9, 0xc677aa23f322acb0, 16896),
        (10, 0x511622688ea30328, 6193),
        (11, 0xbbdb49d3fbcafa56, 19449),
        (12, 0xec6f6aa2ff6bf036, 10462),
        (13, 0x803cc09a17f35d6e, 11049),
        (14, 0x24a1efeb48285870, 884),
        (15, 0xdd26af418e1504b6, 10661),
    ];
    for (seed, fingerprint, events) in PINNED {
        let mut spec = ScenarioSpec::from_seed(seed);
        spec.knobs.qdisc = 0;
        // Likewise pinned to zero since the rank-failure work: crash-free
        // scenarios draw nothing from the "hostfaults" stream, so these
        // fingerprints also prove the crash/restart machinery is inert
        // when unarmed.
        spec.knobs.host_faults = 0;
        let out = run_spec(&spec, &Inject::default());
        assert_eq!(
            out.fingerprint, fingerprint,
            "seed {seed}: fingerprint drifted from the pinned pre-swap value"
        );
        assert_eq!(out.events, events, "seed {seed}: event count drifted");
    }
}

#[test]
fn fuzzed_scenarios_are_bit_identical_across_runs() {
    for seed in [3, 7, 13] {
        let spec = ScenarioSpec::from_seed(seed);
        let a = run_spec(&spec, &Inject::default());
        let b = run_spec(&spec, &Inject::default());
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed} diverged");
        assert_eq!(a.events, b.events);
    }
}

/// The acceptance pipeline: re-introduce the Karn bug via the injection
/// switch (no source patch), prove the fuzzer convicts it, shrink the
/// scenario, and replay the artifact bit-identically.
#[test]
fn injected_karn_bug_is_convicted_shrunk_and_replayable() {
    let inject = Inject { karn: true };
    let out = (0..40)
        .map(|s| run_spec(&ScenarioSpec::from_seed(s), &inject))
        .find(|o| o.violations.iter().any(|v| v.invariant == "karn"))
        .expect("no seed in 0..40 tripped the injected Karn bug");
    let shrunk = shrink(&out.spec, &inject, "karn", 40);
    let k = &shrunk.spec.knobs;
    assert!(
        k.tcp_flows + k.mpi_pairs > 0,
        "a Karn conviction needs at least one TCP-bearing workload: {k:?}"
    );
    let artifact = repro_json(&shrunk.outcome);
    let repro = parse_repro(&artifact).expect("artifact parses");
    assert_eq!(repro.spec, shrunk.spec);
    assert_eq!(repro.violation.invariant, "karn");
    let rep = replay(&repro);
    assert!(rep.same_invariant, "replay lost the violation");
    assert!(rep.same_fingerprint, "replay was not bit-identical");
}

/// Without the injection switch the same seeds carry no Karn violation —
/// i.e. the conviction above is attributable to the armed bug alone.
#[test]
fn karn_conviction_requires_the_injected_bug() {
    for seed in 0..40 {
        let out = run_spec(&ScenarioSpec::from_seed(seed), &Inject::default());
        assert!(
            !out.violations.iter().any(|v| v.invariant == "karn"),
            "seed {seed} convicted karn without the bug armed"
        );
    }
}
