//! The qcheck pinned corpus (DESIGN.md §12): the invariant battery
//! applied to the canonical paper scenarios and to a fixed seed range of
//! fuzzed scenarios, plus the end-to-end failure pipeline (inject →
//! detect → shrink → artifact → bit-identical replay) exercised against
//! the deliberately re-introducible Karn bug.
//!
//! Every snapshot-level check here runs the same identities the live
//! auditor enforces, but from published counters/gauges alone — so any
//! experiment's `metrics.json` can be audited after the fact.

use mpichgq::qcheck::{
    audit_metrics_json, parse_repro, replay, repro_json, run_spec, shrink, Inject, ScenarioSpec,
};
use mpichgq_bench::{chaos_run, fig1_tcp_sawtooth_run, fig7_seq_trace_run, ChaosCfg, Fig1Cfg};
use mpichgq_sim::SimTime;

fn fig1_cfg() -> Fig1Cfg {
    Fig1Cfg {
        duration: SimTime::from_secs(5),
        ..Fig1Cfg::default()
    }
}

#[test]
fn fig1_snapshot_satisfies_the_conservation_battery() {
    let (_, m) = fig1_tcp_sawtooth_run(fig1_cfg(), 256);
    let viols = audit_metrics_json(&m.metrics_json).expect("snapshot parses");
    assert!(viols.is_empty(), "fig1 snapshot violations: {viols:?}");
}

#[test]
fn fig7_snapshot_satisfies_the_conservation_battery() {
    let (_, m) = fig7_seq_trace_run(10.0, SimTime::from_secs(3), 256);
    let viols = audit_metrics_json(&m.metrics_json).expect("snapshot parses");
    assert!(viols.is_empty(), "fig7 snapshot violations: {viols:?}");
}

#[test]
fn chaos_snapshot_satisfies_the_conservation_battery() {
    let (_, m, _) = chaos_run(ChaosCfg::fast(), 2048);
    let viols = audit_metrics_json(&m.metrics_json).expect("snapshot parses");
    assert!(viols.is_empty(), "chaos snapshot violations: {viols:?}");
}

/// The pinned fuzz corpus: these seeds ran clean when the suite was
/// written and must stay clean. A failure here is a real regression in
/// some layer's bookkeeping (or a nondeterminism leak), not fuzz noise.
#[test]
fn pinned_seed_corpus_runs_clean() {
    for seed in 0..16 {
        let out = run_spec(&ScenarioSpec::from_seed(seed), &Inject::default());
        assert!(
            out.ok(),
            "seed {seed} violated {:?}",
            out.violations.first()
        );
        assert!(out.events > 0, "seed {seed} simulated nothing");
    }
}

#[test]
fn fuzzed_scenarios_are_bit_identical_across_runs() {
    for seed in [3, 7, 13] {
        let spec = ScenarioSpec::from_seed(seed);
        let a = run_spec(&spec, &Inject::default());
        let b = run_spec(&spec, &Inject::default());
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed} diverged");
        assert_eq!(a.events, b.events);
    }
}

/// The acceptance pipeline: re-introduce the Karn bug via the injection
/// switch (no source patch), prove the fuzzer convicts it, shrink the
/// scenario, and replay the artifact bit-identically.
#[test]
fn injected_karn_bug_is_convicted_shrunk_and_replayable() {
    let inject = Inject { karn: true };
    let out = (0..40)
        .map(|s| run_spec(&ScenarioSpec::from_seed(s), &inject))
        .find(|o| o.violations.iter().any(|v| v.invariant == "karn"))
        .expect("no seed in 0..40 tripped the injected Karn bug");
    let shrunk = shrink(&out.spec, &inject, "karn", 40);
    let k = &shrunk.spec.knobs;
    assert!(
        k.tcp_flows + k.mpi_pairs > 0,
        "a Karn conviction needs at least one TCP-bearing workload: {k:?}"
    );
    let artifact = repro_json(&shrunk.outcome);
    let repro = parse_repro(&artifact).expect("artifact parses");
    assert_eq!(repro.spec, shrunk.spec);
    assert_eq!(repro.violation.invariant, "karn");
    let rep = replay(&repro);
    assert!(rep.same_invariant, "replay lost the violation");
    assert!(rep.same_fingerprint, "replay was not bit-identical");
}

/// Without the injection switch the same seeds carry no Karn violation —
/// i.e. the conviction above is attributable to the armed bug alone.
#[test]
fn karn_conviction_requires_the_injected_bug() {
    for seed in 0..40 {
        let out = run_spec(&ScenarioSpec::from_seed(seed), &Inject::default());
        assert!(
            !out.violations.iter().any(|v| v.invariant == "karn"),
            "seed {seed} convicted karn without the bug armed"
        );
    }
}
