//! QoS-protected collective operations: the paper names the low-latency
//! class as "suitable for small message traffic: e.g., certain collective
//! operations" (§4.1). An allreduce across two flooded sites must complete
//! orders of magnitude faster once every rank's flows are marked EF.

use mpichgq::apps::{TwoSites, UdpBlaster, UdpSink};
use mpichgq::core::{enable_qos, QosAgentCfg, QosAttribute};
use mpichgq::mpi::{Allreduce, CollState, JobBuilder, Mpi, Poll};
use mpichgq::sim::{SimDelta, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn sum_op(a: &[u8], b: &[u8]) -> Vec<u8> {
    let x = u64::from_le_bytes(a.try_into().unwrap());
    let y = u64::from_le_bytes(b.try_into().unwrap());
    (x + y).to_le_bytes().to_vec()
}

/// Time for 20 back-to-back allreduces across the two sites, starting after
/// the flood has filled the WAN queues.
fn run(low_latency: bool) -> (f64, u64) {
    // 2×2 ranks around a 10 Mb/s WAN; flood from non-rank hosts.
    let mut ts = TwoSites::build(3, 10_000_000, SimTime::from_millis(5), 0.7);
    // The third host at each site is the contention pair.
    let (sink, _m) = UdpSink::new(20_000, SimDelta::from_secs(1));
    ts.sim.spawn_app(ts.site_b[2], Box::new(sink));
    ts.sim.spawn_app(
        ts.site_a[2],
        Box::new(UdpBlaster::with_rate(
            ts.site_b[2],
            20_000,
            1472,
            12_000_000,
        )),
    );
    let (sink2, _m2) = UdpSink::new(20_001, SimDelta::from_secs(1));
    ts.sim.spawn_app(ts.site_a[2], Box::new(sink2));
    ts.sim.spawn_app(
        ts.site_b[2],
        Box::new(UdpBlaster::with_rate(
            ts.site_a[2],
            20_001,
            1472,
            12_000_000,
        )),
    );

    let (mut builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let done_at = Rc::new(RefCell::new(None));
    let sum_seen = Rc::new(RefCell::new(0u64));
    let hosts = [ts.site_a[0], ts.site_a[1], ts.site_b[0], ts.site_b[1]];
    for (r, &host) in hosts.iter().enumerate() {
        let env = env.clone();
        let done_at = done_at.clone();
        let sum_seen = sum_seen.clone();
        let mut state = 0u8;
        let mut rounds = 0u32;
        let mut ar: Option<Allreduce> = None;
        let mut started = SimTime::ZERO;
        let prog = move |mpi: &mut Mpi| {
            loop {
                match state {
                    0 => {
                        if low_latency {
                            let w = mpi.comm_world();
                            mpi.attr_put(
                                w,
                                env.keyval(),
                                // Small rate: tiny messages carry a large
                                // per-byte overhead factor, and every rank
                                // reserves toward every peer.
                                Rc::new(QosAttribute::low_latency(200.0, 64)),
                            );
                            assert!(env.outcome(mpi, w).is_granted());
                        }
                        // Wait for the flood to fill the queues.
                        mpi.set_timer(SimDelta::from_secs(3), 1);
                        state = 1;
                    }
                    1 => {
                        if !mpi.take_timer(1) {
                            return Poll::Pending;
                        }
                        started = mpi.now();
                        state = 2;
                    }
                    2 => {
                        if rounds == 20 {
                            if r == 0 {
                                *done_at.borrow_mut() =
                                    Some(mpi.now().since(started).as_secs_f64());
                            }
                            return Poll::Done;
                        }
                        let mine = ((r + 1) as u64).to_le_bytes().to_vec();
                        ar = Some(Allreduce::new(mpi, mpi.comm_world(), mine, sum_op));
                        state = 3;
                    }
                    3 => match ar.as_mut().unwrap().poll(mpi) {
                        CollState::Ready => {
                            if r == 0 && std::env::var("QOS_DBG").is_ok() {
                                eprintln!("rank0 round {} done at {}", rounds + 1, mpi.now());
                            }
                            let out = ar.as_mut().unwrap().take_result().unwrap();
                            *sum_seen.borrow_mut() = u64::from_le_bytes(out.try_into().unwrap());
                            rounds += 1;
                            state = 2;
                        }
                        CollState::Pending => return Poll::Pending,
                        CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
                    },
                    _ => unreachable!(),
                }
            }
        };
        builder = builder.rank(host, Box::new(prog));
    }
    builder.launch(&mut ts.sim);
    ts.sim.run_until(SimTime::from_secs(120));
    // A run that never finishes within the horizon reports the horizon as a
    // lower bound (the best-effort case can be starved essentially forever).
    let elapsed = done_at.borrow().unwrap_or(117.0);
    let sum = *sum_seen.borrow();
    (elapsed, sum)
}

#[test]
fn low_latency_class_protects_collectives() {
    let (protected, sum_p) = run(true);
    let (best_effort, _sum_b) = run(false);
    // Correctness when protected (the best-effort run may not even finish).
    assert_eq!(sum_p, 1 + 2 + 3 + 4);
    // 20 allreduces across a ~10 ms WAN: tens of ms when EF-protected.
    assert!(
        protected < 2.0,
        "protected collectives took {protected:.2} s"
    );
    // Under the flood, best-effort collectives crawl through losses.
    assert!(
        best_effort > 5.0 * protected,
        "flood should slow best-effort collectives: {best_effort:.2} vs {protected:.2} s"
    );
}
