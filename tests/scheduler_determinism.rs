//! The scheduler backend must never change simulation results, only
//! wall-clock speed: a full paper experiment (the Figure 1 sawtooth) run
//! under the binary-heap and calendar-queue schedulers must produce
//! bit-identical time series and identical processed-event counts.

use mpichgq_bench::{fig1_tcp_sawtooth_counted, Fig1Cfg};
use mpichgq_sim::{SchedulerKind, SimTime};

#[test]
fn fig1_is_bit_identical_across_schedulers() {
    let run = |scheduler| {
        fig1_tcp_sawtooth_counted(Fig1Cfg {
            duration: SimTime::from_secs(15),
            scheduler,
            ..Fig1Cfg::default()
        })
    };
    let (heap_series, heap_events) = run(SchedulerKind::Heap);
    let (cal_series, cal_events) = run(SchedulerKind::Calendar);

    assert_eq!(heap_events, cal_events, "processed-event counts diverged");
    assert_eq!(
        heap_series.points().len(),
        cal_series.points().len(),
        "series lengths diverged"
    );
    for (i, (h, c)) in heap_series
        .points()
        .iter()
        .zip(cal_series.points())
        .enumerate()
    {
        assert_eq!(h.0, c.0, "timestamp of point {i} diverged");
        assert!(
            h.1.to_bits() == c.1.to_bits(),
            "value of point {i} diverged: heap={} calendar={}",
            h.1,
            c.1
        );
    }
}
