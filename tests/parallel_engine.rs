//! Parallel-engine acceptance: the sharded conservative-lookahead runtime
//! (DESIGN.md §13) must be invisible in the results.
//!
//! Three layers of evidence, from degenerate to fully sharded:
//!
//! 1. the single-shard windowed schedule reproduces the plain engine's
//!    figure outputs bit-for-bit (fig1/fig7 CSVs and metric snapshots);
//! 2. every fuzz-corpus seed fingerprints identically when driven through
//!    the windowed schedule at 4 threads;
//! 3. genuinely partitioned multi-island scenarios fingerprint
//!    identically at 1, 2, and 4 worker threads.
//!
//! The unit-level partition validation (zero-delay cross links rejected,
//! degenerate maps rejected, merge-rule determinism) lives with the
//! engine in `crates/netsim/src/shard.rs`.

use mpichgq::qcheck::{run_par_scenario, run_spec, run_spec_threads, Inject, ScenarioSpec};
use mpichgq_bench::{fig1_tcp_sawtooth_run, fig7_seq_trace_run, Fig1Cfg};
use mpichgq_sim::SimTime;

/// Run `f` with `MPICHGQ_THREADS` set to `threads`, restoring the
/// previous value afterward. The windowed schedule is bit-identical to
/// the plain one, so a concurrent test momentarily observing the variable
/// changes nothing observable — which is exactly what these tests prove.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("MPICHGQ_THREADS").ok();
    std::env::set_var("MPICHGQ_THREADS", threads.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var("MPICHGQ_THREADS", v),
        None => std::env::remove_var("MPICHGQ_THREADS"),
    }
    out
}

#[test]
fn fig1_is_bit_identical_under_the_windowed_schedule() {
    let cfg = || Fig1Cfg {
        duration: SimTime::from_secs(5),
        ..Fig1Cfg::default()
    };
    let (plain_ts, plain_m) = with_threads(1, || fig1_tcp_sawtooth_run(cfg(), 256));
    let (par_ts, par_m) = with_threads(4, || fig1_tcp_sawtooth_run(cfg(), 256));
    assert_eq!(plain_ts.to_csv(), par_ts.to_csv(), "fig1 CSV diverged");
    assert_eq!(plain_m.events, par_m.events, "fig1 event count diverged");
    assert_eq!(
        plain_m.metrics_json, par_m.metrics_json,
        "fig1 metric snapshot diverged"
    );
}

#[test]
fn fig7_is_bit_identical_under_the_windowed_schedule() {
    let window = SimTime::from_secs(4);
    let (plain_ts, plain_m) = with_threads(1, || fig7_seq_trace_run(30.0, window, 256));
    let (par_ts, par_m) = with_threads(4, || fig7_seq_trace_run(30.0, window, 256));
    assert_eq!(plain_ts.to_csv(), par_ts.to_csv(), "fig7 CSV diverged");
    assert_eq!(plain_m.events, par_m.events, "fig7 event count diverged");
    assert_eq!(
        plain_m.metrics_json, par_m.metrics_json,
        "fig7 metric snapshot diverged"
    );
}

#[test]
fn corpus_seeds_fingerprint_identically_at_four_threads() {
    let inject = Inject::default();
    for seed in 0..8 {
        let spec = ScenarioSpec::from_seed(seed);
        let plain = run_spec(&spec, &inject);
        let par = run_spec_threads(&spec, &inject, 4);
        assert_eq!(
            (plain.fingerprint, plain.events),
            (par.fingerprint, par.events),
            "corpus seed {seed} diverged under the windowed schedule"
        );
    }
}

#[test]
fn partitioned_scenarios_fingerprint_identically_across_thread_counts() {
    for seed in 4..8 {
        let one = run_par_scenario(seed, 1);
        assert!(one.shards >= 2, "seed {seed} did not partition");
        for threads in [2, 4] {
            let n = run_par_scenario(seed, threads);
            assert_eq!(
                (one.fingerprint, one.events, one.shards),
                (n.fingerprint, n.events, n.shards),
                "seed {seed}: {threads}-thread partitioned run diverged"
            );
        }
    }
}
