//! Fast-scale qualitative assertions for every table and figure of the
//! paper's evaluation. These are the reproduction's regression tests: the
//! *shape* of each result (who wins, where knees fall, which penalties
//! appear) must hold, not absolute numbers.

use mpichgq_bench::*;
use mpichgq_netsim::DepthRule;
use mpichgq_sim::SimTime;

#[test]
fn fig1_sawtooth_oscillates_below_reservation() {
    let cfg = Fig1Cfg {
        app_rate_bps: 50_000_000,
        reservation_bps: 40_000_000,
        duration: SimTime::from_secs(30),
        ..Fig1Cfg::default()
    };
    let s = fig1_tcp_sawtooth(cfg);
    // Steady portion (skip slow start).
    let steady = s.mean_in(SimTime::from_secs(5), SimTime::from_secs(30));
    // Mean sits well below the 50 Mb/s send rate and below the reservation.
    assert!(
        steady < 42_000.0,
        "mean {steady} should be capped by the reservation"
    );
    assert!(
        steady > 15_000.0,
        "mean {steady} should not collapse entirely"
    );
    // The sawtooth: substantial oscillation, max near/above reservation,
    // min far below it ("the bandwidth obtained by this program varies
    // wildly").
    let (min, max) = (s.min(), s.max());
    assert!(max > 35_000.0, "peaks near the reservation, got max {max}");
    assert!(min < 25_000.0, "deep slow-start troughs, got min {min}");
}

#[test]
fn fig5_throughput_rises_with_reservation_and_saturates() {
    let msgs = [8u32, 120];
    let reservations = [0.0, 2000.0, 9000.0, 12000.0];
    let rows = fig5_sweep(&msgs, &reservations, true);

    for (msg, pts) in &rows {
        // No reservation under heavy contention: (near) starvation.
        assert!(
            pts[0].1 < 100.0,
            "{msg} Kb with no reservation got {:.0} Kb/s",
            pts[0].1
        );
        // Throughput is (weakly) monotone in reservation here.
        assert!(
            pts[1].1 <= pts[2].1 + 50.0 && pts[2].1 <= pts[3].1 + 50.0,
            "{msg} Kb: non-monotone {pts:?}"
        );
    }
    // Larger messages saturate at higher throughput (Figure 5's ordering).
    let sat8 = rows[0].1.last().unwrap().1;
    let sat120 = rows[1].1.last().unwrap().1;
    assert!(
        sat120 > 4.0 * sat8,
        "120 Kb should far outrun 8 Kb messages: {sat120:.0} vs {sat8:.0}"
    );
    // Small messages are latency-bound: more reservation beyond the knee
    // gives no significant improvement.
    let knee8 = rows[0].1[1].1; // at 2 Mb/s reservation
    assert!(
        (sat8 - knee8).abs() / sat8 < 0.1,
        "8 Kb messages saturate early: {knee8:.0} then {sat8:.0}"
    );
}

#[test]
fn fig6_undersized_reservation_collapses_throughput() {
    // 2400 Kb/s attempted (30 KB frames at 10 fps).
    let mut under = Fig6Cfg::new(30_000, 10.0, 2000.0);
    under.duration = SimTime::from_secs(10);
    let mut adequate = Fig6Cfg::new(30_000, 10.0, 2700.0);
    adequate.duration = SimTime::from_secs(10);
    let vu = fig6_viz_point(under);
    let va = fig6_viz_point(adequate);
    // "making a reservation that is even a little bit too small
    // dramatically decreases the throughput"
    assert!(
        va >= 2300.0,
        "adequate reservation achieves the target, got {va:.0}"
    );
    assert!(
        vu < 0.6 * 2400.0,
        "16% under-reservation should collapse throughput, got {vu:.0}"
    );
    // And no reservation at all is hopeless under contention.
    let mut none = Fig6Cfg::new(30_000, 10.0, 0.0);
    none.duration = SimTime::from_secs(10);
    assert!(fig6_viz_point(none) < 200.0);
}

#[test]
fn table1_burstiness_penalty_and_large_bucket_cure() {
    // One row is enough for shape: target 800 Kb/s.
    let fps10 = table1_min_reservation(800.0, 10.0, DepthRule::Normal, 0.95, true);
    let fps1 = table1_min_reservation(800.0, 1.0, DepthRule::Normal, 0.95, true);
    let fps1_large = table1_min_reservation(800.0, 1.0, DepthRule::Large, 0.95, true);
    // Smooth traffic needs roughly the sending rate (within ~25%).
    assert!((780.0..1_100.0).contains(&fps10), "10fps min {fps10:.0}");
    // Bursty traffic with the normal bucket needs substantially more
    // (paper: ~50% more; we assert at least 25%).
    assert!(
        fps1 > 1.25 * fps10,
        "burstiness penalty missing: 1fps {fps1:.0} vs 10fps {fps10:.0}"
    );
    // The large bucket eliminates the penalty.
    assert!(
        fps1_large <= 1.1 * fps10,
        "large bucket should cure burstiness: {fps1_large:.0} vs {fps10:.0}"
    );
}

#[test]
fn fig7_traces_show_burstiness_difference() {
    let window = SimTime::from_secs(1);
    let smooth = fig7_seq_trace(10.0, window);
    let bursty = fig7_seq_trace(1.0, window);
    assert!(!smooth.is_empty() && !bursty.is_empty());
    // Both send ~400 Kb/s of data overall; the bursty one emits its
    // segments in a far smaller fraction of the time. Measure dispersion:
    // the count of distinct 100 ms slots containing transmissions.
    let slots = |ts: &mpichgq_sim::TimeSeries| {
        let mut s: Vec<u64> = ts
            .points()
            .iter()
            .map(|(t, _)| t.as_nanos() / 100_000_000)
            .collect();
        s.dedup();
        s.len()
    };
    let smooth_slots = slots(&smooth);
    let bursty_slots = slots(&bursty);
    assert!(
        smooth_slots >= 2 * bursty_slots,
        "10 fps should spread transmissions over many more slots: {smooth_slots} vs {bursty_slots}"
    );
}

#[test]
fn fig8_cpu_contention_and_reservation() {
    let cfg = Fig8Cfg::default();
    let s = fig8_cpu_reservation(cfg);
    let clean = phase_mean(&s, 2.0, 10.0);
    let hog = phase_mean(&s, 11.0, 20.0);
    let reserved = phase_mean(&s, 22.0, 30.0);
    assert!(clean > 14_000.0, "clean phase {clean:.0}");
    assert!(
        hog < 0.7 * clean,
        "hog should depress bandwidth: {hog:.0} vs {clean:.0}"
    );
    assert!(
        reserved > 0.85 * clean,
        "90% CPU reservation should restore bandwidth: {reserved:.0} vs {clean:.0}"
    );
}

#[test]
fn fig9_both_reservations_needed() {
    let cfg = Fig9Cfg::default();
    let s = fig9_combined(cfg);
    let clean = phase_mean(&s, 2.0, 10.0);
    let congested = phase_mean(&s, 12.0, 21.0);
    let net_reserved = phase_mean(&s, 23.0, 31.0);
    let cpu_contended = phase_mean(&s, 33.0, 41.0);
    let both_reserved = phase_mean(&s, 43.0, 50.0);
    assert!(clean > 30_000.0, "clean {clean:.0}");
    assert!(congested < 0.5 * clean, "congestion {congested:.0}");
    assert!(
        net_reserved > 0.8 * clean,
        "net reservation restores {net_reserved:.0}"
    );
    assert!(
        cpu_contended < 0.75 * net_reserved,
        "cpu contention depresses {cpu_contended:.0} vs {net_reserved:.0}"
    );
    assert!(
        both_reserved > 0.85 * clean,
        "both reservations restore {both_reserved:.0} vs {clean:.0}"
    );
}

#[test]
fn shaping_ablation_tames_burstiness() {
    // DESIGN.md ablation #3 (the paper's §5.4 proposal): end-system
    // shaping lets the NORMAL bucket handle the 1 fps burst at a
    // reservation where unshaped traffic fails.
    let target = 800.0;
    let frame_bytes = (target * 1000.0 / 8.0) as u32; // 1 fps
    let resv = 1_000.0; // enough for smooth traffic, not for bursts
    let mut unshaped = Fig6Cfg::new(frame_bytes, 1.0, resv);
    unshaped.duration = SimTime::from_secs(30);
    let mut shaped = unshaped;
    shaped.shape_at_source = true;
    let ru = viz_delivery_ratio(unshaped);
    let rs = viz_delivery_ratio(shaped);
    assert!(
        ru < 0.9,
        "unshaped bursty flow should miss frames at this reservation: {ru:.2}"
    );
    assert!(
        rs > ru + 0.05,
        "shaping should improve delivery: {rs:.2} vs {ru:.2}"
    );
}

#[test]
fn demote_ablation_softens_the_cliff() {
    // DESIGN.md ablation #1: with Demote instead of Drop, out-of-profile
    // packets ride best-effort. Under *moderate* contention they mostly
    // survive, so an undersized reservation degrades gracefully.
    use mpichgq_netsim::PolicingAction;
    let run = |action: PolicingAction| {
        let mut cfg = Fig6Cfg::new(30_000, 10.0, 1600.0); // 2400 attempted
        cfg.duration = SimTime::from_secs(10);
        cfg.policing_action = action;
        cfg.contention_bps = 100_000_000; // leaves best-effort headroom
        fig6_viz_point(cfg)
    };
    let dropped = run(PolicingAction::Drop);
    let demoted = run(PolicingAction::Demote);
    assert!(
        demoted > dropped * 1.2,
        "demotion should outperform dropping at an undersized reservation: {demoted:.0} vs {dropped:.0}"
    );
}

#[test]
fn sec3_average_rate_reservation_is_a_trap() {
    // The paper's §3 story: the 1 Mb/s "average rate" reservation with the
    // normal bucket barely helps the bursty stencil; the same rate with a
    // large bucket restores near-baseline progress.
    use mpichgq_sim::SimDelta;
    let base = Sec3Cfg {
        ranks_per_site: 4, // smaller sites for test speed; same physics
        iterations: 12,
        compute: SimDelta::from_millis(800),
        ..Sec3Cfg::default()
    };
    let baseline = sec3_finite_difference(base);
    let congested = sec3_finite_difference(Sec3Cfg {
        contention: true,
        ..base
    });
    let trap = sec3_finite_difference(Sec3Cfg {
        contention: true,
        qos: Sec3Qos::Premium {
            kbps: 1_000.0,
            depth: DepthRule::Normal,
            shaped: false,
        },
        ..base
    });
    let large = sec3_finite_difference(Sec3Cfg {
        contention: true,
        qos: Sec3Qos::Premium {
            kbps: 1_000.0,
            depth: DepthRule::Large,
            shaped: false,
        },
        ..base
    });
    assert!(
        baseline.steady_iters_per_sec > 0.9,
        "uncontended baseline: {:.2}",
        baseline.steady_iters_per_sec
    );
    assert!(
        congested.steady_iters_per_sec < 0.4 * baseline.steady_iters_per_sec,
        "contention collapse: {:.2}",
        congested.steady_iters_per_sec
    );
    assert!(
        trap.steady_iters_per_sec < 0.6 * baseline.steady_iters_per_sec,
        "the average-rate reservation must underperform (paper §3): {:.2} vs {:.2}",
        trap.steady_iters_per_sec,
        baseline.steady_iters_per_sec
    );
    assert!(
        large.steady_iters_per_sec > 0.85 * baseline.steady_iters_per_sec,
        "the large bucket must restore progress: {:.2} vs {:.2}",
        large.steady_iters_per_sec,
        baseline.steady_iters_per_sec
    );
    // And the trap still beats nothing at all.
    assert!(trap.steady_iters_per_sec > 1.5 * congested.steady_iters_per_sec);
}
