//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary parameters, not just the calibrated experiment points.

use mpichgq::gara::{Gara, NetworkRequest, Request, StartSpec};
use mpichgq::mpi::{JobBuilder, Mpi, Poll};
use mpichgq::netsim::{
    topology::Dumbbell, DepthRule, Dscp, FlowSpec, PolicingAction, Proto, TokenBucket,
};
use mpichgq::sim::{SimDelta, SimTime};
use mpichgq::tcp::{App, Ctx, DataMode, Sim, SockId, TcpCfg};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

// ----------------------------------------------------------------------
// TCP: reliability is unconditional
// ----------------------------------------------------------------------

struct PropSender {
    dst: mpichgq::netsim::NodeId,
    total: u64,
    sent: u64,
    sock: Option<SockId>,
}
impl App for PropSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.sock = Some(ctx.tcp_connect(self.dst, 7000, TcpCfg::default(), DataMode::Counted));
    }
    fn on_connected(&mut self, _s: SockId, ctx: &mut Ctx) {
        self.pump(ctx);
    }
    fn on_writable(&mut self, _s: SockId, ctx: &mut Ctx) {
        self.pump(ctx);
    }
}
impl PropSender {
    fn pump(&mut self, ctx: &mut Ctx) {
        let sock = self.sock.unwrap();
        while self.sent < self.total {
            let n = ctx.send(sock, (self.total - self.sent).min(8192));
            self.sent += n;
            if n == 0 {
                break;
            }
        }
        if self.sent == self.total {
            ctx.close(sock);
        }
    }
}

struct PropReceiver {
    got: Rc<RefCell<u64>>,
}
impl App for PropReceiver {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.tcp_listen(7000, TcpCfg::default(), DataMode::Counted);
    }
    fn on_readable(&mut self, sock: SockId, ctx: &mut Ctx) {
        *self.got.borrow_mut() += ctx.recv(sock, u64::MAX);
    }
    fn on_remote_closed(&mut self, sock: SockId, ctx: &mut Ctx) {
        *self.got.borrow_mut() += ctx.recv(sock, u64::MAX);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Whatever the policer settings, TCP delivers every byte eventually.
    #[test]
    fn tcp_reliable_under_arbitrary_policing(
        total in 10_000u64..150_000,
        policer_kbps in 100u64..2_000,
        depth in 2_000u64..40_000,
        delay_ms in 1u64..10,
    ) {
        let d = Dumbbell::build(10_000_000, SimDelta::from_millis(delay_ms), 42);
        let (src, dst, r1) = (d.src, d.dst, d.r1);
        let mut net = d.net;
        net.node_mut(r1).classifier.install(
            FlowSpec::host_pair(src, dst, Proto::Tcp),
            Dscp::Ef,
            Some(TokenBucket::new(policer_kbps * 1000, depth)),
            PolicingAction::Drop,
        );
        let mut sim = Sim::new(net);
        let got = Rc::new(RefCell::new(0u64));
        sim.spawn_app(dst, Box::new(PropReceiver { got: got.clone() }));
        sim.spawn_app(src, Box::new(PropSender { dst, total, sent: 0, sock: None }));
        // Generous horizon: worst case is ~150 KB at 100 Kb/s ≈ 12 s, plus
        // heavy retransmission stalls.
        sim.run_until(SimTime::from_secs(600));
        prop_assert_eq!(*got.borrow(), total);
    }

    /// Goodput through a policer never exceeds the token-bucket bound.
    #[test]
    fn policed_goodput_bounded_by_bucket(
        policer_kbps in 200u64..1_000,
        depth in 5_000u64..20_000,
    ) {
        let d = Dumbbell::build(10_000_000, SimDelta::from_millis(2), 7);
        let (src, dst, r1) = (d.src, d.dst, d.r1);
        let mut net = d.net;
        net.node_mut(r1).classifier.install(
            FlowSpec::host_pair(src, dst, Proto::Tcp),
            Dscp::Ef,
            Some(TokenBucket::new(policer_kbps * 1000, depth)),
            PolicingAction::Drop,
        );
        let mut sim = Sim::new(net);
        let got = Rc::new(RefCell::new(0u64));
        sim.spawn_app(dst, Box::new(PropReceiver { got: got.clone() }));
        sim.spawn_app(src, Box::new(PropSender { dst, total: 10_000_000, sent: 0, sock: None }));
        let horizon = 20.0;
        sim.run_until(SimTime::from_secs_f64(horizon));
        // Conformant IP bytes <= depth + rate*T; app bytes are strictly
        // fewer (headers). Allow the depth term plus one in-flight window.
        let bound = depth as f64 + policer_kbps as f64 * 1000.0 / 8.0 * horizon + 70_000.0;
        prop_assert!((*got.borrow() as f64) < bound,
            "goodput {} exceeds bucket bound {}", got.borrow(), bound);
    }

    /// GARA admission: whatever the sequence of reservations and cancels,
    /// the total active EF reservation on a managed link never exceeds its
    /// capacity.
    #[test]
    fn gara_never_oversubscribes(ops in proptest::collection::vec((1u64..40, any::<bool>()), 1..30)) {
        let d = Dumbbell::build(100_000_000, SimDelta::from_millis(1), 3);
        let (src, dst) = (d.src, d.dst);
        let mut net = d.net;
        let mut gara = Gara::new();
        gara.manage_core_links(&net, 0.5); // 50 Mb/s reservable
        let mut held: Vec<mpichgq::gara::ResvId> = Vec::new();
        for (mbps, cancel) in ops {
            if cancel && !held.is_empty() {
                let id = held.remove(0);
                gara.cancel(&mut net, id);
            } else {
                let rate = mbps * 1_000_000;
                let req = Request::Network(NetworkRequest {
                    src, dst,
                    proto: Proto::Tcp,
                    src_port: None, dst_port: None,
                    rate_bps: rate,
                    depth: DepthRule::Normal,
                    action: PolicingAction::Drop,
                    shape_at_source: false,
                });
                if let Ok(id) = gara.reserve(&mut net, req, StartSpec::Now, None) {
                    held.push(id);
                }
            }
            // Every held reservation must still be active (nothing was
            // silently dropped by the broker).
            for &id in &held {
                prop_assert_eq!(gara.status(id), Some(mpichgq::gara::Status::Active));
            }
        }
        // Direct invariant: one more maximal reservation fits only if the
        // sum of held rates leaves room. Try to over-fill and verify a
        // rejection happens before capacity is breached.
        let req = Request::Network(NetworkRequest {
            src, dst,
            proto: Proto::Tcp,
            src_port: None, dst_port: None,
            rate_bps: 50_000_001,
            depth: DepthRule::Normal,
            action: PolicingAction::Drop,
            shape_at_source: false,
        });
        prop_assert!(gara.reserve(&mut net, req, StartSpec::Now, None).is_err());
    }

    /// MPI messages arrive with intact sizes and in per-tag order, for
    /// arbitrary mixes of eager and rendezvous sizes.
    #[test]
    fn mpi_ordering_and_sizes_arbitrary_mix(
        sizes in proptest::collection::vec(1u32..120_000, 1..12),
        seed in 0u64..1000,
    ) {
        check_mpi_ordering_and_sizes(sizes, seed);
    }

    /// Determinism: identical parameters and seeds give identical event
    /// counts and delivered totals.
    #[test]
    fn simulations_are_deterministic(
        total in 10_000u64..80_000,
        delay_ms in 1u64..8,
        seed in 0u64..50,
    ) {
        let run = || {
            let d = Dumbbell::build(5_000_000, SimDelta::from_millis(delay_ms), seed);
            let (src, dst) = (d.src, d.dst);
            let mut sim = Sim::new(d.net);
            let got = Rc::new(RefCell::new(0u64));
            sim.spawn_app(dst, Box::new(PropReceiver { got: got.clone() }));
            sim.spawn_app(src, Box::new(PropSender { dst, total, sent: 0, sock: None }));
            sim.run_until(SimTime::from_secs(120));
            let delivered = *got.borrow();
            (delivered, sim.net.events_processed())
        };
        prop_assert_eq!(run(), run());
    }
}

/// Shared body for the MPI matching-order property: runnable from the
/// proptest case above and from pinned regression inputs below.
fn check_mpi_ordering_and_sizes(sizes: Vec<u32>, seed: u64) {
    let d = Dumbbell::build(50_000_000, SimDelta::from_millis(1), seed);
    let (h0, h1) = (d.src, d.dst);
    let mut sim = Sim::new(d.net);
    let expect: Vec<u32> = sizes.clone();
    let seen = Rc::new(RefCell::new(Vec::new()));
    let seen2 = seen.clone();
    let n = sizes.len();

    let mut sent = false;
    let sender = move |mpi: &mut Mpi| {
        if !sent {
            sent = true;
            for (i, &len) in sizes.iter().enumerate() {
                mpi.isend(mpi.comm_world(), 1, (i % 3) as u32, len);
            }
        }
        Poll::Done
    };
    // MPI guarantees *matching* order (the i-th posted wildcard recv
    // matches the i-th matchable message), not completion order; with
    // mixed eager/rendezvous protocols completions may reorder. Record
    // results by posted-request index.
    let mut reqs: Vec<Option<mpichgq::mpi::ReqId>> = Vec::new();
    let mut posted = false;
    let receiver = move |mpi: &mut Mpi| {
        if !posted {
            posted = true;
            seen2.borrow_mut().resize(n, (u32::MAX, 0));
            for _ in 0..n {
                reqs.push(Some(mpi.irecv(mpi.comm_world(), Some(0), None)));
            }
        }
        let mut open = false;
        for (i, slot) in reqs.iter_mut().enumerate() {
            if let Some(r) = *slot {
                if let Some(info) = mpi.test(r) {
                    seen2.borrow_mut()[i] = (info.tag, info.len);
                    *slot = None;
                } else {
                    open = true;
                }
            }
        }
        if open {
            Poll::Pending
        } else {
            Poll::Done
        }
    };
    let job = JobBuilder::new()
        .rank(h0, Box::new(sender))
        .rank(h1, Box::new(receiver))
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(60));
    assert!(job.finished(), "job stalled");
    let seen = seen.borrow();
    // Wildcard receives match messages in send order: the i-th posted
    // receive holds exactly the i-th sent message.
    let sent: Vec<(u32, u32)> = expect
        .iter()
        .enumerate()
        .map(|(i, &l)| ((i % 3) as u32, l))
        .collect();
    assert_eq!(&sent, &*seen, "matching order/sizes");
}

/// Replay of the one case proptest ever shrank for this suite
/// (`sizes = [65537, 1, 193, 56191], seed = 998`, formerly recorded in
/// `tests/property.proptest-regressions`). The in-repo proptest shim
/// deliberately never reads regression files, so historical failures are
/// pinned as explicit deterministic tests like this one instead.
#[test]
fn mpi_ordering_regression_mixed_rendezvous_sizes() {
    check_mpi_ordering_and_sizes(vec![65_537, 1, 193, 56_191], 998);
}
