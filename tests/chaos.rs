//! Shape and determinism tests for the chaos experiment: the Figure-9
//! workload under a scripted fault plan, with the QoS agent's adaptation
//! loop (retry → renegotiate → degrade → recover) doing the recovering.
//!
//! Uses [`ChaosCfg::fast`] — the same compressed schedule the CI
//! figures job runs with `--fast` — so the asserted windows match what
//! `results/chaos/metrics.json` is generated from.

use mpichgq_bench::{chaos_run, phase_mean, ChaosCfg};
use mpichgq_core::AdaptState;

#[test]
fn chaos_bandwidth_recovers_after_fault_clearance() {
    let cfg = ChaosCfg::fast();
    let (series, _metrics, outcome) = chaos_run(cfg, 2048);

    let (pre_lo, pre_hi) = cfg.pre_fault_window();
    let (deg_lo, deg_hi) = cfg.degraded_window();
    let (rec_lo, rec_hi) = cfg.recovery_window();
    let pre = phase_mean(&series, pre_lo, pre_hi);
    let degraded = phase_mean(&series, deg_lo, deg_hi);
    let recovered = phase_mean(&series, rec_lo, rec_hi);

    assert!(pre > 25_000.0, "pre-fault premium phase healthy: {pre:.0}");
    assert!(
        degraded < 0.5 * pre,
        "best-effort degradation visible: {degraded:.0} vs pre-fault {pre:.0}"
    );
    assert!(
        recovered >= 0.9 * pre,
        "bandwidth must recover to >=90% of pre-fault after clearance: \
         {recovered:.0} vs {pre:.0}"
    );

    // The physical faults actually happened.
    assert_eq!(outcome.faults.link_downs, 1);
    assert_eq!(outcome.faults.link_ups, 1);
    assert!(outcome.faults.drops_link_down >= 1, "{:?}", outcome.faults);
    assert!(outcome.faults.drops_loss >= 1, "{:?}", outcome.faults);
}

#[test]
fn chaos_adaptation_transitions_match_the_plan() {
    let cfg = ChaosCfg::fast();
    // The flight recorder is a bounded ring; the early reject/backoff
    // events would be evicted by the tens of thousands of per-packet
    // drop events that follow, so this test arms a ring large enough to
    // retain the entire run.
    let (_series, metrics, outcome) = chaos_run(cfg, 65_536);

    // reject -> backoff retry -> grant -> revoke -> renegotiate ->
    // revoke -> degrade -> probe -> recover, each counted.
    assert_eq!(
        outcome.retries as u32, cfg.injected_rejections,
        "one backoff retry per injected rejection"
    );
    assert!(outcome.rejects >= cfg.injected_rejections as u64);
    assert_eq!(outcome.grants, 2, "initial grant + recovered grant");
    assert_eq!(outcome.revocations_seen, 2);
    assert_eq!(outcome.renegotiations, 1);
    assert_eq!(outcome.degrades, 1);
    assert_eq!(outcome.recoveries, 1);
    assert!(outcome.probes >= 1);
    assert!(
        matches!(outcome.final_state, AdaptState::Granted { .. }),
        "run ends fully recovered: {:?}",
        outcome.final_state
    );

    // The same transitions are visible in the metrics snapshot the
    // binary writes to results/chaos/metrics.json.
    for key in [
        "agent.requests",
        "agent.rejects",
        "agent.retries",
        "agent.grants",
        "agent.revocations_seen",
        "agent.renegotiations",
        "agent.degrades",
        "agent.probes",
        "agent.recoveries",
        "gara.revocations",
        "gara.injected_rejections",
        "faults.drops.link_down",
        "faults.drops.loss",
        "faults.link_downs",
        "faults.link_ups",
    ] {
        assert!(
            metrics.metrics_json.contains(&format!("\"{key}\"")),
            "metrics.json missing {key}"
        );
    }
    for kind in [
        "gara.reject",
        "agent.backoff",
        "agent.grant",
        "gara.revoke",
        "agent.renegotiate",
        "agent.degrade",
        "agent.recover",
        "fault.link_down",
        "fault.link_up",
    ] {
        assert!(
            metrics.metrics_json.contains(kind),
            "trace missing {kind} events"
        );
    }
}

#[test]
fn chaos_run_is_bit_identical_across_invocations() {
    let cfg = ChaosCfg::fast();
    let (series_a, a, _) = chaos_run(cfg, 2048);
    let (series_b, b, _) = chaos_run(cfg, 2048);
    assert_eq!(a.events, b.events, "event counts diverged");
    assert_eq!(
        a.metrics_json, b.metrics_json,
        "chaos metrics snapshot is not deterministic"
    );
    assert_eq!(series_a.points(), series_b.points());
}
