//! End-to-end tests of the MPI QoS Agent on the GARNET model: attribute
//! puts translate into edge-router configuration, grants are readable back
//! through attributes, and premium flows survive contention.

use mpichgq_core::{enable_qos, QosAgentCfg, QosAttribute, QosOutcome};
use mpichgq_gara::{install, Gara};
use mpichgq_mpi::{JobBuilder, Mpi, Poll};
use mpichgq_netsim::{Garnet, GarnetCfg, NodeId, PolicingAction};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::{App, Ctx, Sim, SockId};
use std::cell::RefCell;
use std::rc::Rc;

/// Build the GARNET model with GARA managing 70% of each trunk for EF.
fn setup() -> (Sim, Garnet) {
    let g = Garnet::build(GarnetCfg::default());
    let premium_src = g.premium_src;
    let premium_dst = g.premium_dst;
    let competitive_src = g.competitive_src;
    let competitive_dst = g.competitive_dst;
    let routers = g.routers;
    let mut sim = Sim::new(g.net);
    let mut gara = Gara::new();
    gara.manage_core_links(&sim.net, 0.7);
    install(&mut sim.stack, gara);
    // Node handles survive the move of the Net into the Sim; keep them in a
    // handle struct with a trivial placeholder network.
    let handles = Garnet {
        net: mpichgq_netsim::TopoBuilder::new(0).build(),
        premium_src,
        premium_dst,
        competitive_src,
        competitive_dst,
        routers,
    };
    (sim, handles)
}

/// A simple premium-put program for rank 0; rank 1 idles.
fn putter(
    attr: QosAttribute,
    env: mpichgq_core::QosEnv,
    outcome: Rc<RefCell<Option<QosOutcome>>>,
) -> Box<dyn mpichgq_mpi::MpiProgram> {
    let mut done = false;
    Box::new(move |mpi: &mut Mpi| {
        if !done {
            done = true;
            let w = mpi.comm_world();
            mpi.attr_put(w, env.keyval(), Rc::new(attr));
            *outcome.borrow_mut() = Some(env.outcome(mpi, w));
        }
        Poll::Done
    })
}

fn idle() -> Box<dyn mpichgq_mpi::MpiProgram> {
    Box::new(|_mpi: &mut Mpi| Poll::Done)
}

#[test]
fn premium_attribute_installs_policer_and_grants() {
    let (mut sim, g) = setup();
    let outcome = Rc::new(RefCell::new(None));
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let attr = QosAttribute::premium(8_000.0, 15_000); // 8 Mb/s app rate
    let job = builder
        .rank(g.premium_src, putter(attr, env, outcome.clone()))
        .rank(g.premium_dst, idle())
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(2));
    assert!(job.finished());
    let out = outcome.borrow().clone().unwrap();
    let QosOutcome::Granted { network_rate_bps } = out else {
        panic!("expected grant, got {out:?}");
    };
    // Overhead-translated: above the app rate, below +20%.
    assert!(network_rate_bps > 8_000_000, "{network_rate_bps}");
    assert!(network_rate_bps < 9_600_000, "{network_rate_bps}");
    // A classifier rule with policer exists on the premium edge router.
    let edge = g.routers[0];
    assert_eq!(sim.net.node(edge).classifier.len(), 1);
}

#[test]
fn oversized_request_is_denied_cleanly() {
    let (mut sim, g) = setup();
    let outcome = Rc::new(RefCell::new(None));
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    // 200 Mb/s app rate >> 70% of OC3.
    let attr = QosAttribute::premium(200_000.0, 15_000);
    let job = builder
        .rank(g.premium_src, putter(attr, env, outcome.clone()))
        .rank(g.premium_dst, idle())
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(2));
    assert!(job.finished());
    let out = outcome.borrow().clone().unwrap();
    assert!(matches!(out, QosOutcome::Denied { .. }), "{out:?}");
    assert_eq!(sim.net.node(g.routers[0]).classifier.len(), 0);
}

#[test]
fn best_effort_reput_cancels_reservation() {
    let (mut sim, g) = setup();
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let env2 = env.clone();
    let seen = Rc::new(RefCell::new(Vec::new()));
    let seen2 = seen.clone();
    let mut done = false;
    let prog = move |mpi: &mut Mpi| {
        if !done {
            done = true;
            let w = mpi.comm_world();
            mpi.attr_put(
                w,
                env2.keyval(),
                Rc::new(QosAttribute::premium(8_000.0, 15_000)),
            );
            seen2.borrow_mut().push(env2.outcome(mpi, w));
            // Downgrade to best-effort: the reservation must be released.
            mpi.attr_put(w, env2.keyval(), Rc::new(QosAttribute::best_effort()));
            seen2.borrow_mut().push(env2.outcome(mpi, w));
        }
        Poll::Done
    };
    let job = builder
        .rank(g.premium_src, Box::new(prog))
        .rank(g.premium_dst, idle())
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(2));
    assert!(job.finished());
    let seen = seen.borrow();
    assert!(seen[0].is_granted());
    assert_eq!(seen[1], QosOutcome::None);
    assert_eq!(
        sim.net.node(g.routers[0]).classifier.len(),
        0,
        "policer removed on downgrade"
    );
}

#[test]
fn reput_replaces_rather_than_leaks() {
    let (mut sim, g) = setup();
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let env2 = env.clone();
    let mut done = false;
    let prog = move |mpi: &mut Mpi| {
        if !done {
            done = true;
            let w = mpi.comm_world();
            // Two consecutive puts; capacity (70% of OC3 ≈ 108 Mb/s) only
            // fits each alone if the first is released on re-put.
            mpi.attr_put(
                w,
                env2.keyval(),
                Rc::new(QosAttribute::premium(80_000.0, 15_000)),
            );
            assert!(env2.outcome(mpi, w).is_granted());
            mpi.attr_put(
                w,
                env2.keyval(),
                Rc::new(QosAttribute::premium(90_000.0, 15_000)),
            );
            assert!(
                env2.outcome(mpi, w).is_granted(),
                "second put should replace the first, not stack"
            );
        }
        Poll::Done
    };
    let job = builder
        .rank(g.premium_src, Box::new(prog))
        .rank(g.premium_dst, idle())
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(2));
    assert!(job.finished());
    assert_eq!(sim.net.node(g.routers[0]).classifier.len(), 1);
}

#[test]
fn shaping_config_installs_host_shaper() {
    let (mut sim, g) = setup();
    let cfg = QosAgentCfg {
        shape_at_source: true,
        ..QosAgentCfg::default()
    };
    let outcome = Rc::new(RefCell::new(None));
    let (builder, env) = enable_qos(JobBuilder::new(), cfg);
    let job = builder
        .rank(
            g.premium_src,
            putter(QosAttribute::premium(8_000.0, 15_000), env, outcome.clone()),
        )
        .rank(g.premium_dst, idle())
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(2));
    assert!(job.finished());
    assert!(outcome.borrow().clone().unwrap().is_granted());
    assert_eq!(sim.net.node(g.premium_src).shapers.len(), 1);
}

#[test]
fn premium_mpi_stream_survives_contention() {
    // The headline behavior (paper §5.2/§5.3 in miniature): an MPI stream
    // under heavy UDP contention collapses without a reservation and runs
    // at full rate with one.
    let run = |premium: bool| -> f64 {
        let (mut sim, g) = setup();
        let received = Rc::new(RefCell::new(0u64));
        let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
        let env2 = env.clone();

        // Sender: put attr (if premium), then stream 40 KB frames every
        // 100 ms for 8 seconds (≈3.2 Mb/s application rate).
        let mut state = 0u8;
        let mut frames = 0u32;
        let sender = move |mpi: &mut Mpi| {
            let w = mpi.comm_world();
            match state {
                0 => {
                    if premium {
                        mpi.attr_put(
                            w,
                            env2.keyval(),
                            Rc::new(QosAttribute::premium(3_200.0, 40_000)),
                        );
                        assert!(env2.outcome(mpi, w).is_granted());
                    }
                    state = 1;
                    mpi.set_timer(SimDelta::from_millis(100), 1);
                    Poll::Pending
                }
                1 => {
                    if mpi.take_timer(1) {
                        mpi.isend(w, 1, 1, 40_000);
                        frames += 1;
                        if frames == 80 {
                            state = 2;
                            return Poll::Done;
                        }
                        mpi.set_timer(SimDelta::from_millis(100), 1);
                    }
                    Poll::Pending
                }
                _ => Poll::Done,
            }
        };
        let rcv_total = received.clone();
        let mut req = None;
        let mut got = 0u32;
        let receiver = move |mpi: &mut Mpi| {
            let w = mpi.comm_world();
            loop {
                if req.is_none() {
                    req = Some(mpi.irecv(w, Some(0), Some(1)));
                }
                match mpi.test(req.unwrap()) {
                    Some(info) => {
                        *rcv_total.borrow_mut() += info.len as u64;
                        req = None;
                        got += 1;
                        if got == 80 {
                            return Poll::Done;
                        }
                    }
                    None => return Poll::Pending,
                }
            }
        };
        let _job = builder
            .rank(g.premium_src, Box::new(sender))
            .rank(g.premium_dst, Box::new(receiver))
            .launch(&mut sim);

        // Contention: UDP blaster at line rate from the competitive source.
        struct Blaster {
            dst: NodeId,
            sock: Option<SockId>,
        }
        impl App for Blaster {
            fn on_start(&mut self, ctx: &mut Ctx) {
                self.sock = Some(ctx.udp_bind(20000));
                ctx.set_timer(SimDelta::from_micros(77), 0);
            }
            fn on_timer(&mut self, _t: u32, ctx: &mut Ctx) {
                // 1472-byte payloads every 77 µs ≈ 155 Mb/s offered.
                ctx.udp_send(self.sock.unwrap(), self.dst, 20000, 1472);
                ctx.set_timer(SimDelta::from_micros(77), 0);
            }
        }
        struct Sink;
        impl App for Sink {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.udp_bind(20000);
            }
        }
        sim.spawn_app(g.competitive_dst, Box::new(Sink));
        sim.spawn_app(
            g.competitive_src,
            Box::new(Blaster {
                dst: g.competitive_dst,
                sock: None,
            }),
        );

        sim.run_until(SimTime::from_secs(20));
        let delivered = *received.borrow();
        delivered as f64 / (80.0 * 40_000.0)
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with > 0.99,
        "premium stream delivered only {with:.2} of offered"
    );
    assert!(
        without < 0.7,
        "best-effort stream should collapse under contention, got {without:.2}"
    );
}

#[test]
fn low_latency_class_uses_shallow_bucket() {
    let (mut sim, g) = setup();
    let outcome = Rc::new(RefCell::new(None));
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let job = builder
        .rank(
            g.premium_src,
            putter(
                QosAttribute::low_latency(640.0, 1_000),
                env,
                outcome.clone(),
            ),
        )
        .rank(g.premium_dst, idle())
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(2));
    assert!(job.finished());
    assert!(outcome.borrow().clone().unwrap().is_granted());
    assert_eq!(sim.net.node(g.routers[0]).classifier.len(), 1);
}

#[test]
fn demote_policy_marks_excess_best_effort() {
    // Configuration ablation: with Demote, out-of-profile packets travel
    // best-effort instead of vanishing (checked at the classifier level in
    // netsim; here we check the agent threads the policy through).
    let (mut sim, g) = setup();
    let cfg = QosAgentCfg {
        action: PolicingAction::Demote,
        ..QosAgentCfg::default()
    };
    let outcome = Rc::new(RefCell::new(None));
    let (builder, env) = enable_qos(JobBuilder::new(), cfg);
    let job = builder
        .rank(
            g.premium_src,
            putter(QosAttribute::premium(1_000.0, 1_000), env, outcome.clone()),
        )
        .rank(g.premium_dst, idle())
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(2));
    assert!(job.finished());
    assert!(outcome.borrow().clone().unwrap().is_granted());
}

#[test]
fn availability_query_reflects_broker_state() {
    let (mut sim, g) = setup();
    let avail = Rc::new(RefCell::new(Vec::new()));
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let env2 = env.clone();
    let avail2 = avail.clone();
    let mut done = false;
    let prog = move |mpi: &mut Mpi| {
        if !done {
            done = true;
            let w = mpi.comm_world();
            // 70% of OC3 ≈ 108.8 Mb/s reservable.
            avail2
                .borrow_mut()
                .push(env2.available_bandwidth(mpi, w).unwrap());
            mpi.attr_put(
                w,
                env2.keyval(),
                Rc::new(QosAttribute::premium(50_000.0, 15_000)),
            );
            assert!(env2.outcome(mpi, w).is_granted());
            avail2
                .borrow_mut()
                .push(env2.available_bandwidth(mpi, w).unwrap());
        }
        Poll::Done
    };
    let job = builder
        .rank(g.premium_src, Box::new(prog))
        .rank(g.premium_dst, idle())
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(2));
    assert!(job.finished());
    let avail = avail.borrow();
    let before = avail[0];
    let after = avail[1];
    assert!(before > 100_000_000, "reservable ~108 Mb/s, saw {before}");
    // The 50 Mb/s grant (plus overhead) is debited from availability.
    assert!(
        before - after > 50_000_000,
        "availability should drop by at least the granted rate: {before} -> {after}"
    );
}

#[test]
fn negotiation_falls_back_to_what_fits() {
    let (mut sim, g) = setup();
    let picked = Rc::new(RefCell::new(None));
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let env2 = env.clone();
    let picked2 = picked.clone();
    let mut done = false;
    let prog = move |mpi: &mut Mpi| {
        if !done {
            done = true;
            let w = mpi.comm_world();
            // Preference order: 200 Mb/s (impossible), 150 Mb/s (impossible),
            // 40 Mb/s (fits).
            let choice = env2.negotiate(
                mpi,
                w,
                &[
                    QosAttribute::premium(200_000.0, 15_000),
                    QosAttribute::premium(150_000.0, 15_000),
                    QosAttribute::premium(40_000.0, 15_000),
                ],
            );
            *picked2.borrow_mut() = Some(choice);
            assert!(env2.outcome(mpi, w).is_granted());
        }
        Poll::Done
    };
    let job = builder
        .rank(g.premium_src, Box::new(prog))
        .rank(g.premium_dst, idle())
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(2));
    assert!(job.finished());
    assert_eq!(*picked.borrow(), Some(Some(2)), "third alternative fits");
    // Exactly one rule installed (failed attempts left nothing behind).
    assert_eq!(sim.net.node(g.routers[0]).classifier.len(), 1);
}

#[test]
fn negotiation_total_failure_leaves_best_effort() {
    let (mut sim, g) = setup();
    let picked = Rc::new(RefCell::new(Some(Some(99))));
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let env2 = env.clone();
    let picked2 = picked.clone();
    let mut done = false;
    let prog = move |mpi: &mut Mpi| {
        if !done {
            done = true;
            let w = mpi.comm_world();
            let choice = env2.negotiate(mpi, w, &[QosAttribute::premium(500_000.0, 15_000)]);
            *picked2.borrow_mut() = Some(choice);
            assert_eq!(env2.outcome(mpi, w), QosOutcome::None);
        }
        Poll::Done
    };
    let job = builder
        .rank(g.premium_src, Box::new(prog))
        .rank(g.premium_dst, idle())
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(2));
    assert!(job.finished());
    assert_eq!(*picked.borrow(), Some(None));
    assert_eq!(sim.net.node(g.routers[0]).classifier.len(), 0);
}
