//! Behavioral tests for the adaptation loop: rejection → backoff →
//! grant, revocation → renegotiation → upgrade, and total capacity loss
//! → degradation → probed recovery.

use mpichgq_core::{AdaptPolicy, AdaptState, AdaptiveFlow, QosOutcome};
use mpichgq_gara::{install, Gara, NetworkRequest, Request, StartSpec};
use mpichgq_netsim::{topology::Dumbbell, DepthRule, Net, NodeId, PolicingAction, Proto};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::Sim;

fn request(src: NodeId, dst: NodeId, rate_bps: u64) -> NetworkRequest {
    NetworkRequest {
        src,
        dst,
        proto: Proto::Udp,
        src_port: None,
        dst_port: None,
        rate_bps,
        depth: DepthRule::Normal,
        action: PolicingAction::Drop,
        shape_at_source: false,
    }
}

fn policy() -> AdaptPolicy {
    AdaptPolicy {
        initial_backoff: SimDelta::from_millis(250),
        backoff_factor: 2.0,
        max_retries: 4,
        renegotiate_factor: 0.5,
        min_rate_bps: 500_000,
        probe_interval: SimDelta::from_secs(1),
    }
}

/// Dumbbell with 5 Mb/s of reservable EF on the 10 Mb/s trunk.
fn dumbbell_sim() -> (Sim, NodeId, NodeId) {
    let d = Dumbbell::build(10_000_000, SimDelta::from_millis(1), 11);
    let (src, dst) = (d.src, d.dst);
    let mut sim = Sim::new(d.net);
    let mut gara = Gara::new();
    gara.manage_core_links(&sim.net, 0.5);
    install(&mut sim.stack, gara);
    (sim, src, dst)
}

fn with_gara<R>(sim: &mut Sim, f: impl FnOnce(&mut Gara, &mut Net) -> R) -> R {
    let mut g = sim.stack.take_service::<Gara>().expect("gara installed");
    let r = f(&mut g, &mut sim.net);
    sim.stack.put_service_box(g);
    r
}

fn counter(sim: &Sim, name: &str) -> u64 {
    sim.net.obs.metrics.counter_value(name).unwrap_or(0)
}

#[test]
fn injected_rejections_retry_with_backoff_until_granted() {
    let (mut sim, src, dst) = dumbbell_sim();
    with_gara(&mut sim, |g, _| g.inject_rejections(2));
    let flow = AdaptiveFlow::install(
        &mut sim,
        request(src, dst, 4_000_000),
        SimTime::from_secs(1),
        policy(),
    );
    assert_eq!(flow.state(), AdaptState::Idle);
    assert_eq!(flow.outcome(), QosOutcome::None);
    // Attempts at 1.0 s (reject), 1.25 s (reject), 1.75 s (grant).
    sim.run_until(SimTime::from_millis(1_300));
    assert_eq!(flow.state(), AdaptState::BackingOff { attempt: 2 });
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(
        flow.state(),
        AdaptState::Granted {
            id: flow.current_resv().unwrap(),
            rate_bps: 4_000_000
        }
    );
    assert_eq!(flow.installed_rate_bps(), 4_000_000);
    assert!(flow.outcome().is_granted());
    assert_eq!(counter(&sim, "agent.requests"), 3);
    assert_eq!(counter(&sim, "agent.rejects"), 2);
    assert_eq!(counter(&sim, "agent.retries"), 2);
    assert_eq!(counter(&sim, "agent.grants"), 1);
}

#[test]
fn exhausted_retries_degrade_to_best_effort() {
    let (mut sim, src, dst) = dumbbell_sim();
    // Squatter holds everything: every retry hits real admission control.
    with_gara(&mut sim, |g, net| {
        g.reserve(
            net,
            Request::Network(request(src, dst, 5_000_000)),
            StartSpec::Now,
            None,
        )
        .unwrap();
    });
    let flow = AdaptiveFlow::install(
        &mut sim,
        request(src, dst, 4_000_000),
        SimTime::ZERO,
        policy(),
    );
    // 1 attempt + 4 retries (backoffs 0.25+0.5+1+2 = 3.75 s) then degrade;
    // the renegotiation ladder is not consulted on the reject path.
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(flow.state(), AdaptState::Degraded);
    assert_eq!(counter(&sim, "agent.requests"), 5);
    assert_eq!(counter(&sim, "agent.degrades"), 1);
    assert!(matches!(flow.outcome(), QosOutcome::Denied { .. }));
    // Gauge shows the best-effort remark.
    assert_eq!(sim.net.obs.metrics.gauge_value("agent.dscp"), Some(0.0));
}

#[test]
fn revocation_renegotiates_down_then_probes_back_up() {
    let (mut sim, src, dst) = dumbbell_sim();
    let flow = AdaptiveFlow::install(
        &mut sim,
        request(src, dst, 4_000_000),
        SimTime::ZERO,
        policy(),
    );
    sim.run_until(SimTime::from_secs(1));
    let first = flow.current_resv().unwrap();
    // Revoke, and immediately squat on 3 Mb/s so only 2 Mb/s remains:
    // the ladder's first rung (2 Mb/s) is admitted.
    let squatter = with_gara(&mut sim, |g, net| {
        g.revoke(net, first);
        g.reserve(
            net,
            Request::Network(request(src, dst, 3_000_000)),
            StartSpec::Now,
            None,
        )
        .unwrap()
    });
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(counter(&sim, "agent.revocations_seen"), 1);
    assert_eq!(counter(&sim, "agent.renegotiations"), 1);
    assert_eq!(flow.installed_rate_bps(), 2_000_000);
    assert_eq!(
        flow.outcome(),
        QosOutcome::Degraded {
            network_rate_bps: 2_000_000
        }
    );
    // Free the capacity; the next probe upgrades in place to full rate.
    with_gara(&mut sim, |g, net| g.cancel(net, squatter));
    sim.run_until(SimTime::from_secs(4));
    assert_eq!(flow.installed_rate_bps(), 4_000_000);
    assert!(flow.outcome().is_granted());
    assert_eq!(counter(&sim, "agent.recoveries"), 1);
}

#[test]
fn total_capacity_loss_degrades_and_recovers() {
    let (mut sim, src, dst) = dumbbell_sim();
    let flow = AdaptiveFlow::install(
        &mut sim,
        request(src, dst, 4_000_000),
        SimTime::ZERO,
        policy(),
    );
    sim.run_until(SimTime::from_secs(1));
    let first = flow.current_resv().unwrap();
    // Revoke and take *everything*: the whole ladder fails -> degraded.
    let squatter = with_gara(&mut sim, |g, net| {
        g.revoke(net, first);
        g.reserve(
            net,
            Request::Network(request(src, dst, 5_000_000)),
            StartSpec::Now,
            None,
        )
        .unwrap()
    });
    sim.run_until(SimTime::from_secs(3));
    assert_eq!(flow.state(), AdaptState::Degraded);
    assert!(counter(&sim, "agent.probes") >= 1, "probes while degraded");
    // Capacity returns; a probe re-reserves the full rate.
    with_gara(&mut sim, |g, net| g.cancel(net, squatter));
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(flow.installed_rate_bps(), 4_000_000);
    assert_eq!(counter(&sim, "agent.recoveries"), 1);
    assert_eq!(counter(&sim, "agent.degrades"), 1);
}

/// Crash/restart scenario for [`AdaptiveFlow::bind_host`]: crash releases
/// the reservation back to admission control, restart re-reserves at full
/// rate. Returns the sim so callers can compare runs.
fn crash_restart_run() -> (Sim, AdaptiveFlow, NodeId, NodeId) {
    use mpichgq_netsim::faults::{FaultAction, FaultPlan};
    let (mut sim, src, dst) = dumbbell_sim();
    sim.net.install_fault_plan(
        FaultPlan::new(31)
            .at(SimTime::from_secs(2), FaultAction::HostCrash { host: src })
            .at(
                SimTime::from_secs(4),
                FaultAction::HostRestart { host: src },
            ),
    );
    let flow = AdaptiveFlow::install(
        &mut sim,
        request(src, dst, 4_000_000),
        SimTime::ZERO,
        policy(),
    );
    flow.bind_host(&mut sim, src);
    (sim, flow, src, dst)
}

#[test]
fn host_crash_releases_reservation_and_restart_rereserves() {
    let (mut sim, flow, src, dst) = crash_restart_run();
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(flow.installed_rate_bps(), 4_000_000, "granted before crash");

    // Crash at 2 s: the grant is handed back, so the *entire* 5 Mb/s EF
    // pool is reservable by someone else while the host is down.
    sim.run_until(SimTime::from_secs(3));
    assert_eq!(flow.state(), AdaptState::Idle);
    assert_eq!(flow.installed_rate_bps(), 0);
    assert_eq!(counter(&sim, "agent.crash_releases"), 1);
    let squatter = with_gara(&mut sim, |g, net| {
        g.reserve(
            net,
            Request::Network(request(src, dst, 5_000_000)),
            StartSpec::Now,
            None,
        )
        .expect("full EF pool free while holder's host is down")
    });
    with_gara(&mut sim, |g, net| g.cancel(net, squatter));

    // Restart at 4 s: the re-reserve ping lands immediately.
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(
        flow.installed_rate_bps(),
        4_000_000,
        "re-granted on restart"
    );
    assert_eq!(counter(&sim, "agent.restart_rereserves"), 1);
    assert_eq!(counter(&sim, "agent.grants"), 2, "initial grant + re-grant");
    assert_eq!(counter(&sim, "agent.crash_releases"), 1);
    assert_eq!(counter(&sim, "gara.cancels"), 2, "crash release + squatter");
    let fs = sim.net.fault_stats().unwrap();
    assert_eq!((fs.host_crashes, fs.host_restarts), (1, 1));
}

#[test]
fn crash_restart_adaptation_is_bit_identical() {
    let (mut a, _, _, _) = crash_restart_run();
    let (mut b, _, _, _) = crash_restart_run();
    a.run_until(SimTime::from_secs(6));
    b.run_until(SimTime::from_secs(6));
    assert_eq!(
        a.net.obs.metrics.snapshot_json(),
        b.net.obs.metrics.snapshot_json(),
        "crash/restart adaptation run is not deterministic"
    );
}
