//! # mpichgq-core — MPICH-GQ itself
//!
//! The paper's contribution: QoS for message-passing programs, expressed
//! through the standard MPI attribute mechanism and implemented by an MPI
//! QoS Agent that drives GARA reservations over a Differentiated-Services
//! network and a DSRT CPU scheduler.
//!
//! * [`qos`] — the application-level QoS specification (paper Figure 3):
//!   class (best-effort / low-latency / premium), peak bandwidth, maximum
//!   message size.
//! * [`overhead`] — translating application rates to network reservation
//!   rates from protocol overhead (the paper's ~1.06 factor, §5.3).
//! * [`agent`] — the MPI QoS Agent: hooked `MPICH_QOS` keyval, endpoint
//!   extraction, token-bucket sizing (§4.3), co-reservation via GARA, and
//!   the `MPICH_QOS_STATUS` result attribute.
//! * [`adapt`] — the agent's adaptation loop: retry-with-backoff on
//!   rejection, renegotiation to a smaller rate on revocation, graceful
//!   degradation to best-effort, and probing recovery.
//!
//! Quick start: build a job, attach the agent, put an attribute:
//!
//! ```text
//! let (builder, qos_env) = enable_qos(JobBuilder::new()..., QosAgentCfg::default());
//! // in a rank program:
//! mpi.attr_put(comm, qos_env.keyval(),
//!              Rc::new(QosAttribute::premium(8_000.0, 120_000 / 8)));
//! assert!(qos_env.outcome(&mpi, comm).is_granted());
//! ```

pub mod adapt;
pub mod agent;
pub mod overhead;
pub mod qos;

pub use adapt::{AdaptPolicy, AdaptState, AdaptiveFlow};
pub use agent::{enable_qos, QosAgentCfg, QosEnv, QosGrant};
pub use overhead::{ip_overhead_factor, path_overhead_factor, wire_overhead_factor, DEFAULT_MSS};
pub use qos::{QosAttribute, QosClass, QosOutcome};
