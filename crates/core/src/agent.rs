//! The MPI QoS Agent.
//!
//! "An MPI QoS Agent incorporates the rules used to translate
//! application-level QoS specifications into the lower-level commands and
//! parameters required to implement QoS." (§4) This is the component the
//! paper had not finished building ("The major component that we have not
//! yet constructed is the MPI QoS Agent"); here it is implemented in full:
//!
//! * a hooked keyval (`MPICH_QOS`) whose `attr_put` triggers the request —
//!   the paper's standards-compliant extension mechanism (§4.1);
//! * endpoint extraction from the communicator (host/port pairs);
//! * translation of application rates to network rates using the
//!   protocol-overhead model ([`crate::overhead`]);
//! * token-bucket depth selection per §4.3 (`bandwidth/40` by default);
//! * atomic co-reservation through GARA for every link the communicator's
//!   flows traverse;
//! * a status keyval (`MPICH_QOS_STATUS`) whose `attr_get` reports whether
//!   the requested QoS is available.

use crate::overhead::path_overhead_factor;
use crate::qos::{QosAttribute, QosClass, QosOutcome};
use mpichgq_gara::{Gara, NetworkRequest, Request, ResvId, StartSpec};
use mpichgq_mpi::{CommId, InitHook, JobBuilder, Keyval, Mpi};
use mpichgq_netsim::{DepthRule, NodeId, PolicingAction, Proto};
use std::cell::RefCell;
use std::rc::Rc;

/// Agent policy configuration.
#[derive(Debug, Clone, Copy)]
pub struct QosAgentCfg {
    /// Token-bucket depth rule for premium flows ("we currently use
    /// bandwidth/40", §4.3).
    pub depth_rule: DepthRule,
    /// What edge policers do with out-of-profile packets.
    pub action: PolicingAction,
    /// Install an end-system shaper in the globus-io layer (§5.4's
    /// "alternative approach").
    pub shape_at_source: bool,
    /// TCP maximum segment size used in overhead computation.
    pub mss: u32,
    /// Translate the application rate to a network rate using the
    /// protocol-overhead model. Disable to install the attribute bandwidth
    /// verbatim (how the paper's prototype bound "QoS parameters directly
    /// to application-level flows", §4 — its reservation sweeps are in raw
    /// network Kb/s).
    pub translate_overhead: bool,
}

impl Default for QosAgentCfg {
    fn default() -> Self {
        QosAgentCfg {
            depth_rule: DepthRule::Normal,
            action: PolicingAction::Drop,
            shape_at_source: false,
            mss: crate::overhead::DEFAULT_MSS,
            translate_overhead: true,
        }
    }
}

/// The result object stored under the status keyval.
#[derive(Debug)]
pub struct QosGrant {
    pub outcome: QosOutcome,
    /// GARA handles backing this grant (empty for best-effort/denied).
    pub resvs: Vec<ResvId>,
}

/// Shared handles to the QoS keyvals, filled in at rank initialization.
#[derive(Clone)]
pub struct QosEnv {
    qos: Rc<RefCell<Option<Keyval>>>,
    status: Rc<RefCell<Option<Keyval>>>,
}

impl QosEnv {
    /// The `MPICH_QOS` keyval (valid once ranks initialized).
    pub fn keyval(&self) -> Keyval {
        self.qos.borrow().expect("QoS keyval not yet registered")
    }

    /// The `MPICH_QOS_STATUS` keyval.
    pub fn status_keyval(&self) -> Keyval {
        self.status
            .borrow()
            .expect("QoS status keyval not yet registered")
    }

    /// Convenience: read the grant stored on `comm` (after a put).
    pub fn outcome(&self, mpi: &Mpi, comm: CommId) -> QosOutcome {
        match mpi.attr_get(comm, self.status_keyval()) {
            Some(v) => v
                .downcast_ref::<QosGrant>()
                .map(|g| g.outcome.clone())
                .unwrap_or(QosOutcome::None),
            None => QosOutcome::None,
        }
    }
}

/// Attach the MPI QoS Agent to a job: registers the hooked `MPICH_QOS`
/// keyval on every rank. Requires a [`Gara`] service installed in the
/// stack (see [`mpichgq_gara::install`]).
pub fn enable_qos(builder: JobBuilder, cfg: QosAgentCfg) -> (JobBuilder, QosEnv) {
    let env = QosEnv {
        qos: Rc::new(RefCell::new(None)),
        status: Rc::new(RefCell::new(None)),
    };
    let env2 = env.clone();
    let init: InitHook = Rc::new(RefCell::new(move |mpi: &mut Mpi| {
        let env3 = env2.clone();
        let status_kv = mpi.keyval_create(); // MPICH_QOS_STATUS
        *env2.status.borrow_mut() = Some(status_kv);
        let hook = Rc::new(RefCell::new(
            move |mpi: &mut Mpi, comm: CommId, value: &mpichgq_mpi::AttrValue| {
                on_qos_put(mpi, comm, value, cfg, status_kv, &env3);
            },
        ));
        let kv = mpi.keyval_create_with_hook(hook); // MPICH_QOS
        *env2.qos.borrow_mut() = Some(kv);
    }));
    (builder.init_hook(init), env)
}

/// The put-trigger: translate and reserve.
fn on_qos_put(
    mpi: &mut Mpi,
    comm: CommId,
    value: &mpichgq_mpi::AttrValue,
    cfg: QosAgentCfg,
    status_kv: Keyval,
    _env: &QosEnv,
) {
    let attr = *value
        .downcast_ref::<QosAttribute>()
        .expect("MPICH_QOS attribute must be a QosAttribute");

    // Release any previous grant on this communicator (re-put semantics:
    // the new specification replaces the old reservation).
    if let Some(prev) = mpi.attr_get(comm, status_kv) {
        if let Some(grant) = prev.downcast_ref::<QosGrant>() {
            let ids = grant.resvs.clone();
            mpi.ctx.with_service::<Gara, _>(|gara, ctx| {
                for id in ids {
                    gara.cancel(ctx.net, id);
                }
            });
        }
    }

    let outcome = match attr.class {
        QosClass::BestEffort => QosGrant {
            outcome: QosOutcome::None,
            resvs: Vec::new(),
        },
        QosClass::Premium | QosClass::LowLatency => request_reservations(mpi, comm, &attr, cfg),
    };
    mpi.attr_put(comm, status_kv, Rc::new(outcome));
}

fn request_reservations(
    mpi: &mut Mpi,
    comm: CommId,
    attr: &QosAttribute,
    cfg: QosAgentCfg,
) -> QosGrant {
    // Endpoint extraction: "basically port and machine names" (§4.1).
    let endpoints = mpi.comm_endpoints(comm);
    let my_host = mpi.host();
    let peers: Vec<NodeId> = endpoints
        .local
        .iter()
        .chain(endpoints.remote.iter())
        .map(|&(_, h, _)| h)
        .filter(|&h| h != my_host)
        .collect();
    if peers.is_empty() {
        return QosGrant {
            outcome: QosOutcome::Denied {
                reason: "communicator has no remote endpoints".into(),
            },
            resvs: Vec::new(),
        };
    }

    let result = mpi.ctx.with_service::<Gara, _>(|gara, ctx| {
        // Build one network request per outgoing host pair; reserve all of
        // them atomically (GARA co-reservation). The attribute bandwidth is
        // the application's peak rate toward each peer.
        let mut rate_installed = 0u64;
        let reqs: Vec<_> = peers
            .iter()
            .map(|&peer| {
                let factor = if cfg.translate_overhead {
                    path_overhead_factor(ctx.net, my_host, peer, attr.max_message_size, cfg.mss)
                } else {
                    1.0
                };
                let rate = (attr.bandwidth_bps() as f64 * factor).ceil() as u64;
                rate_installed = rate_installed.max(rate);
                let depth = match attr.class {
                    // Low-latency flows get a shallow bucket — bandwidth ×
                    // path delay, floored at a few messages' worth so
                    // back-to-back request/reply rounds never trip the
                    // policer — keeping the EF queue short.
                    QosClass::LowLatency => {
                        let delay = ctx
                            .net
                            .path_delay(my_host, peer)
                            .unwrap_or(mpichgq_sim::SimDelta::from_millis(2));
                        let bw_delay = mpichgq_netsim::depth_for(
                            DepthRule::BandwidthDelay {
                                delay_ns: delay.as_nanos().max(1_000_000),
                            },
                            rate,
                        );
                        let msg_floor = 4 * crate::overhead::ip_bytes_for_message(
                            attr.max_message_size,
                            cfg.mss,
                        );
                        DepthRule::Bytes(bw_delay.max(msg_floor))
                    }
                    _ => cfg.depth_rule,
                };
                (
                    Request::Network(NetworkRequest {
                        src: my_host,
                        dst: peer,
                        proto: Proto::Tcp,
                        src_port: None,
                        dst_port: None,
                        rate_bps: rate,
                        depth,
                        action: cfg.action,
                        shape_at_source: cfg.shape_at_source,
                    }),
                    StartSpec::Now,
                    None,
                )
            })
            .collect();
        gara.co_reserve(ctx.net, reqs)
            .map(|ids| (ids, rate_installed))
    });

    match result {
        Some(Ok((ids, rate))) => QosGrant {
            outcome: QosOutcome::Granted {
                network_rate_bps: rate,
            },
            resvs: ids,
        },
        Some(Err(e)) => QosGrant {
            outcome: QosOutcome::Denied {
                reason: e.to_string(),
            },
            resvs: Vec::new(),
        },
        None => QosGrant {
            outcome: QosOutcome::Denied {
                reason: "GARA service not installed".into(),
            },
            resvs: Vec::new(),
        },
    }
}

// ---------------------------------------------------------------------
// Adaptive negotiation (the paper's §4.2 future work: "select from among
// alternative resources, according to their availability, and adapt
// execution strategies or change reservations if reservations cannot be
// satisfied")
// ---------------------------------------------------------------------

impl QosEnv {
    /// Premium bandwidth (bits/s) currently available along this
    /// communicator's paths, as reported by the bandwidth broker: the
    /// minimum across all peers. Programs use this to pick an execution
    /// strategy before committing to a reservation.
    pub fn available_bandwidth(&self, mpi: &mut Mpi, comm: CommId) -> Option<u64> {
        let endpoints = mpi.comm_endpoints(comm);
        let my_host = mpi.host();
        let peers: Vec<NodeId> = endpoints
            .local
            .iter()
            .chain(endpoints.remote.iter())
            .map(|&(_, h, _)| h)
            .filter(|&h| h != my_host)
            .collect();
        mpi.ctx.with_service::<Gara, _>(|gara, ctx| {
            let now = ctx.net.now();
            let horizon = now + mpichgq_sim::SimDelta::from_secs(3600);
            peers
                .iter()
                .map(|&p| gara.available_on_path(ctx.net, my_host, p, now, horizon))
                .try_fold(u64::MAX, |acc, a| a.map(|v| acc.min(v)))
        })?
    }

    /// Try a preference-ordered list of QoS specifications, committing to
    /// the first one the system grants. Returns the index granted, or
    /// `None` if every alternative was denied (in which case the
    /// communicator is left best-effort and the program should adapt its
    /// execution strategy).
    pub fn negotiate(
        &self,
        mpi: &mut Mpi,
        comm: CommId,
        alternatives: &[QosAttribute],
    ) -> Option<usize> {
        for (i, attr) in alternatives.iter().enumerate() {
            mpi.attr_put(comm, self.keyval(), Rc::new(*attr));
            if self.outcome(mpi, comm).is_granted() {
                return Some(i);
            }
        }
        // Nothing fit: clear any residual request explicitly.
        mpi.attr_put(comm, self.keyval(), Rc::new(QosAttribute::best_effort()));
        None
    }
}
