//! The QoS agent's adaptation loop: what happens *after* the first
//! `reserve` call, when the network refuses to cooperate.
//!
//! GARA treats rejection and revocation as first-class outcomes, and the
//! paper's architecture expects applications to "select from among
//! alternative resources, according to their availability" (§4.2). This
//! module gives the MPI QoS Agent that behavior as a small state machine
//! driven entirely by simulation events:
//!
//! * **Rejection** → retry with exponential backoff, up to
//!   [`AdaptPolicy::max_retries`] attempts, then degrade to best-effort.
//! * **Revocation** of the granted reservation → renegotiate down a
//!   geometric rate ladder (×[`AdaptPolicy::renegotiate_factor`] per step)
//!   until something is admitted or the ladder drops below
//!   [`AdaptPolicy::min_rate_bps`].
//! * **No grantable premium capacity** → graceful degradation to
//!   best-effort (the DSCP gauge drops from EF 46 to 0), with periodic
//!   probes that restore the full reservation once capacity returns.
//!
//! Every transition is surfaced in the `obs` registry: `agent.*` counters
//! (`requests`, `rejects`, `retries`, `grants`, `renegotiations`,
//! `degrades`, `recoveries`, `probes`, `revocations_seen`), the
//! `agent.granted_rate_bps` / `agent.dscp` gauges, and `agent.*` trace
//! events — so a chaos run's full adaptation history is replayable from
//! the flight recorder.
//!
//! Determinism: the loop holds no wall-clock state and draws no
//! randomness; ticks ride the engine via scheduled control tokens, so two
//! seeded runs adapt identically.

use crate::qos::QosOutcome;
use mpichgq_gara::{Gara, NetworkRequest, Request, ResvId, StartSpec, Status};
use mpichgq_netsim::{Net, NodeId, TimelineSource};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::{control_token, Controller, ControllerId, Sim, Stack};
use std::cell::RefCell;
use std::rc::Rc;

/// Tunables for the adaptation loop.
#[derive(Debug, Clone, Copy)]
pub struct AdaptPolicy {
    /// Delay before the first retry after a rejection.
    pub initial_backoff: SimDelta,
    /// Multiplier applied to the backoff on each further rejection.
    pub backoff_factor: f64,
    /// Retries (after the initial attempt) before degrading.
    pub max_retries: u32,
    /// Rate multiplier per renegotiation-ladder step, in `(0, 1)`.
    pub renegotiate_factor: f64,
    /// Floor of the renegotiation ladder: below this, premium service is
    /// not worth holding and the flow degrades to best-effort.
    pub min_rate_bps: u64,
    /// How often a renegotiated or degraded flow probes for recovery.
    pub probe_interval: SimDelta,
}

impl Default for AdaptPolicy {
    fn default() -> Self {
        AdaptPolicy {
            initial_backoff: SimDelta::from_millis(250),
            backoff_factor: 2.0,
            max_retries: 6,
            renegotiate_factor: 0.5,
            min_rate_bps: 1_000_000,
            probe_interval: SimDelta::from_secs(1),
        }
    }
}

/// Where the adaptation state machine currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptState {
    /// Not yet started (first attempt still scheduled).
    Idle,
    /// Last attempt was rejected; retry number `attempt` is scheduled.
    BackingOff { attempt: u32 },
    /// Holding the full requested rate.
    Granted { id: ResvId, rate_bps: u64 },
    /// Holding a renegotiated (smaller) premium rate; probing to upgrade.
    Renegotiated { id: ResvId, rate_bps: u64 },
    /// Best-effort only; probing for premium capacity to return.
    Degraded,
}

/// Control payload distinguishing a host-restart re-reserve ping from the
/// ordinary tick stream (payload 0) in traces and replay.
const RESTART_PING: u64 = 1;

struct Inner {
    /// The full-rate request template; renegotiation clones it with a
    /// smaller `rate_bps`.
    req: NetworkRequest,
    policy: AdaptPolicy,
    state: AdaptState,
    ctl: Option<ControllerId>,
    /// True while the bound endpoint host is crashed: ticks are inert
    /// (there is no agent process to act for) until `HostRestart`.
    host_down: bool,
}

/// A premium flow that keeps itself reserved: install once, and the
/// attached controller retries, renegotiates, degrades, and recovers as
/// GARA grants and revokes capacity. Clone the handle to observe
/// [`AdaptiveFlow::state`] from outside the simulation.
#[derive(Clone)]
pub struct AdaptiveFlow {
    inner: Rc<RefCell<Inner>>,
}

/// Controller driving one [`AdaptiveFlow`]; every scheduled tick (initial
/// attempt, backoff expiry, revocation ping, probe) lands here.
struct AdaptDriver {
    inner: Rc<RefCell<Inner>>,
}

/// Timeline probe over every installed [`AdaptiveFlow`] (one shared stack
/// service; flows register in install order). Samples two gauges per flow:
/// `agent.flow{i}.state` (the [`AdaptState`] ordinal: 0 idle, 1 backing
/// off, 2 granted, 3 renegotiated, 4 degraded) and
/// `agent.flow{i}.rate_bps` (premium rate held, 0 otherwise).
struct AdaptProbe {
    flows: Vec<Rc<RefCell<Inner>>>,
}

impl TimelineSource for AdaptProbe {
    fn timeline_sample(&mut self, net: &mut Net, _at: SimTime) {
        for (i, f) in self.flows.iter().enumerate() {
            let inner = f.borrow();
            let (state, rate) = match inner.state {
                AdaptState::Idle => (0.0, 0u64),
                AdaptState::BackingOff { .. } => (1.0, 0),
                AdaptState::Granted { rate_bps, .. } => (2.0, rate_bps),
                AdaptState::Renegotiated { rate_bps, .. } => (3.0, rate_bps),
                AdaptState::Degraded => (4.0, 0),
            };
            net.timeline_record_gauge(&format!("agent.flow{i:02}.state"), state);
            net.timeline_record_gauge(&format!("agent.flow{i:02}.rate_bps"), rate as f64);
        }
    }
}

impl Controller for AdaptDriver {
    fn on_control(&mut self, _payload: u64, net: &mut Net, stack: &mut Stack) {
        let Some(mut gara) = stack.take_service::<Gara>() else {
            return;
        };
        self.inner.borrow_mut().step(&mut gara, net);
        stack.put_service_box(gara);
    }
}

impl AdaptiveFlow {
    /// Install an adaptive premium flow: registers the driver controller,
    /// points GARA's revocation listener at it, and schedules the first
    /// reservation attempt at `start`.
    ///
    /// Note: GARA carries a single adaptation listener, so install at most
    /// one `AdaptiveFlow` per simulation (the agent's premium flow).
    pub fn install(
        sim: &mut Sim,
        req: NetworkRequest,
        start: SimTime,
        policy: AdaptPolicy,
    ) -> AdaptiveFlow {
        let inner = Rc::new(RefCell::new(Inner {
            req,
            policy,
            state: AdaptState::Idle,
            ctl: None,
            host_down: false,
        }));
        let id = sim.stack.add_controller(Box::new(AdaptDriver {
            inner: inner.clone(),
        }));
        inner.borrow_mut().ctl = Some(id);
        if let Some(mut gara) = sim.stack.take_service::<Gara>() {
            gara.set_adaptation_listener(id);
            sim.stack.put_service_box(gara);
        }
        match sim.stack.service_mut::<AdaptProbe>() {
            Some(p) => p.flows.push(inner.clone()),
            None => sim.stack.insert_sampled_service(AdaptProbe {
                flows: vec![inner.clone()],
            }),
        }
        let at = start.max(sim.net.now());
        sim.net.schedule_control(at, control_token(id, 0));
        AdaptiveFlow { inner }
    }

    /// Tie the flow's lifetime to its endpoint host. A `HostCrash` of
    /// `host` releases any live reservation back to GARA (the agent
    /// process died with its host; its bandwidth must not stay booked)
    /// and freezes the loop; a `HostRestart` re-reserves at the full
    /// requested rate immediately — the restarted agent's first act —
    /// falling into the usual backoff/renegotiate ladder if admission
    /// refuses.
    pub fn bind_host(&self, sim: &mut Sim, host: NodeId) {
        let inner = self.inner.clone();
        sim.stack.on_host_crash(Box::new(move |net, stack, h| {
            if h != host {
                return;
            }
            let Some(mut gara) = stack.take_service::<Gara>() else {
                return;
            };
            inner.borrow_mut().on_host_crashed(&mut gara, net);
            stack.put_service_box(gara);
        }));
        let inner = self.inner.clone();
        sim.stack.on_host_restart(Box::new(move |net, _stack, h| {
            if h == host {
                inner.borrow_mut().on_host_restarted(net);
            }
        }));
    }

    /// Current position of the state machine.
    pub fn state(&self) -> AdaptState {
        self.inner.borrow().state
    }

    /// The live reservation, if the flow holds one.
    pub fn current_resv(&self) -> Option<ResvId> {
        match self.inner.borrow().state {
            AdaptState::Granted { id, .. } | AdaptState::Renegotiated { id, .. } => Some(id),
            _ => None,
        }
    }

    /// The premium rate currently installed (0 while degraded or between
    /// attempts).
    pub fn installed_rate_bps(&self) -> u64 {
        match self.inner.borrow().state {
            AdaptState::Granted { rate_bps, .. } | AdaptState::Renegotiated { rate_bps, .. } => {
                rate_bps
            }
            _ => 0,
        }
    }

    /// The state expressed as the agent's status-attribute outcome.
    pub fn outcome(&self) -> QosOutcome {
        match self.inner.borrow().state {
            AdaptState::Granted { rate_bps, .. } => QosOutcome::Granted {
                network_rate_bps: rate_bps,
            },
            AdaptState::Renegotiated { rate_bps, .. } => QosOutcome::Degraded {
                network_rate_bps: rate_bps,
            },
            AdaptState::Degraded => QosOutcome::Denied {
                reason: "degraded to best-effort (no premium capacity)".into(),
            },
            AdaptState::Idle | AdaptState::BackingOff { .. } => QosOutcome::None,
        }
    }
}

impl Inner {
    /// Handle one tick. Ticks are idempotent with respect to spurious
    /// delivery: a stale probe or revocation ping against a healthy
    /// granted flow is a no-op.
    fn step(&mut self, gara: &mut Gara, net: &mut Net) {
        if self.host_down {
            // Stale ticks (a probe scheduled before the crash) are inert:
            // there is no agent process to act for until restart.
            return;
        }
        match self.state {
            AdaptState::Idle => self.attempt_full(gara, net, 0),
            AdaptState::BackingOff { attempt } => self.attempt_full(gara, net, attempt),
            AdaptState::Granted { id, .. } => {
                if gara.status(id) == Some(Status::Revoked) {
                    self.on_revoked(gara, net, id);
                }
            }
            AdaptState::Renegotiated { id, .. } => {
                if gara.status(id) == Some(Status::Revoked) {
                    self.on_revoked(gara, net, id);
                } else {
                    self.probe(gara, net);
                }
            }
            AdaptState::Degraded => self.probe(gara, net),
        }
    }

    /// The bound endpoint host crashed: hand any live reservation back to
    /// the broker and freeze until restart.
    fn on_host_crashed(&mut self, gara: &mut Gara, net: &mut Net) {
        let now = net.now();
        self.host_down = true;
        if let AdaptState::Granted { id, .. } | AdaptState::Renegotiated { id, .. } = self.state {
            gara.cancel(net, id);
            net.obs.metrics.add("agent.crash_releases", 1);
            net.obs.trace.record(now, "agent.crash_release", id.0, 0);
        }
        self.state = AdaptState::Idle;
        self.publish_gauges(net, 0);
    }

    /// The host came back: re-reserve at full rate right away (unless a
    /// grant somehow survived), via a distinctly-tagged control ping.
    fn on_host_restarted(&mut self, net: &mut Net) {
        let now = net.now();
        self.host_down = false;
        if matches!(self.state, AdaptState::Granted { .. }) {
            return;
        }
        self.state = AdaptState::Idle;
        net.obs.metrics.add("agent.restart_rereserves", 1);
        net.obs.trace.record(now, "agent.restart_rereserve", 0, 0);
        if let Some(ctl) = self.ctl {
            net.schedule_control(now, control_token(ctl, RESTART_PING));
        }
    }

    fn on_revoked(&mut self, gara: &mut Gara, net: &mut Net, id: ResvId) {
        let now = net.now();
        net.obs.metrics.add("agent.revocations_seen", 1);
        net.obs.trace.record(now, "agent.revoked", id.0, 0);
        self.renegotiate(gara, net);
    }

    /// Try the full requested rate; on rejection, back off exponentially
    /// until the retry budget runs out, then degrade.
    fn attempt_full(&mut self, gara: &mut Gara, net: &mut Net, attempt: u32) {
        let now = net.now();
        net.obs.metrics.add("agent.requests", 1);
        if attempt > 0 {
            net.obs.metrics.add("agent.retries", 1);
            net.obs.trace.record(now, "agent.retry", attempt as u64, 0);
        }
        match gara.reserve(net, Request::Network(self.req), StartSpec::Now, None) {
            Ok(id) => self.enter_granted(net, id, self.req.rate_bps, false),
            Err(_) => {
                net.obs.metrics.add("agent.rejects", 1);
                net.obs.trace.record(now, "agent.reject", attempt as u64, 0);
                if attempt >= self.policy.max_retries {
                    self.degrade(net);
                } else {
                    let delay = self.backoff_delay(attempt);
                    self.state = AdaptState::BackingOff {
                        attempt: attempt + 1,
                    };
                    net.obs.trace.record(
                        now,
                        "agent.backoff",
                        (attempt + 1) as u64,
                        delay.as_nanos() as i64,
                    );
                    self.schedule(net, now + delay);
                }
            }
        }
    }

    fn backoff_delay(&self, attempt: u32) -> SimDelta {
        let ns = self.policy.initial_backoff.as_nanos() as f64
            * self.policy.backoff_factor.powi(attempt as i32);
        SimDelta::from_nanos(ns as u64)
    }

    fn enter_granted(&mut self, net: &mut Net, id: ResvId, rate_bps: u64, recovered: bool) {
        let now = net.now();
        self.state = AdaptState::Granted { id, rate_bps };
        net.obs.metrics.add("agent.grants", 1);
        net.obs
            .trace
            .record(now, "agent.grant", id.0, rate_bps as i64);
        if recovered {
            net.obs.metrics.add("agent.recoveries", 1);
            net.obs
                .trace
                .record(now, "agent.recover", id.0, rate_bps as i64);
        }
        self.publish_gauges(net, rate_bps);
    }

    /// Walk the geometric rate ladder below the full rate; hold the first
    /// admitted rung, or degrade if none clears the floor.
    fn renegotiate(&mut self, gara: &mut Gara, net: &mut Net) {
        let full = self.req.rate_bps;
        let mut rate = (full as f64 * self.policy.renegotiate_factor) as u64;
        while rate >= self.policy.min_rate_bps {
            let mut req = self.req;
            req.rate_bps = rate;
            match gara.reserve(net, Request::Network(req), StartSpec::Now, None) {
                Ok(id) => {
                    let now = net.now();
                    self.state = AdaptState::Renegotiated { id, rate_bps: rate };
                    net.obs.metrics.add("agent.renegotiations", 1);
                    net.obs
                        .trace
                        .record(now, "agent.renegotiate", id.0, rate as i64);
                    self.publish_gauges(net, rate);
                    self.schedule(net, now + self.policy.probe_interval);
                    return;
                }
                Err(_) => {
                    net.obs.metrics.add("agent.rejects", 1);
                    rate = (rate as f64 * self.policy.renegotiate_factor) as u64;
                }
            }
        }
        self.degrade(net);
    }

    /// Fall back to best-effort: no reservation, DSCP 0, periodic probes.
    fn degrade(&mut self, net: &mut Net) {
        let now = net.now();
        self.state = AdaptState::Degraded;
        net.obs.metrics.add("agent.degrades", 1);
        net.obs.trace.record(now, "agent.degrade", 0, 0);
        self.publish_gauges(net, 0);
        self.schedule(net, now + self.policy.probe_interval);
    }

    /// Periodic recovery attempt: a degraded flow tries a fresh full-rate
    /// reservation; a renegotiated one upgrades in place (no
    /// double-booking while the probe is evaluated).
    fn probe(&mut self, gara: &mut Gara, net: &mut Net) {
        let now = net.now();
        net.obs.metrics.add("agent.probes", 1);
        match self.state {
            AdaptState::Degraded => {
                match gara.reserve(net, Request::Network(self.req), StartSpec::Now, None) {
                    Ok(id) => self.enter_granted(net, id, self.req.rate_bps, true),
                    Err(_) => {
                        net.obs.metrics.add("agent.rejects", 1);
                        self.schedule(net, now + self.policy.probe_interval);
                    }
                }
            }
            AdaptState::Renegotiated { id, .. } => {
                match gara.modify_network_rate(net, id, self.req.rate_bps) {
                    Ok(()) => self.enter_granted(net, id, self.req.rate_bps, true),
                    Err(_) => {
                        net.obs.metrics.add("agent.rejects", 1);
                        self.schedule(net, now + self.policy.probe_interval);
                    }
                }
            }
            _ => {}
        }
    }

    fn publish_gauges(&self, net: &mut Net, rate_bps: u64) {
        net.obs
            .metrics
            .set_gauge("agent.granted_rate_bps", rate_bps as f64);
        // EF (46) while any premium reservation holds; best-effort (0)
        // otherwise — the externally visible DSCP remark.
        let dscp = if rate_bps > 0 { 46.0 } else { 0.0 };
        net.obs.metrics.set_gauge("agent.dscp", dscp);
    }

    fn schedule(&self, net: &mut Net, at: SimTime) {
        if let Some(ctl) = self.ctl {
            net.schedule_control(at, control_token(ctl, 0));
        }
    }
}
