//! Protocol-overhead translation from application rates to network rates.
//!
//! "We also see that we require a reservation value of around 1.06 of the
//! sending rate, because of TCP packet overheads." (§5.3)
//!
//! Given the maximum message size from the QoS attribute, the agent can
//! compute exactly how many TCP segments a message becomes, and how many
//! bytes those segments occupy at the IP layer (where the edge policer
//! counts) and on the wire. The reservation is the application rate
//! multiplied by this factor.

use mpichgq_mpi::HEADER_BYTES;
use mpichgq_netsim::{Framing, Net, NodeId};

pub const DEFAULT_MSS: u32 = 1460;
pub const TCP_IP_HEADERS: u32 = 40;

/// Bytes at the IP layer for an `msg`-byte MPI message (MPI framing header
/// included) sent as MSS-sized TCP segments.
pub fn ip_bytes_for_message(msg: u32, mss: u32) -> u64 {
    let total = msg as u64 + HEADER_BYTES; // MPI record framing
    let segments = total.div_ceil(mss as u64).max(1);
    total + segments * TCP_IP_HEADERS as u64
}

/// Overhead factor at the IP layer: what the policer sees per application
/// byte.
pub fn ip_overhead_factor(msg: u32, mss: u32) -> f64 {
    if msg == 0 {
        return 1.0;
    }
    ip_bytes_for_message(msg, mss) as f64 / msg as f64
}

/// Overhead factor including layer-2 framing on a specific link type
/// (ATM cell padding is what pushed the paper's factor past 1.06).
pub fn wire_overhead_factor(msg: u32, mss: u32, framing: Framing) -> f64 {
    if msg == 0 {
        return 1.0;
    }
    let total = msg as u64 + HEADER_BYTES;
    let full_segs = total / mss as u64;
    let tail = (total % mss as u64) as u32;
    let mut wire = full_segs * framing.wire_bytes(mss + TCP_IP_HEADERS) as u64;
    if tail > 0 {
        wire += framing.wire_bytes(tail + TCP_IP_HEADERS) as u64;
    }
    wire as f64 / msg as f64
}

/// The worst (largest) per-byte overhead along the path from `src` to
/// `dst`, so the reservation is sufficient at every policed hop.
pub fn path_overhead_factor(net: &Net, src: NodeId, dst: NodeId, msg: u32, mss: u32) -> f64 {
    let Some(path) = net.path_chans(src, dst) else {
        return ip_overhead_factor(msg, mss);
    };
    // The edge policer counts IP bytes; links carry framed bytes. Use the
    // larger of the IP factor and the worst wire factor on the path.
    let mut factor = ip_overhead_factor(msg, mss);
    for chan in path {
        let f = wire_overhead_factor(msg, mss, net.chan(chan).cfg.framing);
        factor = factor.max(f);
    }
    factor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_is_one_segment() {
        // 1000-byte message + 32-byte MPI header + 40 TCP/IP = 1072.
        assert_eq!(ip_bytes_for_message(1000, DEFAULT_MSS), 1072);
        let f = ip_overhead_factor(1000, DEFAULT_MSS);
        assert!((f - 1.072).abs() < 1e-9);
    }

    #[test]
    fn bulk_ip_overhead_near_paper_range() {
        // Large messages: per-1460-byte segment, 40 header bytes -> ~1.027
        // at the IP layer.
        let f = ip_overhead_factor(100 * 1024, DEFAULT_MSS);
        assert!(f > 1.02 && f < 1.04, "{f}");
    }

    #[test]
    fn atm_framing_pushes_factor_past_1_06() {
        // "a reservation value of around 1.06 of the sending rate" — with
        // AAL5 cell padding the wire factor exceeds 1.06 for bulk traffic.
        let f = wire_overhead_factor(100 * 1024, DEFAULT_MSS, Framing::AtmAal5);
        assert!(f > 1.06 && f < 1.2, "{f}");
        // Ethernet is lighter but still above the pure IP factor.
        let fe = wire_overhead_factor(100 * 1024, DEFAULT_MSS, Framing::Ethernet);
        let fip = ip_overhead_factor(100 * 1024, DEFAULT_MSS);
        assert!(fe > fip && fe < f, "fe={fe} fip={fip} f={f}");
    }

    #[test]
    fn tiny_messages_pay_huge_relative_overhead() {
        // A 100-byte message costs 132 + 40 = 172 IP bytes: factor 1.72.
        let f = ip_overhead_factor(100, DEFAULT_MSS);
        assert!((f - 1.72).abs() < 1e-9);
    }

    #[test]
    fn zero_message_guard() {
        assert_eq!(ip_overhead_factor(0, DEFAULT_MSS), 1.0);
        assert_eq!(wire_overhead_factor(0, DEFAULT_MSS, Framing::AtmAal5), 1.0);
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use mpichgq_netsim::{Garnet, GarnetCfg};

    #[test]
    fn garnet_path_factor_dominated_by_atm() {
        let g = Garnet::build(GarnetCfg::default());
        let f = path_overhead_factor(
            &g.net,
            g.premium_src,
            g.premium_dst,
            100 * 1024,
            DEFAULT_MSS,
        );
        // The path is ATM end to end: the wire factor applies.
        let atm = wire_overhead_factor(100 * 1024, DEFAULT_MSS, Framing::AtmAal5);
        assert!((f - atm).abs() < 1e-9, "path factor {f} vs atm {atm}");
    }

    #[test]
    fn unreachable_path_falls_back_to_ip_factor() {
        let g = Garnet::build(GarnetCfg::default());
        // Same endpoint twice: the zero-hop path has no framing; factor is
        // the IP factor.
        let f = path_overhead_factor(&g.net, g.premium_src, g.premium_src, 10_000, DEFAULT_MSS);
        assert!((f - ip_overhead_factor(10_000, DEFAULT_MSS)).abs() < 1e-9);
    }
}
