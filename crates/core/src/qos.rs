//! Application-level QoS specification (paper Figure 3).
//!
//! ```c
//! struct qos_attribute {
//!     u_int32_t qosclass;
//!     double bandwidth;        /* Peak bandwidth in kbps */
//!     int max_message_size;    /* Max size used in MPI_Send */
//! } QoS, *Qos_p;
//! ...
//! MPI_Attr_put( comm, MPICH_ATM_QOS, &QoS);
//! MPI_Attr_get( comm, MPICH_ATM_QOS, &Qos_p, &flag );
//! ```

/// "The QoS class may be 'best-effort' (i.e., no QoS), 'low-latency'
/// (suitable for small message traffic: e.g., certain collective
/// operations), or 'premium'." (§4.1)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosClass {
    #[default]
    BestEffort,
    LowLatency,
    Premium,
}

/// The attribute value an application stores on a communicator with
/// `attr_put(comm, MPICH_QOS, ...)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosAttribute {
    pub class: QosClass,
    /// Peak application bandwidth in kb/s.
    pub bandwidth_kbps: f64,
    /// Maximum size used in `MPI_Send`, in bytes — "allows us to translate
    /// application reservation sizes to network reservation sizes, because
    /// it is possible to calculate the amount of protocol overhead" (§4.1).
    pub max_message_size: u32,
}

impl QosAttribute {
    pub fn best_effort() -> QosAttribute {
        QosAttribute {
            class: QosClass::BestEffort,
            bandwidth_kbps: 0.0,
            max_message_size: 0,
        }
    }

    pub fn premium(bandwidth_kbps: f64, max_message_size: u32) -> QosAttribute {
        QosAttribute {
            class: QosClass::Premium,
            bandwidth_kbps,
            max_message_size,
        }
    }

    pub fn low_latency(bandwidth_kbps: f64, max_message_size: u32) -> QosAttribute {
        QosAttribute {
            class: QosClass::LowLatency,
            bandwidth_kbps,
            max_message_size,
        }
    }

    /// Application bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> u64 {
        (self.bandwidth_kbps * 1000.0).round() as u64
    }
}

/// Outcome of a QoS request, readable back through `attr_get` on the
/// status keyval ("MPI_Attr_get to see whether the requested QoS is
/// available", §4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QosOutcome {
    /// No QoS requested (best-effort class).
    None,
    /// Reservations granted; the network reservation rate actually
    /// installed (bits/s, after protocol-overhead translation).
    Granted { network_rate_bps: u64 },
    /// A reservation holds, but at less than the requested rate — the
    /// adaptation loop renegotiated downward after a revocation.
    Degraded { network_rate_bps: u64 },
    /// The request was denied (admission control or no route).
    Denied { reason: String },
}

impl QosOutcome {
    /// Whether the *full requested* rate is installed.
    pub fn is_granted(&self) -> bool {
        matches!(self, QosOutcome::Granted { .. })
    }

    /// The premium rate currently installed, if any (full or degraded).
    pub fn installed_rate_bps(&self) -> Option<u64> {
        match self {
            QosOutcome::Granted { network_rate_bps }
            | QosOutcome::Degraded { network_rate_bps } => Some(*network_rate_bps),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_units() {
        let q = QosAttribute::premium(40_000.0, 100 * 1024);
        assert_eq!(q.class, QosClass::Premium);
        assert_eq!(q.bandwidth_bps(), 40_000_000);
        assert_eq!(QosAttribute::best_effort().class, QosClass::BestEffort);
        let l = QosAttribute::low_latency(64.0, 1000);
        assert_eq!(l.bandwidth_bps(), 64_000);
    }

    #[test]
    fn outcome_predicates() {
        assert!(QosOutcome::Granted {
            network_rate_bps: 1
        }
        .is_granted());
        assert!(!QosOutcome::None.is_granted());
        assert!(!QosOutcome::Denied { reason: "x".into() }.is_granted());
        let d = QosOutcome::Degraded {
            network_rate_bps: 5,
        };
        assert!(!d.is_granted());
        assert_eq!(d.installed_rate_bps(), Some(5));
        assert_eq!(QosOutcome::None.installed_rate_bps(), None);
    }
}
