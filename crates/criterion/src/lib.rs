//! A minimal, fully offline stand-in for the `criterion` crate.
//!
//! The bench sources under `crates/bench/benches/` were written against the
//! real criterion API. The build environment has no registry access, so this
//! crate reimplements the subset they use — `Criterion::default()`,
//! `sample_size`, `bench_function`, `Bencher::iter` / `iter_batched`,
//! `criterion_group!`, `criterion_main!` — and the workspace renames it to
//! `criterion` so bench sources stay untouched.
//!
//! Reporting is deliberately simple: each benchmark runs `sample_size`
//! timed samples after a short warm-up and prints min/median/mean time per
//! iteration. There is no statistical regression machinery.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// here: setup runs outside the timed region, once per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly; one sample = one call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<40} min {:>12} | median {:>12} | mean {:>12} ({} samples)",
        fmt(min),
        fmt(median),
        fmt(mean),
        sorted.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// `criterion_group!` — both the plain and `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!` — runs each group from `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::ZERO);
        let mut calls = 0u32;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::ZERO);
        let mut setups = 0u32;
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
