//! Communicators and the attribute mechanism.
//!
//! Attributes are the paper's key extension point: "MPICH-GQ exploits this
//! attribute mechanism to exchange information between the user's
//! application and the MPI implementation, using MPI_Attr_put to specify
//! required QoS and MPI_Attr_get to see whether the requested QoS is
//! available. ... the action of putting the attribute actually triggers the
//! request, which is slightly different than the normal usage of
//! attributes." (§4.1)
//!
//! A [`Keyval`] may therefore carry a *put hook* that the engine invokes
//! when `attr_put` stores a value — this is how the MPI QoS Agent in
//! `mpichgq-core` gets control without any nonstandard `MPI_Set_qos` call.

use crate::group::Group;
use std::any::Any;
use std::collections::HashMap;
use std::rc::Rc;

/// Identifies a communicator within one rank's engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommId(pub u32);

/// `MPI_COMM_WORLD`.
pub const COMM_WORLD: CommId = CommId(0);

/// Attribute key, as from `MPI_Keyval_create`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Keyval(pub u32);

/// Attribute values are shared opaque objects (the C API stores `void*`).
pub type AttrValue = Rc<dyn Any>;

/// Communicator flavor.
#[derive(Debug, Clone)]
pub enum CommKind {
    /// An ordinary intracommunicator.
    Intra,
    /// A two-group intercommunicator; sends address the remote group.
    /// (MPICH-GQ "focuses initially on QoS attributes that are applied to
    /// two-party intercommunicators", §4.1.)
    Inter { remote: Group },
}

/// One communicator as seen by one rank.
pub struct Comm {
    /// Context id for point-to-point traffic.
    pub ctx_pt2pt: u32,
    /// Separate context for collective traffic (so collectives never match
    /// user receives).
    pub ctx_coll: u32,
    /// The (local) group.
    pub group: Group,
    /// This process's rank within `group`.
    pub my_rank: usize,
    pub kind: CommKind,
    pub attrs: HashMap<Keyval, AttrValue>,
    /// What a peer-failure error does when observed on this communicator
    /// (`MPI_Errhandler_set`). Defaults to
    /// [`ErrorHandler::Abort`](crate::engine::ErrorHandler::Abort)
    /// (`MPI_ERRORS_ARE_FATAL`), as MPI does.
    pub errhandler: crate::engine::ErrorHandler,
}

impl Comm {
    pub fn size(&self) -> usize {
        self.group.size()
    }

    /// Size of the group that `send(dest)` addresses.
    pub fn remote_size(&self) -> usize {
        match &self.kind {
            CommKind::Intra => self.group.size(),
            CommKind::Inter { remote } => remote.size(),
        }
    }

    /// World rank that peer-rank `r` of this communicator denotes.
    pub fn peer_world_rank(&self, r: usize) -> usize {
        match &self.kind {
            CommKind::Intra => self.group.world_rank(r),
            CommKind::Inter { remote } => remote.world_rank(r),
        }
    }

    /// Communicator rank a world-rank peer appears as (for incoming
    /// envelope translation).
    pub fn rank_of_world(&self, world: usize) -> Option<usize> {
        match &self.kind {
            CommKind::Intra => self.group.rank_of(world),
            CommKind::Inter { remote } => remote.rank_of(world),
        }
    }

    /// World ranks of members (local and, for intercommunicators, remote)
    /// that are currently failed, ascending. `failed[world_rank]` is the
    /// job's failure vector.
    pub fn failed_members(&self, failed: &[bool]) -> Vec<usize> {
        let remote: &[usize] = match &self.kind {
            CommKind::Intra => &[],
            CommKind::Inter { remote } => remote.members(),
        };
        let mut out: Vec<usize> = self
            .group
            .members()
            .iter()
            .chain(remote.iter())
            .copied()
            .filter(|&w| failed.get(w).copied().unwrap_or(false))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The information MPICH-GQ's external-management hook extracts from a
/// communicator: "a function that can extract the necessary information
/// (basically port and machine names) from a communicator" (§4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommEndpoints {
    /// (world_rank, host, port) of each member of the communicator's group.
    pub local: Vec<(usize, mpichgq_netsim::NodeId, u16)>,
    /// Members of the remote group for an intercommunicator.
    pub remote: Vec<(usize, mpichgq_netsim::NodeId, u16)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(kind: CommKind) -> Comm {
        Comm {
            ctx_pt2pt: 2,
            ctx_coll: 3,
            group: Group::from_members(vec![4, 7]),
            my_rank: 0,
            kind,
            attrs: HashMap::new(),
            errhandler: Default::default(),
        }
    }

    #[test]
    fn intra_addressing() {
        let c = comm(CommKind::Intra);
        assert_eq!(c.size(), 2);
        assert_eq!(c.remote_size(), 2);
        assert_eq!(c.peer_world_rank(1), 7);
        assert_eq!(c.rank_of_world(4), Some(0));
        assert_eq!(c.rank_of_world(5), None);
    }

    #[test]
    fn inter_addressing_uses_remote_group() {
        let c = comm(CommKind::Inter {
            remote: Group::from_members(vec![9]),
        });
        assert_eq!(c.remote_size(), 1);
        assert_eq!(c.peer_world_rank(0), 9);
        assert_eq!(c.rank_of_world(9), Some(0));
        assert_eq!(c.rank_of_world(4), None);
    }

    #[test]
    fn failed_members_cover_both_groups() {
        let c = comm(CommKind::Inter {
            remote: Group::from_members(vec![9]),
        });
        let mut failed = vec![false; 10];
        assert!(c.failed_members(&failed).is_empty());
        failed[7] = true;
        failed[9] = true;
        failed[5] = true; // not a member
        assert_eq!(c.failed_members(&failed), vec![7, 9]);
    }

    #[test]
    fn attributes_store_and_overwrite() {
        let mut c = comm(CommKind::Intra);
        let k = Keyval(1);
        c.attrs.insert(k, Rc::new(42u32));
        let v = c.attrs.get(&k).unwrap().downcast_ref::<u32>().unwrap();
        assert_eq!(*v, 42);
        c.attrs.insert(k, Rc::new(43u32));
        let v = c.attrs.get(&k).unwrap().downcast_ref::<u32>().unwrap();
        assert_eq!(*v, 43);
    }
}
