//! Collective operations, built on the nonblocking point-to-point layer.
//!
//! Each collective is a poll-able state machine owned by the user program
//! (the nonblocking-collectives style). They communicate on the
//! communicator's *collective context*, so they can never match user
//! receives. Algorithms are the classic ones from the MPICH lineage the
//! paper's collective work builds on ("constructing topology-aware
//! collective operations", §1): dissemination barrier, binomial-tree
//! broadcast and reduce, linear gather.
//!
//! Only one collective may be outstanding per communicator at a time, in
//! the same call order on every member — the MPI standard's own rule.

use crate::comm::CommId;
use crate::engine::{Mpi, ReqId};

const TAG_BARRIER: u32 = 0x4000_0000;
const TAG_BCAST: u32 = 0x4100_0000;
const TAG_GATHER: u32 = 0x4200_0000;
const TAG_REDUCE: u32 = 0x4300_0000;

/// Completion state of a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollState {
    Pending,
    Ready,
    /// Terminal: the given world rank failed while the collective was
    /// outstanding. The operation can never complete (MPI_ERR_PROC_FAILED
    /// on a collective); polling again keeps returning this.
    Failed(usize),
}

/// Sticky failure check shared by every collective: once any member of the
/// communicator has failed, the collective is dead — even if the rank later
/// restarts (its new incarnation never joins an in-flight operation).
fn check_failed(mpi: &Mpi, comm: CommId, sticky: &mut Option<usize>) -> Option<usize> {
    if sticky.is_none() {
        *sticky = mpi.comm_failed(comm);
    }
    *sticky
}

/// Dissemination barrier.
pub struct Barrier {
    comm: CommId,
    round: u32,
    rounds: u32,
    send: Option<ReqId>,
    recv: Option<ReqId>,
    send_done: bool,
    recv_done: bool,
    posted: bool,
    done: bool,
    failed: Option<usize>,
}

impl Barrier {
    pub fn new(mpi: &Mpi, comm: CommId) -> Barrier {
        let n = mpi.comm(comm).size();
        let rounds = usize::BITS - (n - 1).max(1).leading_zeros();
        Barrier {
            comm,
            round: 0,
            rounds,
            send: None,
            recv: None,
            send_done: false,
            recv_done: false,
            posted: false,
            done: n <= 1,
            failed: None,
        }
    }

    pub fn poll(&mut self, mpi: &mut Mpi) -> CollState {
        if let Some(r) = check_failed(mpi, self.comm, &mut self.failed) {
            return CollState::Failed(r);
        }
        if self.done {
            return CollState::Ready;
        }
        loop {
            if self.round == self.rounds {
                self.done = true;
                return CollState::Ready;
            }
            if !self.posted {
                let n = mpi.comm(self.comm).size();
                let me = mpi.comm(self.comm).my_rank;
                let dist = 1usize << self.round;
                let to = (me + dist) % n;
                let from = (me + n - dist % n) % n;
                let tag = TAG_BARRIER + self.round;
                self.send = Some(mpi.isend_coll(self.comm, to, tag, 1, None));
                self.recv = Some(mpi.irecv_coll(self.comm, Some(from), Some(tag)));
                self.posted = true;
                self.send_done = false;
                self.recv_done = false;
            }
            if let Some(r) = self.send {
                if mpi.test(r).is_some() {
                    self.send_done = true;
                    self.send = None;
                }
            }
            if let Some(r) = self.recv {
                if mpi.test(r).is_some() {
                    self.recv_done = true;
                    self.recv = None;
                }
            }
            if self.send_done && self.recv_done {
                self.round += 1;
                self.posted = false;
            } else {
                return CollState::Pending;
            }
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }
}

/// Binomial-tree broadcast from `root`. The payload ends up in
/// [`Bcast::take_data`] on every rank (counted messages carry `None`).
pub struct Bcast {
    comm: CommId,
    root: usize,
    len: u32,
    data: Option<Option<Vec<u8>>>,
    recv: Option<ReqId>,
    sends: Vec<ReqId>,
    phase: BcastPhase,
    failed: Option<usize>,
}

#[derive(PartialEq)]
enum BcastPhase {
    WaitData,
    Sending,
    Done,
}

impl Bcast {
    /// On the root, `data` is `Some(payload)` (use `Some(None)` for counted
    /// messages of length `len`); on other ranks pass `None`.
    pub fn new(
        mpi: &Mpi,
        comm: CommId,
        root: usize,
        len: u32,
        data: Option<Option<Vec<u8>>>,
    ) -> Bcast {
        let me = mpi.comm(comm).my_rank;
        let phase = if me == root {
            BcastPhase::Sending
        } else {
            BcastPhase::WaitData
        };
        Bcast {
            comm,
            root,
            len,
            data,
            recv: None,
            sends: Vec::new(),
            phase,
            failed: None,
        }
    }

    /// Virtual rank: rotate so the root is 0.
    fn vrank(&self, mpi: &Mpi, r: usize) -> usize {
        let n = mpi.comm(self.comm).size();
        (r + n - self.root) % n
    }

    fn real_rank(&self, mpi: &Mpi, v: usize) -> usize {
        let n = mpi.comm(self.comm).size();
        (v + self.root) % n
    }

    pub fn poll(&mut self, mpi: &mut Mpi) -> CollState {
        if let Some(r) = check_failed(mpi, self.comm, &mut self.failed) {
            return CollState::Failed(r);
        }
        let n = mpi.comm(self.comm).size();
        let me = mpi.comm(self.comm).my_rank;
        let vme = self.vrank(mpi, me);
        if self.phase == BcastPhase::WaitData {
            if self.recv.is_none() {
                self.recv = Some(mpi.irecv_coll(self.comm, None, Some(TAG_BCAST)));
            }
            match mpi.test(self.recv.unwrap()) {
                Some(info) => {
                    self.len = info.len;
                    self.data = Some(info.payload);
                    self.phase = BcastPhase::Sending;
                }
                None => return CollState::Pending,
            }
        }
        if self.phase == BcastPhase::Sending {
            if self.sends.is_empty() {
                // Children in the binomial tree: vme + 2^k for each k with
                // 2^k > vme, while in range.
                let mut mask = 1usize;
                while mask < n {
                    if vme & mask != 0 {
                        break;
                    }
                    let child = vme | mask;
                    if child < n {
                        let dest = self.real_rank(mpi, child);
                        let payload = self.data.as_ref().and_then(|d| d.clone());
                        let req = match payload {
                            Some(bytes) => mpi.isend_coll(
                                self.comm,
                                dest,
                                TAG_BCAST,
                                bytes.len() as u32,
                                Some(bytes),
                            ),
                            None => mpi.isend_coll(self.comm, dest, TAG_BCAST, self.len, None),
                        };
                        self.sends.push(req);
                    }
                    mask <<= 1;
                }
            }
            self.sends.retain(|&r| {
                // test() consumes on completion
                false_on_done(mpi, r)
            });
            if self.sends.is_empty() {
                self.phase = BcastPhase::Done;
            } else {
                return CollState::Pending;
            }
        }
        CollState::Ready
    }

    /// The broadcast payload (valid once `poll` returned `Ready`).
    pub fn take_data(&mut self) -> Option<Vec<u8>> {
        self.data.take().flatten()
    }

    pub fn len(&self) -> u32 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

fn false_on_done(mpi: &mut Mpi, r: ReqId) -> bool {
    mpi.test(r).is_none()
}

/// Linear gather to `root`: every rank contributes a payload; the root
/// collects them in rank order.
pub struct Gather {
    comm: CommId,
    root: usize,
    my_data: Option<Vec<u8>>,
    send: Option<ReqId>,
    recvs: Vec<(usize, ReqId)>,
    collected: Vec<Option<Vec<u8>>>,
    started: bool,
    done: bool,
    failed: Option<usize>,
}

impl Gather {
    pub fn new(mpi: &Mpi, comm: CommId, root: usize, my_data: Vec<u8>) -> Gather {
        let n = mpi.comm(comm).size();
        Gather {
            comm,
            root,
            my_data: Some(my_data),
            send: None,
            recvs: Vec::new(),
            collected: (0..n).map(|_| None).collect(),
            started: false,
            done: false,
            failed: None,
        }
    }

    pub fn poll(&mut self, mpi: &mut Mpi) -> CollState {
        if let Some(r) = check_failed(mpi, self.comm, &mut self.failed) {
            return CollState::Failed(r);
        }
        if self.done {
            return CollState::Ready;
        }
        let me = mpi.comm(self.comm).my_rank;
        let n = mpi.comm(self.comm).size();
        if !self.started {
            self.started = true;
            if me == self.root {
                self.collected[me] = self.my_data.take();
                for r in 0..n {
                    if r != me {
                        let req = mpi.irecv_coll(self.comm, Some(r), Some(TAG_GATHER));
                        self.recvs.push((r, req));
                    }
                }
            } else {
                let data = self.my_data.take().unwrap();
                self.send = Some(mpi.isend_coll(
                    self.comm,
                    self.root,
                    TAG_GATHER,
                    data.len() as u32,
                    Some(data),
                ));
            }
        }
        if me == self.root {
            self.recvs.retain(|&(r, req)| match mpi.test(req) {
                Some(info) => {
                    self.collected[r] = Some(info.payload.expect("gather payload"));
                    false
                }
                None => true,
            });
            if self.recvs.is_empty() {
                self.done = true;
            }
        } else if let Some(s) = self.send {
            if mpi.test(s).is_some() {
                self.send = None;
                self.done = true;
            }
        }
        if self.done {
            CollState::Ready
        } else {
            CollState::Pending
        }
    }

    /// Rank-ordered contributions (root only; valid once `Ready`).
    pub fn take_collected(&mut self) -> Vec<Vec<u8>> {
        self.collected
            .iter_mut()
            .map(|c| c.take().unwrap_or_default())
            .collect()
    }
}

/// Binary element-wise reduction operator.
pub type ReduceOp = fn(&[u8], &[u8]) -> Vec<u8>;

/// Binomial-tree reduce to `root`.
pub struct Reduce {
    comm: CommId,
    root: usize,
    acc: Option<Vec<u8>>,
    op: ReduceOp,
    mask: usize,
    recv: Option<ReqId>,
    send: Option<ReqId>,
    done: bool,
    failed: Option<usize>,
}

impl Reduce {
    pub fn new(_mpi: &Mpi, comm: CommId, root: usize, my_data: Vec<u8>, op: ReduceOp) -> Reduce {
        Reduce {
            comm,
            root,
            acc: Some(my_data),
            op,
            mask: 1,
            recv: None,
            send: None,
            done: false,
            failed: None,
        }
    }

    fn vrank(&self, mpi: &Mpi) -> usize {
        let n = mpi.comm(self.comm).size();
        let me = mpi.comm(self.comm).my_rank;
        (me + n - self.root) % n
    }

    pub fn poll(&mut self, mpi: &mut Mpi) -> CollState {
        if let Some(r) = check_failed(mpi, self.comm, &mut self.failed) {
            return CollState::Failed(r);
        }
        if self.done {
            return CollState::Ready;
        }
        let n = mpi.comm(self.comm).size();
        let vme = self.vrank(mpi);
        loop {
            if let Some(s) = self.send {
                match mpi.test(s) {
                    Some(_) => {
                        self.send = None;
                        self.done = true;
                        return CollState::Ready;
                    }
                    None => return CollState::Pending,
                }
            }
            if self.mask >= n {
                // Root of the tree: reduction complete.
                self.done = true;
                return CollState::Ready;
            }
            if vme & self.mask == 0 {
                let vchild = vme | self.mask;
                if vchild < n {
                    // Receive and fold the child's contribution.
                    if self.recv.is_none() {
                        let child = (vchild + self.root) % n;
                        self.recv = Some(mpi.irecv_coll(
                            self.comm,
                            Some(child),
                            Some(TAG_REDUCE + self.mask as u32),
                        ));
                    }
                    match mpi.test(self.recv.unwrap()) {
                        Some(info) => {
                            self.recv = None;
                            let theirs = info.payload.expect("reduce payload");
                            let mine = self.acc.take().unwrap();
                            self.acc = Some((self.op)(&mine, &theirs));
                            self.mask <<= 1;
                        }
                        None => return CollState::Pending,
                    }
                } else {
                    self.mask <<= 1;
                }
            } else {
                // Send my accumulator to the parent and finish.
                let vparent = vme & !self.mask;
                let parent = (vparent + self.root) % n;
                let data = self.acc.clone().unwrap();
                self.send = Some(mpi.isend_coll(
                    self.comm,
                    parent,
                    TAG_REDUCE + self.mask as u32,
                    data.len() as u32,
                    Some(data),
                ));
            }
        }
    }

    /// The reduced value (meaningful on the root; valid once `Ready`).
    pub fn take_result(&mut self) -> Option<Vec<u8>> {
        self.acc.take()
    }
}

const TAG_ALLGATHER: u32 = 0x4400_0000;

/// Ring allgather: after `n-1` rounds every rank holds every rank's
/// contribution, in rank order.
pub struct Allgather {
    comm: CommId,
    slots: Vec<Option<Vec<u8>>>,
    round: usize,
    send: Option<ReqId>,
    recv: Option<ReqId>,
    posted: bool,
    done: bool,
    failed: Option<usize>,
}

impl Allgather {
    pub fn new(mpi: &Mpi, comm: CommId, my_data: Vec<u8>) -> Allgather {
        let n = mpi.comm(comm).size();
        let me = mpi.comm(comm).my_rank;
        let mut slots: Vec<Option<Vec<u8>>> = (0..n).map(|_| None).collect();
        slots[me] = Some(my_data);
        Allgather {
            comm,
            slots,
            round: 0,
            send: None,
            recv: None,
            posted: false,
            done: n <= 1,
            failed: None,
        }
    }

    pub fn poll(&mut self, mpi: &mut Mpi) -> CollState {
        if let Some(r) = check_failed(mpi, self.comm, &mut self.failed) {
            return CollState::Failed(r);
        }
        if self.done {
            return CollState::Ready;
        }
        let n = mpi.comm(self.comm).size();
        let me = mpi.comm(self.comm).my_rank;
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        loop {
            if self.round == n - 1 {
                self.done = true;
                return CollState::Ready;
            }
            if !self.posted {
                // Round k: pass along the block that originated k hops
                // upstream of us.
                let send_block = (me + n - self.round) % n;
                let data = self.slots[send_block]
                    .clone()
                    .expect("block not yet received");
                self.send = Some(mpi.isend_coll(
                    self.comm,
                    right,
                    TAG_ALLGATHER + self.round as u32,
                    data.len() as u32,
                    Some(data),
                ));
                self.recv = Some(mpi.irecv_coll(
                    self.comm,
                    Some(left),
                    Some(TAG_ALLGATHER + self.round as u32),
                ));
                self.posted = true;
            }
            if let Some(r) = self.send {
                if mpi.test(r).is_some() {
                    self.send = None;
                }
            }
            if let Some(r) = self.recv {
                if let Some(info) = mpi.test(r) {
                    let block = (left + n - self.round) % n;
                    self.slots[block] = Some(info.payload.expect("allgather payload"));
                    self.recv = None;
                }
            }
            if self.send.is_none() && self.recv.is_none() {
                self.round += 1;
                self.posted = false;
            } else {
                return CollState::Pending;
            }
        }
    }

    /// All contributions in rank order (valid once `Ready`).
    pub fn take_all(&mut self) -> Vec<Vec<u8>> {
        self.slots
            .iter_mut()
            .map(|s| s.take().expect("allgather incomplete"))
            .collect()
    }
}

/// Allreduce = binomial reduce to rank 0 + binomial broadcast.
pub struct Allreduce {
    reduce: Reduce,
    bcast: Option<Bcast>,
    result: Option<Vec<u8>>,
}

impl Allreduce {
    pub fn new(mpi: &Mpi, comm: CommId, my_data: Vec<u8>, op: ReduceOp) -> Allreduce {
        Allreduce {
            reduce: Reduce::new(mpi, comm, 0, my_data, op),
            bcast: None,
            result: None,
        }
    }

    pub fn poll(&mut self, mpi: &mut Mpi) -> CollState {
        if self.result.is_some() {
            return CollState::Ready;
        }
        if self.bcast.is_none() {
            match self.reduce.poll(mpi) {
                CollState::Pending => return CollState::Pending,
                CollState::Failed(r) => return CollState::Failed(r),
                CollState::Ready => {}
            }
            let comm = self.reduce.comm;
            let me = mpi.comm(comm).my_rank;
            let data = if me == 0 {
                Some(Some(self.reduce.take_result().expect("reduce result")))
            } else {
                None
            };
            self.bcast = Some(Bcast::new(mpi, comm, 0, 0, data));
        }
        let b = self.bcast.as_mut().unwrap();
        match b.poll(mpi) {
            CollState::Ready => {
                let me = mpi.comm(self.reduce.comm).my_rank;
                // The root's payload was moved into the bcast; it comes
                // back out of take_data on every rank including the root.
                self.result = Some(match b.take_data() {
                    Some(d) => d,
                    None if me == 0 => Vec::new(),
                    None => Vec::new(),
                });
                CollState::Ready
            }
            CollState::Pending => CollState::Pending,
            CollState::Failed(r) => CollState::Failed(r),
        }
    }

    pub fn take_result(&mut self) -> Option<Vec<u8>> {
        self.result.take()
    }
}

/// `MPI_Comm_split`: allgather every member's `(color, key)`, then build
/// the sub-communicator of ranks sharing this rank's color, ordered by
/// `(key, parent rank)`. Every member of the parent must participate with
/// the same call ordering; members with the same color must create the
/// same number of communicators beforehand (MPI's usual requirement for
/// our deterministic context allocation).
pub struct CommSplit {
    parent: CommId,
    color: i32,
    key: i32,
    gather: Allgather,
    result: Option<CommId>,
}

impl CommSplit {
    pub fn new(mpi: &Mpi, parent: CommId, color: i32, key: i32) -> CommSplit {
        let mut payload = Vec::with_capacity(8);
        payload.extend_from_slice(&color.to_le_bytes());
        payload.extend_from_slice(&key.to_le_bytes());
        CommSplit {
            parent,
            color,
            key,
            gather: Allgather::new(mpi, parent, payload),
            result: None,
        }
    }

    pub fn poll(&mut self, mpi: &mut Mpi) -> CollState {
        if self.result.is_some() {
            return CollState::Ready;
        }
        match self.gather.poll(mpi) {
            CollState::Pending => return CollState::Pending,
            CollState::Failed(r) => return CollState::Failed(r),
            CollState::Ready => {}
        }
        let all = self.gather.take_all();
        let parent_group = mpi.comm(self.parent).group.clone();
        // Members of my color, sorted by (key, parent rank).
        let mut members: Vec<(i32, usize)> = all
            .iter()
            .enumerate()
            .filter_map(|(r, bytes)| {
                let color = i32::from_le_bytes(bytes[0..4].try_into().unwrap());
                let key = i32::from_le_bytes(bytes[4..8].try_into().unwrap());
                (color == self.color).then_some((key, r))
            })
            .collect();
        members.sort();
        let world_members: Vec<usize> = members
            .iter()
            .map(|&(_, r)| parent_group.world_rank(r))
            .collect();
        let _ = self.key;
        self.result = Some(mpi.comm_create(world_members));
        CollState::Ready
    }

    /// The new communicator (valid once `Ready`).
    pub fn take_comm(&mut self) -> CommId {
        self.result.expect("split not complete")
    }
}
