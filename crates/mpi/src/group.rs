//! Process groups.
//!
//! "In the MPI programming model, all communication takes place within a
//! communicator. A communicator is simply a group of processes, with an
//! additional, unique communication context..." (§4.1)
//!
//! A [`Group`] is an ordered set of world ranks; communicators pair a group
//! with a context id. Group operations mirror the MPI standard's
//! `MPI_Group_*` calls.

/// An ordered set of world ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// `members[group_rank] = world_rank`.
    members: Vec<usize>,
}

impl Group {
    /// The group of all `n` world ranks, in rank order.
    pub fn world(n: usize) -> Group {
        Group {
            members: (0..n).collect(),
        }
    }

    /// Build from an explicit member list. Panics on duplicates.
    pub fn from_members(members: Vec<usize>) -> Group {
        let mut seen = std::collections::HashSet::new();
        for &m in &members {
            assert!(seen.insert(m), "duplicate world rank {m} in group");
        }
        Group { members }
    }

    pub fn size(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// World rank of group member `i` (MPI_Group_translate_ranks, outward).
    pub fn world_rank(&self, group_rank: usize) -> usize {
        self.members[group_rank]
    }

    /// Group rank of a world rank, if a member (inward translation).
    pub fn rank_of(&self, world_rank: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == world_rank)
    }

    pub fn contains(&self, world_rank: usize) -> bool {
        self.rank_of(world_rank).is_some()
    }

    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Subgroup of the listed group ranks, in the given order (MPI_Group_incl).
    pub fn incl(&self, ranks: &[usize]) -> Group {
        Group::from_members(ranks.iter().map(|&r| self.members[r]).collect())
    }

    /// Subgroup excluding the listed group ranks (MPI_Group_excl).
    pub fn excl(&self, ranks: &[usize]) -> Group {
        let out: Vec<usize> = self
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| !ranks.contains(i))
            .map(|(_, &m)| m)
            .collect();
        Group { members: out }
    }

    /// Members of `self` followed by members of `other` not in `self`
    /// (MPI_Group_union).
    pub fn union(&self, other: &Group) -> Group {
        let mut out = self.members.clone();
        for &m in &other.members {
            if !out.contains(&m) {
                out.push(m);
            }
        }
        Group { members: out }
    }

    /// Members of `self` that are also in `other`, in `self`'s order
    /// (MPI_Group_intersection).
    pub fn intersection(&self, other: &Group) -> Group {
        Group {
            members: self
                .members
                .iter()
                .copied()
                .filter(|m| other.contains(*m))
                .collect(),
        }
    }

    /// Members of `self` not in `other` (MPI_Group_difference).
    pub fn difference(&self, other: &Group) -> Group {
        Group {
            members: self
                .members
                .iter()
                .copied()
                .filter(|m| !other.contains(*m))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_group_is_identity() {
        let g = Group::world(4);
        assert_eq!(g.size(), 4);
        for r in 0..4 {
            assert_eq!(g.world_rank(r), r);
            assert_eq!(g.rank_of(r), Some(r));
        }
        assert_eq!(g.rank_of(4), None);
    }

    #[test]
    fn incl_reorders() {
        let g = Group::world(4).incl(&[3, 1]);
        assert_eq!(g.members(), &[3, 1]);
        assert_eq!(g.rank_of(3), Some(0));
        assert_eq!(g.rank_of(1), Some(1));
    }

    #[test]
    fn excl_preserves_order() {
        let g = Group::world(5).excl(&[0, 2]);
        assert_eq!(g.members(), &[1, 3, 4]);
    }

    #[test]
    fn set_operations() {
        let a = Group::from_members(vec![0, 1, 2]);
        let b = Group::from_members(vec![2, 3]);
        assert_eq!(a.union(&b).members(), &[0, 1, 2, 3]);
        assert_eq!(a.intersection(&b).members(), &[2]);
        assert_eq!(a.difference(&b).members(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicate world rank")]
    fn duplicates_rejected() {
        Group::from_members(vec![1, 1]);
    }
}
