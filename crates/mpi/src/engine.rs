//! The per-rank MPI progress engine and the `Mpi` API handle.
//!
//! Each rank of a job runs a [`RankEngine`] as an application on its host:
//! it performs startup/wireup (the Globus-device role in MPICH-G2 — §4:
//! "a Globus device provides low-level security, startup, and other
//! functions"), maintains TCP connections to its peers, frames MPI messages
//! onto the byte streams, performs envelope matching (posted-receive and
//! unexpected-message queues), and drives the user's [`MpiProgram`].
//!
//! User programs are explicit state machines: the engine calls
//! [`MpiProgram::poll`] whenever progress occurred (a request completed, a
//! timer fired, CPU work finished), and the program reacts through the
//! nonblocking [`Mpi`] API (`isend`/`irecv`/`test`), exactly the pattern an
//! event-driven MPI application would use with `MPI_Isend`/`MPI_Test`.

use crate::comm::{AttrValue, Comm, CommEndpoints, CommId, CommKind, Keyval, COMM_WORLD};
use crate::group::Group;
use crate::wire::{JobShared, WireKind, WireMsg};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::{App, Ctx, DataMode, SockId, TcpCfg};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// MPI job configuration.
#[derive(Clone)]
pub struct MpiCfg {
    /// Messages at or below this size are sent eagerly; larger ones use the
    /// rendezvous protocol.
    pub eager_limit: u32,
    /// TCP socket configuration for inter-rank connections ("applications
    /// that use TCP and want high performance need careful tuning (such as
    /// socket buffer sizes)", §5.5).
    pub tcp: TcpCfg,
}

impl Default for MpiCfg {
    fn default() -> Self {
        MpiCfg {
            eager_limit: 64 * 1024,
            tcp: TcpCfg::default(),
        }
    }
}

/// A request handle (as from `MPI_Isend`/`MPI_Irecv`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId(pub u32);

/// Completion information (the `MPI_Status` analog).
#[derive(Debug, Clone)]
pub struct MsgInfo {
    /// Source rank *within the communicator* (remote group for intercomms).
    pub src: usize,
    pub tag: u32,
    pub len: u32,
    /// Payload bytes for bytes-mode messages.
    pub payload: Option<Vec<u8>>,
}

enum ReqSlot {
    Free,
    /// Send whose bytes are being accepted by the socket.
    SendActive {
        comm: CommId,
        tag: u32,
        len: u32,
    },
    /// Rendezvous send waiting for the receiver's CTS.
    SendRndvWaitCts {
        comm: CommId,
        dest_world: usize,
        tag: u32,
        len: u32,
        payload: Option<Vec<u8>>,
    },
    /// Posted receive awaiting a match.
    RecvPosted {
        comm: CommId,
        ctx: u32,
        src_world: Option<usize>,
        tag: Option<u32>,
    },
    /// Receive matched an RTS; CTS sent; awaiting DATA from `src_world`.
    RecvRndvInflight {
        comm: CommId,
        src_world: usize,
    },
    /// The request can never complete: the peer rank it was bound to (or,
    /// for a wildcard receive, a rank it might have matched) failed.
    Failed {
        comm: CommId,
        src_world: usize,
    },
    Done(MsgInfo),
}

enum UnexBody {
    Eager { len: u32, payload: Option<Vec<u8>> },
    Rts { sender_req: u32, len: u32 },
}

struct Unexpected {
    ctx: u32,
    src_world: usize,
    tag: u32,
    body: UnexBody,
}

struct TxEntry {
    req: Option<ReqId>,
    remaining: u64,
}

struct Peer {
    sock: Option<SockId>,
    txq: VecDeque<TxEntry>,
    /// Received stream bytes not yet consumed by a complete record.
    rx_avail: u64,
    /// Whether this peer has been counted toward wireup (connection made,
    /// accepted, or written off because the peer failed).
    ready: bool,
}

/// Result of one program poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    Pending,
    Done,
    /// The program terminated because the given world rank failed.
    Failed(usize),
}

/// What the error of a peer failure does to the rank that observes it
/// through [`Mpi::test`] (`MPI_Errhandler`, per communicator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorHandler {
    /// `MPI_ERRORS_ARE_FATAL` (the MPI default): the observing rank stops
    /// and the whole job is flagged aborted.
    #[default]
    Abort,
    /// `MPI_ERRORS_RETURN`: failures surface through [`Mpi::test_result`]
    /// and the program decides what to do.
    Return,
}

/// A peer-failure error (`MPI_ERR_PROC_FAILED`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpiError {
    /// World rank whose failure caused the error.
    pub failed_world: usize,
    /// Communicator the failing request was on.
    pub comm: CommId,
}

/// A user MPI program, written as an explicit state machine.
pub trait MpiProgram {
    /// Called at startup and after every progress event. Return
    /// [`Poll::Done`] when the program has finished.
    fn poll(&mut self, mpi: &mut Mpi) -> Poll;
}

/// Closures are programs: state lives in the captured environment.
impl<F: FnMut(&mut Mpi) -> Poll> MpiProgram for F {
    fn poll(&mut self, mpi: &mut Mpi) -> Poll {
        self(mpi)
    }
}

/// Hook invoked when `attr_put` stores a value under a hooked keyval.
pub type PutHook = Rc<RefCell<dyn FnMut(&mut Mpi, CommId, &AttrValue)>>;

/// Per-rank initialization hook (register keyvals, services, ...).
pub type InitHook = Rc<RefCell<dyn FnMut(&mut Mpi)>>;

const TOKEN_WIREUP: u32 = u32::MAX;

/// The engine driving one rank.
pub struct RankEngine {
    rank: usize,
    size: usize,
    cfg: MpiCfg,
    shared: Rc<RefCell<JobShared>>,
    peers: Vec<Peer>,
    comms: Vec<Comm>,
    next_ctx: u32,
    reqs: Vec<ReqSlot>,
    free_reqs: Vec<u32>,
    posted: Vec<ReqId>,
    unexpected: Vec<Unexpected>,
    hooks: Vec<(Keyval, PutHook)>,
    next_keyval: u32,
    init_hooks: Vec<InitHook>,
    fired_timers: Vec<u32>,
    cpu_completions: u32,
    program: Option<Box<dyn MpiProgram>>,
    started: bool,
    done: bool,
    conns_ready: usize,
    /// True for an incarnation spawned after a host restart: wireup then
    /// actively connects to *every* live peer (the survivors won't).
    restarted: bool,
    /// Set when `test` hit a failed request under the `Abort` handler; the
    /// engine stops the rank after the current poll returns.
    abort_on: Option<usize>,
    /// Peers whose hosts restarted, not yet consumed by the program.
    peer_restarts: VecDeque<usize>,
}

impl RankEngine {
    pub fn new(
        rank: usize,
        shared: Rc<RefCell<JobShared>>,
        cfg: MpiCfg,
        program: Box<dyn MpiProgram>,
        init_hooks: Vec<InitHook>,
    ) -> RankEngine {
        let (size, restarted) = {
            let sh = shared.borrow();
            (sh.size(), sh.epoch[rank] > 0)
        };
        let world = Comm {
            ctx_pt2pt: 0,
            ctx_coll: 1,
            group: Group::world(size),
            my_rank: rank,
            kind: CommKind::Intra,
            attrs: Default::default(),
            errhandler: Default::default(),
        };
        RankEngine {
            rank,
            size,
            cfg,
            shared,
            peers: (0..size)
                .map(|_| Peer {
                    sock: None,
                    txq: VecDeque::new(),
                    rx_avail: 0,
                    ready: false,
                })
                .collect(),
            comms: vec![world],
            next_ctx: 2,
            reqs: Vec::new(),
            free_reqs: Vec::new(),
            posted: Vec::new(),
            unexpected: Vec::new(),
            hooks: Vec::new(),
            next_keyval: 0,
            init_hooks,
            fired_timers: Vec::new(),
            cpu_completions: 0,
            program: Some(program),
            started: false,
            done: false,
            conns_ready: 0,
            restarted,
            abort_on: None,
            peer_restarts: VecDeque::new(),
        }
    }

    fn rank_of_sock(&self, sock: SockId) -> Option<usize> {
        self.peers.iter().position(|p| p.sock == Some(sock))
    }

    fn alloc_req(&mut self, slot: ReqSlot) -> ReqId {
        if let Some(i) = self.free_reqs.pop() {
            self.reqs[i as usize] = slot;
            ReqId(i)
        } else {
            self.reqs.push(slot);
            ReqId(self.reqs.len() as u32 - 1)
        }
    }

    fn maybe_start(&mut self, ctx: &mut Ctx) {
        if self.started || self.conns_ready < self.size - 1 {
            return;
        }
        self.started = true;
        let hooks = self.init_hooks.clone();
        for h in hooks {
            let mut mpi = Mpi { eng: self, ctx };
            (h.borrow_mut())(&mut mpi);
        }
        self.poll_program(ctx);
    }

    fn poll_program(&mut self, ctx: &mut Ctx) {
        if !self.started || self.done {
            return;
        }
        let Some(mut p) = self.program.take() else {
            return;
        };
        let result = {
            let mut mpi = Mpi { eng: self, ctx };
            p.poll(&mut mpi)
        };
        // A `test` under the Abort handler stops the rank no matter what
        // the program returned from this poll.
        let result = match self.abort_on.take() {
            Some(r) => Poll::Failed(r),
            None => result,
        };
        match result {
            Poll::Pending => self.program = Some(p),
            Poll::Done => {
                self.done = true;
                self.shared.borrow_mut().finished[self.rank] = true;
            }
            Poll::Failed(r) => {
                self.done = true;
                let mut sh = self.shared.borrow_mut();
                sh.finished[self.rank] = true;
                sh.errors[self.rank] = Some(r);
            }
        }
    }

    // ------------------------------------------------------------------
    // Transmission
    // ------------------------------------------------------------------

    /// Returns whether a request completed (so callers triggered by
    /// network events can poll the program).
    fn enqueue_wire(&mut self, to: usize, msg: WireMsg, req: Option<ReqId>, ctx: &mut Ctx) -> bool {
        if to == self.rank {
            // Self-send: records never touch the wire.
            let mut progressed = false;
            if let Some(rid) = req {
                self.complete_send(rid);
                progressed = true;
            }
            return self.handle_record(msg, ctx) || progressed;
        }
        let wire_len = self.shared.borrow_mut().push_record(self.rank, to, msg);
        self.peers[to].txq.push_back(TxEntry {
            req,
            remaining: wire_len,
        });
        self.pump_tx(to, ctx)
    }

    /// Push pending bytes into the peer socket; returns whether any send
    /// request completed.
    fn pump_tx(&mut self, to: usize, ctx: &mut Ctx) -> bool {
        let mut progressed = false;
        loop {
            let peer = &mut self.peers[to];
            let Some(sock) = peer.sock else { break };
            let Some(front) = peer.txq.front_mut() else {
                break;
            };
            let n = ctx.send(sock, front.remaining);
            front.remaining -= n;
            if front.remaining > 0 {
                break; // socket buffer full; resume on_writable
            }
            let entry = peer.txq.pop_front().unwrap();
            if let Some(rid) = entry.req {
                self.complete_send(rid);
                progressed = true;
            }
        }
        progressed
    }

    fn complete_send(&mut self, rid: ReqId) {
        let slot = std::mem::replace(&mut self.reqs[rid.0 as usize], ReqSlot::Free);
        let info = match slot {
            ReqSlot::SendActive { comm, tag, len } => {
                let c = &self.comms[comm.0 as usize];
                MsgInfo {
                    src: c.my_rank,
                    tag,
                    len,
                    payload: None,
                }
            }
            other => panic!("completing a non-send request: {}", slot_name(&other)),
        };
        self.reqs[rid.0 as usize] = ReqSlot::Done(info);
    }

    // ------------------------------------------------------------------
    // Reception
    // ------------------------------------------------------------------

    fn drain_rx(&mut self, from: usize, ctx: &mut Ctx) -> bool {
        let Some(sock) = self.peers[from].sock else {
            return false;
        };
        let n = ctx.recv(sock, u64::MAX);
        self.peers[from].rx_avail += n;
        let mut progressed = false;
        loop {
            let avail = self.peers[from].rx_avail;
            let record = self.shared.borrow_mut().pop_record(from, self.rank, avail);
            let Some(msg) = record else { break };
            self.peers[from].rx_avail -= msg.wire_len();
            if self.handle_record(msg, ctx) {
                progressed = true;
            }
        }
        progressed
    }

    /// Track the unexpected-queue depth as a gauge; its high-water mark is
    /// the figure of merit (a deep queue means receives were posted late).
    fn note_unexpected_depth(&mut self, ctx: &mut Ctx) {
        ctx.net
            .obs
            .metrics
            .set_gauge("mpi.unexpected.depth", self.unexpected.len() as f64);
    }

    /// Process one complete inbound record; returns whether a request
    /// completed (program should be polled).
    fn handle_record(&mut self, msg: WireMsg, ctx: &mut Ctx) -> bool {
        match msg.kind {
            WireKind::Eager => {
                if let Some(rid) = self.match_posted(msg.ctx, msg.src_world, msg.tag) {
                    self.complete_recv(rid, msg.src_world, msg.tag, msg.len, msg.payload);
                    true
                } else {
                    self.unexpected.push(Unexpected {
                        ctx: msg.ctx,
                        src_world: msg.src_world,
                        tag: msg.tag,
                        body: UnexBody::Eager {
                            len: msg.len,
                            payload: msg.payload,
                        },
                    });
                    self.note_unexpected_depth(ctx);
                    false
                }
            }
            WireKind::RndvRts => {
                if let Some(rid) = self.match_posted(msg.ctx, msg.src_world, msg.tag) {
                    self.send_cts(rid, &msg, ctx);
                    false
                } else {
                    self.unexpected.push(Unexpected {
                        ctx: msg.ctx,
                        src_world: msg.src_world,
                        tag: msg.tag,
                        body: UnexBody::Rts {
                            sender_req: msg.sender_req,
                            len: msg.len,
                        },
                    });
                    self.note_unexpected_depth(ctx);
                    false
                }
            }
            WireKind::RndvCts => {
                let rid = ReqId(msg.sender_req);
                let slot = std::mem::replace(&mut self.reqs[rid.0 as usize], ReqSlot::Free);
                let ReqSlot::SendRndvWaitCts {
                    comm,
                    dest_world,
                    tag,
                    len,
                    payload,
                } = slot
                else {
                    panic!("CTS for request not awaiting it");
                };
                self.reqs[rid.0 as usize] = ReqSlot::SendActive { comm, tag, len };
                let data = WireMsg {
                    kind: WireKind::RndvData,
                    ctx: 0, // matching already happened; routed by receiver_req
                    tag,
                    src_world: self.rank,
                    len,
                    sender_req: rid.0,
                    receiver_req: msg.receiver_req,
                    payload,
                };
                // If the socket buffers the whole payload immediately, the
                // send request completes right here — report the progress.
                self.enqueue_wire(dest_world, data, Some(rid), ctx)
            }
            WireKind::RndvData => {
                let rid = ReqId(msg.receiver_req);
                assert!(
                    matches!(self.reqs[rid.0 as usize], ReqSlot::RecvRndvInflight { .. }),
                    "DATA for request not awaiting it"
                );
                self.complete_recv(rid, msg.src_world, msg.tag, msg.len, msg.payload);
                true
            }
        }
    }

    /// Find (and unpost) the first matching posted receive.
    fn match_posted(&mut self, ctx: u32, src_world: usize, tag: u32) -> Option<ReqId> {
        let pos = self
            .posted
            .iter()
            .position(|&rid| match &self.reqs[rid.0 as usize] {
                ReqSlot::RecvPosted {
                    ctx: pctx,
                    src_world: psrc,
                    tag: ptag,
                    ..
                } => {
                    *pctx == ctx
                        && psrc.is_none_or(|s| s == src_world)
                        && ptag.is_none_or(|t| t == tag)
                }
                _ => false,
            })?;
        Some(self.posted.remove(pos))
    }

    fn complete_recv(
        &mut self,
        rid: ReqId,
        src_world: usize,
        tag: u32,
        len: u32,
        payload: Option<Vec<u8>>,
    ) {
        let comm = match &self.reqs[rid.0 as usize] {
            ReqSlot::RecvPosted { comm, .. } | ReqSlot::RecvRndvInflight { comm, .. } => *comm,
            other => panic!("completing non-recv request: {}", slot_name(other)),
        };
        let src = self.comms[comm.0 as usize]
            .rank_of_world(src_world)
            .expect("message from a rank outside the communicator");
        self.reqs[rid.0 as usize] = ReqSlot::Done(MsgInfo {
            src,
            tag,
            len,
            payload,
        });
    }

    fn send_cts(&mut self, rid: ReqId, rts: &WireMsg, ctx: &mut Ctx) {
        let comm = match &self.reqs[rid.0 as usize] {
            ReqSlot::RecvPosted { comm, .. } => *comm,
            other => panic!("CTS for non-posted request: {}", slot_name(other)),
        };
        self.reqs[rid.0 as usize] = ReqSlot::RecvRndvInflight {
            comm,
            src_world: rts.src_world,
        };
        let cts = WireMsg {
            kind: WireKind::RndvCts,
            ctx: rts.ctx,
            tag: rts.tag,
            src_world: self.rank,
            len: rts.len,
            sender_req: rts.sender_req,
            receiver_req: rid.0,
            payload: None,
        };
        let _ = self.enqueue_wire(rts.src_world, cts, None, ctx);
    }

    // ------------------------------------------------------------------
    // Failure handling
    // ------------------------------------------------------------------

    /// React to peer rank `r` failing: error every request bound to it
    /// (queued sends, rendezvous in either direction, posted receives from
    /// it, and *all* wildcard receives — any of them might have matched the
    /// dead rank), and drain its unexpected-queue entries, which would
    /// otherwise leak forever.
    fn fail_peer(&mut self, r: usize, ctx: &mut Ctx) {
        let peer = &mut self.peers[r];
        peer.sock = None;
        peer.rx_avail = 0;
        let txq = std::mem::take(&mut peer.txq);
        let mut victims: Vec<ReqId> = txq.into_iter().filter_map(|e| e.req).collect();
        for (i, slot) in self.reqs.iter().enumerate() {
            let rid = ReqId(i as u32);
            let hit = match slot {
                ReqSlot::SendRndvWaitCts { dest_world, .. } => *dest_world == r,
                ReqSlot::RecvPosted { src_world, .. } => src_world.is_none_or(|s| s == r),
                ReqSlot::RecvRndvInflight { src_world, .. } => *src_world == r,
                _ => false,
            };
            if hit && !victims.contains(&rid) {
                victims.push(rid);
            }
        }
        for rid in victims {
            let comm = match &self.reqs[rid.0 as usize] {
                ReqSlot::SendActive { comm, .. }
                | ReqSlot::SendRndvWaitCts { comm, .. }
                | ReqSlot::RecvPosted { comm, .. }
                | ReqSlot::RecvRndvInflight { comm, .. } => *comm,
                other => panic!("failing a request in state {}", slot_name(other)),
            };
            self.posted.retain(|&p| p != rid);
            self.reqs[rid.0 as usize] = ReqSlot::Failed { comm, src_world: r };
            ctx.net.obs.metrics.add("mpi.reqs_failed", 1);
        }
        let before = self.unexpected.len();
        self.unexpected.retain(|u| u.src_world != r);
        let dropped = before - self.unexpected.len();
        if dropped > 0 {
            ctx.net
                .obs
                .metrics
                .add("mpi.unexpected_dropped", dropped as u64);
        }
        self.note_unexpected_depth(ctx);
        // A crash during wireup: that connection will never arrive; count
        // it satisfied so the survivors still start.
        if !self.peers[r].ready {
            self.peers[r].ready = true;
            self.conns_ready += 1;
            self.maybe_start(ctx);
        }
    }
}

fn slot_name(s: &ReqSlot) -> &'static str {
    match s {
        ReqSlot::Free => "Free",
        ReqSlot::SendActive { .. } => "SendActive",
        ReqSlot::SendRndvWaitCts { .. } => "SendRndvWaitCts",
        ReqSlot::RecvPosted { .. } => "RecvPosted",
        ReqSlot::RecvRndvInflight { .. } => "RecvRndvInflight",
        ReqSlot::Failed { .. } => "Failed",
        ReqSlot::Done(_) => "Done",
    }
}

impl App for RankEngine {
    fn on_start(&mut self, ctx: &mut Ctx) {
        let port = self.shared.borrow().port_of(self.rank);
        ctx.tcp_listen(port, self.cfg.tcp, DataMode::Counted);
        // Defer connecting until every rank's listener exists.
        ctx.set_timer(SimDelta::ZERO, TOKEN_WIREUP);
    }

    fn on_timer(&mut self, token: u32, ctx: &mut Ctx) {
        if token == TOKEN_WIREUP {
            // Full-mesh wireup: rank r actively connects to every lower
            // rank. A restarted incarnation connects to every live peer —
            // the survivors keep their listeners but never re-dial.
            // Currently-failed peers are written off as ready; if they
            // restart, their new incarnation dials us.
            let failed = self.shared.borrow().failed.clone();
            for (j, &down) in failed.iter().enumerate() {
                if j == self.rank || self.peers[j].ready {
                    continue;
                }
                if down {
                    self.peers[j].ready = true;
                    self.conns_ready += 1;
                    continue;
                }
                if !(self.restarted || j < self.rank) {
                    continue;
                }
                let (host, port) = {
                    let sh = self.shared.borrow();
                    (sh.hosts[j], sh.port_of(j))
                };
                let sock = ctx.tcp_connect(host, port, self.cfg.tcp, DataMode::Counted);
                self.peers[j].sock = Some(sock);
            }
            self.maybe_start(ctx); // size == 1 has no peers
            return;
        }
        self.fired_timers.push(token);
        self.poll_program(ctx);
    }

    fn on_connected(&mut self, sock: SockId, ctx: &mut Ctx) {
        if let Some(j) = self.rank_of_sock(sock) {
            if !self.peers[j].ready {
                self.peers[j].ready = true;
                self.conns_ready += 1;
            }
        }
        self.maybe_start(ctx);
    }

    fn on_accept(&mut self, _listener: SockId, sock: SockId, ctx: &mut Ctx) {
        let (peer_host, _) = ctx.sock_peer(sock).expect("accepted socket without peer");
        let j = self
            .shared
            .borrow()
            .rank_of_host(peer_host)
            .expect("connection from a host that runs no rank");
        self.peers[j].sock = Some(sock);
        if !self.peers[j].ready {
            self.peers[j].ready = true;
            self.conns_ready += 1;
        }
        // Flush anything queued before the connection existed.
        self.pump_tx(j, ctx);
        self.maybe_start(ctx);
    }

    fn on_peer_failed(&mut self, host: mpichgq_netsim::NodeId, ctx: &mut Ctx) {
        let Some(r) = self.shared.borrow().rank_of_host(host) else {
            return; // not a member of this job
        };
        if r == self.rank {
            return;
        }
        // First engine notified flushes the shared streams; every engine
        // fails its own requests.
        self.shared.borrow_mut().mark_failed(r);
        self.fail_peer(r, ctx);
        self.poll_program(ctx);
    }

    fn on_peer_restarted(&mut self, host: mpichgq_netsim::NodeId, ctx: &mut Ctx) {
        let Some(r) = self.shared.borrow().rank_of_host(host) else {
            return;
        };
        if r == self.rank {
            return; // our own (re)spawn notification
        }
        // The new incarnation dials us; on_accept rewires the socket. Here
        // we only surface the event to the program.
        self.peer_restarts.push_back(r);
        self.poll_program(ctx);
    }

    fn on_readable(&mut self, sock: SockId, ctx: &mut Ctx) {
        let Some(from) = self.rank_of_sock(sock) else {
            return;
        };
        if self.drain_rx(from, ctx) {
            self.poll_program(ctx);
        }
    }

    fn on_writable(&mut self, sock: SockId, ctx: &mut Ctx) {
        let Some(to) = self.rank_of_sock(sock) else {
            return;
        };
        if self.pump_tx(to, ctx) {
            self.poll_program(ctx);
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx) {
        self.cpu_completions += 1;
        self.poll_program(ctx);
    }
}

/// The API handle a program uses inside [`MpiProgram::poll`].
pub struct Mpi<'a, 'n> {
    pub(crate) eng: &'a mut RankEngine,
    /// The underlying application context (host, services, recorder).
    pub ctx: &'a mut Ctx<'n>,
}

impl Mpi<'_, '_> {
    /// World rank of this process.
    pub fn rank(&self) -> usize {
        self.eng.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.eng.size
    }

    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    pub fn comm_world(&self) -> CommId {
        COMM_WORLD
    }

    pub fn comm(&self, id: CommId) -> &Comm {
        &self.eng.comms[id.0 as usize]
    }

    /// Nonblocking counted-byte send (`MPI_Isend`).
    pub fn isend(&mut self, comm: CommId, dest: usize, tag: u32, len: u32) -> ReqId {
        self.isend_inner(comm, dest, tag, len, None, false)
    }

    /// Nonblocking send of real bytes.
    pub fn isend_bytes(&mut self, comm: CommId, dest: usize, tag: u32, data: Vec<u8>) -> ReqId {
        let len = data.len() as u32;
        self.isend_inner(comm, dest, tag, len, Some(data), false)
    }

    pub(crate) fn isend_coll(
        &mut self,
        comm: CommId,
        dest: usize,
        tag: u32,
        len: u32,
        data: Option<Vec<u8>>,
    ) -> ReqId {
        self.isend_inner(comm, dest, tag, len, data, true)
    }

    fn isend_inner(
        &mut self,
        comm: CommId,
        dest: usize,
        tag: u32,
        len: u32,
        payload: Option<Vec<u8>>,
        coll: bool,
    ) -> ReqId {
        let c = &self.eng.comms[comm.0 as usize];
        let dest_world = c.peer_world_rank(dest);
        let wire_ctx = if coll { c.ctx_coll } else { c.ctx_pt2pt };
        if self.eng.shared.borrow().failed[dest_world] {
            // Sending to a dead rank errors immediately (MPI_ERR_PROC_FAILED).
            self.ctx.net.obs.metrics.add("mpi.reqs_failed", 1);
            return self.eng.alloc_req(ReqSlot::Failed {
                comm,
                src_world: dest_world,
            });
        }
        if len <= self.eng.cfg.eager_limit {
            self.ctx.net.obs.metrics.add("mpi.eager_sends", 1);
            self.ctx.net.obs.metrics.add("mpi.sent_bytes", len as u64);
            let rid = self.eng.alloc_req(ReqSlot::SendActive { comm, tag, len });
            let msg = WireMsg {
                kind: WireKind::Eager,
                ctx: wire_ctx,
                tag,
                src_world: self.eng.rank,
                len,
                sender_req: rid.0,
                receiver_req: 0,
                payload,
            };
            self.eng.enqueue_wire(dest_world, msg, Some(rid), self.ctx);
            rid
        } else {
            self.ctx.net.obs.metrics.add("mpi.rndv_sends", 1);
            self.ctx.net.obs.metrics.add("mpi.sent_bytes", len as u64);
            let rid = self.eng.alloc_req(ReqSlot::SendRndvWaitCts {
                comm,
                dest_world,
                tag,
                len,
                payload,
            });
            let rts = WireMsg {
                kind: WireKind::RndvRts,
                ctx: wire_ctx,
                tag,
                src_world: self.eng.rank,
                len,
                sender_req: rid.0,
                receiver_req: 0,
                payload: None,
            };
            self.eng.enqueue_wire(dest_world, rts, None, self.ctx);
            rid
        }
    }

    /// Nonblocking receive (`MPI_Irecv`); `None` source/tag are wildcards
    /// (`MPI_ANY_SOURCE`/`MPI_ANY_TAG`).
    pub fn irecv(&mut self, comm: CommId, src: Option<usize>, tag: Option<u32>) -> ReqId {
        self.irecv_inner(comm, src, tag, false)
    }

    pub(crate) fn irecv_coll(
        &mut self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> ReqId {
        self.irecv_inner(comm, src, tag, true)
    }

    fn irecv_inner(
        &mut self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
        coll: bool,
    ) -> ReqId {
        let c = &self.eng.comms[comm.0 as usize];
        let wire_ctx = if coll { c.ctx_coll } else { c.ctx_pt2pt };
        let src_world = src.map(|s| c.peer_world_rank(s));
        // First satisfy from the unexpected queue, in arrival order.
        let pos = self.eng.unexpected.iter().position(|u| {
            u.ctx == wire_ctx
                && src_world.is_none_or(|s| s == u.src_world)
                && tag.is_none_or(|t| t == u.tag)
        });
        if let Some(pos) = pos {
            let u = self.eng.unexpected.remove(pos);
            match u.body {
                UnexBody::Eager { len, payload } => {
                    let rid = self.eng.alloc_req(ReqSlot::RecvPosted {
                        comm,
                        ctx: wire_ctx,
                        src_world,
                        tag,
                    });
                    self.eng
                        .complete_recv(rid, u.src_world, u.tag, len, payload);
                    return rid;
                }
                UnexBody::Rts { sender_req, len } => {
                    let rid = self.eng.alloc_req(ReqSlot::RecvPosted {
                        comm,
                        ctx: wire_ctx,
                        src_world,
                        tag,
                    });
                    let rts = WireMsg {
                        kind: WireKind::RndvRts,
                        ctx: wire_ctx,
                        tag: u.tag,
                        src_world: u.src_world,
                        len,
                        sender_req,
                        receiver_req: 0,
                        payload: None,
                    };
                    self.eng.send_cts(rid, &rts, self.ctx);
                    return rid;
                }
            }
        }
        // A receive that names a dead source — or a wildcard while any
        // member is dead (MPI_ANY_SOURCE can no longer be disambiguated) —
        // fails immediately, mirroring what `fail_peer` does to receives
        // that were already posted when the rank died.
        let failed_src = {
            let sh = self.eng.shared.borrow();
            match src_world {
                Some(s) => sh.failed[s].then_some(s),
                None => self.eng.comms[comm.0 as usize]
                    .failed_members(&sh.failed)
                    .first()
                    .copied(),
            }
        };
        if let Some(s) = failed_src {
            let rid = self.eng.alloc_req(ReqSlot::Failed { comm, src_world: s });
            self.ctx.net.obs.metrics.add("mpi.reqs_failed", 1);
            return rid;
        }
        let rid = self.eng.alloc_req(ReqSlot::RecvPosted {
            comm,
            ctx: wire_ctx,
            src_world,
            tag,
        });
        self.eng.posted.push(rid);
        rid
    }

    /// Check, without receiving, whether a matching message is already
    /// pending (`MPI_Iprobe` over the unexpected queue). Returns the
    /// communicator rank of the source, the tag, and the length of the
    /// first match in arrival order.
    pub fn iprobe(
        &self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> Option<(usize, u32, u32)> {
        let c = &self.eng.comms[comm.0 as usize];
        let wire_ctx = c.ctx_pt2pt;
        let src_world = src.map(|s| c.peer_world_rank(s));
        self.eng.unexpected.iter().find_map(|u| {
            if u.ctx != wire_ctx
                || src_world.is_some_and(|s| s != u.src_world)
                || tag.is_some_and(|t| t != u.tag)
            {
                return None;
            }
            let len = match &u.body {
                UnexBody::Eager { len, .. } | UnexBody::Rts { len, .. } => *len,
            };
            let src_rank = c.rank_of_world(u.src_world)?;
            Some((src_rank, u.tag, len))
        })
    }

    /// Test a request for completion; consumes it when done (`MPI_Test`).
    ///
    /// If the request failed because a peer rank died, the communicator's
    /// [`ErrorHandler`] decides: `Abort` consumes the request, flags the
    /// whole job aborted, and stops this rank after the current poll;
    /// `Return` keeps returning `None` — observe and consume the failure
    /// with [`Mpi::test_result`].
    pub fn test(&mut self, req: ReqId) -> Option<MsgInfo> {
        if let ReqSlot::Failed { comm, src_world } = self.eng.reqs[req.0 as usize] {
            return match self.eng.comms[comm.0 as usize].errhandler {
                ErrorHandler::Abort => {
                    self.eng.reqs[req.0 as usize] = ReqSlot::Free;
                    self.eng.free_reqs.push(req.0);
                    self.eng.abort_on = Some(src_world);
                    self.eng.shared.borrow_mut().aborted = true;
                    self.ctx.net.obs.metrics.add("mpi.aborts", 1);
                    None
                }
                ErrorHandler::Return => None,
            };
        }
        self.test_result(req)
            .expect("non-failed request cannot error")
    }

    /// Test a request, surfacing peer failure as an error
    /// (`MPI_Test` + `MPI_ERRORS_RETURN`). Consumes the request when it is
    /// done *or* failed.
    pub fn test_result(&mut self, req: ReqId) -> Result<Option<MsgInfo>, MpiError> {
        match &self.eng.reqs[req.0 as usize] {
            ReqSlot::Done(_) => {
                let ReqSlot::Done(info) =
                    std::mem::replace(&mut self.eng.reqs[req.0 as usize], ReqSlot::Free)
                else {
                    unreachable!()
                };
                self.eng.free_reqs.push(req.0);
                Ok(Some(info))
            }
            ReqSlot::Failed { comm, src_world } => {
                let err = MpiError {
                    failed_world: *src_world,
                    comm: *comm,
                };
                self.eng.reqs[req.0 as usize] = ReqSlot::Free;
                self.eng.free_reqs.push(req.0);
                Err(err)
            }
            ReqSlot::Free => panic!("test on a freed request"),
            _ => Ok(None),
        }
    }

    /// Set the failure disposition for a communicator
    /// (`MPI_Errhandler_set`).
    pub fn set_errhandler(&mut self, comm: CommId, h: ErrorHandler) {
        self.eng.comms[comm.0 as usize].errhandler = h;
    }

    pub fn errhandler(&self, comm: CommId) -> ErrorHandler {
        self.eng.comms[comm.0 as usize].errhandler
    }

    /// Lowest failed world rank in the communicator (local or remote
    /// group), if any.
    pub fn comm_failed(&self, comm: CommId) -> Option<usize> {
        let sh = self.eng.shared.borrow();
        self.eng.comms[comm.0 as usize]
            .failed_members(&sh.failed)
            .first()
            .copied()
    }

    /// The group of currently-failed members of the communicator (the
    /// `MPI_Comm_group_failed` analog from fault-tolerant MPI drafts).
    pub fn comm_group_failed(&self, comm: CommId) -> Group {
        let sh = self.eng.shared.borrow();
        Group::from_members(self.eng.comms[comm.0 as usize].failed_members(&sh.failed))
    }

    /// Publish a checkpoint of this rank's program state. Survives a host
    /// crash (the model of a checkpoint on stable storage off-host); the
    /// next incarnation reads it back with [`Mpi::restored`].
    pub fn checkpoint(&mut self, data: Vec<u8>) {
        let r = self.eng.rank;
        self.eng.shared.borrow_mut().checkpoints[r] = Some(data);
        self.ctx.net.obs.metrics.add("mpi.checkpoints", 1);
    }

    /// The checkpoint to resume from, if this incarnation follows a
    /// restart and one was published.
    pub fn restored(&self) -> Option<Vec<u8>> {
        let sh = self.eng.shared.borrow();
        if sh.epoch[self.eng.rank] > 0 {
            sh.checkpoints[self.eng.rank].clone()
        } else {
            None
        }
    }

    /// This rank's incarnation number (0 = original launch).
    pub fn epoch(&self) -> u32 {
        self.eng.shared.borrow().epoch[self.eng.rank]
    }

    /// Consume a peer-restart notification, if one is pending: the world
    /// rank whose host came back (its new incarnation is wiring up).
    pub fn take_peer_restarted(&mut self) -> Option<usize> {
        self.eng.peer_restarts.pop_front()
    }

    /// Duplicate a communicator with a fresh context (`MPI_Comm_dup`).
    /// Attributes are not copied (no copy callbacks are registered).
    pub fn comm_dup(&mut self, comm: CommId) -> CommId {
        let c = &self.eng.comms[comm.0 as usize];
        let new = Comm {
            ctx_pt2pt: self.eng.next_ctx,
            ctx_coll: self.eng.next_ctx + 1,
            group: c.group.clone(),
            my_rank: c.my_rank,
            kind: c.kind.clone(),
            attrs: Default::default(),
            errhandler: c.errhandler,
        };
        self.eng.next_ctx += 2;
        self.eng.comms.push(new);
        CommId(self.eng.comms.len() as u32 - 1)
    }

    /// Create a two-party intercommunicator with `peer_world`. Both parties
    /// must call this in matching order (a collective-call requirement, as
    /// in MPI). This is the communicator shape MPICH-GQ attaches QoS
    /// attributes to (§4.1).
    pub fn intercomm_pair(&mut self, peer_world: usize) -> CommId {
        assert_ne!(peer_world, self.eng.rank, "intercommunicator with self");
        let new = Comm {
            ctx_pt2pt: self.eng.next_ctx,
            ctx_coll: self.eng.next_ctx + 1,
            group: Group::from_members(vec![self.eng.rank]),
            my_rank: 0,
            kind: CommKind::Inter {
                remote: Group::from_members(vec![peer_world]),
            },
            attrs: Default::default(),
            errhandler: self.eng.comms[COMM_WORLD.0 as usize].errhandler,
        };
        self.eng.next_ctx += 2;
        self.eng.comms.push(new);
        CommId(self.eng.comms.len() as u32 - 1)
    }

    /// Create an intracommunicator over a subset of world ranks (a local
    /// shortcut for `MPI_Comm_create`; every member must call it with the
    /// same member list, in matching creation order).
    pub fn comm_create(&mut self, members: Vec<usize>) -> CommId {
        let group = Group::from_members(members);
        let my_rank = group
            .rank_of(self.eng.rank)
            .expect("comm_create by a non-member");
        let new = Comm {
            ctx_pt2pt: self.eng.next_ctx,
            ctx_coll: self.eng.next_ctx + 1,
            group,
            my_rank,
            kind: CommKind::Intra,
            attrs: Default::default(),
            errhandler: self.eng.comms[COMM_WORLD.0 as usize].errhandler,
        };
        self.eng.next_ctx += 2;
        self.eng.comms.push(new);
        CommId(self.eng.comms.len() as u32 - 1)
    }

    /// Create a new attribute key (`MPI_Keyval_create`).
    pub fn keyval_create(&mut self) -> Keyval {
        let k = Keyval(self.eng.next_keyval);
        self.eng.next_keyval += 1;
        k
    }

    /// Create a keyval whose `attr_put` triggers `hook` — the MPICH-GQ
    /// mechanism ("the action of putting the attribute actually triggers
    /// the request", §4.1).
    pub fn keyval_create_with_hook(&mut self, hook: PutHook) -> Keyval {
        let k = self.keyval_create();
        self.eng.hooks.push((k, hook));
        k
    }

    /// Store an attribute (`MPI_Attr_put`), triggering any registered hook.
    pub fn attr_put(&mut self, comm: CommId, keyval: Keyval, value: AttrValue) {
        self.eng.comms[comm.0 as usize]
            .attrs
            .insert(keyval, value.clone());
        let hook = self
            .eng
            .hooks
            .iter()
            .find(|(k, _)| *k == keyval)
            .map(|(_, h)| h.clone());
        if let Some(h) = hook {
            (h.borrow_mut())(self, comm, &value);
        }
    }

    /// Fetch an attribute (`MPI_Attr_get`).
    pub fn attr_get(&self, comm: CommId, keyval: Keyval) -> Option<AttrValue> {
        self.eng.comms[comm.0 as usize].attrs.get(&keyval).cloned()
    }

    /// Endpoint extraction for external QoS management (§4.1).
    pub fn comm_endpoints(&self, comm: CommId) -> CommEndpoints {
        let sh = self.eng.shared.borrow();
        let c = &self.eng.comms[comm.0 as usize];
        let info = |w: usize| (w, sh.hosts[w], sh.port_of(w));
        CommEndpoints {
            local: c.group.members().iter().map(|&w| info(w)).collect(),
            remote: match &c.kind {
                CommKind::Intra => Vec::new(),
                CommKind::Inter { remote } => remote.members().iter().map(|&w| info(w)).collect(),
            },
        }
    }

    /// Arm a timer; check for it later with [`Mpi::take_timer`].
    pub fn set_timer(&mut self, after: SimDelta, token: u32) {
        assert_ne!(token, TOKEN_WIREUP, "reserved timer token");
        self.ctx.set_timer(after, token);
    }

    /// Consume a fired timer with this token, if any.
    pub fn take_timer(&mut self, token: u32) -> bool {
        if let Some(pos) = self.eng.fired_timers.iter().position(|&t| t == token) {
            self.eng.fired_timers.remove(pos);
            true
        } else {
            false
        }
    }

    /// Begin CPU work on this rank's host process (competes under DSRT).
    pub fn cpu_work(&mut self, cpu_time: SimDelta) {
        self.ctx.cpu_work(cpu_time);
    }

    /// Consume a CPU-work completion, if one occurred.
    pub fn take_cpu_done(&mut self) -> bool {
        if self.eng.cpu_completions > 0 {
            self.eng.cpu_completions -= 1;
            true
        } else {
            false
        }
    }

    /// The host this rank runs on.
    pub fn host(&self) -> mpichgq_netsim::NodeId {
        self.ctx.host
    }

    /// This rank's CPU process id (for GARA CPU reservations).
    pub fn cpu_proc(&self) -> mpichgq_dsrt::ProcId {
        self.ctx.cpu_proc()
    }

    /// Record the TCP data-segment sequence numbers of this rank's
    /// connection to `peer_world` into the named recorder series (the
    /// paper's Figure 7 traces).
    pub fn trace_peer_connection(&mut self, peer_world: usize, series: &str) {
        let sock = self.eng.peers[peer_world]
            .sock
            .expect("no connection to that peer yet");
        self.ctx.trace_seq(sock, series);
    }

    /// Register a delivery deadline (SLO) on this rank's connection to
    /// `peer_world` — the Figure 7/8 frame deadline, evaluated per packet
    /// at delivery by the network's conformance monitor. Enables
    /// packet-lifecycle tracing if it was off.
    pub fn set_peer_deadline(&mut self, peer_world: usize, deadline: mpichgq_sim::SimDelta) {
        let sock = self.eng.peers[peer_world]
            .sock
            .expect("no connection to that peer yet");
        self.ctx.set_flow_deadline(sock, deadline);
    }
}
