//! # mpichgq-mpi — the MPI subset MPICH-GQ extends
//!
//! A from-scratch MPI implementation over the simulated TCP stack, modeled
//! on MPICH's layering: groups and communicators with context isolation
//! ([`group`], [`comm`]), the standard *attribute* mechanism with
//! put-triggered hooks — the paper's standards-compliant extension point
//! (§4.1) — eager/rendezvous point-to-point with envelope matching
//! ([`engine`], [`wire`]), poll-able collectives ([`coll`]), and a job
//! launcher ([`job`]).
//!
//! Programs implement [`MpiProgram`] as explicit state machines driven by
//! the engine's progress events, using the nonblocking [`Mpi`] API
//! (`isend`/`irecv`/`test`) — the same structure an `MPI_Isend`/`MPI_Test`
//! application has.

pub mod coll;
pub mod comm;
pub mod engine;
pub mod group;
pub mod job;
pub mod wire;

pub use coll::{
    Allgather, Allreduce, Barrier, Bcast, CollState, CommSplit, Gather, Reduce, ReduceOp,
};
pub use comm::{AttrValue, Comm, CommEndpoints, CommId, CommKind, Keyval, COMM_WORLD};
pub use engine::{
    ErrorHandler, InitHook, Mpi, MpiCfg, MpiError, MpiProgram, MsgInfo, Poll, PutHook, RankEngine,
    ReqId,
};
pub use group::Group;
pub use job::{JobBuilder, JobHandle, ProgramFactory};
pub use wire::{JobShared, WireKind, WireMsg, HEADER_BYTES};
