//! Job launch: placing ranks on hosts and wiring them up.
//!
//! Plays the role MPICH-G2's Globus device plays in the paper's
//! architecture: startup and process management. Ranks are placed one per
//! host (the experiments in §5 pair a sender and receiver host); each rank
//! listens on `base_port + rank` and the mesh is established eagerly at
//! launch.
//!
//! Ranks registered with [`JobBuilder::rank_restartable`] survive a
//! `HostRestart` fault: a stack respawn hook relaunches a fresh program
//! incarnation (from its factory) on the revived host, the shared job state
//! clears the rank's failure flag and bumps its epoch, and the new engine
//! re-dials every live peer. The program finds its last
//! [`crate::Mpi::checkpoint`] via [`crate::Mpi::restored`].

use crate::engine::{InitHook, MpiCfg, MpiProgram, RankEngine};
use crate::wire::JobShared;
use mpichgq_netsim::NodeId;
use mpichgq_tcp::Sim;
use std::cell::RefCell;
use std::rc::Rc;

/// Handle to a launched job.
pub struct JobHandle {
    shared: Rc<RefCell<JobShared>>,
}

impl JobHandle {
    /// True once every rank's program returned `Poll::Done`.
    pub fn finished(&self) -> bool {
        self.shared.borrow().all_finished()
    }

    /// True once every rank that is not currently failed has finished
    /// (dead, never-restarted ranks are excluded).
    pub fn surviving_finished(&self) -> bool {
        self.shared.borrow().all_surviving_finished()
    }

    /// True once rank `r`'s program finished.
    pub fn rank_finished(&self, r: usize) -> bool {
        self.shared.borrow().finished[r]
    }

    /// Whether rank `r` is currently failed (host down, not restarted).
    pub fn rank_failed(&self, r: usize) -> bool {
        self.shared.borrow().failed[r]
    }

    /// Whether any rank is currently failed (crashed and not respawned).
    pub fn any_failed(&self) -> bool {
        self.shared.borrow().failed.iter().any(|&f| f)
    }

    /// The peer-failure error rank `r` terminated with, if any.
    pub fn rank_error(&self, r: usize) -> Option<usize> {
        self.shared.borrow().errors[r]
    }

    /// Rank `r`'s incarnation number (0 = original launch).
    pub fn epoch_of(&self, r: usize) -> u32 {
        self.shared.borrow().epoch[r]
    }

    /// Whether a rank under the `Abort` error handler observed a failure.
    pub fn aborted(&self) -> bool {
        self.shared.borrow().aborted
    }

    /// Host of rank `r`.
    pub fn host_of(&self, r: usize) -> NodeId {
        self.shared.borrow().hosts[r]
    }

    /// The TCP port rank `r` listens on.
    pub fn port_of(&self, r: usize) -> u16 {
        self.shared.borrow().port_of(r)
    }
}

/// Factory producing a fresh program incarnation for a restartable rank.
pub type ProgramFactory = Rc<dyn Fn() -> Box<dyn MpiProgram>>;

/// Builds and launches an MPI job.
pub struct JobBuilder {
    hosts: Vec<NodeId>,
    programs: Vec<Box<dyn MpiProgram>>,
    factories: Vec<Option<ProgramFactory>>,
    base_port: u16,
    cfg: MpiCfg,
    init_hooks: Vec<InitHook>,
}

impl JobBuilder {
    pub fn new() -> JobBuilder {
        JobBuilder {
            hosts: Vec::new(),
            programs: Vec::new(),
            factories: Vec::new(),
            base_port: 10_000,
            cfg: MpiCfg::default(),
            init_hooks: Vec::new(),
        }
    }

    /// Add one rank: its host and its program. Ranks are numbered in the
    /// order added. One rank per host (loopback is not modeled).
    pub fn rank(mut self, host: NodeId, program: Box<dyn MpiProgram>) -> JobBuilder {
        assert!(
            !self.hosts.contains(&host),
            "one rank per host: {host} already used"
        );
        self.hosts.push(host);
        self.programs.push(program);
        self.factories.push(None);
        self
    }

    /// Add one *restartable* rank: the factory builds each incarnation's
    /// program (the first one too). After a `HostRestart` of its host, the
    /// rank is respawned automatically with a fresh program.
    pub fn rank_restartable(mut self, host: NodeId, factory: ProgramFactory) -> JobBuilder {
        assert!(
            !self.hosts.contains(&host),
            "one rank per host: {host} already used"
        );
        self.hosts.push(host);
        self.programs.push(factory());
        self.factories.push(Some(factory));
        self
    }

    pub fn base_port(mut self, p: u16) -> JobBuilder {
        self.base_port = p;
        self
    }

    pub fn cfg(mut self, cfg: MpiCfg) -> JobBuilder {
        self.cfg = cfg;
        self
    }

    /// Register a per-rank initialization hook, run once before the first
    /// program poll (e.g. `mpichgq-core`'s QoS keyval registration).
    pub fn init_hook(mut self, h: InitHook) -> JobBuilder {
        self.init_hooks.push(h);
        self
    }

    /// Spawn every rank's engine into the simulation.
    pub fn launch(self, sim: &mut Sim) -> JobHandle {
        assert!(!self.hosts.is_empty(), "job with zero ranks");
        let shared = Rc::new(RefCell::new(JobShared::new(
            self.hosts.clone(),
            self.base_port,
        )));
        let factories = self.factories;
        for (rank, program) in self.programs.into_iter().enumerate() {
            let engine = RankEngine::new(
                rank,
                shared.clone(),
                self.cfg.clone(),
                program,
                self.init_hooks.clone(),
            );
            sim.spawn_app(self.hosts[rank], Box::new(engine));
            if let Some(factory) = factories[rank].clone() {
                let host = self.hosts[rank];
                let shared = shared.clone();
                let cfg = self.cfg.clone();
                let init_hooks = self.init_hooks.clone();
                sim.stack.on_host_restart(Box::new(move |net, stack, h| {
                    if h != host {
                        return;
                    }
                    shared.borrow_mut().mark_restarted(rank);
                    let engine = RankEngine::new(
                        rank,
                        shared.clone(),
                        cfg.clone(),
                        factory(),
                        init_hooks.clone(),
                    );
                    stack.spawn_app(net, host, Box::new(engine));
                }));
            }
        }
        JobHandle { shared }
    }
}

impl Default for JobBuilder {
    fn default() -> Self {
        Self::new()
    }
}
