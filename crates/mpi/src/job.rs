//! Job launch: placing ranks on hosts and wiring them up.
//!
//! Plays the role MPICH-G2's Globus device plays in the paper's
//! architecture: startup and process management. Ranks are placed one per
//! host (the experiments in §5 pair a sender and receiver host); each rank
//! listens on `base_port + rank` and the mesh is established eagerly at
//! launch.

use crate::engine::{InitHook, MpiCfg, MpiProgram, RankEngine};
use crate::wire::JobShared;
use mpichgq_netsim::NodeId;
use mpichgq_tcp::Sim;
use std::cell::RefCell;
use std::rc::Rc;

/// Handle to a launched job.
pub struct JobHandle {
    shared: Rc<RefCell<JobShared>>,
}

impl JobHandle {
    /// True once every rank's program returned `Poll::Done`.
    pub fn finished(&self) -> bool {
        self.shared.borrow().all_finished()
    }

    /// True once rank `r`'s program finished.
    pub fn rank_finished(&self, r: usize) -> bool {
        self.shared.borrow().finished[r]
    }

    /// Host of rank `r`.
    pub fn host_of(&self, r: usize) -> NodeId {
        self.shared.borrow().hosts[r]
    }

    /// The TCP port rank `r` listens on.
    pub fn port_of(&self, r: usize) -> u16 {
        self.shared.borrow().port_of(r)
    }
}

/// Builds and launches an MPI job.
pub struct JobBuilder {
    hosts: Vec<NodeId>,
    programs: Vec<Box<dyn MpiProgram>>,
    base_port: u16,
    cfg: MpiCfg,
    init_hooks: Vec<InitHook>,
}

impl JobBuilder {
    pub fn new() -> JobBuilder {
        JobBuilder {
            hosts: Vec::new(),
            programs: Vec::new(),
            base_port: 10_000,
            cfg: MpiCfg::default(),
            init_hooks: Vec::new(),
        }
    }

    /// Add one rank: its host and its program. Ranks are numbered in the
    /// order added. One rank per host (loopback is not modeled).
    pub fn rank(mut self, host: NodeId, program: Box<dyn MpiProgram>) -> JobBuilder {
        assert!(
            !self.hosts.contains(&host),
            "one rank per host: {host} already used"
        );
        self.hosts.push(host);
        self.programs.push(program);
        self
    }

    pub fn base_port(mut self, p: u16) -> JobBuilder {
        self.base_port = p;
        self
    }

    pub fn cfg(mut self, cfg: MpiCfg) -> JobBuilder {
        self.cfg = cfg;
        self
    }

    /// Register a per-rank initialization hook, run once before the first
    /// program poll (e.g. `mpichgq-core`'s QoS keyval registration).
    pub fn init_hook(mut self, h: InitHook) -> JobBuilder {
        self.init_hooks.push(h);
        self
    }

    /// Spawn every rank's engine into the simulation.
    pub fn launch(self, sim: &mut Sim) -> JobHandle {
        assert!(!self.hosts.is_empty(), "job with zero ranks");
        let shared = Rc::new(RefCell::new(JobShared::new(
            self.hosts.clone(),
            self.base_port,
        )));
        for (rank, program) in self.programs.into_iter().enumerate() {
            let engine = RankEngine::new(
                rank,
                shared.clone(),
                self.cfg.clone(),
                program,
                self.init_hooks.clone(),
            );
            sim.spawn_app(self.hosts[rank], Box::new(engine));
        }
        JobHandle { shared }
    }
}

impl Default for JobBuilder {
    fn default() -> Self {
        Self::new()
    }
}
