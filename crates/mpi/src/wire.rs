//! The MPICH "channel" wire protocol: message framing over TCP streams.
//!
//! Every MPI message becomes one or more framed records on the TCP stream
//! between two ranks: an *eager* record carries the envelope and payload in
//! one piece; larger messages use the *rendezvous* protocol (RTS → CTS →
//! DATA) so the receiver controls when the bulk data flows — this is the
//! mechanism behind the paper's observation that "a single application-level
//! message may result in many low-level communications" (§3).
//!
//! Bytes on the wire are *counted* through the TCP simulation; record
//! metadata (and real payloads, when present) travel through a shared
//! per-direction FIFO that both endpoints' engines can see. Because TCP
//! delivers in order, the receiver reconstructs record boundaries exactly by
//! counting delivered bytes.

use mpichgq_netsim::NodeId;
use std::collections::{HashMap, VecDeque};

/// Fixed per-record framing overhead (envelope: context, tag, source, kind,
/// lengths, request ids) — modeled after MPICH's 32-byte packet header.
pub const HEADER_BYTES: u64 = 32;

/// Record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireKind {
    /// Envelope + full payload.
    Eager,
    /// Request-to-send: envelope only; payload follows after CTS.
    RndvRts,
    /// Clear-to-send: receiver matched, go ahead.
    RndvCts,
    /// The rendezvous payload.
    RndvData,
}

/// One framed record.
#[derive(Debug, Clone)]
pub struct WireMsg {
    pub kind: WireKind,
    pub ctx: u32,
    pub tag: u32,
    /// Sender's world rank.
    pub src_world: usize,
    /// Message payload length in bytes.
    pub len: u32,
    /// Sender-side request id (rendezvous bookkeeping).
    pub sender_req: u32,
    /// Receiver-side request id (carried by CTS and DATA).
    pub receiver_req: u32,
    /// Real payload bytes, if the message carries them.
    pub payload: Option<Vec<u8>>,
}

impl WireMsg {
    /// Bytes this record occupies on the TCP stream.
    pub fn wire_len(&self) -> u64 {
        HEADER_BYTES
            + match self.kind {
                WireKind::Eager | WireKind::RndvData => self.len as u64,
                WireKind::RndvRts | WireKind::RndvCts => 0,
            }
    }
}

/// State shared by all ranks of one MPI job.
pub struct JobShared {
    /// `hosts[world_rank]` — the node each rank runs on.
    pub hosts: Vec<NodeId>,
    /// Rank r listens on `base_port + r`.
    pub base_port: u16,
    /// In-flight record metadata per directed rank pair, in stream order.
    pub streams: HashMap<(usize, usize), VecDeque<WireMsg>>,
    /// Which ranks' programs have finished.
    pub finished: Vec<bool>,
    /// Ranks currently failed (host crashed, not yet restarted). The
    /// process-manager view: failure knowledge is global and instantaneous,
    /// the strongest form of MPICH-G2's startup/monitoring service.
    pub failed: Vec<bool>,
    /// Incarnation counter per rank; bumped on each restart.
    pub epoch: Vec<u32>,
    /// Last checkpoint each rank published ([`crate::Mpi::checkpoint`]).
    /// Survives the rank's host crashing — the paper-era model of a
    /// checkpoint written to stable storage off-host.
    pub checkpoints: Vec<Option<Vec<u8>>>,
    /// The peer-failure error each rank terminated with, if any.
    pub errors: Vec<Option<usize>>,
    /// Set when a rank with the `Abort` error handler observed a failure
    /// (`MPI_ERRORS_ARE_FATAL`): the whole job is considered aborted.
    pub aborted: bool,
}

impl JobShared {
    pub fn new(hosts: Vec<NodeId>, base_port: u16) -> JobShared {
        let n = hosts.len();
        JobShared {
            hosts,
            base_port,
            streams: HashMap::new(),
            finished: vec![false; n],
            failed: vec![false; n],
            epoch: vec![0; n],
            checkpoints: vec![None; n],
            errors: vec![None; n],
            aborted: false,
        }
    }

    /// Record `rank` as failed and flush every stream touching it: bytes to
    /// or from a dead process will never move, and leaving the record
    /// metadata queued would leak it across a restart (the restarted
    /// incarnation starts from an empty stream).
    pub fn mark_failed(&mut self, rank: usize) -> bool {
        if self.failed[rank] {
            return false;
        }
        self.failed[rank] = true;
        self.streams.retain(|&(f, t), _| f != rank && t != rank);
        true
    }

    /// Reset rank state for a fresh incarnation (respawn hook).
    pub fn mark_restarted(&mut self, rank: usize) {
        self.failed[rank] = false;
        self.finished[rank] = false;
        self.errors[rank] = None;
        self.epoch[rank] += 1;
    }

    /// True once every rank that is not currently failed has finished.
    pub fn all_surviving_finished(&self) -> bool {
        self.finished
            .iter()
            .zip(&self.failed)
            .all(|(&fin, &fail)| fin || fail)
    }

    pub fn size(&self) -> usize {
        self.hosts.len()
    }

    pub fn rank_of_host(&self, host: NodeId) -> Option<usize> {
        self.hosts.iter().position(|&h| h == host)
    }

    pub fn port_of(&self, rank: usize) -> u16 {
        self.base_port + rank as u16
    }

    pub fn all_finished(&self) -> bool {
        self.finished.iter().all(|&f| f)
    }

    /// Append a record to the (from → to) stream; returns its wire length.
    pub fn push_record(&mut self, from: usize, to: usize, msg: WireMsg) -> u64 {
        let len = msg.wire_len();
        self.streams.entry((from, to)).or_default().push_back(msg);
        len
    }

    /// Pop the head record of (from → to) if `available_bytes` covers it.
    pub fn pop_record(&mut self, from: usize, to: usize, available_bytes: u64) -> Option<WireMsg> {
        let q = self.streams.get_mut(&(from, to))?;
        let head_len = q.front()?.wire_len();
        if available_bytes >= head_len {
            q.pop_front()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(kind: WireKind, len: u32) -> WireMsg {
        WireMsg {
            kind,
            ctx: 0,
            tag: 0,
            src_world: 0,
            len,
            sender_req: 0,
            receiver_req: 0,
            payload: None,
        }
    }

    #[test]
    fn wire_lengths() {
        assert_eq!(msg(WireKind::Eager, 100).wire_len(), 132);
        assert_eq!(msg(WireKind::RndvRts, 100_000).wire_len(), 32);
        assert_eq!(msg(WireKind::RndvCts, 100_000).wire_len(), 32);
        assert_eq!(msg(WireKind::RndvData, 100_000).wire_len(), 100_032);
    }

    #[test]
    fn records_pop_only_when_fully_delivered() {
        let mut js = JobShared::new(vec![NodeId(0), NodeId(1)], 9000);
        js.push_record(0, 1, msg(WireKind::Eager, 100)); // 132 bytes
        js.push_record(0, 1, msg(WireKind::RndvRts, 5)); // 32 bytes
        assert!(js.pop_record(0, 1, 131).is_none());
        let m = js.pop_record(0, 1, 132).unwrap();
        assert_eq!(m.kind, WireKind::Eager);
        assert!(js.pop_record(0, 1, 31).is_none());
        assert!(js.pop_record(0, 1, 32).is_some());
        assert!(js.pop_record(0, 1, 1_000_000).is_none());
    }

    #[test]
    fn failure_flushes_streams_and_restart_resets() {
        let mut js = JobShared::new(vec![NodeId(0), NodeId(1), NodeId(2)], 9000);
        js.push_record(0, 1, msg(WireKind::Eager, 10));
        js.push_record(1, 2, msg(WireKind::Eager, 10));
        js.push_record(2, 0, msg(WireKind::Eager, 10));
        assert!(js.mark_failed(1));
        assert!(!js.mark_failed(1), "second report is a no-op");
        // Streams touching rank 1 are gone; the 2 -> 0 stream survives.
        assert!(js.pop_record(0, 1, u64::MAX).is_none());
        assert!(js.pop_record(1, 2, u64::MAX).is_none());
        assert!(js.pop_record(2, 0, u64::MAX).is_some());
        js.finished = vec![true, false, true];
        assert!(js.all_surviving_finished());
        js.mark_restarted(1);
        assert!(!js.failed[1]);
        assert_eq!(js.epoch[1], 1);
        assert!(!js.all_surviving_finished());
    }

    #[test]
    fn host_rank_mapping() {
        let js = JobShared::new(vec![NodeId(5), NodeId(9)], 9000);
        assert_eq!(js.rank_of_host(NodeId(9)), Some(1));
        assert_eq!(js.rank_of_host(NodeId(4)), None);
        assert_eq!(js.port_of(1), 9001);
    }
}
