//! Regression: large socket buffers must not break MPI transfers.
use mpichgq_mpi::{JobBuilder, Mpi, MpiCfg, Poll};
use mpichgq_netsim::{Framing, LinkCfg, QueueCfg, TopoBuilder};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::{Sim, TcpCfg};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn large_socket_buffers_transfer() {
    let mut b = TopoBuilder::new(3);
    let h0 = b.host("h0");
    let h1 = b.host("h1");
    let r = b.router("r");
    let cfg = LinkCfg {
        bandwidth_bps: 100_000_000,
        delay: SimDelta::from_micros(100),
        framing: Framing::Ethernet,
    };
    b.link(h0, r, cfg, QueueCfg::priority_default());
    b.link(h1, r, cfg, QueueCfg::priority_default());
    let mut sim = Sim::new(b.build());
    let tcp = TcpCfg {
        send_buf: 512 * 1024,
        recv_buf: 512 * 1024,
        ..TcpCfg::default()
    };
    let mcfg = MpiCfg {
        tcp,
        ..MpiCfg::default()
    };
    let got = Rc::new(RefCell::new(0u64));
    let got2 = got.clone();
    let mut sent = false;
    let tx = move |mpi: &mut Mpi| {
        if !sent {
            sent = true;
            mpi.isend(mpi.comm_world(), 1, 1, 200_000);
        }
        Poll::Done
    };
    let mut req = None;
    let rx = move |mpi: &mut Mpi| {
        if req.is_none() {
            req = Some(mpi.irecv(mpi.comm_world(), Some(0), Some(1)));
        }
        match mpi.test(req.unwrap()) {
            Some(info) => {
                *got2.borrow_mut() += info.len as u64;
                Poll::Done
            }
            None => Poll::Pending,
        }
    };
    let job = JobBuilder::new()
        .rank(h0, Box::new(tx))
        .rank(h1, Box::new(rx))
        .cfg(mcfg)
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(20));
    assert!(job.finished(), "job did not finish");
    assert_eq!(*got.borrow(), 200_000);
}
