//! Rank-failure semantics: collectives terminate with `CollState::Failed`,
//! point-to-point requests error under `ErrorHandler::Return`, the default
//! `Abort` handler flags the job, unexpected-queue entries from a dead
//! sender drain, and a restartable rank resumes from its checkpoint.

use mpichgq_mpi::{
    Allreduce, Barrier, CollState, CommSplit, ErrorHandler, Gather, JobBuilder, JobHandle, Mpi,
    MpiProgram, Poll, Reduce, COMM_WORLD,
};
use mpichgq_netsim::faults::{FaultAction, FaultPlan};
use mpichgq_netsim::{Framing, LinkCfg, NodeId, QueueCfg, TopoBuilder};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::Sim;
use std::cell::RefCell;
use std::rc::Rc;

fn star(n: usize) -> (Sim, Vec<NodeId>) {
    let mut b = TopoBuilder::new(17);
    let hosts: Vec<NodeId> = (0..n).map(|i| b.host(&format!("h{i}"))).collect();
    let r = b.router("r");
    let cfg = LinkCfg {
        bandwidth_bps: 100_000_000,
        delay: SimDelta::from_micros(200),
        framing: Framing::Ethernet,
    };
    for &h in &hosts {
        b.link(h, r, cfg, QueueCfg::priority_default());
    }
    (Sim::new(b.build()), hosts)
}

/// A rank that never participates: it simply waits to be crashed.
fn idle() -> Box<dyn MpiProgram> {
    Box::new(|_mpi: &mut Mpi| Poll::Pending)
}

/// Launch `n` ranks, crash `dead`'s host at 500 ms, run 60 s.
fn crash_star(
    n: usize,
    dead: usize,
    mk: impl Fn(usize) -> Box<dyn MpiProgram>,
) -> (Sim, JobHandle) {
    let (mut sim, hosts) = star(n);
    sim.net.install_fault_plan(FaultPlan::new(11).at(
        SimTime::from_millis(500),
        FaultAction::HostCrash { host: hosts[dead] },
    ));
    let mut job = JobBuilder::new();
    for (r, &h) in hosts.iter().enumerate() {
        job = job.rank(h, mk(r));
    }
    let handle = job.launch(&mut sim);
    sim.run_until(SimTime::from_secs(60));
    (sim, handle)
}

/// Shared scaffolding for the per-collective regression tests: the dead
/// rank idles, every survivor drives the collective built by `mk_poll`.
/// Ranks whose local part can complete before the crash may legitimately
/// finish `Ready` (a gather leaf's send, say), but no survivor may hang,
/// every rank in `must_fail` must observe `CollState::Failed(dead)`, and
/// any reported failure must name the dead rank.
fn collective_failure_case(
    n: usize,
    dead: usize,
    must_fail: &[usize],
    mk_poll: impl Fn(usize) -> Box<dyn FnMut(&mut Mpi) -> CollState>,
) {
    let failures: Rc<RefCell<Vec<(usize, usize)>>> = Rc::new(RefCell::new(Vec::new()));
    let failures_outer = failures.clone();
    let (_sim, handle) = crash_star(n, dead, |r| {
        if r == dead {
            return idle();
        }
        let failures = failures.clone();
        let mut poll = mk_poll(r);
        Box::new(move |mpi: &mut Mpi| match poll(mpi) {
            CollState::Ready => Poll::Done,
            CollState::Pending => Poll::Pending,
            CollState::Failed(f) => {
                failures.borrow_mut().push((r, f));
                Poll::Failed(f)
            }
        })
    });
    assert!(
        handle.surviving_finished(),
        "survivors hung after rank {dead} crashed"
    );
    assert!(!handle.finished(), "dead rank cannot have finished");
    assert!(handle.rank_failed(dead));
    let got = failures_outer.borrow().clone();
    assert!(
        got.iter().all(|&(_, f)| f == dead),
        "failures must name the dead rank: {got:?}"
    );
    for &r in must_fail {
        assert!(
            got.contains(&(r, dead)),
            "rank {r} must see CollState::Failed({dead}), saw {got:?}"
        );
        assert_eq!(handle.rank_error(r), Some(dead), "rank {r} error");
    }
}

fn sum_op(a: &[u8], b: &[u8]) -> Vec<u8> {
    let x = u64::from_le_bytes(a.try_into().unwrap());
    let y = u64::from_le_bytes(b.try_into().unwrap());
    (x + y).to_le_bytes().to_vec()
}

#[test]
fn barrier_fails_when_rank_dies() {
    collective_failure_case(4, 3, &[0, 1, 2], |_r| {
        let mut bar: Option<Barrier> = None;
        Box::new(move |mpi: &mut Mpi| {
            if bar.is_none() {
                bar = Some(Barrier::new(mpi, mpi.comm_world()));
            }
            bar.as_mut().unwrap().poll(mpi)
        })
    });
}

#[test]
fn gather_fails_when_rank_dies() {
    collective_failure_case(4, 1, &[0], |r| {
        let mut g: Option<Gather> = None;
        Box::new(move |mpi: &mut Mpi| {
            if g.is_none() {
                g = Some(Gather::new(mpi, mpi.comm_world(), 0, vec![r as u8]));
            }
            g.as_mut().unwrap().poll(mpi)
        })
    });
}

#[test]
fn reduce_fails_when_rank_dies() {
    collective_failure_case(4, 2, &[0], |r| {
        let mut red: Option<Reduce> = None;
        Box::new(move |mpi: &mut Mpi| {
            if red.is_none() {
                let mine = ((r + 1) as u64).to_le_bytes().to_vec();
                red = Some(Reduce::new(mpi, mpi.comm_world(), 0, mine, sum_op));
            }
            red.as_mut().unwrap().poll(mpi)
        })
    });
}

#[test]
fn allreduce_fails_when_rank_dies() {
    collective_failure_case(4, 0, &[1, 2, 3], |r| {
        let mut ar: Option<Allreduce> = None;
        Box::new(move |mpi: &mut Mpi| {
            if ar.is_none() {
                let mine = ((r + 1) as u64).to_le_bytes().to_vec();
                ar = Some(Allreduce::new(mpi, mpi.comm_world(), mine, sum_op));
            }
            ar.as_mut().unwrap().poll(mpi)
        })
    });
}

#[test]
fn comm_split_fails_when_rank_dies() {
    collective_failure_case(4, 3, &[0, 1, 2], |r| {
        let mut split: Option<CommSplit> = None;
        Box::new(move |mpi: &mut Mpi| {
            if split.is_none() {
                split = Some(CommSplit::new(
                    mpi,
                    mpi.comm_world(),
                    (r % 2) as i32,
                    r as i32,
                ));
            }
            split.as_mut().unwrap().poll(mpi)
        })
    });
}

#[test]
fn pt2pt_requests_error_under_return_handler() {
    // Rank 0 (ERRORS_RETURN) has a recv posted to rank 1 when it dies; the
    // recv errors, and a subsequent send to the dead rank errors too.
    let errs: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
    let errs_outer = errs.clone();
    let groups: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
    let groups_outer = groups.clone();
    let (_sim, handle) = crash_star(2, 1, |r| {
        if r == 1 {
            return idle();
        }
        let errs = errs.clone();
        let groups = groups.clone();
        let mut recv = None;
        let mut send = None;
        Box::new(move |mpi: &mut Mpi| {
            if recv.is_none() && send.is_none() {
                mpi.set_errhandler(COMM_WORLD, ErrorHandler::Return);
                recv = Some(mpi.irecv(COMM_WORLD, Some(1), Some(5)));
            }
            if let Some(rq) = recv {
                match mpi.test_result(rq) {
                    Ok(Some(_)) => panic!("recv from a rank that never sends completed"),
                    Ok(None) => return Poll::Pending,
                    Err(e) => {
                        errs.borrow_mut().push(e.failed_world);
                        recv = None;
                        *groups.borrow_mut() = mpi.comm_group_failed(COMM_WORLD).members().to_vec();
                        // A fresh send to the dead rank must fail immediately.
                        send = Some(mpi.isend_bytes(COMM_WORLD, 1, 9, vec![1, 2, 3]));
                    }
                }
            }
            match mpi.test_result(send.unwrap()) {
                Ok(Some(_)) => panic!("send to a dead rank completed"),
                Ok(None) => Poll::Pending,
                Err(e) => {
                    errs.borrow_mut().push(e.failed_world);
                    Poll::Done
                }
            }
        })
    });
    assert!(handle.surviving_finished());
    assert!(handle.rank_finished(0));
    assert_eq!(handle.rank_error(0), None, "Return handler: clean finish");
    assert_eq!(*errs_outer.borrow(), vec![1, 1]);
    assert_eq!(*groups_outer.borrow(), vec![1]);
}

#[test]
fn wildcard_recv_fails_when_any_peer_dies() {
    // MPI_ANY_SOURCE cannot be satisfied once any potential matcher is
    // gone; rank 2's death must error rank 0's wildcard receive.
    let errs: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
    let errs_outer = errs.clone();
    let (_sim, handle) = crash_star(3, 2, |r| {
        if r != 0 {
            return idle();
        }
        let errs = errs.clone();
        let mut recv = None;
        Box::new(move |mpi: &mut Mpi| {
            if recv.is_none() {
                mpi.set_errhandler(COMM_WORLD, ErrorHandler::Return);
                recv = Some(mpi.irecv(COMM_WORLD, None, None));
            }
            match mpi.test_result(recv.unwrap()) {
                Ok(Some(_)) => panic!("wildcard recv completed with no sender"),
                Ok(None) => Poll::Pending,
                Err(e) => {
                    errs.borrow_mut().push(e.failed_world);
                    Poll::Done
                }
            }
        })
    });
    assert!(handle.rank_finished(0));
    assert_eq!(*errs_outer.borrow(), vec![2]);
}

#[test]
fn abort_handler_terminates_rank_and_flags_job() {
    // Default MPICH disposition: MPI_ERRORS_ARE_FATAL. Testing a failed
    // request under it terminates the program with Poll::Failed.
    let (sim, handle) = crash_star(2, 1, |r| {
        if r == 1 {
            return idle();
        }
        let mut recv = None;
        Box::new(move |mpi: &mut Mpi| {
            if recv.is_none() {
                recv = Some(mpi.irecv(COMM_WORLD, Some(1), Some(5)));
            }
            match mpi.test(recv.unwrap()) {
                Some(_) => panic!("recv from a rank that never sends completed"),
                None => Poll::Pending,
            }
        })
    });
    assert!(handle.surviving_finished());
    assert!(handle.aborted(), "Abort handler must flag the job");
    assert_eq!(handle.rank_error(0), Some(1));
    assert_eq!(sim.net.obs.metrics.counter_value("mpi.aborts"), Some(1));
}

#[test]
fn unexpected_queue_drains_when_sender_dies() {
    // Rank 0 parks three eager messages in rank 1's unexpected queue and
    // dies; the entries must drain so the queue cannot leak (gauge back
    // to zero) and the survivor sees the failure.
    let (sim, handle) = crash_star(2, 0, |r| {
        if r == 0 {
            let mut sent = false;
            return Box::new(move |mpi: &mut Mpi| {
                if !sent {
                    sent = true;
                    for tag in 0..3u32 {
                        mpi.isend_bytes(COMM_WORLD, 1, tag, vec![tag as u8; 16]);
                    }
                }
                Poll::Pending
            });
        }
        let _ = r;
        Box::new(move |mpi: &mut Mpi| {
            // Never posts a matching recv; finishes once it learns of the
            // sender's death.
            if mpi.comm_failed(COMM_WORLD) == Some(0) {
                Poll::Done
            } else {
                Poll::Pending
            }
        })
    });
    assert!(handle.rank_finished(1));
    assert_eq!(
        sim.net.obs.metrics.gauge_value("mpi.unexpected.depth"),
        Some(0.0),
        "unexpected queue must drain when its source dies"
    );
    assert_eq!(
        sim.net.obs.metrics.counter_value("mpi.unexpected_dropped"),
        Some(3)
    );
}

#[test]
fn checkpoint_restart_resumes_stream() {
    // Restartable sender streams TOTAL sequence numbers to a surviving
    // receiver with stop-and-wait acks, checkpointing after each ack. A
    // mid-stream crash + restart must resume from the checkpoint and the
    // receiver must observe every number exactly once, in order.
    const TOTAL: u64 = 6;
    const TAG_DATA: u32 = 7;
    const TAG_ACK: u32 = 8;
    let (mut sim, hosts) = star(2);
    sim.net.install_fault_plan(
        FaultPlan::new(23)
            .at(
                SimTime::from_millis(400),
                FaultAction::HostCrash { host: hosts[1] },
            )
            .at(
                SimTime::from_millis(800),
                FaultAction::HostRestart { host: hosts[1] },
            ),
    );

    let seen: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let restored_from: Rc<RefCell<Vec<Option<u64>>>> = Rc::new(RefCell::new(Vec::new()));

    let receiver = {
        let seen = seen.clone();
        let mut expected: u64 = 0;
        let mut recv = None;
        let mut acks: Vec<mpichgq_mpi::ReqId> = Vec::new();
        Box::new(move |mpi: &mut Mpi| {
            mpi.set_errhandler(COMM_WORLD, ErrorHandler::Return);
            acks.retain(|&a| matches!(mpi.test_result(a), Ok(None)));
            loop {
                if expected == TOTAL {
                    return Poll::Done;
                }
                if recv.is_none() {
                    recv = Some(mpi.irecv(COMM_WORLD, Some(1), Some(TAG_DATA)));
                }
                match mpi.test_result(recv.unwrap()) {
                    Ok(Some(info)) => {
                        recv = None;
                        let s = u64::from_le_bytes(info.payload.unwrap().try_into().unwrap());
                        if s == expected {
                            seen.borrow_mut().push(s);
                            expected += 1;
                        }
                        // Ack even duplicates so a resent message unsticks
                        // the sender.
                        acks.push(mpi.isend_bytes(
                            COMM_WORLD,
                            1,
                            TAG_ACK,
                            s.to_le_bytes().to_vec(),
                        ));
                    }
                    Ok(None) => return Poll::Pending,
                    Err(e) => {
                        assert_eq!(e.failed_world, 1);
                        recv = None;
                        return Poll::Pending;
                    }
                }
            }
        })
    };

    let sender_factory: mpichgq_mpi::ProgramFactory = {
        let restored_from = restored_from.clone();
        Rc::new(move || {
            let restored_from = restored_from.clone();
            let mut next: Option<u64> = None;
            let mut send = None;
            let mut ack = None;
            let mut waiting_timer = false;
            Box::new(move |mpi: &mut Mpi| {
                if next.is_none() {
                    let from = mpi
                        .restored()
                        .map(|b| u64::from_le_bytes(b.try_into().unwrap()));
                    restored_from.borrow_mut().push(from);
                    next = Some(from.unwrap_or(0));
                }
                loop {
                    let cur = next.unwrap();
                    if cur == TOTAL {
                        return Poll::Done;
                    }
                    if waiting_timer {
                        if !mpi.take_timer(1) {
                            return Poll::Pending;
                        }
                        waiting_timer = false;
                    }
                    if send.is_none() && ack.is_none() {
                        send = Some(mpi.isend_bytes(
                            COMM_WORLD,
                            0,
                            TAG_DATA,
                            cur.to_le_bytes().to_vec(),
                        ));
                        ack = Some(mpi.irecv(COMM_WORLD, Some(0), Some(TAG_ACK)));
                    }
                    if let Some(s) = send {
                        if mpi.test(s).is_some() {
                            send = None;
                        }
                    }
                    match mpi.test(ack.unwrap()) {
                        Some(info) => {
                            ack = None;
                            let acked =
                                u64::from_le_bytes(info.payload.unwrap().try_into().unwrap());
                            assert_eq!(acked, cur);
                            next = Some(cur + 1);
                            mpi.checkpoint((cur + 1).to_le_bytes().to_vec());
                            mpi.set_timer(SimDelta::from_millis(150), 1);
                            waiting_timer = true;
                        }
                        None => return Poll::Pending,
                    }
                }
            }) as Box<dyn MpiProgram>
        })
    };

    let handle = JobBuilder::new()
        .rank(hosts[0], receiver)
        .rank_restartable(hosts[1], sender_factory)
        .launch(&mut sim);
    sim.run_until(SimTime::from_secs(60));

    assert!(handle.finished(), "job must complete after restart");
    assert_eq!(handle.epoch_of(1), 1, "sender ran two incarnations");
    assert_eq!(handle.epoch_of(0), 0);
    let seen = seen.borrow();
    assert_eq!(*seen, (0..TOTAL).collect::<Vec<u64>>());
    let restored = restored_from.borrow();
    assert_eq!(restored.len(), 2, "factory ran twice");
    assert_eq!(restored[0], None, "first incarnation starts fresh");
    let resumed = restored[1].expect("second incarnation finds a checkpoint");
    assert!(
        (1..TOTAL).contains(&resumed),
        "restart resumed mid-stream at {resumed}"
    );
    assert!(
        sim.net
            .obs
            .metrics
            .counter_value("mpi.checkpoints")
            .unwrap()
            >= TOTAL
    );
    let fs = sim.net.fault_stats().unwrap();
    assert_eq!((fs.host_crashes, fs.host_restarts), (1, 1));
    assert_eq!(fs.dead_deliveries, 0);
}

#[test]
fn crash_without_restart_leaves_surviving_finished() {
    // A crashed rank that never comes back must not block job teardown
    // accounting: `finished()` stays false, `surviving_finished()` flips.
    let (_sim, handle) = crash_star(3, 1, |r| {
        if r == 1 {
            return idle();
        }
        Box::new(move |mpi: &mut Mpi| {
            if mpi.comm_failed(COMM_WORLD).is_some() {
                Poll::Done
            } else {
                Poll::Pending
            }
        })
    });
    assert!(!handle.finished());
    assert!(handle.surviving_finished());
    assert!(handle.rank_failed(1));
    assert!(handle.rank_finished(0) && handle.rank_finished(2));
}
