//! Collective-operation correctness across rank counts, including
//! non-powers of two, plus communicator splitting.

use mpichgq_mpi::{
    Allgather, Allreduce, Barrier, Bcast, CollState, CommId, CommSplit, Gather, JobBuilder, Mpi,
    Poll, Reduce,
};
use mpichgq_netsim::{Framing, LinkCfg, NodeId, QueueCfg, TopoBuilder};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::Sim;
use std::cell::RefCell;
use std::rc::Rc;

fn star(n: usize) -> (Sim, Vec<NodeId>) {
    let mut b = TopoBuilder::new(17);
    let hosts: Vec<NodeId> = (0..n).map(|i| b.host(&format!("h{i}"))).collect();
    let r = b.router("r");
    let cfg = LinkCfg {
        bandwidth_bps: 100_000_000,
        delay: SimDelta::from_micros(200),
        framing: Framing::Ethernet,
    };
    for &h in &hosts {
        b.link(h, r, cfg, QueueCfg::priority_default());
    }
    (Sim::new(b.build()), hosts)
}

fn sum_op(a: &[u8], b: &[u8]) -> Vec<u8> {
    let x = u64::from_le_bytes(a.try_into().unwrap());
    let y = u64::from_le_bytes(b.try_into().unwrap());
    (x + y).to_le_bytes().to_vec()
}

/// Run one collective program on every rank; panics if it does not finish.
fn run_all(n: usize, mk: impl Fn(usize) -> Box<dyn mpichgq_mpi::MpiProgram>) {
    let (mut sim, hosts) = star(n);
    let mut job = JobBuilder::new();
    for (r, &h) in hosts.iter().enumerate() {
        job = job.rank(h, mk(r));
    }
    let handle = job.launch(&mut sim);
    sim.run_until(SimTime::from_secs(60));
    assert!(handle.finished(), "collective deadlocked with {n} ranks");
}

#[test]
fn allgather_all_sizes() {
    for n in [1usize, 2, 3, 5, 8] {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen_outer = seen.clone();
        run_all(n, |r| {
            let seen = seen.clone();
            let mut ag: Option<Allgather> = None;
            Box::new(move |mpi: &mut Mpi| {
                if ag.is_none() {
                    ag = Some(Allgather::new(mpi, mpi.comm_world(), vec![r as u8; r + 1]));
                }
                match ag.as_mut().unwrap().poll(mpi) {
                    CollState::Ready => {
                        seen.borrow_mut().push(ag.as_mut().unwrap().take_all());
                        Poll::Done
                    }
                    CollState::Pending => Poll::Pending,
                    CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
                }
            })
        });
        let seen = seen_outer.borrow();
        assert_eq!(seen.len(), n);
        let expect: Vec<Vec<u8>> = (0..n).map(|r| vec![r as u8; r + 1]).collect();
        for got in seen.iter() {
            assert_eq!(got, &expect, "n={n}");
        }
    }
}

#[test]
fn allreduce_sums_on_every_rank() {
    for n in [2usize, 3, 7] {
        let sums = Rc::new(RefCell::new(Vec::new()));
        let sums_outer = sums.clone();
        run_all(n, |r| {
            let sums = sums.clone();
            let mut ar: Option<Allreduce> = None;
            Box::new(move |mpi: &mut Mpi| {
                if ar.is_none() {
                    let mine = ((r + 1) as u64).to_le_bytes().to_vec();
                    ar = Some(Allreduce::new(mpi, mpi.comm_world(), mine, sum_op));
                }
                match ar.as_mut().unwrap().poll(mpi) {
                    CollState::Ready => {
                        let out = ar.as_mut().unwrap().take_result().unwrap();
                        sums.borrow_mut()
                            .push(u64::from_le_bytes(out.try_into().unwrap()));
                        Poll::Done
                    }
                    CollState::Pending => Poll::Pending,
                    CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
                }
            })
        });
        let expect = (n as u64) * (n as u64 + 1) / 2;
        let sums = sums_outer.borrow();
        assert_eq!(sums.len(), n);
        assert!(sums.iter().all(|&s| s == expect), "n={n}: {sums:?}");
    }
}

#[test]
fn reduce_non_power_of_two() {
    for n in [3usize, 5, 6] {
        let out = Rc::new(RefCell::new(None));
        let out_outer = out.clone();
        run_all(n, |r| {
            let out = out.clone();
            let mut red: Option<Reduce> = None;
            Box::new(move |mpi: &mut Mpi| {
                if red.is_none() {
                    let mine = ((r + 1) as u64).to_le_bytes().to_vec();
                    // Root 1 exercises the rotated tree.
                    red = Some(Reduce::new(mpi, mpi.comm_world(), 1, mine, sum_op));
                }
                match red.as_mut().unwrap().poll(mpi) {
                    CollState::Ready => {
                        if mpi.rank() == 1 {
                            let v = red.as_mut().unwrap().take_result().unwrap();
                            *out.borrow_mut() = Some(u64::from_le_bytes(v.try_into().unwrap()));
                        }
                        Poll::Done
                    }
                    CollState::Pending => Poll::Pending,
                    CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
                }
            })
        });
        assert_eq!(
            *out_outer.borrow(),
            Some((n as u64) * (n as u64 + 1) / 2),
            "n={n}"
        );
    }
}

#[test]
fn bcast_from_nonzero_root_five_ranks() {
    let n = 5;
    let got = Rc::new(RefCell::new(0usize));
    let got_outer = got.clone();
    run_all(n, |r| {
        let got = got.clone();
        let mut bc: Option<Bcast> = None;
        Box::new(move |mpi: &mut Mpi| {
            if bc.is_none() {
                let data = (r == 3).then(|| Some(vec![9, 9, 9]));
                bc = Some(Bcast::new(mpi, mpi.comm_world(), 3, 3, data));
            }
            match bc.as_mut().unwrap().poll(mpi) {
                CollState::Ready => {
                    assert_eq!(bc.as_mut().unwrap().take_data().unwrap(), vec![9, 9, 9]);
                    *got.borrow_mut() += 1;
                    Poll::Done
                }
                CollState::Pending => Poll::Pending,
                CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
            }
        })
    });
    assert_eq!(*got_outer.borrow(), n);
}

#[test]
fn comm_split_partitions_and_isolates() {
    // 6 ranks split by parity; keys reverse the order within each half.
    let n = 6;
    let reports = Rc::new(RefCell::new(Vec::new()));
    let reports_outer = reports.clone();
    run_all(n, |r| {
        let reports = reports.clone();
        let mut split: Option<CommSplit> = None;
        let mut sub: Option<CommId> = None;
        let mut bar: Option<Barrier> = None;
        Box::new(move |mpi: &mut Mpi| {
            if split.is_none() {
                let color = (r % 2) as i32;
                let key = -(r as i32); // reverse order within the color
                split = Some(CommSplit::new(mpi, mpi.comm_world(), color, key));
            }
            if sub.is_none() {
                match split.as_mut().unwrap().poll(mpi) {
                    CollState::Ready => {
                        let c = split.as_mut().unwrap().take_comm();
                        sub = Some(c);
                        let comm = mpi.comm(c);
                        reports
                            .borrow_mut()
                            .push((r, comm.my_rank, comm.group.members().to_vec()));
                        // A barrier on the sub-communicator proves the new
                        // context works end to end.
                        bar = Some(Barrier::new(mpi, c));
                    }
                    CollState::Pending => return Poll::Pending,
                    CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
                }
            }
            match bar.as_mut().unwrap().poll(mpi) {
                CollState::Ready => Poll::Done,
                CollState::Pending => Poll::Pending,
                CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
            }
        })
    });
    let reports = reports_outer.borrow();
    assert_eq!(reports.len(), n);
    for &(world, sub_rank, ref members) in reports.iter() {
        let expect_members: Vec<usize> = if world % 2 == 0 {
            vec![4, 2, 0] // keys -4 < -2 < 0
        } else {
            vec![5, 3, 1]
        };
        assert_eq!(members, &expect_members, "world rank {world}");
        let expect_rank = expect_members.iter().position(|&m| m == world).unwrap();
        assert_eq!(sub_rank, expect_rank, "world rank {world}");
    }
}

#[test]
fn gather_five_ranks_nonzero_root() {
    let n = 5;
    let out = Rc::new(RefCell::new(None));
    let out_outer = out.clone();
    run_all(n, |r| {
        let out = out.clone();
        let mut g: Option<Gather> = None;
        Box::new(move |mpi: &mut Mpi| {
            if g.is_none() {
                g = Some(Gather::new(mpi, mpi.comm_world(), 2, vec![r as u8 * 10]));
            }
            match g.as_mut().unwrap().poll(mpi) {
                CollState::Ready => {
                    if mpi.rank() == 2 {
                        *out.borrow_mut() = Some(g.as_mut().unwrap().take_collected());
                    }
                    Poll::Done
                }
                CollState::Pending => Poll::Pending,
                CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
            }
        })
    });
    assert_eq!(
        *out_outer.borrow(),
        Some(vec![vec![0], vec![10], vec![20], vec![30], vec![40]])
    );
}
