//! End-to-end MPI behavior: point-to-point semantics, matching, context
//! isolation, rendezvous, attributes, and collectives — all over the
//! simulated network.

use mpichgq_mpi::{
    Barrier, Bcast, CollState, CommId, Gather, JobBuilder, Mpi, MpiCfg, Poll, Reduce,
};
use mpichgq_netsim::{Framing, LinkCfg, NodeId, QueueCfg, TopoBuilder};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::Sim;
use std::cell::RefCell;
use std::rc::Rc;

/// A star of `n` hosts around one router: 100 Mb/s, 100 µs links.
fn star(n: usize) -> (Sim, Vec<NodeId>) {
    let mut b = TopoBuilder::new(3);
    let hosts: Vec<NodeId> = (0..n).map(|i| b.host(&format!("h{i}"))).collect();
    let r = b.router("r");
    let cfg = LinkCfg {
        bandwidth_bps: 100_000_000,
        delay: SimDelta::from_micros(100),
        framing: Framing::Ethernet,
    };
    for &h in &hosts {
        b.link(h, r, cfg, QueueCfg::priority_default());
    }
    (Sim::new(b.build()), hosts)
}

fn run(sim: &mut Sim, secs: u64) {
    sim.run_until(SimTime::from_secs(secs));
}

#[test]
fn two_rank_counted_ping_pong() {
    let (mut sim, hosts) = star(2);
    let rounds = 50u32;
    let finished = Rc::new(RefCell::new([false; 2]));

    let f0 = finished.clone();
    let pinger = move |mpi: &mut Mpi| {
        // State machine stored in captured locals.
        f0.borrow_mut()[0] = true;
        let _ = mpi;
        Poll::Done
    };
    let _ = pinger; // replaced below by the real state machine

    // Real ping side.
    struct Ping {
        rounds: u32,
        round: u32,
        state: u8, // 0 = need send, 1 = waiting recv
        req: Option<mpichgq_mpi::ReqId>,
        done_flag: Rc<RefCell<[bool; 2]>>,
    }
    impl mpichgq_mpi::MpiProgram for Ping {
        fn poll(&mut self, mpi: &mut Mpi) -> Poll {
            let w = mpi.comm_world();
            loop {
                match self.state {
                    0 => {
                        if self.round == self.rounds {
                            self.done_flag.borrow_mut()[0] = true;
                            return Poll::Done;
                        }
                        let _s = mpi.isend(w, 1, 7, 1000);
                        self.req = Some(mpi.irecv(w, Some(1), Some(7)));
                        self.state = 1;
                    }
                    1 => match mpi.test(self.req.unwrap()) {
                        Some(info) => {
                            assert_eq!(info.src, 1);
                            assert_eq!(info.len, 1000);
                            self.round += 1;
                            self.state = 0;
                        }
                        None => return Poll::Pending,
                    },
                    _ => unreachable!(),
                }
            }
        }
    }
    struct Pong {
        rounds: u32,
        round: u32,
        req: Option<mpichgq_mpi::ReqId>,
        done_flag: Rc<RefCell<[bool; 2]>>,
    }
    impl mpichgq_mpi::MpiProgram for Pong {
        fn poll(&mut self, mpi: &mut Mpi) -> Poll {
            let w = mpi.comm_world();
            loop {
                if self.round == self.rounds {
                    self.done_flag.borrow_mut()[1] = true;
                    return Poll::Done;
                }
                if self.req.is_none() {
                    self.req = Some(mpi.irecv(w, Some(0), Some(7)));
                }
                match mpi.test(self.req.unwrap()) {
                    Some(_) => {
                        self.req = None;
                        mpi.isend(w, 0, 7, 1000);
                        self.round += 1;
                    }
                    None => return Poll::Pending,
                }
            }
        }
    }

    let job = JobBuilder::new()
        .rank(
            hosts[0],
            Box::new(Ping {
                rounds,
                round: 0,
                state: 0,
                req: None,
                done_flag: finished.clone(),
            }),
        )
        .rank(
            hosts[1],
            Box::new(Pong {
                rounds,
                round: 0,
                req: None,
                done_flag: finished.clone(),
            }),
        )
        .launch(&mut sim);
    run(&mut sim, 30);
    assert!(job.finished(), "both ranks finished");
    assert_eq!(*finished.borrow(), [true, true]);
}

#[test]
fn rendezvous_preserves_large_payload() {
    let (mut sim, hosts) = star(2);
    // 200 KB >> 64 KB eager limit -> rendezvous path.
    let n = 200_000usize;
    let payload: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
    let expect = payload.clone();
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = got.clone();

    let mut payload_opt = Some(payload);
    let sender = move |mpi: &mut Mpi| {
        if let Some(p) = payload_opt.take() {
            mpi.isend_bytes(mpi.comm_world(), 1, 5, p);
        }
        Poll::Done
    };
    let mut req = None;
    let receiver = move |mpi: &mut Mpi| {
        if req.is_none() {
            req = Some(mpi.irecv(mpi.comm_world(), Some(0), Some(5)));
        }
        match mpi.test(req.unwrap()) {
            Some(info) => {
                *got2.borrow_mut() = info.payload.expect("payload");
                Poll::Done
            }
            None => Poll::Pending,
        }
    };
    let job = JobBuilder::new()
        .rank(hosts[0], Box::new(sender))
        .rank(hosts[1], Box::new(receiver))
        .launch(&mut sim);
    run(&mut sim, 30);
    assert!(job.finished());
    assert_eq!(*got.borrow(), expect, "rendezvous payload corrupted");
}

#[test]
fn message_ordering_and_tag_matching() {
    let (mut sim, hosts) = star(2);
    let seen = Rc::new(RefCell::new(Vec::new()));
    let seen2 = seen.clone();

    let mut sent = false;
    let sender = move |mpi: &mut Mpi| {
        if !sent {
            sent = true;
            let w = mpi.comm_world();
            // Three messages, two tags. Non-overtaking per (pair, tag).
            mpi.isend_bytes(w, 1, 1, vec![1]);
            mpi.isend_bytes(w, 1, 2, vec![2]);
            mpi.isend_bytes(w, 1, 1, vec![3]);
        }
        Poll::Done
    };
    struct Recv {
        reqs: Vec<mpichgq_mpi::ReqId>,
        posted: bool,
        seen: Rc<RefCell<Vec<(u32, u8)>>>,
    }
    impl mpichgq_mpi::MpiProgram for Recv {
        fn poll(&mut self, mpi: &mut Mpi) -> Poll {
            let w = mpi.comm_world();
            if !self.posted {
                self.posted = true;
                // Tag-2 receive first, then two tag-1 receives: the tag-2
                // message must bypass the queued tag-1 messages.
                self.reqs.push(mpi.irecv(w, Some(0), Some(2)));
                self.reqs.push(mpi.irecv(w, Some(0), Some(1)));
                self.reqs.push(mpi.irecv(w, Some(0), Some(1)));
            }
            let mut i = 0;
            while i < self.reqs.len() {
                if let Some(info) = mpi.test(self.reqs[i]) {
                    self.seen
                        .borrow_mut()
                        .push((info.tag, info.payload.unwrap()[0]));
                    self.reqs.remove(i);
                } else {
                    i += 1;
                }
            }
            if self.reqs.is_empty() {
                Poll::Done
            } else {
                Poll::Pending
            }
        }
    }
    let job = JobBuilder::new()
        .rank(hosts[0], Box::new(sender))
        .rank(
            hosts[1],
            Box::new(Recv {
                reqs: Vec::new(),
                posted: false,
                seen: seen2,
            }),
        )
        .launch(&mut sim);
    run(&mut sim, 30);
    assert!(job.finished());
    let seen = seen.borrow();
    // Tag-1 messages arrive in order 1 then 3; tag 2 delivers payload 2.
    let tag1: Vec<u8> = seen
        .iter()
        .filter(|(t, _)| *t == 1)
        .map(|(_, v)| *v)
        .collect();
    assert_eq!(tag1, vec![1, 3], "non-overtaking violated: {seen:?}");
    assert!(seen.contains(&(2, 2)));
}

#[test]
fn wildcard_source_and_tag() {
    let (mut sim, hosts) = star(3);
    let seen = Rc::new(RefCell::new(Vec::new()));
    let seen2 = seen.clone();

    let make_sender = |val: u8| {
        let mut sent = false;
        move |mpi: &mut Mpi| {
            if !sent {
                sent = true;
                mpi.isend_bytes(mpi.comm_world(), 0, val as u32, vec![val]);
            }
            Poll::Done
        }
    };
    let mut reqs: Vec<mpichgq_mpi::ReqId> = Vec::new();
    let mut posted = false;
    let receiver = move |mpi: &mut Mpi| {
        let w = mpi.comm_world();
        if !posted {
            posted = true;
            reqs.push(mpi.irecv(w, None, None));
            reqs.push(mpi.irecv(w, None, None));
        }
        let mut i = 0;
        while i < reqs.len() {
            if let Some(info) = mpi.test(reqs[i]) {
                seen2.borrow_mut().push((info.src, info.tag));
                reqs.remove(i);
            } else {
                i += 1;
            }
        }
        if reqs.is_empty() {
            Poll::Done
        } else {
            Poll::Pending
        }
    };
    let job = JobBuilder::new()
        .rank(hosts[0], Box::new(receiver))
        .rank(hosts[1], Box::new(make_sender(1)))
        .rank(hosts[2], Box::new(make_sender(2)))
        .launch(&mut sim);
    run(&mut sim, 30);
    assert!(job.finished());
    let mut seen = seen.borrow().clone();
    seen.sort();
    assert_eq!(seen, vec![(1, 1), (2, 2)]);
}

#[test]
fn comm_dup_isolates_contexts() {
    let (mut sim, hosts) = star(2);
    let order = Rc::new(RefCell::new(Vec::new()));
    let order2 = order.clone();

    // Sender: message on WORLD first, then on the dup.
    let mut state = 0;
    let sender = move |mpi: &mut Mpi| {
        if state == 0 {
            state = 1;
            let d = mpi.comm_dup(mpi.comm_world());
            mpi.isend_bytes(mpi.comm_world(), 1, 9, vec![b'w']);
            mpi.isend_bytes(d, 1, 9, vec![b'd']);
        }
        Poll::Done
    };
    // Receiver: posts the dup receive FIRST; it must get the dup message,
    // not the world message, despite identical (src, tag).
    let mut posted = false;
    let mut rd: Option<mpichgq_mpi::ReqId> = None;
    let mut rw: Option<mpichgq_mpi::ReqId> = None;
    let receiver = move |mpi: &mut Mpi| {
        if !posted {
            posted = true;
            let d = mpi.comm_dup(mpi.comm_world());
            rd = Some(mpi.irecv(d, Some(0), Some(9)));
            rw = Some(mpi.irecv(mpi.comm_world(), Some(0), Some(9)));
        }
        if let Some(r) = rd {
            if let Some(info) = mpi.test(r) {
                order2.borrow_mut().push(('d', info.payload.unwrap()[0]));
                rd = None;
            }
        }
        if let Some(r) = rw {
            if let Some(info) = mpi.test(r) {
                order2.borrow_mut().push(('w', info.payload.unwrap()[0]));
                rw = None;
            }
        }
        if rd.is_none() && rw.is_none() {
            Poll::Done
        } else {
            Poll::Pending
        }
    };
    let job = JobBuilder::new()
        .rank(hosts[0], Box::new(sender))
        .rank(hosts[1], Box::new(receiver))
        .launch(&mut sim);
    run(&mut sim, 30);
    assert!(job.finished());
    let order = order.borrow();
    assert!(order.contains(&('d', b'd')), "dup recv got {order:?}");
    assert!(order.contains(&('w', b'w')), "world recv got {order:?}");
}

#[test]
fn intercommunicator_pair_messaging() {
    let (mut sim, hosts) = star(2);
    let got = Rc::new(RefCell::new(None));
    let got2 = got.clone();

    let mut sent = false;
    let a = move |mpi: &mut Mpi| {
        if !sent {
            sent = true;
            let ic = mpi.intercomm_pair(1);
            // In an intercomm, dest 0 = first member of the REMOTE group.
            mpi.isend_bytes(ic, 0, 3, vec![42]);
        }
        Poll::Done
    };
    let mut req = None;
    let b = move |mpi: &mut Mpi| {
        if req.is_none() {
            let ic = mpi.intercomm_pair(0);
            req = Some(mpi.irecv(ic, Some(0), Some(3)));
        }
        match mpi.test(req.unwrap()) {
            Some(info) => {
                assert_eq!(info.src, 0, "source is remote-group rank");
                *got2.borrow_mut() = Some(info.payload.unwrap()[0]);
                Poll::Done
            }
            None => Poll::Pending,
        }
    };
    let job = JobBuilder::new()
        .rank(hosts[0], Box::new(a))
        .rank(hosts[1], Box::new(b))
        .launch(&mut sim);
    run(&mut sim, 30);
    assert!(job.finished());
    assert_eq!(*got.borrow(), Some(42));
}

#[test]
fn barrier_synchronizes_four_ranks() {
    let (mut sim, hosts) = star(4);
    let release_times = Rc::new(RefCell::new(Vec::new()));

    let mut job = JobBuilder::new();
    #[allow(clippy::needless_range_loop)]
    for r in 0..4 {
        let times = release_times.clone();
        let mut bar: Option<Barrier> = None;
        let mut slept = false;
        let delay = SimDelta::from_millis(100 * r as u64);
        let prog = move |mpi: &mut Mpi| {
            // Each rank waits a different time before entering the barrier.
            if !slept {
                slept = true;
                mpi.set_timer(delay, 1);
                return Poll::Pending;
            }
            if bar.is_none() {
                if !mpi.take_timer(1) {
                    return Poll::Pending;
                }
                bar = Some(Barrier::new(mpi, mpi.comm_world()));
            }
            match bar.as_mut().unwrap().poll(mpi) {
                CollState::Ready => {
                    times.borrow_mut().push(mpi.now());
                    Poll::Done
                }
                CollState::Pending => Poll::Pending,
                CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
            }
        };
        job = job.rank(hosts[r], Box::new(prog));
    }
    let handle = job.launch(&mut sim);
    run(&mut sim, 30);
    assert!(handle.finished());
    let times = release_times.borrow();
    assert_eq!(times.len(), 4);
    // Nobody may exit before the last rank entered (t = 300 ms).
    for &t in times.iter() {
        assert!(
            t >= SimTime::from_millis(300),
            "barrier released early at {t}"
        );
    }
}

#[test]
fn bcast_gather_reduce_roundtrip() {
    let (mut sim, hosts) = star(4);
    let results = Rc::new(RefCell::new(Vec::new()));

    let mut job = JobBuilder::new();
    #[allow(clippy::needless_range_loop)]
    for r in 0..4usize {
        let results = results.clone();
        let mut phase = 0u8;
        let mut bcast: Option<Bcast> = None;
        let mut gather: Option<Gather> = None;
        let mut reduce: Option<Reduce> = None;
        let prog = move |mpi: &mut Mpi| {
            let w = mpi.comm_world();
            loop {
                match phase {
                    0 => {
                        let data = if mpi.rank() == 0 {
                            Some(Some(vec![10, 20, 30]))
                        } else {
                            None
                        };
                        bcast = Some(Bcast::new(mpi, w, 0, 3, data));
                        phase = 1;
                    }
                    1 => match bcast.as_mut().unwrap().poll(mpi) {
                        CollState::Ready => {
                            let data = bcast.as_mut().unwrap().take_data().unwrap();
                            assert_eq!(data, vec![10, 20, 30]);
                            // Gather rank-stamped data to root 1.
                            gather = Some(Gather::new(mpi, w, 1, vec![mpi.rank() as u8]));
                            phase = 2;
                        }
                        CollState::Pending => return Poll::Pending,
                        CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
                    },
                    2 => match gather.as_mut().unwrap().poll(mpi) {
                        CollState::Ready => {
                            if mpi.rank() == 1 {
                                let all = gather.as_mut().unwrap().take_collected();
                                assert_eq!(all, vec![vec![0], vec![1], vec![2], vec![3]]);
                            }
                            // Sum-reduce 8-byte little-endian integers to 0.
                            let mine = (mpi.rank() as u64 + 1).to_le_bytes().to_vec();
                            reduce = Some(Reduce::new(mpi, w, 0, mine, |a, b| {
                                let x = u64::from_le_bytes(a.try_into().unwrap());
                                let y = u64::from_le_bytes(b.try_into().unwrap());
                                (x + y).to_le_bytes().to_vec()
                            }));
                            phase = 3;
                        }
                        CollState::Pending => return Poll::Pending,
                        CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
                    },
                    3 => match reduce.as_mut().unwrap().poll(mpi) {
                        CollState::Ready => {
                            if mpi.rank() == 0 {
                                let out = reduce.as_mut().unwrap().take_result().unwrap();
                                let sum = u64::from_le_bytes(out.try_into().unwrap());
                                results.borrow_mut().push(sum);
                            }
                            return Poll::Done;
                        }
                        CollState::Pending => return Poll::Pending,
                        CollState::Failed(r) => panic!("unexpected rank failure: {r}"),
                    },
                    _ => unreachable!(),
                }
            }
        };
        job = job.rank(hosts[r], Box::new(prog));
    }
    let handle = job.launch(&mut sim);
    run(&mut sim, 30);
    assert!(handle.finished());
    assert_eq!(*results.borrow(), vec![1 + 2 + 3 + 4]);
}

#[test]
fn attribute_hook_triggers_on_put() {
    let (mut sim, hosts) = star(2);
    let hook_calls = Rc::new(RefCell::new(Vec::new()));
    let hook_calls2 = hook_calls.clone();

    // The init hook registers a keyval whose put triggers an action —
    // exactly MPICH-GQ's mechanism. Keyvals created in init hooks get the
    // same id on every rank; stash it in a shared cell.
    let keyval = Rc::new(RefCell::new(None));
    let kv2 = keyval.clone();
    let init: mpichgq_mpi::InitHook = Rc::new(RefCell::new(move |mpi: &mut Mpi| {
        let calls = hook_calls2.clone();
        let k = mpi.keyval_create_with_hook(Rc::new(RefCell::new(
            move |mpi: &mut Mpi, comm: CommId, value: &mpichgq_mpi::AttrValue| {
                let v = *value.downcast_ref::<u32>().unwrap();
                calls.borrow_mut().push((mpi.rank(), comm, v));
            },
        )));
        *kv2.borrow_mut() = Some(k);
    }));

    let kv = keyval.clone();
    let mut done = false;
    let prog0 = move |mpi: &mut Mpi| {
        if !done {
            done = true;
            let k = kv.borrow().unwrap();
            let w = mpi.comm_world();
            mpi.attr_put(w, k, Rc::new(777u32));
            // attr_get sees the stored value.
            let v = mpi.attr_get(w, k).unwrap();
            assert_eq!(*v.downcast_ref::<u32>().unwrap(), 777);
            // Unset attribute elsewhere.
            assert!(mpi.attr_get(w, mpichgq_mpi::Keyval(99)).is_none());
        }
        Poll::Done
    };
    let prog1 = |_mpi: &mut Mpi| Poll::Done;

    let job = JobBuilder::new()
        .rank(hosts[0], Box::new(prog0))
        .rank(hosts[1], Box::new(prog1))
        .init_hook(init)
        .launch(&mut sim);
    run(&mut sim, 10);
    assert!(job.finished());
    let calls = hook_calls.borrow();
    assert_eq!(calls.len(), 1, "hook fired exactly once: {calls:?}");
    assert_eq!(calls[0].0, 0);
    assert_eq!(calls[0].2, 777);
}

#[test]
fn unexpected_messages_match_later_receives() {
    let (mut sim, hosts) = star(2);
    let ok = Rc::new(RefCell::new(false));
    let ok2 = ok.clone();

    let mut sent = false;
    let sender = move |mpi: &mut Mpi| {
        if !sent {
            sent = true;
            mpi.isend_bytes(mpi.comm_world(), 1, 4, vec![9]);
        }
        Poll::Done
    };
    // Receiver waits 1 s before posting: the message sits in the
    // unexpected queue.
    let mut state = 0;
    let mut req = None;
    let receiver = move |mpi: &mut Mpi| {
        match state {
            0 => {
                state = 1;
                mpi.set_timer(SimDelta::from_secs(1), 1);
                Poll::Pending
            }
            1 => {
                if !mpi.take_timer(1) {
                    return Poll::Pending;
                }
                req = Some(mpi.irecv(mpi.comm_world(), Some(0), Some(4)));
                state = 2;
                // The unexpected match completes synchronously.
                match mpi.test(req.unwrap()) {
                    Some(info) => {
                        assert_eq!(info.payload.unwrap(), vec![9]);
                        *ok2.borrow_mut() = true;
                        Poll::Done
                    }
                    None => Poll::Pending,
                }
            }
            2 => match mpi.test(req.unwrap()) {
                Some(_) => {
                    *ok2.borrow_mut() = true;
                    Poll::Done
                }
                None => Poll::Pending,
            },
            _ => unreachable!(),
        }
    };
    let job = JobBuilder::new()
        .rank(hosts[0], Box::new(sender))
        .rank(hosts[1], Box::new(receiver))
        .launch(&mut sim);
    run(&mut sim, 10);
    assert!(job.finished());
    assert!(*ok.borrow());
}

#[test]
fn comm_endpoints_extraction() {
    let (mut sim, hosts) = star(2);
    let eps = Rc::new(RefCell::new(None));
    let eps2 = eps.clone();
    let h1 = hosts[1];

    let prog0 = move |mpi: &mut Mpi| {
        let ic = mpi.intercomm_pair(1);
        let e = mpi.comm_endpoints(ic);
        *eps2.borrow_mut() = Some(e);
        Poll::Done
    };
    let prog1 = move |mpi: &mut Mpi| {
        let _ = mpi.intercomm_pair(0);
        Poll::Done
    };
    let job = JobBuilder::new()
        .rank(hosts[0], Box::new(prog0))
        .rank(hosts[1], Box::new(prog1))
        .base_port(12000)
        .launch(&mut sim);
    run(&mut sim, 10);
    assert!(job.finished());
    let eps = eps.borrow();
    let e = eps.as_ref().unwrap();
    assert_eq!(e.local.len(), 1);
    assert_eq!(e.remote, vec![(1, h1, 12001)]);
}

#[test]
fn eager_limit_boundary_uses_both_protocols() {
    // Send exactly eager_limit and eager_limit + 1 bytes; both arrive
    // intact (one eager, one rendezvous).
    let (mut sim, hosts) = star(2);
    let limit = 8 * 1024u32;
    let cfg = MpiCfg {
        eager_limit: limit,
        ..MpiCfg::default()
    };
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = got.clone();

    let mut sent = false;
    let sender = move |mpi: &mut Mpi| {
        if !sent {
            sent = true;
            let w = mpi.comm_world();
            mpi.isend_bytes(w, 1, 1, vec![0xAA; limit as usize]);
            mpi.isend_bytes(w, 1, 2, vec![0xBB; limit as usize + 1]);
        }
        Poll::Done
    };
    let mut reqs = Vec::new();
    let mut posted = false;
    let receiver = move |mpi: &mut Mpi| {
        let w = mpi.comm_world();
        if !posted {
            posted = true;
            reqs.push(mpi.irecv(w, Some(0), Some(1)));
            reqs.push(mpi.irecv(w, Some(0), Some(2)));
        }
        let mut i = 0;
        while i < reqs.len() {
            if let Some(info) = mpi.test(reqs[i]) {
                got2.borrow_mut().push((info.tag, info.payload.unwrap()));
                reqs.remove(i);
            } else {
                i += 1;
            }
        }
        if reqs.is_empty() {
            Poll::Done
        } else {
            Poll::Pending
        }
    };
    let job = JobBuilder::new()
        .rank(hosts[0], Box::new(sender))
        .rank(hosts[1], Box::new(receiver))
        .cfg(cfg)
        .launch(&mut sim);
    run(&mut sim, 30);
    assert!(job.finished());
    let got = got.borrow();
    let by_tag = |t: u32| got.iter().find(|(tag, _)| *tag == t).unwrap().1.clone();
    assert_eq!(by_tag(1), vec![0xAA; limit as usize]);
    assert_eq!(by_tag(2), vec![0xBB; limit as usize + 1]);
}

#[test]
fn iprobe_and_self_send() {
    let (mut sim, hosts) = star(2);
    let log = Rc::new(RefCell::new(Vec::new()));
    let log2 = log.clone();

    let mut sent = false;
    let sender = move |mpi: &mut Mpi| {
        if !sent {
            sent = true;
            mpi.isend_bytes(mpi.comm_world(), 1, 6, vec![1, 2, 3]);
        }
        Poll::Done
    };
    let mut state = 0;
    let mut req = None;
    let receiver = move |mpi: &mut Mpi| {
        let w = mpi.comm_world();
        match state {
            0 => {
                // Nothing posted: wait for the message to land unexpected.
                state = 1;
                mpi.set_timer(mpichgq_sim::SimDelta::from_secs(1), 1);
                Poll::Pending
            }
            1 => {
                if !mpi.take_timer(1) {
                    return Poll::Pending;
                }
                // Probe sees the queued envelope without consuming it.
                let probed = mpi.iprobe(w, Some(0), None);
                log2.borrow_mut().push(("probe", probed));
                assert_eq!(probed, Some((0, 6, 3)));
                // Probe again: still there.
                assert_eq!(mpi.iprobe(w, None, Some(6)), Some((0, 6, 3)));
                assert_eq!(mpi.iprobe(w, None, Some(7)), None);
                // Self-send: completes without touching the network.
                let sreq = mpi.isend_bytes(w, 1, 42, vec![9]);
                let rreq = mpi.irecv(w, Some(1), Some(42));
                assert!(mpi.test(sreq).is_some(), "self-send completes at once");
                let info = mpi.test(rreq).expect("self-recv completes at once");
                assert_eq!(info.payload.unwrap(), vec![9]);
                // Now receive the probed message; the probe is gone after.
                req = Some(mpi.irecv(w, Some(0), Some(6)));
                assert_eq!(mpi.iprobe(w, Some(0), None), None);
                state = 2;
                self_poll(mpi, &mut req)
            }
            _ => self_poll(mpi, &mut req),
        }
    };
    fn self_poll(mpi: &mut Mpi, req: &mut Option<mpichgq_mpi::ReqId>) -> Poll {
        match mpi.test(req.unwrap()) {
            Some(info) => {
                assert_eq!(info.payload.unwrap(), vec![1, 2, 3]);
                Poll::Done
            }
            None => Poll::Pending,
        }
    }
    let job = JobBuilder::new()
        .rank(hosts[0], Box::new(sender))
        .rank(hosts[1], Box::new(receiver))
        .launch(&mut sim);
    run(&mut sim, 10);
    assert!(job.finished());
    assert_eq!(log.borrow().len(), 1);
}

#[test]
#[should_panic(expected = "one rank per host")]
fn duplicate_host_rejected_at_build() {
    let (mut sim, hosts) = star(2);
    let _ = &mut sim;
    let _job = JobBuilder::new()
        .rank(hosts[0], Box::new(|_: &mut Mpi| Poll::Done))
        .rank(hosts[0], Box::new(|_: &mut Mpi| Poll::Done));
}
