//! # mpichgq-tcp — TCP Reno and the socket/application layer
//!
//! The reliable transport the paper's MPI traffic rides on. [`conn`] is a
//! sans-io TCP Reno state machine (slow start, congestion avoidance, fast
//! retransmit/recovery, RTO with backoff, flow control); [`stack`] is the
//! socket layer that demultiplexes packets, applies connection outputs to
//! the network, and hosts applications behind the [`App`] trait.
//!
//! The paper's central observations — TCP collapse when a reservation is
//! slightly too small (Figures 1 and 6), the slow-start sawtooth, the
//! sensitivity of bursty flows to token-bucket depth (Table 1) — all emerge
//! from this layer interacting with the DiffServ mechanisms in
//! `mpichgq-netsim`.

pub mod conn;
#[cfg(test)]
mod conn_tests;
pub mod stack;

pub use conn::{ConnStats, Connection, Out, SegFlags, SegIn, SegOut, State, TcpCfg};
pub use stack::{
    control_token, App, AppId, Controller, ControllerId, Ctx, DataMode, Sim, SockId, Stack,
};
