//! The TCP Reno connection state machine.
//!
//! "TCP's flow control and congestion control mechanisms, while critical to
//! the effectiveness of TCP in shared networks, have the unfortunate
//! consequences of making TCP traffic both bursty and sensitive to the loss
//! of individual packets." (§4.3) — reproducing Figures 1, 5 and 6 requires
//! a faithful loss response, so this is a real Reno implementation: slow
//! start, congestion avoidance, fast retransmit/recovery with NewReno
//! partial-ACK handling, RTO estimation per RFC 6298 with exponential
//! backoff and Karn's algorithm, receiver flow control with zero-window
//! probing.
//!
//! The connection is *sans-io*: every input returns a list of [`Out`]
//! actions (segments to emit, timers to arm, application wake-ups) that the
//! socket layer in [`crate::stack`] applies to the simulated network. This
//! keeps the protocol logic independently testable.
//!
//! Simulator simplifications, documented here once: sequence numbers are
//! 64-bit (no wraparound), there is no SACK (Reno-era stacks), no Nagle
//! (MPICH disables it), no delayed ACK by default (configurable), and the
//! initial sequence number is zero.

use mpichgq_sim::{SimDelta, SimTime};
use std::collections::BTreeMap;

/// Connection configuration (per-socket tunables).
#[derive(Debug, Clone, Copy)]
pub struct TcpCfg {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Send socket buffer ("applications that use TCP and want high
    /// performance need careful tuning (such as socket buffer sizes)", §5.5).
    pub send_buf: u32,
    /// Receive socket buffer; bounds the advertised window.
    pub recv_buf: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd_segs: u32,
    /// Initial slow-start threshold in bytes.
    pub init_ssthresh: u32,
    pub rto_min: SimDelta,
    pub rto_max: SimDelta,
    /// Initial RTO before any RTT sample (RFC 6298 says 1 s).
    pub rto_initial: SimDelta,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_thresh: u32,
    /// Slow-start restart after idle (RFC 2861 / Jacobson): if the
    /// connection has been send-idle for longer than one RTO, the
    /// congestion window collapses back to its initial value. Real stacks
    /// do this; it is what makes low-duty-cycle bursty senders (the
    /// paper's 1-frame-per-second case, Table 1) re-probe the network on
    /// every burst.
    pub idle_restart: bool,
    /// Delayed acknowledgments (RFC 1122): hold the ACK for the first
    /// unacknowledged in-order segment up to `delack_delay`, acknowledging
    /// every second segment immediately. Off by default here because the
    /// experiments are calibrated without it; turning it on halves pure-ACK
    /// traffic at the cost of slower slow-start.
    pub delayed_ack: bool,
    /// Delayed-ACK timeout (era stacks: 200 ms).
    pub delack_delay: SimDelta,
    /// Disable Karn's algorithm (bug-injection switch for the qcheck
    /// fuzzer's self-test: with this set, RTT samples are armed on
    /// retransmitted bytes and survive retransmissions, reproducing the
    /// historical bug; the `karn_violations` audit counter still detects
    /// every bogus sample that reaches `update_rtt`). Never set this in
    /// real configurations.
    #[doc(hidden)]
    pub karn_disable: bool,
}

impl TcpCfg {
    /// TCP tuning of the paper's era: the GARNET premium endpoints were
    /// Sun Ultras whose stacks used coarse retransmission timers (minimum
    /// RTO on the order of half a second) and delayed acknowledgments.
    /// The coarse minimum RTO is what makes bursty flows pay for shallow
    /// token buckets (Table 1; see EXPERIMENTS.md).
    pub fn era_solaris() -> TcpCfg {
        TcpCfg {
            rto_min: SimDelta::from_millis(500),
            delayed_ack: true,
            ..TcpCfg::default()
        }
    }
}

impl Default for TcpCfg {
    fn default() -> Self {
        TcpCfg {
            mss: 1460,
            send_buf: 64 * 1024,
            recv_buf: 64 * 1024,
            init_cwnd_segs: 2,
            init_ssthresh: u32::MAX,
            rto_min: SimDelta::from_millis(200),
            rto_max: SimDelta::from_secs(60),
            rto_initial: SimDelta::from_secs(1),
            dupack_thresh: 3,
            idle_restart: true,
            delayed_ack: false,
            delack_delay: SimDelta::from_millis(200),
            karn_disable: false,
        }
    }
}

/// Connection lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    SynSent,
    SynRcvd,
    Established,
    /// We sent a FIN (possibly still retransmitting data before it).
    FinWait,
    /// Peer's FIN received and acked; we may still be sending.
    CloseWait,
    Closed,
}

/// Flags subset mirrored from the network layer (kept local so this module
/// has no dependency direction on packet formats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
}

/// An incoming segment, as seen by the connection.
#[derive(Debug, Clone, Copy)]
pub struct SegIn {
    pub seq: u64,
    pub ack: u64,
    pub wnd: u32,
    pub len: u32,
    pub flags: SegFlags,
}

/// An outgoing segment request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegOut {
    pub seq: u64,
    pub ack: u64,
    pub wnd: u32,
    pub len: u32,
    pub flags: SegFlags,
    /// True if this is a retransmission (for tracing).
    pub rtx: bool,
}

/// Actions the socket layer must apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Out {
    Seg(SegOut),
    /// (Re-)arm the retransmission timer at `at`; earlier arms are stale.
    ArmTimer {
        at: SimTime,
        gen: u64,
    },
    /// The three-way handshake completed (client side).
    Connected,
    /// The passive open completed (server side).
    Accepted,
    /// New in-order data is available to read.
    Readable,
    /// Send-buffer space became available after the app hit a full buffer.
    Writable,
    /// The peer closed its direction; reads will drain then return 0.
    RemoteClosed,
    /// Both directions closed.
    Closed,
    /// A congestion-control state change worth recording: the stack forwards
    /// these to the network's observability layer (counters + flight
    /// recorder) so experiments can correlate cwnd collapses with QoS events.
    Cc {
        kind: CcKind,
        /// Congestion window after the transition, in bytes.
        cwnd_bytes: u64,
        /// Retransmission timeout after the transition (post back-off).
        rto: SimDelta,
    },
}

/// Which congestion-control transition an [`Out::Cc`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    /// Retransmission timeout fired: window collapsed to one MSS, go-back-N.
    Rto,
    /// Three duplicate ACKs: fast retransmit + window halving.
    FastRetransmit,
    /// RFC 2861 slow-start restart after a send-idle period.
    SlowStartRestart,
}

/// Congestion-control counters for experiments and assertions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnStats {
    pub segs_sent: u64,
    pub bytes_sent: u64,
    pub rtx_segs: u64,
    pub rtos: u64,
    pub fast_retransmits: u64,
    pub dup_acks_received: u64,
    /// RFC 2861 idle-restart window collapses.
    pub slow_start_restarts: u64,
    /// RTT samples taken from (possibly) retransmitted data that reached
    /// `update_rtt` — Karn's algorithm forbids these, so this stays 0
    /// unless the `karn_disable` bug switch is set. Audited by qcheck.
    pub karn_violations: u64,
    /// Protocol-invariant failures caught by the connection's self-audit
    /// (`snd_una ≤ snd_nxt ≤ written+1`, monotone `snd_una`/`delivered`,
    /// `cwnd ≥ mss`). Always 0 on a correct implementation; audited by
    /// qcheck after every fuzzed scenario.
    pub invariant_violations: u64,
}

/// One outstanding RTT measurement (RFC 6298 timing of a single segment).
#[derive(Debug, Clone, Copy)]
struct RttSample {
    /// Cumulative ACK threshold that completes the sample.
    seq: u64,
    /// When the sampled segment was transmitted.
    at: SimTime,
    /// False if the sampled bytes were (or may have been) transmitted more
    /// than once — Karn's algorithm: such a sample must never reach
    /// `update_rtt`. With the fix in force an unclean sample is cleared at
    /// the retransmission, so `clean` is always true at acceptance; the
    /// flag exists so the `karn_disable` bug switch still *detects* (and
    /// counts) the violations it reintroduces.
    clean: bool,
}

/// A TCP connection endpoint.
#[derive(Debug)]
pub struct Connection {
    pub cfg: TcpCfg,
    state: State,

    // --- send side ---
    snd_una: u64,
    snd_nxt: u64,
    /// Peer's advertised window.
    snd_wnd: u64,
    /// Absolute stream offset one past the last byte accepted from the app.
    written: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    fin_queued: bool,
    /// Sequence number consumed by our FIN, once sent.
    fin_seq: Option<u64>,
    want_write: bool,

    // --- timers / RTT ---
    rto: SimDelta,
    srtt: Option<SimDelta>,
    rttvar: SimDelta,
    timer_gen: u64,
    timer_armed: bool,
    /// One outstanding RTT sample.
    rtt_sample: Option<RttSample>,
    /// Transmission high-water mark: one past the highest byte ever sent.
    /// `snd_nxt < max_sent` means the stream is being re-sent (go-back-N
    /// after an RTO), so segments below this frontier are retransmissions
    /// even when they flow through the regular `send_data` path.
    max_sent: u64,
    /// Time of the last data transmission (for idle restart).
    last_send: SimTime,
    /// A delayed ACK is owed for received in-order data.
    delack_pending: bool,
    /// Generation for the delayed-ACK timer (odd numbers; the RTO timer
    /// uses even generations, so one dispatch entry point serves both).
    delack_gen: u64,

    // --- receive side ---
    rcv_nxt: u64,
    /// Stream offset up to which the application has consumed data.
    delivered: u64,
    /// Out-of-order byte ranges: start -> end (exclusive).
    ooo: BTreeMap<u64, u64>,
    /// Sequence of the peer's FIN, once seen.
    peer_fin: Option<u64>,
    peer_fin_acked: bool,
    /// Last window we advertised (to decide when to send window updates).
    advertised_wnd: u32,
    our_fin_acked: bool,

    // --- self-audit memory (monotonicity witnesses) ---
    audit_una: u64,
    audit_delivered: u64,

    pub stats: ConnStats,
}

impl Connection {
    /// Active open: returns the connection and the SYN to send.
    pub fn connect(cfg: TcpCfg, now: SimTime) -> (Connection, Vec<Out>) {
        let mut c = Connection::new(cfg, State::SynSent);
        let mut outs = Vec::new();
        outs.push(Out::Seg(SegOut {
            seq: 0,
            ack: 0,
            wnd: c.recv_window(),
            len: 0,
            flags: SegFlags {
                syn: true,
                ..Default::default()
            },
            rtx: false,
        }));
        c.snd_nxt = 1; // SYN occupies sequence 0
        c.max_sent = 1;
        c.arm_timer(now, &mut outs);
        (c, outs)
    }

    /// Passive open in response to a SYN: returns the connection (in
    /// `SynRcvd`) and the SYN/ACK.
    pub fn accept(cfg: TcpCfg, syn: &SegIn, now: SimTime) -> (Connection, Vec<Out>) {
        assert!(syn.flags.syn && !syn.flags.ack);
        let mut c = Connection::new(cfg, State::SynRcvd);
        c.rcv_nxt = syn.seq + 1;
        c.delivered = c.rcv_nxt;
        c.snd_wnd = syn.wnd as u64;
        let mut outs = Vec::new();
        outs.push(Out::Seg(SegOut {
            seq: 0,
            ack: c.rcv_nxt,
            wnd: c.recv_window(),
            len: 0,
            flags: SegFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
            rtx: false,
        }));
        c.snd_nxt = 1;
        c.max_sent = 1;
        c.arm_timer(now, &mut outs);
        (c, outs)
    }

    fn new(cfg: TcpCfg, state: State) -> Connection {
        Connection {
            cfg,
            state,
            snd_una: 0,
            snd_nxt: 0,
            snd_wnd: cfg.recv_buf as u64, // until the peer tells us otherwise
            written: 1,                   // data starts after the SYN
            cwnd: (cfg.init_cwnd_segs * cfg.mss) as f64,
            ssthresh: cfg.init_ssthresh as f64,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            fin_queued: false,
            fin_seq: None,
            want_write: false,
            rto: cfg.rto_initial,
            srtt: None,
            rttvar: SimDelta::ZERO,
            timer_gen: 0,
            timer_armed: false,
            rtt_sample: None,
            max_sent: 0,
            last_send: SimTime::ZERO,
            delack_pending: false,
            delack_gen: 1,
            rcv_nxt: 0,
            delivered: 0,
            ooo: BTreeMap::new(),
            peer_fin: None,
            peer_fin_acked: false,
            advertised_wnd: cfg.recv_buf,
            our_fin_acked: false,
            audit_una: 0,
            audit_delivered: 0,
            stats: ConnStats::default(),
        }
    }

    pub fn state(&self) -> State {
        self.state
    }

    /// Unacknowledged bytes in flight.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    pub fn srtt(&self) -> Option<SimDelta> {
        self.srtt
    }

    pub fn rto(&self) -> SimDelta {
        self.rto
    }

    /// Bytes of in-order data available to read.
    pub fn readable_bytes(&self) -> u64 {
        let mut end = self.rcv_nxt;
        // The FIN consumes a sequence number but carries no data.
        if let Some(f) = self.peer_fin {
            if self.rcv_nxt > f {
                end = f;
            }
        }
        end.saturating_sub(self.delivered)
    }

    /// Free space in the send buffer.
    pub fn send_buffer_free(&self) -> u64 {
        let used = self.written - self.snd_una;
        (self.cfg.send_buf as u64).saturating_sub(used)
    }

    /// True once the peer's FIN has been delivered and drained.
    pub fn at_eof(&self) -> bool {
        matches!(self.peer_fin, Some(f) if self.delivered >= f && self.rcv_nxt > f)
    }

    fn recv_window(&self) -> u32 {
        let buffered = self.rcv_nxt.saturating_sub(self.delivered);
        (self.cfg.recv_buf as u64).saturating_sub(buffered) as u32
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// Accept up to `len` bytes from the application. Returns bytes
    /// accepted (bounded by send-buffer space) plus actions.
    pub fn write(&mut self, len: u64, now: SimTime) -> (u64, Vec<Out>) {
        assert!(
            matches!(self.state, State::Established | State::CloseWait),
            "write in state {:?}",
            self.state
        );
        assert!(!self.fin_queued, "write after close");
        let accepted = len.min(self.send_buffer_free());
        self.written += accepted;
        if accepted < len {
            self.want_write = true;
        }
        let mut outs = Vec::new();
        self.send_data(now, &mut outs);
        self.audit();
        (accepted, outs)
    }

    /// Consume up to `len` bytes of in-order received data.
    pub fn read(&mut self, len: u64) -> (u64, Vec<Out>) {
        let n = len.min(self.readable_bytes());
        let old_wnd = self.advertised_wnd;
        self.delivered += n;
        let new_wnd = self.recv_window();
        let mut outs = Vec::new();
        // Send a window update if the window was closed (or nearly) and has
        // now opened by at least one MSS — otherwise the sender could stall.
        if n > 0 && (old_wnd as u64) < self.cfg.mss as u64 && new_wnd as u64 >= self.cfg.mss as u64
        {
            self.emit_ack(&mut outs);
        }
        self.audit();
        (n, outs)
    }

    /// Close the sending direction (queues a FIN after pending data).
    pub fn close(&mut self, now: SimTime) -> Vec<Out> {
        if self.fin_queued || self.state == State::Closed {
            return Vec::new();
        }
        self.fin_queued = true;
        let mut outs = Vec::new();
        self.send_data(now, &mut outs);
        outs
    }

    // ------------------------------------------------------------------
    // Segment arrival
    // ------------------------------------------------------------------

    pub fn on_segment(&mut self, seg: &SegIn, now: SimTime) -> Vec<Out> {
        let outs = self.on_segment_inner(seg, now);
        self.audit();
        outs
    }

    fn on_segment_inner(&mut self, seg: &SegIn, now: SimTime) -> Vec<Out> {
        let mut outs = Vec::new();
        if seg.flags.rst {
            self.state = State::Closed;
            outs.push(Out::Closed);
            return outs;
        }
        match self.state {
            State::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == 1 {
                    self.snd_una = 1;
                    self.rcv_nxt = seg.seq + 1;
                    self.delivered = self.rcv_nxt;
                    self.snd_wnd = seg.wnd as u64;
                    self.state = State::Established;
                    self.cancel_timer();
                    self.emit_ack(&mut outs);
                    outs.push(Out::Connected);
                    self.send_data(now, &mut outs);
                }
                outs
            }
            State::SynRcvd => {
                if seg.flags.ack && seg.ack >= 1 {
                    self.snd_una = 1;
                    self.snd_wnd = seg.wnd as u64;
                    self.state = State::Established;
                    self.cancel_timer();
                    outs.push(Out::Accepted);
                    // The handshake-completing ACK may carry data.
                    if seg.len > 0 || seg.flags.fin {
                        self.process_established(seg, now, &mut outs);
                    }
                }
                outs
            }
            State::Established | State::FinWait | State::CloseWait => {
                self.process_established(seg, now, &mut outs);
                outs
            }
            State::Closed => outs,
        }
    }

    fn process_established(&mut self, seg: &SegIn, now: SimTime, outs: &mut Vec<Out>) {
        if seg.flags.ack {
            self.process_ack(seg, now, outs);
        }
        if seg.len > 0 || seg.flags.fin {
            self.process_data(seg, now, outs);
        }
        self.send_data(now, outs);
        self.check_fully_closed(outs);
    }

    fn process_ack(&mut self, seg: &SegIn, now: SimTime, outs: &mut Vec<Out>) {
        let ack = seg.ack;
        let old_wnd = self.snd_wnd;
        self.snd_wnd = seg.wnd as u64;
        if ack > self.snd_nxt {
            // After a timeout we rewind snd_nxt (go-back-N); the receiver
            // may cumulatively acknowledge out-of-order data it had cached,
            // pulling us forward past the rewound point.
            self.snd_nxt = ack;
        }
        if ack > self.snd_una {
            let acked = ack - self.snd_una;
            self.snd_una = ack;
            // FIN consumed a sequence number; note its acknowledgment.
            if let Some(f) = self.fin_seq {
                if ack == f + 1 {
                    self.our_fin_acked = true;
                }
            }
            // RTT sampling. Karn's algorithm: a sample is only trustworthy
            // if the timed bytes were transmitted exactly once — samples
            // armed on retransmitted data, or outlived by a retransmission,
            // are cleared in `note_retransmit` and never get here. The
            // `clean` check is the always-on auditor: it counts any bogus
            // sample that slips through (reachable only via the
            // `karn_disable` bug-injection switch).
            if let Some(s) = self.rtt_sample {
                if ack >= s.seq {
                    if !s.clean {
                        self.stats.karn_violations += 1;
                    }
                    let r = now.since(s.at);
                    self.update_rtt(r);
                    self.rtt_sample = None;
                }
            }
            if self.in_recovery {
                if ack > self.recover {
                    // Full ACK: leave recovery, deflate to ssthresh.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                    self.dupacks = 0;
                } else {
                    // NewReno partial ACK: retransmit the next hole and
                    // deflate by the amount acked.
                    self.retransmit_head(now, outs);
                    self.cwnd =
                        (self.cwnd - acked as f64 + self.cfg.mss as f64).max(self.cfg.mss as f64);
                }
            } else {
                self.dupacks = 0;
                self.grow_cwnd(acked);
            }
            // Restart the retransmission timer on forward progress.
            if self.flight() > 0 || (self.fin_seq.is_some() && !self.our_fin_acked) {
                self.arm_timer(now, outs);
            } else {
                self.cancel_timer();
            }
            if self.want_write && self.send_buffer_free() > 0 {
                self.want_write = false;
                outs.push(Out::Writable);
            }
        } else if ack == self.snd_una
            && seg.len == 0
            && !seg.flags.syn
            && !seg.flags.fin
            && seg.wnd as u64 == old_wnd
            && self.flight() > 0
        {
            // Duplicate ACK.
            self.stats.dup_acks_received += 1;
            self.dupacks += 1;
            if self.in_recovery {
                // Window inflation: one MSS per additional dupack.
                self.cwnd += self.cfg.mss as f64;
            } else if self.dupacks == self.cfg.dupack_thresh {
                self.enter_fast_recovery(now, outs);
            }
        }
    }

    fn enter_fast_recovery(&mut self, now: SimTime, outs: &mut Vec<Out>) {
        self.stats.fast_retransmits += 1;
        let flight = self.flight() as f64;
        self.ssthresh = (flight / 2.0).max((2 * self.cfg.mss) as f64);
        self.retransmit_head(now, outs);
        self.cwnd = self.ssthresh + (self.cfg.dupack_thresh * self.cfg.mss) as f64;
        self.in_recovery = true;
        self.recover = self.snd_nxt;
        outs.push(Out::Cc {
            kind: CcKind::FastRetransmit,
            cwnd_bytes: self.cwnd as u64,
            rto: self.rto,
        });
    }

    fn grow_cwnd(&mut self, acked_bytes: u64) {
        let mss = self.cfg.mss as f64;
        if self.cwnd < self.ssthresh {
            // Slow start: grow by the bytes acknowledged (ABC).
            self.cwnd += (acked_bytes as f64).min(mss);
        } else {
            // Congestion avoidance: ~one MSS per RTT.
            self.cwnd += mss * mss / self.cwnd;
        }
        // Never exceed what the send buffer could ever use; keeps numbers sane.
        self.cwnd = self.cwnd.min(16.0 * 1024.0 * 1024.0);
    }

    fn update_rtt(&mut self, r: SimDelta) {
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = SimDelta::from_nanos(r.as_nanos() / 2);
            }
            Some(srtt) => {
                let diff = if srtt > r { srtt - r } else { r - srtt };
                self.rttvar =
                    SimDelta::from_nanos((3 * self.rttvar.as_nanos() + diff.as_nanos()) / 4);
                self.srtt = Some(SimDelta::from_nanos(
                    (7 * srtt.as_nanos() + r.as_nanos()) / 8,
                ));
            }
        }
        let srtt = self.srtt.unwrap();
        let candidate = srtt + self.rttvar * 4;
        self.rto = candidate.max(self.cfg.rto_min).min(self.cfg.rto_max);
    }

    /// Karn's algorithm: a retransmission makes any outstanding RTT sample
    /// ambiguous (the completing ACK may have been triggered by either
    /// copy), so drop it. Every retransmit path funnels through here —
    /// fast retransmit, RTO go-back-N, FIN and SYN retransmissions. With
    /// the `karn_disable` bug switch the sample survives but is marked
    /// unclean, so the audit counter can convict it at acceptance.
    fn note_retransmit(&mut self) {
        if self.cfg.karn_disable {
            if let Some(s) = &mut self.rtt_sample {
                s.clean = false;
            }
        } else {
            self.rtt_sample = None;
        }
    }

    /// Always-on protocol self-audit, run after every externally driven
    /// state transition (segment arrival, timer, app read/write). Checks
    /// sequence-space ordering (`snd_una <= snd_nxt <= max_sent <=
    /// written + 1`, the `+ 1` being the FIN's sequence slot), congestion
    /// window floor (`cwnd >= mss`), receive-side sanity (`delivered <=
    /// rcv_nxt`), and monotonicity of `snd_una` and `delivered` against
    /// the values witnessed by the previous audit. Violations only bump
    /// `stats.invariant_violations` — the connection keeps running so a
    /// fuzzer can observe the count without the process aborting.
    fn audit(&mut self) {
        let ordered = self.snd_una <= self.snd_nxt
            && self.snd_nxt <= self.max_sent
            && self.max_sent <= self.written + 1;
        let monotone = self.snd_una >= self.audit_una && self.delivered >= self.audit_delivered;
        let cwnd_ok = self.cwnd >= self.cfg.mss as f64;
        let recv_ok = self.delivered <= self.rcv_nxt;
        if !(ordered && monotone && cwnd_ok && recv_ok) {
            self.stats.invariant_violations += 1;
        }
        self.audit_una = self.snd_una;
        self.audit_delivered = self.delivered;
    }

    /// Retransmit one segment starting at `snd_una`.
    fn retransmit_head(&mut self, _now: SimTime, outs: &mut Vec<Out>) {
        self.note_retransmit();
        if self.snd_una == 0 {
            // Retransmit SYN (or SYN/ACK).
            let flags = match self.state {
                State::SynSent => SegFlags {
                    syn: true,
                    ..Default::default()
                },
                _ => SegFlags {
                    syn: true,
                    ack: true,
                    ..Default::default()
                },
            };
            outs.push(Out::Seg(SegOut {
                seq: 0,
                ack: if flags.ack { self.rcv_nxt } else { 0 },
                wnd: self.recv_window(),
                len: 0,
                flags,
                rtx: true,
            }));
            self.stats.rtx_segs += 1;
            return;
        }
        if self.fin_seq == Some(self.snd_una) {
            outs.push(Out::Seg(SegOut {
                seq: self.snd_una,
                ack: self.rcv_nxt,
                wnd: self.recv_window(),
                len: 0,
                flags: SegFlags {
                    fin: true,
                    ack: true,
                    ..Default::default()
                },
                rtx: true,
            }));
            self.stats.rtx_segs += 1;
            return;
        }
        let data_left = self.written.saturating_sub(self.snd_una);
        if data_left > 0 {
            let len = data_left.min(self.cfg.mss as u64) as u32;
            outs.push(Out::Seg(SegOut {
                seq: self.snd_una,
                ack: self.rcv_nxt,
                wnd: self.recv_window(),
                len,
                flags: SegFlags {
                    ack: true,
                    ..Default::default()
                },
                rtx: true,
            }));
            self.stats.rtx_segs += 1;
            self.stats.segs_sent += 1;
            self.stats.bytes_sent += len as u64;
        }
    }

    fn process_data(&mut self, seg: &SegIn, now: SimTime, outs: &mut Vec<Out>) {
        let mut advanced = false;
        if seg.len > 0 {
            let start = seg.seq;
            let end = seg.seq + seg.len as u64;
            if end <= self.rcv_nxt {
                // Entirely old: pure retransmission, re-ack.
            } else if start <= self.rcv_nxt {
                self.rcv_nxt = end;
                advanced = true;
                // Merge any out-of-order data that now fits.
                while let Some((&s, &e)) = self.ooo.first_key_value() {
                    if s > self.rcv_nxt {
                        break;
                    }
                    self.rcv_nxt = self.rcv_nxt.max(e);
                    self.ooo.remove(&s);
                }
            } else {
                // A hole: buffer out of order (bounded by the receive
                // window, which the sender respects).
                let entry = self.ooo.entry(start).or_insert(end);
                *entry = (*entry).max(end);
            }
        }
        if seg.flags.fin {
            let fin_seq = seg.seq + seg.len as u64;
            if self.peer_fin.is_none() {
                self.peer_fin = Some(fin_seq);
            }
        }
        // Consume the FIN's sequence slot once all data before it arrived.
        if let Some(f) = self.peer_fin {
            if self.rcv_nxt == f && !self.peer_fin_acked {
                self.rcv_nxt = f + 1;
                self.peer_fin_acked = true;
                advanced = true;
                if self.state == State::Established {
                    self.state = State::CloseWait;
                } else if self.state == State::FinWait {
                    // simultaneous / sequential close; closure check later
                }
                outs.push(Out::RemoteClosed);
            }
        }
        // ACK policy: out-of-order and duplicate segments are acknowledged
        // immediately (the dupacks drive fast retransmit at the peer), as is
        // a FIN. Fresh in-order data may be delayed-acked if configured.
        let fresh_in_order = advanced && seg.len > 0 && !seg.flags.fin;
        if !self.cfg.delayed_ack || !fresh_in_order {
            self.emit_ack(outs);
        } else if self.delack_pending {
            // Second unacknowledged segment: ack now (RFC 1122's every-2).
            self.emit_ack(outs);
        } else {
            self.delack_pending = true;
            self.delack_gen += 2;
            outs.push(Out::ArmTimer {
                at: now + self.cfg.delack_delay,
                gen: self.delack_gen,
            });
        }
        if advanced && self.readable_bytes() > 0 {
            outs.push(Out::Readable);
        }
    }

    fn check_fully_closed(&mut self, outs: &mut Vec<Out>) {
        let ours_done = self.fin_seq.is_some() && self.our_fin_acked;
        let theirs_done = self.peer_fin_acked;
        if ours_done && theirs_done && self.state != State::Closed {
            self.state = State::Closed;
            self.cancel_timer();
            outs.push(Out::Closed);
        }
    }

    fn emit_ack(&mut self, outs: &mut Vec<Out>) {
        self.clear_delack();
        let wnd = self.recv_window();
        self.advertised_wnd = wnd;
        outs.push(Out::Seg(SegOut {
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            wnd,
            len: 0,
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
            rtx: false,
        }));
    }

    // ------------------------------------------------------------------
    // Transmission
    // ------------------------------------------------------------------

    fn send_data(&mut self, now: SimTime, outs: &mut Vec<Out>) {
        if !matches!(
            self.state,
            State::Established | State::FinWait | State::CloseWait
        ) {
            return;
        }
        // Slow-start restart: collapse cwnd after a send-idle period longer
        // than the RTO (RFC 2861).
        if self.cfg.idle_restart
            && self.flight() == 0
            && self.written > self.snd_nxt
            && now.since(self.last_send) > self.rto
        {
            let restart = (self.cfg.init_cwnd_segs * self.cfg.mss) as f64;
            if self.cwnd > restart {
                self.cwnd = restart;
                self.stats.slow_start_restarts += 1;
                outs.push(Out::Cc {
                    kind: CcKind::SlowStartRestart,
                    cwnd_bytes: self.cwnd as u64,
                    rto: self.rto,
                });
            }
        }
        let mut sent_any = false;
        loop {
            let wnd = (self.cwnd as u64).min(self.snd_wnd);
            let flight = self.flight();
            if wnd <= flight {
                break;
            }
            let space = wnd - flight;
            let avail = self.written.saturating_sub(self.snd_nxt);
            let len = space.min(avail).min(self.cfg.mss as u64);
            if len == 0 {
                break;
            }
            let seq = self.snd_nxt;
            // Below the transmission high-water mark this is a go-back-N
            // retransmission (snd_nxt was rewound at an RTO), even though
            // it flows through the regular send path.
            let fresh = seq >= self.max_sent;
            outs.push(Out::Seg(SegOut {
                seq,
                ack: self.rcv_nxt,
                wnd: self.recv_window(),
                len: len as u32,
                flags: SegFlags {
                    ack: true,
                    ..Default::default()
                },
                rtx: !fresh,
            }));
            self.snd_nxt += len;
            self.max_sent = self.max_sent.max(self.snd_nxt);
            self.stats.segs_sent += 1;
            self.stats.bytes_sent += len;
            self.last_send = now;
            // Karn: time only segments transmitted for the first time. The
            // bug switch restores the historical behavior (arming on
            // re-sent bytes) but brands the sample unclean so the audit
            // counter convicts it when it completes.
            if self.rtt_sample.is_none() && (fresh || self.cfg.karn_disable) {
                self.rtt_sample = Some(RttSample {
                    seq: self.snd_nxt,
                    at: now,
                    clean: fresh,
                });
            }
            sent_any = true;
        }
        // Send the FIN once all data is out; it consumes one sequence slot.
        if self.fin_queued && self.fin_seq.is_none() && self.snd_nxt == self.written {
            let can_fit = (self.cwnd as u64).min(self.snd_wnd) > self.flight();
            if can_fit {
                outs.push(Out::Seg(SegOut {
                    seq: self.snd_nxt,
                    ack: self.rcv_nxt,
                    wnd: self.recv_window(),
                    len: 0,
                    flags: SegFlags {
                        fin: true,
                        ack: true,
                        ..Default::default()
                    },
                    rtx: false,
                }));
                self.fin_seq = Some(self.snd_nxt);
                self.snd_nxt += 1;
                self.max_sent = self.max_sent.max(self.snd_nxt);
                if self.state == State::Established {
                    self.state = State::FinWait;
                }
                sent_any = true;
            }
        }
        if sent_any {
            // Data segments carry the current ack: any owed delayed ACK is
            // piggybacked.
            self.clear_delack();
            if !self.timer_armed {
                self.arm_timer(now, outs);
            }
        }
        // Zero-window deadlock guard: data waiting, nothing in flight, peer
        // window closed — keep the timer running to probe.
        if self.snd_wnd == 0
            && self.flight() == 0
            && self.written > self.snd_nxt
            && !self.timer_armed
        {
            self.arm_timer(now, outs);
        }
    }

    // ------------------------------------------------------------------
    // Timer
    // ------------------------------------------------------------------

    fn arm_timer(&mut self, now: SimTime, outs: &mut Vec<Out>) {
        self.timer_gen += 2;
        self.timer_armed = true;
        outs.push(Out::ArmTimer {
            at: now + self.rto,
            gen: self.timer_gen,
        });
    }

    fn cancel_timer(&mut self) {
        self.timer_gen += 2;
        self.timer_armed = false;
    }

    /// Any ACK we emit (pure or piggybacked) satisfies a pending delayed ACK.
    fn clear_delack(&mut self) {
        if self.delack_pending {
            self.delack_pending = false;
            self.delack_gen += 2;
        }
    }

    /// A timer fired: the retransmission timer (even generations) or the
    /// delayed-ACK timer (odd generations).
    pub fn on_timer(&mut self, gen: u64, now: SimTime) -> Vec<Out> {
        let outs = self.on_timer_inner(gen, now);
        self.audit();
        outs
    }

    fn on_timer_inner(&mut self, gen: u64, now: SimTime) -> Vec<Out> {
        let mut outs = Vec::new();
        if gen % 2 == 1 {
            if gen == self.delack_gen && self.delack_pending && self.state != State::Closed {
                self.emit_ack(&mut outs);
            }
            return outs;
        }
        if gen != self.timer_gen || !self.timer_armed || self.state == State::Closed {
            return outs;
        }
        self.timer_armed = false;
        if self.state == State::SynSent || self.state == State::SynRcvd {
            // Handshake retransmission.
            self.retransmit_head(now, &mut outs);
            self.rto = (self.rto * 2).min(self.cfg.rto_max);
            self.arm_timer(now, &mut outs);
            return outs;
        }
        let unacked = self.flight() > 0;
        if unacked {
            // Retransmission timeout: multiplicative back-off, collapse the
            // window, and go back N — rewind snd_nxt to snd_una so the whole
            // window is resent under slow start (cumulative ACKs for data
            // the receiver cached out of order pull snd_nxt forward again).
            self.stats.rtos += 1;
            let flight = self.flight() as f64;
            self.ssthresh = (flight / 2.0).max((2 * self.cfg.mss) as f64);
            self.cwnd = self.cfg.mss as f64;
            self.in_recovery = false;
            self.dupacks = 0;
            self.recover = self.snd_nxt;
            self.snd_nxt = self.snd_una;
            if let Some(f) = self.fin_seq {
                if f >= self.snd_nxt {
                    // The FIN itself must be resent once data drains again.
                    self.fin_seq = None;
                    self.fin_queued = true;
                }
            }
            self.note_retransmit(); // Karn
            self.stats.rtx_segs += 1;
            self.send_data(now, &mut outs);
            self.rto = (self.rto * 2).min(self.cfg.rto_max);
            outs.push(Out::Cc {
                kind: CcKind::Rto,
                cwnd_bytes: self.cwnd as u64,
                rto: self.rto,
            });
            self.arm_timer(now, &mut outs);
        } else if self.snd_wnd == 0 && self.written > self.snd_nxt {
            // Persist: probe the zero window with one byte.
            let seq = self.snd_nxt;
            outs.push(Out::Seg(SegOut {
                seq,
                ack: self.rcv_nxt,
                wnd: self.recv_window(),
                len: 1,
                flags: SegFlags {
                    ack: true,
                    ..Default::default()
                },
                rtx: false,
            }));
            self.snd_nxt += 1;
            self.max_sent = self.max_sent.max(self.snd_nxt);
            self.stats.segs_sent += 1;
            self.stats.bytes_sent += 1;
            self.rto = (self.rto * 2).min(self.cfg.rto_max);
            self.arm_timer(now, &mut outs);
        }
        outs
    }
}
