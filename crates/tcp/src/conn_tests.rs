//! Direct unit tests of the sans-io TCP state machine: every transition is
//! driven by hand-built segments, with no network underneath.

use crate::conn::{Connection, Out, SegFlags, SegIn, SegOut, State, TcpCfg};
use mpichgq_sim::{SimDelta, SimTime};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn segs(outs: &[Out]) -> Vec<SegOut> {
    outs.iter()
        .filter_map(|o| match o {
            Out::Seg(s) => Some(*s),
            _ => None,
        })
        .collect()
}

fn data_segs(outs: &[Out]) -> Vec<SegOut> {
    segs(outs).into_iter().filter(|s| s.len > 0).collect()
}

fn ack_of(c: &Connection, ack: u64, wnd: u32) -> SegIn {
    let _ = c;
    SegIn {
        seq: 0,
        ack,
        wnd,
        len: 0,
        flags: SegFlags {
            ack: true,
            ..Default::default()
        },
    }
}

/// Drive a full client handshake; returns the established connection.
fn established(cfg: TcpCfg) -> Connection {
    let (mut c, outs) = Connection::connect(cfg, t(0));
    let syn = segs(&outs);
    assert_eq!(syn.len(), 1);
    assert!(syn[0].flags.syn && !syn[0].flags.ack);
    let outs = c.on_segment(
        &SegIn {
            seq: 0,
            ack: 1,
            wnd: 65535,
            len: 0,
            flags: SegFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
        },
        t(1),
    );
    assert!(outs.contains(&Out::Connected));
    assert_eq!(c.state(), State::Established);
    c
}

#[test]
fn handshake_client_and_server() {
    let cfg = TcpCfg::default();
    let c = established(cfg);
    assert_eq!(c.flight(), 0);

    // Server side.
    let syn = SegIn {
        seq: 0,
        ack: 0,
        wnd: 65535,
        len: 0,
        flags: SegFlags {
            syn: true,
            ..Default::default()
        },
    };
    let (mut s, outs) = Connection::accept(cfg, &syn, t(0));
    let synack = segs(&outs);
    assert!(synack[0].flags.syn && synack[0].flags.ack && synack[0].ack == 1);
    let outs = s.on_segment(&ack_of(&s, 1, 65535), t(1));
    assert!(outs.contains(&Out::Accepted));
    assert_eq!(s.state(), State::Established);
}

#[test]
fn syn_retransmits_on_timeout_with_backoff() {
    let cfg = TcpCfg::default();
    let (mut c, outs) = Connection::connect(cfg, t(0));
    let gen = outs
        .iter()
        .find_map(|o| match o {
            Out::ArmTimer { gen, at } => Some((*gen, *at)),
            _ => None,
        })
        .expect("SYN must arm a timer");
    assert_eq!(gen.1, t(1000)); // initial RTO 1 s
    let outs = c.on_timer(gen.0, t(1000));
    let s = segs(&outs);
    assert!(s[0].flags.syn && s[0].rtx);
    // Backed-off rearm at +2 s.
    let at = outs
        .iter()
        .find_map(|o| match o {
            Out::ArmTimer { at, .. } => Some(*at),
            _ => None,
        })
        .unwrap();
    assert_eq!(at, t(3000));
}

#[test]
fn write_segments_respect_mss_and_cwnd() {
    let cfg = TcpCfg {
        init_cwnd_segs: 2,
        ..TcpCfg::default()
    };
    let mut c = established(cfg);
    let (accepted, outs) = c.write(10_000, t(2));
    assert_eq!(accepted, 10_000);
    // cwnd = 2 MSS: exactly two full segments go out.
    let d = data_segs(&outs);
    assert_eq!(d.len(), 2);
    assert_eq!(d[0].len, 1460);
    assert_eq!(d[1].len, 1460);
    assert_eq!(c.flight(), 2920);
}

#[test]
fn slow_start_grows_one_mss_per_ack() {
    // Appropriate byte counting with L=1 (RFC 3465): each ACK grows cwnd
    // by at most one MSS, however much it acknowledges cumulatively.
    let cfg = TcpCfg::default();
    let mut c = established(cfg);
    let (_, outs) = c.write(1_000_000, t(2));
    assert_eq!(data_segs(&outs).len(), 2);
    // One cumulative ACK for both segments: cwnd 2 -> 3 MSS, flight empty,
    // so three segments flow.
    let outs = c.on_segment(&ack_of(&c, 1 + 2920, 1_000_000), t(4));
    assert_eq!(data_segs(&outs).len(), 3);
    // Two more single-segment ACKs: cwnd 3 -> 5 MSS.
    let _ = c.on_segment(&ack_of(&c, 1 + 2920 + 1460, 1_000_000), t(5));
    let _ = c.on_segment(&ack_of(&c, 1 + 2920 + 2920, 1_000_000), t(6));
    assert!(c.cwnd_bytes() >= 5 * 1460, "cwnd {}", c.cwnd_bytes());
}

#[test]
fn send_buffer_limits_writes_and_signals_writable() {
    let cfg = TcpCfg {
        send_buf: 4096,
        ..TcpCfg::default()
    };
    let mut c = established(cfg);
    let (accepted, _) = c.write(10_000, t(2));
    assert_eq!(accepted, 4096);
    assert_eq!(c.send_buffer_free(), 0);
    // An ACK frees buffer space and must emit Writable (the app was
    // blocked).
    let outs = c.on_segment(&ack_of(&c, 1 + 1460, 65535), t(3));
    assert!(outs.contains(&Out::Writable));
    assert_eq!(c.send_buffer_free(), 1460);
}

#[test]
fn receiver_window_limits_flight() {
    let cfg = TcpCfg::default();
    let mut c = established(cfg);
    // Peer advertises a tiny window.
    let _ = c.on_segment(&ack_of(&c, 1, 2000), t(2));
    let (_, outs) = c.write(100_000, t(2));
    let d = data_segs(&outs);
    let sent: u64 = d.iter().map(|s| s.len as u64).sum();
    assert!(sent <= 2000, "flight {sent} exceeds advertised window");
}

#[test]
fn zero_window_probe_after_stall() {
    let cfg = TcpCfg::default();
    let mut c = established(cfg);
    let _ = c.on_segment(&ack_of(&c, 1, 0), t(2));
    let (accepted, outs) = c.write(5_000, t(2));
    assert_eq!(accepted, 5_000);
    assert!(
        data_segs(&outs).is_empty(),
        "nothing sent into a zero window"
    );
    // The probe timer fires: exactly one 1-byte probe.
    let gen = outs
        .iter()
        .rev()
        .find_map(|o| match o {
            Out::ArmTimer { gen, .. } => Some(*gen),
            _ => None,
        })
        .expect("zero-window stall must arm a timer");
    let outs = c.on_timer(gen, t(1200));
    let d = data_segs(&outs);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].len, 1);
}

#[test]
fn in_order_data_is_readable_and_acked() {
    let cfg = TcpCfg::default();
    let mut c = established(cfg);
    let outs = c.on_segment(
        &SegIn {
            seq: 1,
            ack: 1,
            wnd: 65535,
            len: 1000,
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
        },
        t(2),
    );
    assert!(outs.contains(&Out::Readable));
    let acks = segs(&outs);
    assert_eq!(acks.last().unwrap().ack, 1001);
    assert_eq!(c.readable_bytes(), 1000);
    let (n, _) = c.read(400);
    assert_eq!(n, 400);
    assert_eq!(c.readable_bytes(), 600);
}

#[test]
fn out_of_order_data_dupacks_then_merges() {
    let cfg = TcpCfg::default();
    let mut c = established(cfg);
    // Hole: segment at 1461 arrives before 1.
    let outs = c.on_segment(
        &SegIn {
            seq: 1461,
            ack: 1,
            wnd: 65535,
            len: 1000,
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
        },
        t(2),
    );
    assert!(!outs.contains(&Out::Readable));
    assert_eq!(segs(&outs).last().unwrap().ack, 1, "dup ack for the hole");
    // Fill the hole: cumulative ack jumps over the cached block.
    let outs = c.on_segment(
        &SegIn {
            seq: 1,
            ack: 1,
            wnd: 65535,
            len: 1460,
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
        },
        t(3),
    );
    assert!(outs.contains(&Out::Readable));
    assert_eq!(segs(&outs).last().unwrap().ack, 2461);
    assert_eq!(c.readable_bytes(), 2460);
}

#[test]
fn three_dupacks_trigger_fast_retransmit() {
    let cfg = TcpCfg {
        init_cwnd_segs: 8,
        ..TcpCfg::default()
    };
    let mut c = established(cfg);
    let (_, outs) = c.write(10 * 1460, t(2));
    assert_eq!(data_segs(&outs).len(), 8);
    // Three duplicate ACKs at the initial una.
    for i in 0..3 {
        let outs = c.on_segment(&ack_of(&c, 1, 65535), t(3 + i));
        if i < 2 {
            assert!(data_segs(&outs).is_empty());
        } else {
            let d = data_segs(&outs);
            assert_eq!(d.len(), 1, "third dupack retransmits the head");
            assert_eq!(d[0].seq, 1);
            assert!(d[0].rtx);
        }
    }
    assert_eq!(c.stats.fast_retransmits, 1);
    assert_eq!(c.stats.dup_acks_received, 3);
}

#[test]
fn newreno_partial_ack_retransmits_next_hole() {
    let cfg = TcpCfg {
        init_cwnd_segs: 8,
        ..TcpCfg::default()
    };
    let mut c = established(cfg);
    let _ = c.write(8 * 1460, t(2));
    for i in 0..3 {
        let _ = c.on_segment(&ack_of(&c, 1, 65535), t(3 + i));
    }
    // Partial ACK: first segment recovered, second still missing.
    let outs = c.on_segment(&ack_of(&c, 1 + 1460, 65535), t(10));
    let d = data_segs(&outs);
    assert!(!d.is_empty(), "partial ack retransmits the next hole");
    assert_eq!(d[0].seq, 1 + 1460);
    // Full ACK exits recovery and deflates cwnd to ssthresh.
    let _ = c.on_segment(&ack_of(&c, 1 + 8 * 1460, 65535), t(12));
    assert!(c.cwnd_bytes() <= 8 * 1460);
}

#[test]
fn rto_goes_back_n_and_backs_off() {
    let cfg = TcpCfg {
        init_cwnd_segs: 4,
        ..TcpCfg::default()
    };
    let mut c = established(cfg);
    let (_, outs) = c.write(4 * 1460, t(2));
    let gen = outs
        .iter()
        .rev()
        .find_map(|o| match o {
            Out::ArmTimer { gen, .. } => Some(*gen),
            _ => None,
        })
        .unwrap();
    let before = c.rto();
    let outs = c.on_timer(gen, t(2) + before);
    assert_eq!(c.stats.rtos, 1);
    // Go-back-N: snd_nxt rewound, one segment (cwnd = 1 MSS) retransmitted.
    let d = data_segs(&outs);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].seq, 1);
    assert_eq!(c.flight(), 1460);
    assert_eq!(c.rto(), (before * 2).min(cfg.rto_max));
    // A cumulative ACK beyond the rewound point (receiver had cached the
    // rest) pulls snd_nxt forward.
    let _ = c.on_segment(&ack_of(&c, 1 + 4 * 1460, 65535), t(3000));
    assert_eq!(c.flight(), 0);
}

#[test]
fn rtt_estimation_tracks_samples_and_karn() {
    let cfg = TcpCfg::default();
    let mut c = established(cfg);
    let _ = c.write(1460, t(100));
    // ACK 40 ms later: first sample sets srtt = 40 ms.
    let _ = c.on_segment(&ack_of(&c, 1 + 1460, 65535), t(140));
    assert_eq!(c.srtt(), Some(SimDelta::from_millis(40)));
    // RTO = srtt + 4*rttvar = 40 + 80 = 120 ms, clamped to rto_min 200 ms.
    assert_eq!(c.rto(), SimDelta::from_millis(200));
}

#[test]
fn idle_restart_collapses_cwnd() {
    let cfg = TcpCfg {
        idle_restart: true,
        ..TcpCfg::default()
    };
    let mut c = established(cfg);
    // Grow cwnd well past initial.
    let _ = c.write(8 * 1460, t(2));
    for i in 1..=8u64 {
        let _ = c.on_segment(&ack_of(&c, 1 + i * 1460, 65535), t(2 + i));
    }
    assert!(c.cwnd_bytes() > 4 * 1460);
    // Go idle for 2 s (>> RTO), then write a burst: only init_cwnd goes out.
    let (_, outs) = c.write(10 * 1460, t(2500));
    let d = data_segs(&outs);
    assert_eq!(d.len(), cfg.init_cwnd_segs as usize, "idle restart");
}

#[test]
fn no_idle_restart_when_disabled() {
    let cfg = TcpCfg {
        idle_restart: false,
        ..TcpCfg::default()
    };
    let mut c = established(cfg);
    let _ = c.write(8 * 1460, t(2));
    for i in 1..=8u64 {
        let _ = c.on_segment(&ack_of(&c, 1 + i * 1460, 65535), t(2 + i));
    }
    let grown = c.cwnd_bytes();
    let (_, outs) = c.write(20 * 1460, t(2500));
    let d = data_segs(&outs);
    assert!(
        d.len() * 1460 >= grown as usize - 1460,
        "window kept after idle"
    );
}

#[test]
fn graceful_close_both_directions() {
    let cfg = TcpCfg::default();
    let mut a = established(cfg);
    // a sends FIN.
    let outs = a.close(t(2));
    let fin = segs(&outs);
    assert!(fin[0].flags.fin);
    assert_eq!(a.state(), State::FinWait);
    // Peer ACKs the FIN and sends its own.
    let _ = a.on_segment(&ack_of(&a, 2, 65535), t(3));
    let outs = a.on_segment(
        &SegIn {
            seq: 1,
            ack: 2,
            wnd: 65535,
            len: 0,
            flags: SegFlags {
                fin: true,
                ack: true,
                ..Default::default()
            },
        },
        t(4),
    );
    assert!(outs.contains(&Out::RemoteClosed));
    assert!(outs.contains(&Out::Closed));
    assert_eq!(a.state(), State::Closed);
    assert!(a.at_eof());
}

#[test]
fn fin_waits_for_queued_data() {
    let cfg = TcpCfg {
        init_cwnd_segs: 1,
        ..TcpCfg::default()
    };
    let mut c = established(cfg);
    let _ = c.write(3 * 1460, t(2));
    let outs = c.close(t(2));
    // cwnd 1: only the first data segment is out; no FIN yet.
    assert!(segs(&outs).iter().all(|s| !s.flags.fin));
    // Ack everything: remaining data then FIN flow out.
    let outs1 = c.on_segment(&ack_of(&c, 1 + 1460, 65535), t(3));
    let outs2 = c.on_segment(&ack_of(&c, 1 + 3 * 1460, 65535), t(4));
    let all: Vec<SegOut> = segs(&outs1).into_iter().chain(segs(&outs2)).collect();
    assert!(all.iter().any(|s| s.flags.fin), "FIN after data drained");
}

#[test]
fn rst_closes_immediately() {
    let cfg = TcpCfg::default();
    let mut c = established(cfg);
    let outs = c.on_segment(
        &SegIn {
            seq: 1,
            ack: 1,
            wnd: 0,
            len: 0,
            flags: SegFlags {
                rst: true,
                ..Default::default()
            },
        },
        t(2),
    );
    assert!(outs.contains(&Out::Closed));
    assert_eq!(c.state(), State::Closed);
}

#[test]
fn window_update_sent_when_reader_drains_full_buffer() {
    let cfg = TcpCfg {
        recv_buf: 4096,
        ..TcpCfg::default()
    };
    let mut c = established(cfg);
    // Fill the receive buffer completely.
    let outs = c.on_segment(
        &SegIn {
            seq: 1,
            ack: 1,
            wnd: 65535,
            len: 4096,
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
        },
        t(2),
    );
    let last = segs(&outs).last().cloned().unwrap();
    assert_eq!(last.wnd, 0, "advertised window closed");
    // Reading opens the window: a pure window-update ACK must be emitted.
    let (n, outs) = c.read(4096);
    assert_eq!(n, 4096);
    let upd = segs(&outs);
    assert_eq!(upd.len(), 1, "window update after drain");
    assert_eq!(upd[0].wnd, 4096);
}

#[test]
fn duplicate_data_reacked_not_redelivered() {
    let cfg = TcpCfg::default();
    let mut c = established(cfg);
    let seg = SegIn {
        seq: 1,
        ack: 1,
        wnd: 65535,
        len: 1000,
        flags: SegFlags {
            ack: true,
            ..Default::default()
        },
    };
    let _ = c.on_segment(&seg, t(2));
    let (n, _) = c.read(10_000);
    assert_eq!(n, 1000);
    // The same segment retransmitted: re-acked, nothing new to read.
    let outs = c.on_segment(&seg, t(3));
    assert_eq!(segs(&outs).last().unwrap().ack, 1001);
    assert!(!outs.contains(&Out::Readable));
    assert_eq!(c.readable_bytes(), 0);
}

// ----------------------------------------------------------------------
// Delayed acknowledgments (RFC 1122)
// ----------------------------------------------------------------------

fn delack_cfg() -> TcpCfg {
    TcpCfg {
        delayed_ack: true,
        ..TcpCfg::default()
    }
}

fn data_at(seq: u64, len: u32) -> SegIn {
    SegIn {
        seq,
        ack: 1,
        wnd: 65535,
        len,
        flags: SegFlags {
            ack: true,
            ..Default::default()
        },
    }
}

#[test]
fn delack_holds_first_segment_acks_second() {
    let mut c = established(delack_cfg());
    // First in-order segment: no ACK, a delack timer instead.
    let outs = c.on_segment(&data_at(1, 1000), t(2));
    assert!(
        segs(&outs).is_empty(),
        "first segment must not be acked yet"
    );
    assert!(outs
        .iter()
        .any(|o| matches!(o, Out::ArmTimer { at, .. } if *at == t(202))));
    // Second segment: immediate cumulative ACK.
    let outs = c.on_segment(&data_at(1001, 1000), t(3));
    let a = segs(&outs);
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].ack, 2001);
}

#[test]
fn delack_timer_flushes_lone_segment() {
    let mut c = established(delack_cfg());
    let outs = c.on_segment(&data_at(1, 1000), t(2));
    let gen = outs
        .iter()
        .find_map(|o| match o {
            Out::ArmTimer { gen, .. } => Some(*gen),
            _ => None,
        })
        .unwrap();
    assert_eq!(gen % 2, 1, "delack timers use odd generations");
    let outs = c.on_timer(gen, t(202));
    let a = segs(&outs);
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].ack, 1001);
    // A stale delack firing later does nothing.
    assert!(c.on_timer(gen, t(400)).is_empty());
}

#[test]
fn delack_out_of_order_acks_immediately() {
    let mut c = established(delack_cfg());
    // A hole: dupack must go out at once (fast retransmit depends on it).
    let outs = c.on_segment(&data_at(1461, 1000), t(2));
    let a = segs(&outs);
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].ack, 1);
}

#[test]
fn delack_piggybacks_on_data() {
    let mut c = established(delack_cfg());
    let _ = c.on_segment(&data_at(1, 1000), t(2)); // delack pending
                                                   // We now send data: the segment carries the ack; the pending delack is
                                                   // satisfied and its timer generation invalidated.
    let (_, outs) = c.write(500, t(3));
    let d = data_segs(&outs);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].ack, 1001);
    // The old delack timer is stale now.
    let outs = c.on_timer(1, t(202));
    assert!(segs(&outs).is_empty());
}

#[test]
fn delack_off_acks_every_segment() {
    let mut c = established(TcpCfg::default());
    let outs = c.on_segment(&data_at(1, 1000), t(2));
    assert_eq!(segs(&outs).len(), 1, "immediate ack when delack disabled");
}

// ----------------------------------------------------------------------
// Karn's algorithm (pinned regressions for the RTO go-back-N bug)
// ----------------------------------------------------------------------

/// The retransmission timer armed by a batch of outs (even generations;
/// delayed-ACK generations are odd).
fn rtx_timer(outs: &[Out]) -> (u64, SimTime) {
    outs.iter()
        .rev()
        .find_map(|o| match o {
            Out::ArmTimer { gen, at } if gen % 2 == 0 => Some((*gen, *at)),
            _ => None,
        })
        .expect("retransmission timer armed")
}

/// Drive one clean MSS exchange (write at t(10), ACK at t(110)) so srtt is
/// primed to 100 ms, then write a second MSS that goes unACKed until the
/// RTO fires and go-back-N re-sends it.
fn primed_then_rto(cfg: TcpCfg) -> (Connection, u64) {
    let mss = cfg.mss as u64;
    let mut c = established(cfg);
    let (n, outs) = c.write(mss, t(10));
    assert_eq!(n, mss);
    assert_eq!(data_segs(&outs).len(), 1);
    let _ = c.on_segment(&ack_of(&c, 1 + mss, 65535), t(110));
    assert_eq!(c.srtt(), Some(SimDelta::from_millis(100)));
    // Second burst at t(200); the ACK never arrives.
    let (n, outs) = c.write(mss, t(200));
    assert_eq!(n, mss);
    let (gen, at) = rtx_timer(&outs);
    // srtt 100 ms, rttvar 50 ms -> RTO 300 ms.
    assert_eq!(at, t(500));
    let outs = c.on_timer(gen, t(500));
    let rtx = data_segs(&outs);
    assert_eq!(rtx.len(), 1, "go-back-N re-sends the lost segment");
    assert!(
        rtx[0].rtx,
        "re-sent bytes must be flagged as a retransmission"
    );
    (c, 1 + 2 * mss)
}

#[test]
fn karn_rto_retransmission_never_times_rtt() {
    let (mut c, ack) = primed_then_rto(TcpCfg::default());
    let srtt0 = c.srtt().unwrap();
    // The ACK of the retransmitted segment lands 4.5 s after the original
    // transmission. It is ambiguous (it may acknowledge either copy), so
    // Karn's algorithm forbids feeding it to update_rtt.
    let _ = c.on_segment(&ack_of(&c, ack, 65535), t(5000));
    assert_eq!(c.flight(), 0, "the late ACK covers everything outstanding");
    assert_eq!(
        c.srtt(),
        Some(srtt0),
        "ambiguous ACK of a retransmission must not move srtt"
    );
    assert_eq!(c.stats.karn_violations, 0);
    assert_eq!(c.stats.invariant_violations, 0);
}

#[test]
fn karn_disable_switch_reintroduces_the_bogus_sample() {
    let cfg = TcpCfg {
        karn_disable: true,
        ..TcpCfg::default()
    };
    let (mut c, ack) = primed_then_rto(cfg);
    let srtt0 = c.srtt().unwrap();
    let _ = c.on_segment(&ack_of(&c, ack, 65535), t(5000));
    // The historical bug: the sample armed at t(200) survives the RTO and
    // the 4.8 s "RTT" is fed into the estimator — and the audit counter
    // convicts it.
    assert_eq!(c.stats.karn_violations, 1);
    assert!(
        c.srtt().unwrap() > srtt0 * 4,
        "bug switch must reproduce the srtt pollution ({:?} vs {:?})",
        c.srtt(),
        srtt0
    );
}
