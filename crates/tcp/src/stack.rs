//! The socket layer: demultiplexing, applications, and the glue between
//! sans-io TCP connections and the simulated network.
//!
//! A [`Stack`] owns every socket and application in the simulation and
//! implements [`NetHandler`]: packet arrivals are demuxed to TCP/UDP
//! sockets, connection outputs are applied to the network, and applications
//! are woken through the [`App`] trait with a [`Ctx`] capability handle
//! (sockets, timers, CPU work, services). This mirrors the role of the
//! hosts' kernels plus the globus-io library in the paper's architecture.

use crate::conn::{CcKind, Connection, Out, SegFlags, SegIn, SegOut, State, TcpCfg};
use mpichgq_dsrt::ProcId;
use mpichgq_netsim::{
    FlowSpec, Net, NetHandler, NodeId, Packet, Proto, TcpFlags, TcpHeader, TimelineSource, L4,
};
use mpichgq_sim::FxHashMap;
use mpichgq_sim::{SimDelta, SimTime};
use std::any::{Any, TypeId};
use std::collections::{HashMap, VecDeque};

/// Identifies a socket in the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockId(pub u32);

/// Identifies an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub u32);

/// Whether a socket carries real bytes (integrity-checked transfers) or
/// counted bytes only (bulk experiments, where copying real payloads
/// through every queue would be waste).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    Counted,
    Bytes,
}

/// Application event interface. All methods have empty defaults; programs
/// are explicit state machines driven by these callbacks.
#[allow(unused_variables)]
pub trait App {
    fn on_start(&mut self, ctx: &mut Ctx) {}
    fn on_connected(&mut self, sock: SockId, ctx: &mut Ctx) {}
    fn on_accept(&mut self, listener: SockId, sock: SockId, ctx: &mut Ctx) {}
    fn on_readable(&mut self, sock: SockId, ctx: &mut Ctx) {}
    fn on_writable(&mut self, sock: SockId, ctx: &mut Ctx) {}
    fn on_remote_closed(&mut self, sock: SockId, ctx: &mut Ctx) {}
    fn on_closed(&mut self, sock: SockId, ctx: &mut Ctx) {}
    fn on_timer(&mut self, token: u32, ctx: &mut Ctx) {}
    fn on_udp(&mut self, sock: SockId, from: (NodeId, u16), len: u32, ctx: &mut Ctx) {}
    fn on_cpu_done(&mut self, ctx: &mut Ctx) {}
    /// Another host crashed (`HostCrash` fault). Broadcast to every app
    /// still alive, in `AppId` order — the simulator's stand-in for
    /// MPICH's instantaneous process-failure notification; a real runtime
    /// would learn this from connection teardown or a failure detector.
    fn on_peer_failed(&mut self, host: NodeId, ctx: &mut Ctx) {}
    /// A crashed host came back (`HostRestart` fault). Broadcast after
    /// the restart hooks have respawned whatever lives there.
    fn on_peer_restarted(&mut self, host: NodeId, ctx: &mut Ctx) {}
}

/// Scenario scripting hook: reservations made mid-run, contention starting
/// and stopping, etc. Fired by control events armed with
/// [`Stack::schedule_control`]. Several controllers can coexist (a scenario
/// script plus the GARA timer driver); each receives only its own events.
pub trait Controller {
    fn on_control(&mut self, payload: u64, net: &mut Net, stack: &mut Stack);
}

/// Identifies a registered [`Controller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerId(pub u8);

/// Compose a control token for [`mpichgq_netsim::Net::schedule_control`]
/// from a controller id and a 56-bit payload.
pub fn control_token(id: ControllerId, payload: u64) -> u64 {
    assert!(payload < (1 << 56), "control payload too large");
    ((id.0 as u64) << 56) | payload
}

/// Real-byte stream storage for one direction of a TCP socket pair.
#[derive(Debug, Default)]
struct StreamBuf {
    /// Stream offset of `data[0]` (first app byte is offset 1, after SYN).
    start: u64,
    data: VecDeque<u8>,
}

enum SockKind {
    Tcp(Box<Connection>),
    Listener { cfg: TcpCfg, mode: DataMode },
    Udp,
}

struct Sock {
    host: NodeId,
    owner: AppId,
    kind: SockKind,
    mode: DataMode,
    lport: u16,
    peer: Option<(NodeId, u16)>,
    /// The other endpoint's socket (simulator-side link for byte streams).
    peer_sock: Option<SockId>,
    from_listener: Option<SockId>,
    tx: StreamBuf,
    /// Recorder series name for data-segment sequence traces (Figure 7).
    trace: Option<String>,
    /// Set when the owning host crashed: the socket keeps its final
    /// connection state (audits still sum its counters) but never
    /// produces or consumes anything again.
    dead: bool,
}

struct AppSlot {
    app: Option<Box<dyn App>>,
    host: NodeId,
    proc: ProcId,
}

// Timer token layout: [kind:8][index:24][payload:32]
const KIND_TCP: u64 = 1;
const KIND_APP: u64 = 2;

fn encode_token(kind: u64, index: u32, payload: u32) -> u64 {
    (kind << 56) | ((index as u64 & 0xFF_FFFF) << 32) | payload as u64
}

fn decode_token(token: u64) -> (u64, u32, u32) {
    (
        (token >> 56) & 0xFF,
        ((token >> 32) & 0xFF_FFFF) as u32,
        token as u32,
    )
}

/// Monomorphized sample-tick trampoline for one sampled service type:
/// recovers `T` from the type-erased service box and forwards the tick.
fn probe_thunk<T: Any + TimelineSource>(b: &mut dyn Any, net: &mut Net, at: SimTime) {
    if let Some(t) = b.downcast_mut::<T>() {
        t.timeline_sample(net, at);
    }
}

/// A type-erased timeline probe: downcasts its service and lets it push
/// samples ([`Stack::insert_sampled_service`]).
type ProbeFn = fn(&mut dyn Any, &mut Net, SimTime);

/// The transport + application layer for the whole simulation.
pub struct Stack {
    socks: Vec<Sock>,
    apps: Vec<AppSlot>,
    // Demux maps are consulted per segment; the deterministic FxHash build
    // keeps those lookups off SipHash. `services` is cold and stays std.
    listeners: FxHashMap<(NodeId, u16), SockId>,
    conns: FxHashMap<(NodeId, u16, NodeId, u16), SockId>,
    udp_binds: FxHashMap<(NodeId, u16), SockId>,
    next_port: FxHashMap<NodeId, u16>,
    services: HashMap<TypeId, Box<dyn Any>>,
    /// Timeline probes of sampled services ([`Stack::insert_sampled_service`]):
    /// each entry re-finds its service by `TypeId` at every sample tick, so
    /// the take/put service discipline controllers use stays legal — a
    /// service that is checked out mid-control is simply not sampled (ticks
    /// never fire inside callbacks, so in practice it always is).
    probes: Vec<(TypeId, ProbeFn)>,
    controllers: Vec<Option<Box<dyn Controller>>>,
    /// Host-restart hooks ([`Stack::on_host_restart`]), run in
    /// registration order when a crashed host comes back — before the
    /// `on_peer_restarted` broadcast, so respawned state is visible to
    /// peers' callbacks.
    respawn_hooks: Vec<RespawnHook>,
    /// Host-crash hooks ([`Stack::on_host_crash`]), run in registration
    /// order after the host's sockets and apps die — before the
    /// `on_peer_failed` broadcast (e.g. a QoS agent releasing the dead
    /// host's reservations).
    crash_hooks: Vec<RespawnHook>,
}

/// A host-restart hook: `(net, stack, host)` — free to spawn apps, open
/// sockets, or touch services.
pub type RespawnHook = Box<dyn FnMut(&mut Net, &mut Stack, NodeId)>;

impl Default for Stack {
    fn default() -> Self {
        Self::new()
    }
}

impl Stack {
    pub fn new() -> Self {
        Stack {
            socks: Vec::new(),
            apps: Vec::new(),
            listeners: FxHashMap::default(),
            conns: FxHashMap::default(),
            udp_binds: FxHashMap::default(),
            next_port: FxHashMap::default(),
            services: HashMap::new(),
            probes: Vec::new(),
            controllers: Vec::new(),
            respawn_hooks: Vec::new(),
            crash_hooks: Vec::new(),
        }
    }

    /// Register a hook to run whenever a crashed host restarts (e.g. an
    /// MPI job respawning the rank that lived there). Hooks run in
    /// registration order, before apps hear `on_peer_restarted`.
    pub fn on_host_restart(&mut self, hook: RespawnHook) {
        self.respawn_hooks.push(hook);
    }

    /// Register a hook to run whenever a host crashes (after its sockets
    /// and apps die, before peers hear `on_peer_failed`).
    pub fn on_host_crash(&mut self, hook: RespawnHook) {
        self.crash_hooks.push(hook);
    }

    /// Register an application on `host`, registering a CPU process for it,
    /// and deliver its `on_start`.
    pub fn spawn_app(&mut self, net: &mut Net, host: NodeId, app: Box<dyn App>) -> AppId {
        let proc = net.cpu_add_process(host);
        let id = AppId(self.apps.len() as u32);
        self.apps.push(AppSlot {
            app: Some(app),
            host,
            proc,
        });
        self.wake(net, id, |a, ctx| a.on_start(ctx));
        id
    }

    /// Register a controller; its id selects which control events it sees.
    pub fn add_controller(&mut self, c: Box<dyn Controller>) -> ControllerId {
        self.add_controller_with(|_| c)
    }

    /// Register a controller built from its own id (for controllers that
    /// schedule events to themselves).
    pub fn add_controller_with(
        &mut self,
        f: impl FnOnce(ControllerId) -> Box<dyn Controller>,
    ) -> ControllerId {
        let id = ControllerId(self.controllers.len() as u8);
        self.controllers.push(Some(f(id)));
        id
    }

    /// Arm a control point at `at` for controller `id` with `payload`.
    pub fn schedule_control(&mut self, net: &mut Net, id: ControllerId, at: SimTime, payload: u64) {
        net.schedule_control(at, control_token(id, payload));
    }

    // --- services (shared singletons like the GARA system) ---

    pub fn insert_service<T: Any>(&mut self, svc: T) {
        self.services.insert(TypeId::of::<T>(), Box::new(svc));
    }

    /// [`Stack::insert_service`] for a service that also records timeline
    /// series: when the network's sampler is armed, the service's
    /// [`TimelineSource::timeline_sample`] runs at every sample tick.
    /// Registering the same type again replaces the service but not the
    /// probe (probes are idempotent per type).
    pub fn insert_sampled_service<T: Any + TimelineSource>(&mut self, svc: T) {
        let tid = TypeId::of::<T>();
        if !self.probes.iter().any(|(t, _)| *t == tid) {
            self.probes.push((tid, probe_thunk::<T>));
        }
        self.services.insert(tid, Box::new(svc));
    }

    pub fn service_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.services
            .get_mut(&TypeId::of::<T>())
            .and_then(|b| b.downcast_mut::<T>())
    }

    pub fn take_service<T: Any>(&mut self) -> Option<Box<T>> {
        self.services
            .remove(&TypeId::of::<T>())
            .map(|b| b.downcast::<T>().expect("service type mismatch"))
    }

    pub fn put_service_box<T: Any>(&mut self, svc: Box<T>) {
        self.services.insert(TypeId::of::<T>(), svc);
    }

    /// Statistics of a TCP socket's connection.
    pub fn conn_stats(&self, sock: SockId) -> Option<crate::conn::ConnStats> {
        match &self.socks[sock.0 as usize].kind {
            SockKind::Tcp(c) => Some(c.stats),
            _ => None,
        }
    }

    /// All sockets that currently hold a TCP connection, for stack-wide
    /// audits (the qcheck invariant battery sums per-connection counters).
    pub fn tcp_sock_ids(&self) -> Vec<SockId> {
        self.socks
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, SockKind::Tcp(_)))
            .map(|(i, _)| SockId(i as u32))
            .collect()
    }

    pub fn conn_state(&self, sock: SockId) -> Option<State> {
        match &self.socks[sock.0 as usize].kind {
            SockKind::Tcp(c) => Some(c.state()),
            _ => None,
        }
    }

    /// The local (host, port) of a socket — what the paper's communicator
    /// introspection function extracts for external QoS agents.
    pub fn sock_name(&self, sock: SockId) -> (NodeId, u16) {
        let s = &self.socks[sock.0 as usize];
        (s.host, s.lport)
    }

    pub fn sock_peer(&self, sock: SockId) -> Option<(NodeId, u16)> {
        self.socks[sock.0 as usize].peer
    }

    fn alloc_port(&mut self, host: NodeId) -> u16 {
        let p = self.next_port.entry(host).or_insert(49152);
        let port = *p;
        *p = p.checked_add(1).expect("ephemeral ports exhausted");
        port
    }

    /// Wake `app` with a freshly built context.
    fn wake(&mut self, net: &mut Net, app: AppId, f: impl FnOnce(&mut dyn App, &mut Ctx)) {
        let slot = &mut self.apps[app.0 as usize];
        let host = slot.host;
        let Some(mut a) = slot.app.take() else {
            // Re-entrant wake of an already-active app: by construction
            // connection outputs triggered by an app's own calls never wake
            // apps, so this indicates a bug.
            panic!("re-entrant application wake (app {})", app.0);
        };
        let mut ctx = Ctx {
            net,
            stack: self,
            app,
            host,
        };
        f(a.as_mut(), &mut ctx);
        self.apps[app.0 as usize].app = Some(a);
    }

    /// Apply a batch of connection outputs for `sock`.
    fn apply_outs(&mut self, net: &mut Net, sock: SockId, outs: Vec<Out>) {
        for out in outs {
            match out {
                Out::Seg(seg) => self.emit_segment(net, sock, seg),
                Out::ArmTimer { at, gen } => {
                    let host = self.socks[sock.0 as usize].host;
                    net.set_host_timer(host, at, encode_token(KIND_TCP, sock.0, gen as u32));
                }
                Out::Connected => {
                    let owner = self.socks[sock.0 as usize].owner;
                    self.wake(net, owner, |a, ctx| a.on_connected(sock, ctx));
                }
                Out::Accepted => {
                    let owner = self.socks[sock.0 as usize].owner;
                    let listener = self.socks[sock.0 as usize]
                        .from_listener
                        .expect("accepted socket without listener");
                    self.wake(net, owner, |a, ctx| a.on_accept(listener, sock, ctx));
                }
                Out::Readable => {
                    let owner = self.socks[sock.0 as usize].owner;
                    self.wake(net, owner, |a, ctx| a.on_readable(sock, ctx));
                }
                Out::Writable => {
                    let owner = self.socks[sock.0 as usize].owner;
                    self.wake(net, owner, |a, ctx| a.on_writable(sock, ctx));
                }
                Out::RemoteClosed => {
                    let owner = self.socks[sock.0 as usize].owner;
                    self.wake(net, owner, |a, ctx| a.on_remote_closed(sock, ctx));
                }
                Out::Closed => {
                    let owner = self.socks[sock.0 as usize].owner;
                    // Free the 4-tuple for reuse.
                    let s = &self.socks[sock.0 as usize];
                    if let Some((ph, pp)) = s.peer {
                        self.conns.remove(&(s.host, s.lport, ph, pp));
                    }
                    self.wake(net, owner, |a, ctx| a.on_closed(sock, ctx));
                }
                Out::Cc {
                    kind,
                    cwnd_bytes,
                    rto,
                } => {
                    let (counter, trace_kind) = match kind {
                        CcKind::Rto => ("tcp.rtos", "tcp.rto"),
                        CcKind::FastRetransmit => ("tcp.fast_retransmits", "tcp.fast_rtx"),
                        CcKind::SlowStartRestart => ("tcp.slow_start_restarts", "tcp.ss_restart"),
                    };
                    net.obs.metrics.add(counter, 1);
                    net.obs
                        .metrics
                        .set_gauge("tcp.last_rto_us", rto.as_nanos() as f64 / 1_000.0);
                    let now = net.now();
                    net.obs
                        .trace
                        .record(now, trace_kind, sock.0 as u64, cwnd_bytes as i64);
                }
            }
        }
    }

    fn emit_segment(&mut self, net: &mut Net, sock: SockId, seg: SegOut) {
        let s = &self.socks[sock.0 as usize];
        let (peer_host, peer_port) = s.peer.expect("segment without peer");
        if let Some(name) = &s.trace {
            if seg.len > 0 {
                net.recorder.add(name, net.now(), seg.seq as f64);
            }
        }
        let pkt = Packet {
            src: s.host,
            dst: peer_host,
            src_port: s.lport,
            dst_port: peer_port,
            dscp: Default::default(),
            l4: L4::Tcp(TcpHeader {
                seq: seg.seq,
                ack: seg.ack,
                flags: TcpFlags {
                    syn: seg.flags.syn,
                    ack: seg.flags.ack,
                    fin: seg.flags.fin,
                    rst: seg.flags.rst,
                },
                wnd: seg.wnd,
            }),
            payload_len: seg.len,
            id: 0,
            born: SimTime::ZERO, // stamped by send_ip
        };
        net.send_ip(pkt);
    }

    fn on_tcp_packet(&mut self, net: &mut Net, host: NodeId, pkt: Packet) {
        let h = *pkt.tcp().expect("tcp demux on non-tcp packet");
        let key = (host, pkt.dst_port, pkt.src, pkt.src_port);
        let seg = SegIn {
            seq: h.seq,
            ack: h.ack,
            wnd: h.wnd,
            len: pkt.payload_len,
            flags: SegFlags {
                syn: h.flags.syn,
                ack: h.flags.ack,
                fin: h.flags.fin,
                rst: h.flags.rst,
            },
        };
        if let Some(&sock) = self.conns.get(&key) {
            let now = net.now();
            let outs = match &mut self.socks[sock.0 as usize].kind {
                SockKind::Tcp(c) => c.on_segment(&seg, now),
                _ => Vec::new(),
            };
            self.apply_outs(net, sock, outs);
            return;
        }
        // No connection: a SYN for a listening port performs a passive open.
        if seg.flags.syn && !seg.flags.ack {
            if let Some(&listener) = self.listeners.get(&(host, pkt.dst_port)) {
                let (cfg, mode, owner) = match &self.socks[listener.0 as usize].kind {
                    SockKind::Listener { cfg, mode } => {
                        (*cfg, *mode, self.socks[listener.0 as usize].owner)
                    }
                    _ => unreachable!("listener map points at non-listener"),
                };
                let now = net.now();
                let (conn, outs) = Connection::accept(cfg, &seg, now);
                let sock = SockId(self.socks.len() as u32);
                self.socks.push(Sock {
                    host,
                    owner,
                    kind: SockKind::Tcp(Box::new(conn)),
                    mode,
                    lport: pkt.dst_port,
                    peer: Some((pkt.src, pkt.src_port)),
                    peer_sock: None,
                    from_listener: Some(listener),
                    tx: StreamBuf {
                        start: 1,
                        data: VecDeque::new(),
                    },
                    trace: None,
                    dead: false,
                });
                self.conns.insert(key, sock);
                // Link the two endpoints for byte-stream transport.
                let client_key = (pkt.src, pkt.src_port, host, pkt.dst_port);
                if let Some(&client) = self.conns.get(&client_key) {
                    assert_eq!(
                        self.socks[client.0 as usize].mode, mode,
                        "DataMode mismatch between connect and listen"
                    );
                    self.socks[client.0 as usize].peer_sock = Some(sock);
                    self.socks[sock.0 as usize].peer_sock = Some(client);
                }
                self.apply_outs(net, sock, outs);
            }
            // No listener: silently drop (a real stack would RST).
        }
    }
}

impl NetHandler for Stack {
    fn deliver(&mut self, net: &mut Net, host: NodeId, pkt: Packet) {
        match pkt.l4 {
            L4::Tcp(_) => self.on_tcp_packet(net, host, pkt),
            L4::Udp => {
                if let Some(&sock) = self.udp_binds.get(&(host, pkt.dst_port)) {
                    let owner = self.socks[sock.0 as usize].owner;
                    let from = (pkt.src, pkt.src_port);
                    let len = pkt.payload_len;
                    self.wake(net, owner, |a, ctx| a.on_udp(sock, from, len, ctx));
                }
            }
        }
    }

    fn host_timer(&mut self, net: &mut Net, _host: NodeId, token: u64) {
        let (kind, index, payload) = decode_token(token);
        match kind {
            KIND_TCP => {
                let sock = SockId(index);
                if self.socks[sock.0 as usize].dead {
                    // A timer armed before the host crashed; the socket is
                    // gone (timers for *down* hosts are suppressed in the
                    // net layer, but this one may fire after a restart).
                    return;
                }
                let now = net.now();
                let outs = match &mut self.socks[sock.0 as usize].kind {
                    SockKind::Tcp(c) => c.on_timer(payload as u64, now),
                    _ => Vec::new(),
                };
                self.apply_outs(net, sock, outs);
            }
            KIND_APP => {
                let app = AppId(index);
                if self.apps[app.0 as usize].app.is_some() {
                    self.wake(net, app, |a, ctx| a.on_timer(payload, ctx));
                }
            }
            _ => panic!("unknown timer token kind {kind}"),
        }
    }

    fn cpu_done(&mut self, net: &mut Net, host: NodeId, proc: ProcId) {
        let found = self
            .apps
            .iter()
            .position(|s| s.host == host && s.proc == proc && s.app.is_some());
        if let Some(i) = found {
            self.wake(net, AppId(i as u32), |a, ctx| a.on_cpu_done(ctx));
        }
    }

    fn control(&mut self, net: &mut Net, token: u64) {
        let id = (token >> 56) as usize;
        let payload = token & ((1 << 56) - 1);
        let Some(slot) = self.controllers.get_mut(id) else {
            panic!("control event for unregistered controller {id}");
        };
        if let Some(mut c) = slot.take() {
            c.on_control(payload, net, self);
            self.controllers[id] = Some(c);
        }
    }

    fn timeline_sample(&mut self, net: &mut Net, at: SimTime) {
        for (tid, probe) in &self.probes {
            if let Some(b) = self.services.get_mut(tid) {
                probe(b.as_mut(), net, at);
            }
        }
    }

    fn host_crashed(&mut self, net: &mut Net, host: NodeId) {
        // Sockets die first: demux entries go away (a restarted host gets
        // fresh ports), but the socket slots stay so stack-wide audits keep
        // summing their final counters. Connections *to* the crashed host
        // die with it — the process-manager model of instant failure
        // knowledge — which also stops their retransmissions from reaching
        // a restarted incarnation's fresh listener.
        for i in 0..self.socks.len() {
            let s = &mut self.socks[i];
            let local = s.host == host;
            let to_dead_peer =
                matches!(s.kind, SockKind::Tcp(_)) && s.peer.is_some_and(|(ph, _)| ph == host);
            if s.dead || !(local || to_dead_peer) {
                continue;
            }
            s.dead = true;
            match &s.kind {
                SockKind::Tcp(_) => {
                    if let Some((ph, pp)) = s.peer {
                        self.conns.remove(&(s.host, s.lport, ph, pp));
                    }
                }
                SockKind::Listener { .. } => {
                    self.listeners.remove(&(s.host, s.lport));
                }
                SockKind::Udp => {
                    self.udp_binds.remove(&(s.host, s.lport));
                }
            }
        }
        // Applications die with the host; their CPU processes are removed
        // so reservations free up and queued work vanishes.
        for i in 0..self.apps.len() {
            let slot = &mut self.apps[i];
            if slot.host != host || slot.app.is_none() {
                continue;
            }
            slot.app = None;
            let proc = slot.proc;
            net.cpu_remove_process(host, proc);
        }
        // Crash hooks run while the failure is fresh, before the peer
        // broadcast (same take-vec discipline as restart hooks).
        let mut hooks = std::mem::take(&mut self.crash_hooks);
        for h in hooks.iter_mut() {
            h(net, self, host);
        }
        hooks.append(&mut self.crash_hooks);
        self.crash_hooks = hooks;
        // Failure notification is global and instantaneous (MPICH's
        // process-failure model): every surviving app hears it now, in
        // AppId order.
        for i in 0..self.apps.len() {
            let id = AppId(i as u32);
            if self.apps[i].app.is_some() {
                self.wake(net, id, |a, ctx| a.on_peer_failed(host, ctx));
            }
        }
    }

    fn host_restarted(&mut self, net: &mut Net, host: NodeId) {
        // Respawn hooks first (they re-create the host's processes), then
        // the broadcast — peers and the fresh processes all hear it.
        let mut hooks = std::mem::take(&mut self.respawn_hooks);
        for h in hooks.iter_mut() {
            h(net, self, host);
        }
        // A hook may itself have registered hooks; keep them, after the
        // originals.
        hooks.append(&mut self.respawn_hooks);
        self.respawn_hooks = hooks;
        for i in 0..self.apps.len() {
            let id = AppId(i as u32);
            if self.apps[i].app.is_some() {
                self.wake(net, id, |a, ctx| a.on_peer_restarted(host, ctx));
            }
        }
    }
}

/// Capability handle passed to application callbacks.
pub struct Ctx<'a> {
    pub net: &'a mut Net,
    stack: &'a mut Stack,
    pub app: AppId,
    pub host: NodeId,
}

impl Ctx<'_> {
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Open a TCP connection to (`dst`, `dport`).
    pub fn tcp_connect(&mut self, dst: NodeId, dport: u16, cfg: TcpCfg, mode: DataMode) -> SockId {
        assert_ne!(self.host, dst, "loopback connections are not modeled");
        let lport = self.stack.alloc_port(self.host);
        let now = self.net.now();
        let (conn, outs) = Connection::connect(cfg, now);
        let sock = SockId(self.stack.socks.len() as u32);
        self.stack.socks.push(Sock {
            host: self.host,
            owner: self.app,
            kind: SockKind::Tcp(Box::new(conn)),
            mode,
            lport,
            peer: Some((dst, dport)),
            peer_sock: None,
            from_listener: None,
            tx: StreamBuf {
                start: 1,
                data: VecDeque::new(),
            },
            trace: None,
            dead: false,
        });
        self.stack
            .conns
            .insert((self.host, lport, dst, dport), sock);
        self.stack.apply_outs(self.net, sock, outs);
        sock
    }

    /// Listen for TCP connections on `port`.
    pub fn tcp_listen(&mut self, port: u16, cfg: TcpCfg, mode: DataMode) -> SockId {
        let sock = SockId(self.stack.socks.len() as u32);
        self.stack.socks.push(Sock {
            host: self.host,
            owner: self.app,
            kind: SockKind::Listener { cfg, mode },
            mode,
            lport: port,
            peer: None,
            peer_sock: None,
            from_listener: None,
            tx: StreamBuf::default(),
            trace: None,
            dead: false,
        });
        let prev = self.stack.listeners.insert((self.host, port), sock);
        assert!(
            prev.is_none(),
            "port {port} already listening on {}",
            self.host
        );
        sock
    }

    /// Write counted bytes; returns how many were accepted (send buffer).
    pub fn send(&mut self, sock: SockId, len: u64) -> u64 {
        let s = &mut self.stack.socks[sock.0 as usize];
        if s.dead {
            return 0;
        }
        assert_eq!(s.mode, DataMode::Counted, "send() on a Bytes-mode socket");
        let now = self.net.now();
        let (accepted, outs) = match &mut s.kind {
            SockKind::Tcp(c) => c.write(len, now),
            _ => panic!("send on non-TCP socket"),
        };
        self.stack.apply_outs(self.net, sock, outs);
        accepted
    }

    /// Write real bytes; returns how many were accepted.
    pub fn send_bytes(&mut self, sock: SockId, bytes: &[u8]) -> usize {
        let s = &mut self.stack.socks[sock.0 as usize];
        if s.dead {
            return 0;
        }
        assert_eq!(
            s.mode,
            DataMode::Bytes,
            "send_bytes() on a Counted-mode socket"
        );
        let now = self.net.now();
        let (accepted, outs) = match &mut s.kind {
            SockKind::Tcp(c) => c.write(bytes.len() as u64, now),
            _ => panic!("send on non-TCP socket"),
        };
        s.tx.data.extend(&bytes[..accepted as usize]);
        self.stack.apply_outs(self.net, sock, outs);
        accepted as usize
    }

    /// Read up to `max` counted bytes.
    pub fn recv(&mut self, sock: SockId, max: u64) -> u64 {
        let s = &mut self.stack.socks[sock.0 as usize];
        if s.dead {
            return 0;
        }
        assert_eq!(s.mode, DataMode::Counted, "recv() on a Bytes-mode socket");
        let (n, outs) = match &mut s.kind {
            SockKind::Tcp(c) => c.read(max),
            _ => panic!("recv on non-TCP socket"),
        };
        self.stack.apply_outs(self.net, sock, outs);
        n
    }

    /// Read up to `max` real bytes.
    pub fn recv_bytes(&mut self, sock: SockId, max: u64) -> Vec<u8> {
        let s = &mut self.stack.socks[sock.0 as usize];
        if s.dead {
            return Vec::new();
        }
        assert_eq!(
            s.mode,
            DataMode::Bytes,
            "recv_bytes() on a Counted-mode socket"
        );
        let (n, outs) = match &mut s.kind {
            SockKind::Tcp(c) => c.read(max),
            _ => panic!("recv on non-TCP socket"),
        };
        let peer = s.peer_sock.expect("bytes-mode socket without linked peer");
        let ps = &mut self.stack.socks[peer.0 as usize];
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(ps.tx.data.pop_front().expect("stream byte store underrun"));
        }
        ps.tx.start += n;
        self.stack.apply_outs(self.net, sock, outs);
        out
    }

    /// In-order bytes ready to read.
    pub fn readable_bytes(&self, sock: SockId) -> u64 {
        match &self.stack.socks[sock.0 as usize].kind {
            SockKind::Tcp(c) => c.readable_bytes(),
            _ => 0,
        }
    }

    /// Free space in the socket's send buffer.
    pub fn send_buffer_free(&self, sock: SockId) -> u64 {
        match &self.stack.socks[sock.0 as usize].kind {
            SockKind::Tcp(c) => c.send_buffer_free(),
            _ => 0,
        }
    }

    /// True when the peer has closed and all data has been drained.
    pub fn at_eof(&self, sock: SockId) -> bool {
        match &self.stack.socks[sock.0 as usize].kind {
            SockKind::Tcp(c) => c.at_eof(),
            _ => false,
        }
    }

    /// Close the sending direction.
    pub fn close(&mut self, sock: SockId) {
        if self.stack.socks[sock.0 as usize].dead {
            return;
        }
        let now = self.net.now();
        let outs = match &mut self.stack.socks[sock.0 as usize].kind {
            SockKind::Tcp(c) => c.close(now),
            _ => Vec::new(),
        };
        self.stack.apply_outs(self.net, sock, outs);
    }

    /// Record this socket's data-segment sequence numbers into the given
    /// recorder series (Figure 7 traces).
    pub fn trace_seq(&mut self, sock: SockId, series: &str) {
        self.stack.socks[sock.0 as usize].trace = Some(series.to_owned());
    }

    /// The 5-tuple spec of this socket's outgoing data direction — what
    /// the QoS agent extracts from a communicator ("basically port and
    /// machine names"). Unconnected sockets wildcard the peer side.
    pub fn flow_spec(&self, sock: SockId) -> FlowSpec {
        let s = &self.stack.socks[sock.0 as usize];
        let proto = match s.kind {
            SockKind::Tcp(_) => Proto::Tcp,
            _ => Proto::Udp,
        };
        match s.peer {
            Some((peer_host, peer_port)) => {
                FlowSpec::exact(s.host, peer_host, proto, s.lport, peer_port)
            }
            None => FlowSpec {
                src: Some(s.host),
                proto: Some(proto),
                src_port: Some(s.lport),
                ..FlowSpec::default()
            },
        }
    }

    /// Register a delivery deadline (SLO) for this socket's outgoing flow:
    /// packets delivered more than `deadline` after entering the network
    /// count as misses in the network's conformance monitor (enables
    /// packet-lifecycle tracing if it was off). See
    /// [`mpichgq_netsim::Net::set_deadline_matching`].
    pub fn set_flow_deadline(&mut self, sock: SockId, deadline: SimDelta) {
        let spec = self.flow_spec(sock);
        self.net.set_deadline_matching(spec, deadline);
    }

    /// Arm an application timer; `token` comes back in `on_timer`.
    pub fn set_timer(&mut self, after: SimDelta, token: u32) {
        let at = self.net.now() + after;
        self.net
            .set_host_timer(self.host, at, encode_token(KIND_APP, self.app.0, token));
    }

    /// Begin `cpu_time` of CPU work; `on_cpu_done` fires when it completes
    /// under the host's (possibly contended, possibly reserved) schedule.
    pub fn cpu_work(&mut self, cpu_time: SimDelta) {
        let proc = self.stack.apps[self.app.0 as usize].proc;
        self.net.cpu_start_work(self.host, proc, cpu_time);
    }

    /// This app's CPU process id (for making CPU reservations).
    pub fn cpu_proc(&self) -> ProcId {
        self.stack.apps[self.app.0 as usize].proc
    }

    /// Bind a UDP socket on `port`.
    pub fn udp_bind(&mut self, port: u16) -> SockId {
        let sock = SockId(self.stack.socks.len() as u32);
        self.stack.socks.push(Sock {
            host: self.host,
            owner: self.app,
            kind: SockKind::Udp,
            mode: DataMode::Counted,
            lport: port,
            peer: None,
            peer_sock: None,
            from_listener: None,
            tx: StreamBuf::default(),
            trace: None,
            dead: false,
        });
        let prev = self.stack.udp_binds.insert((self.host, port), sock);
        assert!(
            prev.is_none(),
            "udp port {port} already bound on {}",
            self.host
        );
        sock
    }

    /// Send one UDP datagram (counted payload).
    pub fn udp_send(&mut self, sock: SockId, dst: NodeId, dport: u16, payload_len: u32) {
        let s = &self.stack.socks[sock.0 as usize];
        assert!(
            matches!(s.kind, SockKind::Udp),
            "udp_send on non-UDP socket"
        );
        let pkt = Packet {
            src: s.host,
            dst,
            src_port: s.lport,
            dst_port: dport,
            dscp: Default::default(),
            l4: L4::Udp,
            payload_len,
            id: 0,
            born: SimTime::ZERO, // stamped by send_ip
        };
        self.net.send_ip(pkt);
    }

    /// Connection statistics of a TCP socket.
    pub fn conn_stats(&self, sock: SockId) -> Option<crate::conn::ConnStats> {
        self.stack.conn_stats(sock)
    }

    /// Run `f` with exclusive access to the service `T` and a re-borrowed
    /// context (take-out pattern: the service is absent from the registry
    /// for the duration of `f`).
    pub fn with_service<T: Any, R>(&mut self, f: impl FnOnce(&mut T, &mut Ctx) -> R) -> Option<R> {
        let mut b = self.stack.services.remove(&TypeId::of::<T>())?;
        let r = f(
            b.downcast_mut::<T>().expect("service type mismatch"),
            &mut Ctx {
                net: self.net,
                stack: self.stack,
                app: self.app,
                host: self.host,
            },
        );
        self.stack.services.insert(TypeId::of::<T>(), b);
        Some(r)
    }

    /// Local (host, port) of a socket.
    pub fn sock_name(&self, sock: SockId) -> (NodeId, u16) {
        self.stack.sock_name(sock)
    }

    /// Remote (host, port) of a connected socket.
    pub fn sock_peer(&self, sock: SockId) -> Option<(NodeId, u16)> {
        self.stack.sock_peer(sock)
    }
}

/// Convenience bundle: a network plus its stack, with a run loop.
pub struct Sim {
    pub net: Net,
    pub stack: Stack,
}

impl Sim {
    pub fn new(net: Net) -> Sim {
        Sim {
            net,
            stack: Stack::new(),
        }
    }

    pub fn spawn_app(&mut self, host: NodeId, app: Box<dyn App>) -> AppId {
        self.stack.spawn_app(&mut self.net, host, app)
    }

    pub fn run_until(&mut self, t: SimTime) {
        self.net.run_until(&mut self.stack, t);
    }

    pub fn run_to_quiescence(&mut self) {
        self.net.run_to_quiescence(&mut self.stack);
    }

    pub fn now(&self) -> SimTime {
        self.net.now()
    }
}
