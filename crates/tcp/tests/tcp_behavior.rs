//! End-to-end behavioral tests for the TCP implementation over the
//! simulated network: handshake, reliable delivery, congestion response,
//! flow control, and teardown.

use mpichgq_netsim::{topology::Dumbbell, Dscp, FlowSpec, PolicingAction, Proto, TokenBucket};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::{App, Ctx, DataMode, Sim, SockId, TcpCfg};
use std::cell::RefCell;
use std::rc::Rc;

/// Pure function of the stream offset, so sender-side regeneration after a
/// partial write matches the expectation exactly.
fn pattern_byte(i: u64) -> u8 {
    (i.wrapping_mul(6364136223846793005).wrapping_add(0x12345) >> 32) as u8
}

#[derive(Default)]
struct Shared {
    received: u64,
    received_bytes: Vec<u8>,
    eof: bool,
    closed_count: u32,
    finish_time: Option<SimTime>,
    fast_rtx: u64,
    rtos: u64,
}

struct Sender {
    dst: mpichgq_netsim::NodeId,
    port: u16,
    total: u64,
    sent: u64,
    cfg: TcpCfg,
    mode: DataMode,
    sock: Option<SockId>,
    shared: Rc<RefCell<Shared>>,
    pattern: Option<Box<dyn FnMut(u64) -> u8>>,
    close_when_done: bool,
}

impl Sender {
    fn pump(&mut self, ctx: &mut Ctx) {
        let sock = self.sock.unwrap();
        while self.sent < self.total {
            let want = (self.total - self.sent).min(16 * 1024);
            let n = match self.mode {
                DataMode::Counted => ctx.send(sock, want),
                DataMode::Bytes => {
                    let gen = self.pattern.as_mut().unwrap();
                    let buf: Vec<u8> = (self.sent..self.sent + want).map(gen).collect();
                    ctx.send_bytes(sock, &buf) as u64
                }
            };
            self.sent += n;
            if n < want {
                break; // buffer full; wait for on_writable
            }
        }
        if self.sent == self.total && self.close_when_done {
            ctx.close(sock);
            self.close_when_done = false;
        }
    }
}

impl App for Sender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.sock = Some(ctx.tcp_connect(self.dst, self.port, self.cfg, self.mode));
    }
    fn on_connected(&mut self, _sock: SockId, ctx: &mut Ctx) {
        self.pump(ctx);
    }
    fn on_writable(&mut self, _sock: SockId, ctx: &mut Ctx) {
        self.pump(ctx);
    }
    fn on_closed(&mut self, sock: SockId, ctx: &mut Ctx) {
        let mut sh = self.shared.borrow_mut();
        sh.closed_count += 1;
        if let Some(st) = ctx.conn_stats(sock) {
            sh.fast_rtx += st.fast_retransmits;
            sh.rtos += st.rtos;
        }
    }
}

struct Receiver {
    port: u16,
    cfg: TcpCfg,
    mode: DataMode,
    shared: Rc<RefCell<Shared>>,
    /// If set, don't read anything until this timer fires (flow-control test).
    hold_reads_until: Option<SimDelta>,
    holding: bool,
    sock: Option<SockId>,
}

impl Receiver {
    fn drain(&mut self, sock: SockId, ctx: &mut Ctx) {
        loop {
            match self.mode {
                DataMode::Counted => {
                    let n = ctx.recv(sock, 64 * 1024);
                    if n == 0 {
                        break;
                    }
                    self.shared.borrow_mut().received += n;
                }
                DataMode::Bytes => {
                    let bytes = ctx.recv_bytes(sock, 64 * 1024);
                    if bytes.is_empty() {
                        break;
                    }
                    let mut sh = self.shared.borrow_mut();
                    sh.received += bytes.len() as u64;
                    sh.received_bytes.extend_from_slice(&bytes);
                }
            }
        }
        if ctx.at_eof(sock) {
            let mut sh = self.shared.borrow_mut();
            if !sh.eof {
                sh.eof = true;
                sh.finish_time = Some(ctx.now());
            }
        }
    }
}

impl App for Receiver {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.tcp_listen(self.port, self.cfg, self.mode);
        if let Some(d) = self.hold_reads_until {
            self.holding = true;
            ctx.set_timer(d, 1);
        }
    }
    fn on_accept(&mut self, _l: SockId, sock: SockId, _ctx: &mut Ctx) {
        self.sock = Some(sock);
    }
    fn on_readable(&mut self, sock: SockId, ctx: &mut Ctx) {
        if !self.holding {
            self.drain(sock, ctx);
        }
    }
    fn on_remote_closed(&mut self, sock: SockId, ctx: &mut Ctx) {
        if !self.holding {
            self.drain(sock, ctx);
            ctx.close(sock);
        }
    }
    fn on_timer(&mut self, _token: u32, ctx: &mut Ctx) {
        self.holding = false;
        if let Some(sock) = self.sock {
            self.drain(sock, ctx);
            if ctx.at_eof(sock) {
                ctx.close(sock);
            }
        }
    }
    fn on_closed(&mut self, _sock: SockId, _ctx: &mut Ctx) {
        self.shared.borrow_mut().closed_count += 1;
    }
}

struct Setup {
    sim: Sim,
    shared: Rc<RefCell<Shared>>,
}

fn transfer_setup(
    bottleneck_bps: u64,
    delay_ms: u64,
    total: u64,
    mode: DataMode,
    cfg: TcpCfg,
    hold: Option<SimDelta>,
) -> Setup {
    let d = Dumbbell::build(bottleneck_bps, SimDelta::from_millis(delay_ms), 42);
    let (src, dst) = (d.src, d.dst);
    let mut sim = Sim::new(d.net);
    let shared = Rc::new(RefCell::new(Shared::default()));
    sim.spawn_app(
        dst,
        Box::new(Receiver {
            port: 5000,
            cfg,
            mode,
            shared: shared.clone(),
            hold_reads_until: hold,
            holding: false,
            sock: None,
        }),
    );
    sim.spawn_app(
        src,
        Box::new(Sender {
            dst,
            port: 5000,
            total,
            sent: 0,
            cfg,
            mode,
            sock: None,
            shared: shared.clone(),
            pattern: Some(Box::new(pattern_byte)),
            close_when_done: true,
        }),
    );
    Setup { sim, shared }
}

#[test]
fn counted_transfer_delivers_everything_and_closes() {
    let total = 300_000;
    let mut s = transfer_setup(
        10_000_000,
        2,
        total,
        DataMode::Counted,
        TcpCfg::default(),
        None,
    );
    s.sim.run_until(SimTime::from_secs(30));
    let sh = s.shared.borrow();
    assert_eq!(sh.received, total);
    assert!(sh.eof, "receiver saw EOF");
    assert_eq!(sh.closed_count, 2, "both endpoints reached Closed");
}

#[test]
fn bytes_transfer_preserves_content() {
    let total = 100_000u64;
    let mut s = transfer_setup(
        10_000_000,
        2,
        total,
        DataMode::Bytes,
        TcpCfg::default(),
        None,
    );
    s.sim.run_until(SimTime::from_secs(30));
    let sh = s.shared.borrow();
    assert_eq!(sh.received, total);
    // Regenerate the pattern and compare.
    let expect: Vec<u8> = (0..total).map(pattern_byte).collect();
    assert_eq!(sh.received_bytes, expect, "byte stream corrupted");
}

#[test]
fn clean_link_throughput_approaches_bottleneck() {
    // 10 Mb/s bottleneck, 2 ms one-way core delay, 4 MB transfer. The
    // default 64 KB windows stay below the 150 KB bottleneck queue, so the
    // flow is genuinely lossless.
    let total = 4_000_000u64;
    let mut s = transfer_setup(
        10_000_000,
        2,
        total,
        DataMode::Counted,
        TcpCfg::default(),
        None,
    );
    s.sim.run_until(SimTime::from_secs(60));
    let sh = s.shared.borrow();
    assert_eq!(sh.received, total);
    let secs = sh.finish_time.unwrap().as_secs_f64();
    let goodput = total as f64 * 8.0 / secs;
    // Expect at least 80% of the bottleneck (headers + slow start cost).
    assert!(
        goodput > 8_000_000.0,
        "goodput only {:.0} b/s in {:.2}s",
        goodput,
        secs
    );
    assert_eq!(sh.rtos, 0, "clean link should see no RTOs");
}

#[test]
fn small_socket_buffers_limit_throughput() {
    // The paper's §5.5 story: 8 KB socket buffers cap throughput at
    // window/RTT regardless of link capacity.
    let total = 400_000u64;
    let cfg = TcpCfg {
        send_buf: 8 * 1024,
        recv_buf: 8 * 1024,
        ..TcpCfg::default()
    };
    let mut s = transfer_setup(100_000_000, 10, total, DataMode::Counted, cfg, None);
    s.sim.run_until(SimTime::from_secs(60));
    let sh = s.shared.borrow();
    assert_eq!(sh.received, total);
    let secs = sh.finish_time.unwrap().as_secs_f64();
    let goodput = total as f64 * 8.0 / secs;
    // Window/RTT = 8 KB / ~20 ms ~= 3.2 Mb/s; allow slack but it must be far
    // below the 100 Mb/s link.
    assert!(
        goodput < 6_000_000.0,
        "window-limited flow too fast: {goodput:.0} b/s"
    );
}

#[test]
fn congestion_losses_recover_via_fast_retransmit() {
    // Slow start overshoots a small bottleneck queue: drops are inevitable,
    // but the transfer must complete and mostly recover without RTOs.
    let total = 2_000_000u64;
    let cfg = TcpCfg {
        send_buf: 512 * 1024,
        recv_buf: 512 * 1024,
        ..TcpCfg::default()
    };
    let mut s = transfer_setup(5_000_000, 5, total, DataMode::Counted, cfg, None);
    s.sim.run_until(SimTime::from_secs(120));
    let sh = s.shared.borrow();
    assert_eq!(sh.received, total, "reliability under loss");
    assert!(
        sh.fast_rtx > 0,
        "expected at least one fast retransmit (got rtos={})",
        sh.rtos
    );
}

#[test]
fn policed_flow_collapses_but_remains_reliable() {
    // Police the flow at 400 Kb/s with a shallow bucket at the edge; Reno
    // keeps probing past the profile and pays with drops. Everything still
    // arrives, far more slowly than an unpoliced flow would.
    let d = Dumbbell::build(10_000_000, SimDelta::from_millis(2), 7);
    let (src, dst, r1) = (d.src, d.dst, d.r1);
    let mut net = d.net;
    net.node_mut(r1).classifier.install(
        FlowSpec::host_pair(src, dst, Proto::Tcp),
        Dscp::Ef,
        Some(TokenBucket::new(400_000, 10_000)),
        PolicingAction::Drop,
    );
    let mut sim = Sim::new(net);
    let shared = Rc::new(RefCell::new(Shared::default()));
    let total = 250_000u64;
    sim.spawn_app(
        dst,
        Box::new(Receiver {
            port: 5000,
            cfg: TcpCfg::default(),
            mode: DataMode::Counted,
            shared: shared.clone(),
            hold_reads_until: None,
            holding: false,
            sock: None,
        }),
    );
    sim.spawn_app(
        src,
        Box::new(Sender {
            dst,
            port: 5000,
            total,
            sent: 0,
            cfg: TcpCfg::default(),
            mode: DataMode::Counted,
            sock: None,
            shared: shared.clone(),
            pattern: None,
            close_when_done: true,
        }),
    );
    sim.run_until(SimTime::from_secs(120));
    let sh = shared.borrow();
    assert_eq!(sh.received, total, "policing must not break reliability");
    let secs = sh.finish_time.unwrap().as_secs_f64();
    let goodput = total as f64 * 8.0 / secs;
    // The profile is 400 Kb/s; TCP under drop-policing achieves well below
    // the profile (the paper's Figure 1/6 effect).
    assert!(
        goodput < 400_000.0,
        "goodput {goodput:.0} should be below the policed rate"
    );
    assert!(
        sim.net.drops.policed > 0,
        "policer must have dropped packets"
    );
}

#[test]
fn zero_window_stalls_then_resumes() {
    // Receiver reads nothing for 2 s: the 64 KB receive buffer fills, the
    // sender stalls on a zero window, then everything drains.
    let total = 300_000u64;
    let mut s = transfer_setup(
        10_000_000,
        2,
        total,
        DataMode::Counted,
        TcpCfg::default(),
        Some(SimDelta::from_secs(2)),
    );
    s.sim.run_until(SimTime::from_secs(60));
    let sh = s.shared.borrow();
    assert_eq!(sh.received, total);
    assert!(sh.eof);
    // Delivery cannot have finished before the receiver started reading.
    assert!(sh.finish_time.unwrap() >= SimTime::from_secs(2));
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut s = transfer_setup(
            5_000_000,
            5,
            1_000_000,
            DataMode::Counted,
            TcpCfg::default(),
            None,
        );
        s.sim.run_until(SimTime::from_secs(60));
        let t = s.shared.borrow().finish_time;
        (t, s.sim.net.events_processed())
    };
    assert_eq!(run(), run());
}

#[test]
fn era_solaris_profile_still_delivers() {
    // The era profile (coarse timers + delayed ACKs) changes timing, never
    // correctness.
    let total = 500_000u64;
    let mut s = transfer_setup(
        10_000_000,
        2,
        total,
        DataMode::Counted,
        TcpCfg::era_solaris(),
        None,
    );
    s.sim.run_until(SimTime::from_secs(60));
    let sh = s.shared.borrow();
    assert_eq!(sh.received, total);
    assert!(sh.eof);
}
