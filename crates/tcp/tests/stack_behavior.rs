//! Socket-layer behavior: demultiplexing, port allocation, the service
//! registry, and multi-controller dispatch.

use mpichgq_netsim::{topology::Dumbbell, Net, NodeId};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::{App, Controller, Ctx, DataMode, Sim, SockId, Stack, TcpCfg};
use std::cell::RefCell;
use std::rc::Rc;

type PortData = Rc<RefCell<Vec<(u16, Vec<u8>)>>>;

fn sim2() -> (Sim, NodeId, NodeId) {
    let d = Dumbbell::build(10_000_000, SimDelta::from_millis(1), 33);
    let (a, b) = (d.src, d.dst);
    (Sim::new(d.net), a, b)
}

#[test]
fn concurrent_connections_between_same_hosts_demux_correctly() {
    // Three sockets between one host pair, each carrying a distinct byte
    // pattern; the payloads must not cross.
    let (mut sim, a, b) = sim2();
    let results: PortData = Rc::new(RefCell::new(Vec::new()));

    struct Server {
        results: PortData,
    }
    impl App for Server {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for port in [5001, 5002, 5003] {
                ctx.tcp_listen(port, TcpCfg::default(), DataMode::Bytes);
            }
        }
        fn on_readable(&mut self, sock: SockId, ctx: &mut Ctx) {
            let data = ctx.recv_bytes(sock, 1024);
            let (_, port) = ctx.sock_name(sock);
            self.results.borrow_mut().push((port, data));
        }
    }
    struct Client {
        dst: NodeId,
        socks: Vec<SockId>,
    }
    impl App for Client {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for port in [5001, 5002, 5003] {
                let s = ctx.tcp_connect(self.dst, port, TcpCfg::default(), DataMode::Bytes);
                self.socks.push(s);
            }
        }
        fn on_connected(&mut self, sock: SockId, ctx: &mut Ctx) {
            let (_, dport) = ctx.sock_peer(sock).unwrap();
            let n = ctx.send_bytes(sock, &[dport as u8 - 0x88; 4]); // 5001 -> 0x69...
            assert_eq!(n, 4);
        }
    }
    sim.spawn_app(
        b,
        Box::new(Server {
            results: results.clone(),
        }),
    );
    sim.spawn_app(
        a,
        Box::new(Client {
            dst: b,
            socks: Vec::new(),
        }),
    );
    sim.run_until(SimTime::from_secs(5));
    let mut got = results.borrow().clone();
    got.sort();
    let expect: Vec<(u16, Vec<u8>)> = [5001u16, 5002, 5003]
        .iter()
        .map(|&p| (p, vec![p as u8 - 0x88; 4]))
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn ephemeral_ports_are_unique_per_host() {
    let (mut sim, a, b) = sim2();
    struct Server;
    impl App for Server {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.tcp_listen(7000, TcpCfg::default(), DataMode::Counted);
        }
    }
    struct Client {
        dst: NodeId,
        ports: Rc<RefCell<Vec<u16>>>,
    }
    impl App for Client {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for _ in 0..10 {
                let s = ctx.tcp_connect(self.dst, 7000, TcpCfg::default(), DataMode::Counted);
                let (_, port) = ctx.sock_name(s);
                self.ports.borrow_mut().push(port);
            }
        }
    }
    let ports = Rc::new(RefCell::new(Vec::new()));
    sim.spawn_app(b, Box::new(Server));
    sim.spawn_app(
        a,
        Box::new(Client {
            dst: b,
            ports: ports.clone(),
        }),
    );
    sim.run_until(SimTime::from_secs(2));
    let mut p = ports.borrow().clone();
    assert_eq!(p.len(), 10);
    p.sort();
    p.dedup();
    assert_eq!(p.len(), 10, "ephemeral ports must be unique");
}

#[test]
#[should_panic(expected = "already listening")]
fn double_listen_panics() {
    let (mut sim, a, _b) = sim2();
    struct Bad;
    impl App for Bad {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.tcp_listen(8000, TcpCfg::default(), DataMode::Counted);
            ctx.tcp_listen(8000, TcpCfg::default(), DataMode::Counted);
        }
    }
    sim.spawn_app(a, Box::new(Bad));
}

#[test]
fn service_registry_roundtrip() {
    struct MyService {
        hits: u32,
    }
    let mut stack = Stack::new();
    stack.insert_service(MyService { hits: 0 });
    stack.service_mut::<MyService>().unwrap().hits += 1;
    let boxed = stack.take_service::<MyService>().unwrap();
    assert_eq!(boxed.hits, 1);
    assert!(stack.service_mut::<MyService>().is_none());
    stack.put_service_box(boxed);
    assert_eq!(stack.service_mut::<MyService>().unwrap().hits, 1);
}

#[test]
fn controllers_receive_only_their_own_events() {
    let (mut sim, _a, _b) = sim2();
    struct C(Rc<RefCell<Vec<(u8, u64)>>>, u8);
    impl Controller for C {
        fn on_control(&mut self, payload: u64, _net: &mut Net, _stack: &mut Stack) {
            self.0.borrow_mut().push((self.1, payload));
        }
    }
    let log = Rc::new(RefCell::new(Vec::new()));
    let c1 = sim.stack.add_controller(Box::new(C(log.clone(), 1)));
    let c2 = sim.stack.add_controller(Box::new(C(log.clone(), 2)));
    sim.stack
        .schedule_control(&mut sim.net, c1, SimTime::from_secs(1), 11);
    sim.stack
        .schedule_control(&mut sim.net, c2, SimTime::from_secs(2), 22);
    sim.stack
        .schedule_control(&mut sim.net, c1, SimTime::from_secs(3), 33);
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(*log.borrow(), vec![(1, 11), (2, 22), (1, 33)]);
}

#[test]
fn udp_to_unbound_port_is_dropped_quietly() {
    let (mut sim, a, b) = sim2();
    struct Spray {
        dst: NodeId,
    }
    impl App for Spray {
        fn on_start(&mut self, ctx: &mut Ctx) {
            let s = ctx.udp_bind(1234);
            ctx.udp_send(s, self.dst, 4321, 100); // nobody listens on 4321
        }
    }
    sim.spawn_app(a, Box::new(Spray { dst: b }));
    sim.run_until(SimTime::from_secs(1)); // must not panic
    assert_eq!(sim.net.drops.misrouted, 0);
}

#[test]
fn host_crash_kills_apps_and_restart_respawns_via_hook() {
    // A server on `b` crashes mid-conversation; the surviving client hears
    // `on_peer_failed`, the respawn hook relaunches the server on restart,
    // and a fresh connection moves data again.
    use mpichgq_netsim::faults::{FaultAction, FaultPlan};
    let (mut sim, a, b) = sim2();
    sim.net.install_fault_plan(
        FaultPlan::new(7)
            .at(SimTime::from_secs(1), FaultAction::HostCrash { host: b })
            .at(SimTime::from_secs(2), FaultAction::HostRestart { host: b }),
    );
    let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));

    struct Server {
        log: Rc<RefCell<Vec<String>>>,
        tag: &'static str,
    }
    impl App for Server {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.tcp_listen(7000, TcpCfg::default(), DataMode::Bytes);
        }
        fn on_readable(&mut self, sock: SockId, ctx: &mut Ctx) {
            let data = ctx.recv_bytes(sock, 1024);
            self.log
                .borrow_mut()
                .push(format!("{} got {}", self.tag, data.len()));
        }
    }
    struct Client {
        dst: NodeId,
        log: Rc<RefCell<Vec<String>>>,
    }
    impl App for Client {
        fn on_start(&mut self, ctx: &mut Ctx) {
            let s = ctx.tcp_connect(self.dst, 7000, TcpCfg::default(), DataMode::Bytes);
            let _ = s;
        }
        fn on_connected(&mut self, sock: SockId, ctx: &mut Ctx) {
            ctx.send_bytes(sock, &[0xAB; 4]);
        }
        fn on_peer_failed(&mut self, host: NodeId, _ctx: &mut Ctx) {
            self.log
                .borrow_mut()
                .push(format!("peer {} failed", host.0));
        }
        fn on_peer_restarted(&mut self, host: NodeId, ctx: &mut Ctx) {
            self.log
                .borrow_mut()
                .push(format!("peer {} restarted", host.0));
            // Reconnect: the respawn hook has already relaunched the server.
            ctx.tcp_connect(self.dst, 7000, TcpCfg::default(), DataMode::Bytes);
        }
    }

    sim.spawn_app(
        b,
        Box::new(Server {
            log: log.clone(),
            tag: "server1",
        }),
    );
    sim.spawn_app(
        a,
        Box::new(Client {
            dst: b,
            log: log.clone(),
        }),
    );
    let hook_log = log.clone();
    sim.stack.on_host_restart(Box::new(move |net, stack, host| {
        stack.spawn_app(
            net,
            host,
            Box::new(Server {
                log: hook_log.clone(),
                tag: "server2",
            }),
        );
    }));
    sim.run_until(SimTime::from_secs(5));

    let got = log.borrow().clone();
    assert_eq!(
        got,
        vec![
            "server1 got 4".to_string(),
            format!("peer {} failed", b.0),
            format!("peer {} restarted", b.0),
            "server2 got 4".to_string(),
        ]
    );
    let fs = sim.net.fault_stats().unwrap();
    assert_eq!(fs.host_crashes, 1);
    assert_eq!(fs.host_restarts, 1);
    assert_eq!(fs.dead_deliveries, 0);
}
