//! The flight recorder: a bounded ring buffer of sim-timestamped events.
//!
//! Disabled by default; a `record` call then costs one predictable branch.
//! When enabled, the ring keeps the newest `capacity` events and counts
//! what it had to overwrite, so a snapshot always says how much history it
//! is missing.

use crate::json::JsonWriter;
use mpichgq_sim::SimTime;

/// One recorded event. `kind` is a static label (`"tcp.rto"`,
/// `"drop.policed"`, ...); `key` and `value` are event-specific numbers
/// (a channel index and a queue depth, a socket id and a cwnd, ...).
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    pub at: SimTime,
    pub kind: &'static str,
    pub key: u64,
    pub value: i64,
}

/// Bounded ring buffer of [`TraceEvent`]s.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    ring: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Total events offered while enabled (recorded + overwritten).
    total: u64,
    capacity: usize,
    enabled: bool,
}

impl FlightRecorder {
    /// Enable recording with a ring of `capacity` events. Re-enabling
    /// clears previous history.
    pub fn enable(&mut self, capacity: usize) {
        assert!(capacity > 0, "flight recorder with zero capacity");
        self.ring = Vec::with_capacity(capacity);
        self.head = 0;
        self.total = 0;
        self.capacity = capacity;
        self.enabled = true;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events offered while enabled.
    pub fn recorded(&self) -> u64 {
        self.total
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.total - self.ring.len() as u64
    }

    /// Record an event. The disabled path is a single branch — callers on
    /// hot paths invoke this unconditionally.
    #[inline]
    pub fn record(&mut self, at: SimTime, kind: &'static str, key: u64, value: i64) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            at,
            kind,
            key,
            value,
        });
    }

    // Not `#[cold]`: this *is* the hot path whenever tracing is enabled.
    // Only the wrap/overwrite branch, taken once the ring is full, carries
    // the cold hint.
    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        self.total += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.wrap_push(ev);
        }
    }

    #[cold]
    fn wrap_push(&mut self, ev: TraceEvent) {
        self.ring[self.head] = ev;
        self.head = (self.head + 1) % self.capacity;
    }

    /// Held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.ring.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Write the recorder state as one JSON object.
    ///
    /// # Schema
    ///
    /// ```json
    /// {
    ///   "capacity": u64,   // ring size in events (0 when disabled)
    ///   "recorded": u64,   // total events offered while enabled
    ///   "dropped":  u64,   // events overwritten (recorded - retained)
    ///   "events": [        // retained events, oldest first
    ///     {
    ///       "t_ns":  u64,  // sim time, nanoseconds
    ///       "kind":  str,  // static label, e.g. "tcp.rto"
    ///       "key":   u64,  // event subject (channel, socket, flow index)
    ///       "value": i64   // event payload (depth, cwnd, delay); signed
    ///     }, ...
    ///   ]
    /// }
    /// ```
    ///
    /// Note the asymmetry inside each event object: `key` is unsigned
    /// (identifiers never go negative) while `value` is **signed** —
    /// consumers must parse the two fields with different integer types.
    /// `tests/observability.rs` pins this with a parse round-trip.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("capacity");
        w.u64(self.capacity as u64);
        w.key("recorded");
        w.u64(self.total);
        w.key("dropped");
        w.u64(self.dropped());
        w.key("events");
        w.begin_array();
        for ev in self.events() {
            w.begin_object();
            w.key("t_ns");
            w.u64(ev.at.as_nanos());
            w.key("kind");
            w.string(ev.kind);
            w.key("key");
            w.u64(ev.key);
            w.key("value");
            w.i64(ev.value);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
}
