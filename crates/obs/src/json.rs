//! A minimal streaming JSON writer (the workspace builds offline, so no
//! serde). Comma placement is handled by tracking whether the current
//! container already has a member; number formatting uses Rust's shortest
//! round-trip `Display`, which is deterministic for identical values.

/// Streaming JSON writer over an owned `String`.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: true once it has at least one member.
    stack: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.stack.push(false);
    }

    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.stack.push(false);
    }

    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Write an object key; the next write is its value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.write_escaped(k);
        self.out.push(':');
        // The comma for this member was just emitted; clear the flag so the
        // value's own pre_value doesn't add one between ':' and the value
        // (it re-sets the flag for the member that follows).
        if let Some(has) = self.stack.last_mut() {
            *has = false;
        }
    }

    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.write_escaped(s);
    }

    pub fn u64(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    pub fn i64(&mut self, v: i64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    /// Floats print via shortest-round-trip `Display`; non-finite values
    /// (not representable in JSON) become null.
    pub fn f64(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            // Ensure a numeric token that still parses as f64 ("1" is fine).
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
    }

    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}
