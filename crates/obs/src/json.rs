//! A minimal streaming JSON writer (the workspace builds offline, so no
//! serde). Comma placement is handled by tracking whether the current
//! container already has a member; number formatting uses Rust's shortest
//! round-trip `Display`, which is deterministic for identical values.

/// Streaming JSON writer over an owned `String`.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: true once it has at least one member.
    stack: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.stack.push(false);
    }

    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.stack.push(false);
    }

    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Write an object key; the next write is its value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.write_escaped(k);
        self.out.push(':');
        // The comma for this member was just emitted; clear the flag so the
        // value's own pre_value doesn't add one between ':' and the value
        // (it re-sets the flag for the member that follows).
        if let Some(has) = self.stack.last_mut() {
            *has = false;
        }
    }

    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.write_escaped(s);
    }

    pub fn u64(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    pub fn i64(&mut self, v: i64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    /// Floats print via shortest-round-trip `Display`; non-finite values
    /// (not representable in JSON) become null.
    pub fn f64(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            // Ensure a numeric token that still parses as f64 ("1" is fine).
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
    }

    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }

    /// Append an already-serialized JSON value verbatim (comma placement
    /// still handled). The caller vouches that `raw` is valid JSON.
    pub fn raw(&mut self, raw: &str) {
        self.pre_value();
        self.out.push_str(raw);
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// A parsed JSON value. Integers are kept exact: a token without `.`, `e`
/// or `E` parses to [`JsonValue::UInt`] (or [`JsonValue::Int`] when
/// negative) so round-trip tests can check `u64`/`i64` fields without f64
/// precision loss. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Negative integer (exact).
    Int(i64),
    /// Non-negative integer (exact).
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64` if it is any in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::Int(v) => Some(v),
            JsonValue::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` if numeric (integers convert losslessly up to
    /// 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Float(v) => Some(v),
            JsonValue::Int(v) => Some(v as f64),
            JsonValue::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object members in document order.
    pub fn members(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry the byte offset of the problem.
/// Recursive descent over the grammar [`JsonWriter`] emits (plus standard
/// JSON it doesn't: `null`, bools, unicode escapes), so
/// `parse(&w.finish())` always succeeds on writer output.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by JsonWriter;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                // Parse the magnitude, then negate (handles i64::MIN too).
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(JsonValue::Int(v));
                }
                return Err(format!("integer out of range: -{rest}"));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
            return Err(format!("integer out of range: {text}"));
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod parse_tests {
    use super::*;

    #[test]
    fn parses_writer_output_exactly() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("u");
        w.u64(u64::MAX);
        w.key("i");
        w.i64(-42);
        w.key("f");
        w.f64(1.5);
        w.key("s");
        w.string("a\"b\n");
        w.key("arr");
        w.begin_array();
        w.u64(1);
        w.u64(2);
        w.end_array();
        w.end_object();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("u").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("i").unwrap().as_i64(), Some(-42));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\n"));
        let arr = v.get("arr").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 2);
    }

    #[test]
    fn exact_integers_do_not_round_trip_through_f64() {
        // 2^63 + 1 is not representable in f64; the parser must keep it.
        let v = parse("9223372036854775809").unwrap();
        assert_eq!(v.as_u64(), Some(9223372036854775809));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }
}
