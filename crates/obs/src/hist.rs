//! Deterministic log-bucketed streaming histograms (HDR-style).
//!
//! Latency distributions are the paper's core evidence (Figures 7–8 are
//! deadline-miss plots), so the observability layer needs quantiles, not
//! just counters. This histogram trades a bounded relative error for a
//! **fixed bucket layout**: the bucket boundaries are a pure function of
//! the value, independent of insertion order or data range, which makes
//! snapshots byte-stable and merges commutative.
//!
//! ## Bucket layout
//!
//! Values are `u64` (nanoseconds by convention). Each octave `[2^k, 2^(k+1))`
//! for `k >= 4` is split into 16 linear sub-buckets, so the relative error
//! of a bucket's lower bound is at most 1/16 ≈ 6.25%. Values below 16 get
//! exact unit buckets. Concretely:
//!
//! * `v < 16` → bucket index `v` (exact).
//! * otherwise, with `msb = 63 - v.leading_zeros()` (so `2^msb <= v`),
//!   the index is `(msb - 3) * 16 + ((v >> (msb - 4)) - 16)`.
//!
//! This yields [`NUM_BUCKETS`] = 976 buckets covering the full `u64` range.
//! [`bucket_low`] inverts the mapping to the bucket's lower bound, which is
//! what quantile queries report (so `p99` is a conservative lower bound
//! within 6.25% of the true order statistic).
//!
//! ## Determinism
//!
//! * Counts are integers; `sum`, `min`, `max` are exact.
//! * [`Histogram::merge`] adds per-bucket counts, so merge is commutative
//!   and associative: quantiles of `merge(A, B)` equal those of
//!   `merge(B, A)` by construction (a property test pins this).
//! * [`Histogram::write_json`] emits only non-empty buckets, sorted by
//!   index, through the deterministic [`JsonWriter`] — two identical runs
//!   produce byte-identical snapshots.

use crate::json::JsonWriter;

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
/// Number of linear sub-buckets per octave (16 → ≤6.25% relative error).
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total number of buckets in the fixed layout.
///
/// Octave 4 (values 16..32) starts at index 16; the final octave is
/// `msb = 63`, whose last sub-bucket has index `(63-3)*16 + 15 = 975`.
pub const NUM_BUCKETS: usize = 976;

/// Map a value to its bucket index. Pure function of `v`; total over `u64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // 2^msb <= v < 2^(msb+1)
    let sub = (v >> (msb - SUB_BITS as u64)) - SUB_COUNT; // 0..16
    ((msb - 3) * SUB_COUNT + sub) as usize
}

/// Lower bound of bucket `i` (the value quantile queries report).
#[inline]
pub fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_COUNT {
        return i;
    }
    let octave = i / SUB_COUNT + 3; // msb of values in this bucket
    let sub = i % SUB_COUNT;
    (SUB_COUNT + sub) << (octave - SUB_BITS as u64)
}

/// A streaming histogram with the fixed log-bucket layout described in the
/// module docs. `Default` is an empty histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Fold `other` into `self` by adding per-bucket counts. Commutative
    /// and associative, so quantiles are independent of merge order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of all observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The quantile `q` in `[0, 1]`: the lower bound of the bucket holding
    /// the observation of rank `ceil(q * count)` (rank 1 minimum). Returns
    /// `None` when empty. Exact for values < 16; otherwise a lower bound
    /// within 6.25% of the true order statistic.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_low(i));
            }
        }
        // Unreachable: the loop covers all `count` observations.
        Some(bucket_low(NUM_BUCKETS - 1))
    }

    /// Non-empty buckets as `(lower_bound, count)`, index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), c))
    }

    /// Write `{"count": .., "sum": .., "min": .., "max": .., "p50": ..,
    /// "p90": .., "p99": .., "buckets": [[low, count], ...]}`. An empty
    /// histogram writes zero stats and an empty bucket array; `min`/`max`
    /// and the quantiles are omitted when empty.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("count");
        w.u64(self.count);
        w.key("sum");
        w.u64(self.sum);
        if self.count > 0 {
            w.key("min");
            w.u64(self.min);
            w.key("max");
            w.u64(self.max);
            w.key("p50");
            w.u64(self.quantile(0.50).unwrap());
            w.key("p90");
            w.u64(self.quantile(0.90).unwrap());
            w.key("p99");
            w.u64(self.quantile(0.99).unwrap());
        }
        w.key("buckets");
        w.begin_array();
        for (low, c) in self.nonzero_buckets() {
            w.begin_array();
            w.u64(low);
            w.u64(c);
            w.end_array();
        }
        w.end_array();
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_total_and_monotonic() {
        // Every representative value maps into range and bucket_low inverts
        // to a bound at or below the value, within 1/16 relative error.
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1_000_000_007,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            let low = bucket_low(i);
            assert!(low <= v, "bucket_low({i})={low} > {v}");
            if v >= 16 {
                // The next bucket's lower bound is at most 1/16 above.
                assert!((v - low) as f64 <= low as f64 / 16.0 + 1.0);
            } else {
                assert_eq!(low, v, "unit buckets must be exact");
            }
        }
        // Bucket lower bounds strictly increase with the index.
        for i in 1..NUM_BUCKETS {
            assert!(bucket_low(i) > bucket_low(i - 1), "non-monotonic at {i}");
        }
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // A bucket's own lower bound must map back to that bucket.
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_low(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn quantiles_of_exact_values() {
        let mut h = Histogram::new();
        for v in 0..10u64 {
            h.observe(v); // all < 16 → exact buckets
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(4)); // rank 5 → value 4
        assert_eq!(h.quantile(1.0), Some(9));
    }

    #[test]
    fn merge_equals_combined_observation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 900, 17, 65_000, 4, 1 << 40] {
            a.observe(v);
            all.observe(v);
        }
        for v in [5u64, 900, 1 << 20, 12] {
            b.observe(v);
            all.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(ab.quantile(q), ba.quantile(q), "q={q}");
            assert_eq!(ab.quantile(q), all.quantile(q), "q={q}");
        }
        assert_eq!(ab.count(), all.count());
        assert_eq!(ab.sum(), all.sum());
        let json = |h: &Histogram| {
            let mut w = JsonWriter::new();
            h.write_json(&mut w);
            w.finish()
        };
        assert_eq!(json(&ab), json(&ba));
        assert_eq!(json(&ab), json(&all));
    }

    #[test]
    fn empty_histogram_snapshot() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        let mut w = JsonWriter::new();
        h.write_json(&mut w);
        assert_eq!(
            w.finish(),
            "{\"count\":0,\"sum\":0,\"buckets\":[]}",
            "empty snapshot layout is part of the schema"
        );
    }
}
