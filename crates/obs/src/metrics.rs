//! The metrics registry: named monotonic counters and last-value gauges
//! with high-water tracking.
//!
//! Names resolve to dense indices once, at registration; hot-path updates
//! are plain vector writes. Snapshots are name-sorted so JSON output is
//! deterministic regardless of registration order.

use crate::hist::Histogram;
use crate::json::JsonWriter;
use mpichgq_sim::FxHashMap;

/// Handle to a registered counter (a dense index; `Copy`, cheap to store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(u32);

#[derive(Debug)]
struct Gauge {
    value: f64,
    high_water: f64,
    touched: bool,
}

/// Named counters and gauges for one simulation run.
#[derive(Debug, Default)]
pub struct Registry {
    counter_names: Vec<String>,
    counter_values: Vec<u64>,
    counter_ids: FxHashMap<String, u32>,
    gauge_names: Vec<String>,
    gauges: Vec<Gauge>,
    gauge_ids: FxHashMap<String, u32>,
    hist_names: Vec<String>,
    hists: Vec<Histogram>,
    hist_ids: FxHashMap<String, u32>,
}

impl Registry {
    /// Register (or look up) a counter; increments via the returned id are
    /// one vector add.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.counter_ids.get(name) {
            return CounterId(i);
        }
        let i = self.counter_values.len() as u32;
        self.counter_names.push(name.to_owned());
        self.counter_values.push(0);
        self.counter_ids.insert(name.to_owned(), i);
        CounterId(i)
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counter_values[id.0 as usize] += n;
    }

    /// Increment a counter by name (registration on first use). For cold
    /// paths — reservation grants, MPI message starts — where holding an id
    /// is not worth the plumbing.
    pub fn add(&mut self, name: &str, n: u64) {
        let id = self.counter(name);
        self.inc(id, n);
    }

    /// Publish an externally maintained monotonic total (queue stats, drop
    /// stats) into the registry. Panics if the published value regresses —
    /// that would mean the source counter is not actually monotonic.
    pub fn record_total(&mut self, name: &str, total: u64) {
        let id = self.counter(name);
        let cur = &mut self.counter_values[id.0 as usize];
        assert!(
            total >= *cur,
            "counter {name} is not monotonic: {total} < {cur}"
        );
        *cur = total;
    }

    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counter_ids
            .get(name)
            .map(|&i| self.counter_values[i as usize])
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(&i) = self.gauge_ids.get(name) {
            return GaugeId(i);
        }
        let i = self.gauges.len() as u32;
        self.gauge_names.push(name.to_owned());
        self.gauges.push(Gauge {
            value: 0.0,
            high_water: f64::NEG_INFINITY,
            touched: false,
        });
        self.gauge_ids.insert(name.to_owned(), i);
        GaugeId(i)
    }

    /// Set a gauge's current value, updating its high-water mark.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, v: f64) {
        let g = &mut self.gauges[id.0 as usize];
        g.value = v;
        g.touched = true;
        if v > g.high_water {
            g.high_water = v;
        }
    }

    /// Set a gauge by name (registration on first use).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        let id = self.gauge(name);
        self.gauge_set(id, v);
    }

    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauge_ids
            .get(name)
            .filter(|&&i| self.gauges[i as usize].touched)
            .map(|&i| self.gauges[i as usize].value)
    }

    pub fn gauge_high_water(&self, name: &str) -> Option<f64> {
        self.gauge_ids
            .get(name)
            .filter(|&&i| self.gauges[i as usize].touched)
            .map(|&i| self.gauges[i as usize].high_water)
    }

    /// Register (or look up) a histogram; observations via the returned id
    /// are one bucket increment.
    pub fn hist(&mut self, name: &str) -> HistId {
        if let Some(&i) = self.hist_ids.get(name) {
            return HistId(i);
        }
        let i = self.hists.len() as u32;
        self.hist_names.push(name.to_owned());
        self.hists.push(Histogram::new());
        self.hist_ids.insert(name.to_owned(), i);
        HistId(i)
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn hist_observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0 as usize].observe(v);
    }

    /// Record one observation by name (registration on first use).
    pub fn observe(&mut self, name: &str, v: u64) {
        let id = self.hist(name);
        self.hist_observe(id, v);
    }

    /// Publish an externally maintained histogram into the registry by
    /// replacing the named slot with a copy. For component-local
    /// histograms published at snapshot time (mirrors [`record_total`]):
    /// calling it repeatedly with a growing source is idempotent per call,
    /// not additive.
    ///
    /// [`record_total`]: Registry::record_total
    pub fn record_hist(&mut self, name: &str, h: &Histogram) {
        let id = self.hist(name);
        self.hists[id.0 as usize] = h.clone();
    }

    /// Read access to a registered histogram.
    pub fn hist_value(&self, name: &str) -> Option<&Histogram> {
        self.hist_ids.get(name).map(|&i| &self.hists[i as usize])
    }

    /// Counters in registration order, as `(name, value)` pairs.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .map(String::as_str)
            .zip(self.counter_values.iter().copied())
    }

    /// Touched gauges in registration order, as `(name, value)` pairs.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_names
            .iter()
            .map(String::as_str)
            .zip(self.gauges.iter())
            .filter(|(_, g)| g.touched)
            .map(|(n, g)| (n, g.value))
    }

    /// Fold another registry into this one, name by name. Counters add;
    /// gauges add both current value and high-water (component gauges are
    /// occupancy-style — queue depths, pending work — so sums are the
    /// system-wide reading, and the summed high-water is an *upper bound*
    /// on the true combined peak: the shards need not have peaked at the
    /// same instant). When the run also sampled a timeline,
    /// [`Registry::refine_gauge_peaks`] replaces that bound with the peak
    /// of the merged series; for unsampled gauges the bound is what gets
    /// reported. Histograms merge bucket-wise.
    ///
    /// Registration order in `self` follows first-seen order across the
    /// merge sequence, but snapshots are name-sorted, so merging shards in
    /// any fixed order yields byte-identical JSON.
    pub fn merge_from(&mut self, other: &Registry) {
        for (name, &v) in other.counter_names.iter().zip(&other.counter_values) {
            self.add(name, v);
        }
        for (name, g) in other.gauge_names.iter().zip(&other.gauges) {
            if !g.touched {
                continue;
            }
            let id = self.gauge(name);
            let mine = &mut self.gauges[id.0 as usize];
            mine.value += g.value;
            mine.high_water = if mine.touched {
                mine.high_water + g.high_water
            } else {
                g.high_water
            };
            mine.touched = true;
        }
        for (name, h) in other.hist_names.iter().zip(&other.hists) {
            if h.is_empty() {
                continue;
            }
            let id = self.hist(name);
            self.hists[id.0 as usize].merge(h);
        }
    }

    /// Replace merged gauge high-water marks with the true combined peaks
    /// read off a merged [`Timeline`](crate::Timeline). After
    /// [`Registry::merge_from`] a gauge's high-water is the *sum* of
    /// per-shard peaks — an upper bound, since the shards need not peak
    /// simultaneously. The merged timeline's series for the same gauge is
    /// the pointwise sum of the per-shard step functions, so its maximum
    /// is the combined peak at sampling resolution. Gauges without a
    /// sampled series keep the documented upper-bound fallback.
    pub fn refine_gauge_peaks(&mut self, timeline: &crate::Timeline) {
        for (name, i) in &self.gauge_ids {
            let g = &mut self.gauges[*i as usize];
            if !g.touched {
                continue;
            }
            if let Some(peak) = timeline.gauge_peak(name) {
                g.high_water = peak.max(g.value);
            }
        }
    }

    /// Snapshot just this registry (no trace section) as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`. Used
    /// for merged per-shard registries, which have no flight recorder.
    pub fn snapshot_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters");
        self.write_counters(&mut w);
        w.key("gauges");
        self.write_gauges(&mut w);
        w.key("histograms");
        self.write_histograms(&mut w);
        w.end_object();
        w.finish()
    }

    /// Write `{"name": value, ...}` for all counters, name-sorted.
    pub fn write_counters(&self, w: &mut JsonWriter) {
        let mut order: Vec<usize> = (0..self.counter_names.len()).collect();
        order.sort_by(|&a, &b| self.counter_names[a].cmp(&self.counter_names[b]));
        w.begin_object();
        for i in order {
            w.key(&self.counter_names[i]);
            w.u64(self.counter_values[i]);
        }
        w.end_object();
    }

    /// Write `{"name": {"value": v, "high_water": h}, ...}`, name-sorted.
    /// Gauges that were registered but never set are omitted.
    pub fn write_gauges(&self, w: &mut JsonWriter) {
        let mut order: Vec<usize> = (0..self.gauge_names.len()).collect();
        order.sort_by(|&a, &b| self.gauge_names[a].cmp(&self.gauge_names[b]));
        w.begin_object();
        for i in order {
            let g = &self.gauges[i];
            if !g.touched {
                continue;
            }
            w.key(&self.gauge_names[i]);
            w.begin_object();
            w.key("value");
            w.f64(g.value);
            w.key("high_water");
            w.f64(g.high_water);
            w.end_object();
        }
        w.end_object();
    }

    /// Write `{"name": {histogram...}, ...}`, name-sorted. Histograms that
    /// were registered but never observed are omitted (so snapshots with
    /// tracing disabled stay free of empty sections). The per-histogram
    /// schema is documented on [`Histogram::write_json`].
    pub fn write_histograms(&self, w: &mut JsonWriter) {
        let mut order: Vec<usize> = (0..self.hist_names.len()).collect();
        order.sort_by(|&a, &b| self.hist_names[a].cmp(&self.hist_names[b]));
        w.begin_object();
        for i in order {
            let h = &self.hists[i];
            if h.is_empty() {
                continue;
            }
            w.key(&self.hist_names[i]);
            h.write_json(w);
        }
        w.end_object();
    }
}
