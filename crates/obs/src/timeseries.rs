//! Deterministic fixed-interval time series: the sampled middle layer
//! between end-of-run registry snapshots and per-packet lifecycle traces.
//!
//! A [`Timeline`] holds named series sampled on a fixed wall-of-sim-time
//! grid. Counter series are absolute monotone `u64` samples; gauge series
//! are `f64`. The JSON writer delta-encodes timestamps and counter values
//! (the grid makes deltas tiny and repetitive), sorts series by name, and
//! uses the same shortest-round-trip float formatting as the registry
//! snapshot — so a timeline's JSON is a pure function of its samples,
//! byte-stable across runs and platforms.
//!
//! Shard merge mirrors [`crate::Registry::merge_from`]: series are keyed
//! by name, and merging sums the per-shard step functions pointwise over
//! the union of their sample timestamps (a shard contributes its value-so-
//! far at every instant; before its first sample it contributes zero).
//! Pointwise sum over a timestamp union is associative and commutative,
//! so the merged timeline is independent of shard merge order — that is
//! what makes 1-thread and N-thread runs byte-identical.

use crate::json::JsonWriter;
use mpichgq_sim::FxHashMap;

/// What a series measures: a cumulative monotone count or a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Absolute monotone totals (samples never decrease).
    Counter,
    /// Instantaneous levels (queue depths, bucket fills, burn rates).
    Gauge,
}

#[derive(Debug, Clone)]
struct Series {
    kind: SeriesKind,
    /// Set when a dedicated sampler owns this series. The registry sweep
    /// skips live series, so a stale registry copy published mid-run can
    /// never push a non-monotone sample under a sampler-owned name.
    live: bool,
    t_ns: Vec<u64>,
    /// Counter samples (absolute totals); empty for gauges.
    u: Vec<u64>,
    /// Gauge samples; empty for counters.
    f: Vec<f64>,
}

impl Series {
    fn new(kind: SeriesKind, live: bool) -> Series {
        Series {
            kind,
            live,
            t_ns: Vec::new(),
            u: Vec::new(),
            f: Vec::new(),
        }
    }
}

/// A set of named series on one sampling grid. See the module docs.
#[derive(Debug, Default)]
pub struct Timeline {
    interval_ns: u64,
    names: Vec<String>,
    series: Vec<Series>,
    ids: FxHashMap<String, u32>,
}

impl Timeline {
    /// An empty timeline sampling every `interval_ns` nanoseconds.
    pub fn new(interval_ns: u64) -> Timeline {
        assert!(interval_ns > 0, "sampling interval must be positive");
        Timeline {
            interval_ns,
            ..Timeline::default()
        }
    }

    /// The sampling grid spacing in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Number of named series recorded so far.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    fn series_mut(&mut self, name: &str, kind: SeriesKind, live: bool) -> &mut Series {
        let idx = match self.ids.get(name) {
            Some(&i) => i as usize,
            None => {
                let i = self.series.len() as u32;
                self.ids.insert(name.to_owned(), i);
                self.names.push(name.to_owned());
                self.series.push(Series::new(kind, live));
                i as usize
            }
        };
        let s = &mut self.series[idx];
        assert_eq!(
            s.kind, kind,
            "series {name} already registered with the other kind"
        );
        s
    }

    fn push_at(s: &mut Series, name: &str, t_ns: u64) {
        if let Some(&last) = s.t_ns.last() {
            assert!(
                t_ns > last,
                "series {name}: timestamp {t_ns} not after {last}"
            );
        }
        s.t_ns.push(t_ns);
    }

    /// Record a counter sample from a dedicated sampler. Marks the series
    /// live (the registry sweep will skip it from now on). Panics if the
    /// timestamp does not advance or the value regresses.
    pub fn push_counter(&mut self, name: &str, t_ns: u64, v: u64) {
        let s = self.series_mut(name, SeriesKind::Counter, true);
        s.live = true;
        if let Some(&prev) = s.u.last() {
            assert!(v >= prev, "counter series {name} regressed: {prev} -> {v}");
        }
        Self::push_at(s, name, t_ns);
        s.u.push(v);
    }

    /// Record a gauge sample from a dedicated sampler (marks the series
    /// live). Panics if the timestamp does not advance.
    pub fn push_gauge(&mut self, name: &str, t_ns: u64, v: f64) {
        let s = self.series_mut(name, SeriesKind::Gauge, true);
        s.live = true;
        Self::push_at(s, name, t_ns);
        s.f.push(v);
    }

    /// Record a counter sample from the registry sweep. No-op when a
    /// dedicated sampler owns the series (see [`Timeline::push_counter`])
    /// or when `t_ns` was already sampled.
    pub fn sweep_counter(&mut self, name: &str, t_ns: u64, v: u64) {
        let s = self.series_mut(name, SeriesKind::Counter, false);
        if s.live || s.t_ns.last() == Some(&t_ns) {
            return;
        }
        if let Some(&prev) = s.u.last() {
            assert!(v >= prev, "counter series {name} regressed: {prev} -> {v}");
        }
        Self::push_at(s, name, t_ns);
        s.u.push(v);
    }

    /// Record a gauge sample from the registry sweep (see
    /// [`Timeline::sweep_counter`] for the live-series rule).
    pub fn sweep_gauge(&mut self, name: &str, t_ns: u64, v: f64) {
        let s = self.series_mut(name, SeriesKind::Gauge, false);
        if s.live || s.t_ns.last() == Some(&t_ns) {
            return;
        }
        Self::push_at(s, name, t_ns);
        s.f.push(v);
    }

    /// Series names in registration order (JSON output sorts them).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// A counter series' `(timestamps, values)` columns, if it exists.
    pub fn counter(&self, name: &str) -> Option<(&[u64], &[u64])> {
        let s = &self.series[*self.ids.get(name)? as usize];
        (s.kind == SeriesKind::Counter).then_some((&s.t_ns[..], &s.u[..]))
    }

    /// A gauge series' `(timestamps, values)` columns, if it exists.
    pub fn gauge(&self, name: &str) -> Option<(&[u64], &[f64])> {
        let s = &self.series[*self.ids.get(name)? as usize];
        (s.kind == SeriesKind::Gauge).then_some((&s.t_ns[..], &s.f[..]))
    }

    /// The last sample of a counter series, if any.
    pub fn last_counter(&self, name: &str) -> Option<u64> {
        self.counter(name).and_then(|(_, v)| v.last().copied())
    }

    /// The counter's value at `t_ns` under step semantics: the most recent
    /// sample at or before `t_ns`, or 0 before the first sample. The burn
    /// calculator uses this to read rates over trailing windows.
    pub fn counter_at(&self, name: &str, t_ns: u64) -> u64 {
        let Some((t, v)) = self.counter(name) else {
            return 0;
        };
        match t.partition_point(|&x| x <= t_ns) {
            0 => 0,
            i => v[i - 1],
        }
    }

    /// The maximum sample of a gauge series, if it has any samples.
    pub fn gauge_peak(&self, name: &str) -> Option<f64> {
        let (_, v) = self.gauge(name)?;
        v.iter().copied().reduce(f64::max)
    }

    /// Fold `other` into `self`, series by name: the merged series is the
    /// pointwise sum of the two step functions over the union of their
    /// sample timestamps (a side contributes 0 before its first sample).
    /// Order-independent, like [`crate::Registry::merge_from`]; both
    /// timelines must share a grid.
    pub fn merge_from(&mut self, other: &Timeline) {
        assert_eq!(
            self.interval_ns, other.interval_ns,
            "cannot merge timelines with different sampling grids"
        );
        for (name, o) in other.names.iter().zip(&other.series) {
            let s = self.series_mut(name, o.kind, o.live);
            s.live |= o.live;
            let merged = merge_series(s, o);
            *s = merged;
        }
    }

    /// Serialize into `w`. Schema:
    ///
    /// ```json
    /// {"timeline":1,"interval_ns":N,"series":{
    ///   "name":{"kind":"counter","t0_ns":T,"dt_ns":[..],"v0":V,"dv":[..]},
    ///   "name":{"kind":"gauge","t0_ns":T,"dt_ns":[..],"values":[..]}}}
    /// ```
    ///
    /// Series are name-sorted; `dt_ns`/`dv` are successive deltas (one
    /// fewer entry than samples). Empty series serialize with `t0_ns`
    /// null and empty delta arrays.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("timeline");
        w.u64(1);
        w.key("interval_ns");
        w.u64(self.interval_ns);
        w.key("series");
        w.begin_object();
        let mut order: Vec<usize> = (0..self.names.len()).collect();
        order.sort_by(|&a, &b| self.names[a].cmp(&self.names[b]));
        for i in order {
            let s = &self.series[i];
            w.key(&self.names[i]);
            w.begin_object();
            w.key("kind");
            w.string(match s.kind {
                SeriesKind::Counter => "counter",
                SeriesKind::Gauge => "gauge",
            });
            w.key("t0_ns");
            match s.t_ns.first() {
                Some(&t0) => w.u64(t0),
                None => w.raw("null"),
            }
            w.key("dt_ns");
            w.begin_array();
            for pair in s.t_ns.windows(2) {
                w.u64(pair[1] - pair[0]);
            }
            w.end_array();
            match s.kind {
                SeriesKind::Counter => {
                    w.key("v0");
                    match s.u.first() {
                        Some(&v0) => w.u64(v0),
                        None => w.raw("null"),
                    }
                    w.key("dv");
                    w.begin_array();
                    for pair in s.u.windows(2) {
                        w.u64(pair[1] - pair[0]);
                    }
                    w.end_array();
                }
                SeriesKind::Gauge => {
                    w.key("values");
                    w.begin_array();
                    for &v in &s.f {
                        w.f64(v);
                    }
                    w.end_array();
                }
            }
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }

    /// [`Timeline::write_json`] into a fresh string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Pointwise step-function sum of two series over their timestamp union.
fn merge_series(a: &Series, b: &Series) -> Series {
    let mut out = Series::new(a.kind, a.live || b.live);
    let (mut i, mut j) = (0usize, 0usize);
    let (mut au, mut bu) = (0u64, 0u64);
    let (mut af, mut bf) = (0f64, 0f64);
    while i < a.t_ns.len() || j < b.t_ns.len() {
        let ta = a.t_ns.get(i).copied().unwrap_or(u64::MAX);
        let tb = b.t_ns.get(j).copied().unwrap_or(u64::MAX);
        let t = ta.min(tb);
        if ta == t {
            match a.kind {
                SeriesKind::Counter => au = a.u[i],
                SeriesKind::Gauge => af = a.f[i],
            }
            i += 1;
        }
        if tb == t {
            match b.kind {
                SeriesKind::Counter => bu = b.u[j],
                SeriesKind::Gauge => bf = b.f[j],
            }
            j += 1;
        }
        out.t_ns.push(t);
        match a.kind {
            SeriesKind::Counter => out.u.push(au + bu),
            SeriesKind::Gauge => out.f.push(af + bf),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> Timeline {
        Timeline::new(1_000)
    }

    #[test]
    fn json_is_name_sorted_and_delta_encoded() {
        let mut t = tl();
        t.push_counter("b.count", 1_000, 5);
        t.push_counter("b.count", 2_000, 9);
        t.push_gauge("a.level", 1_000, 1.5);
        t.push_gauge("a.level", 2_000, 0.0);
        assert_eq!(
            t.to_json(),
            "{\"timeline\":1,\"interval_ns\":1000,\"series\":{\
             \"a.level\":{\"kind\":\"gauge\",\"t0_ns\":1000,\"dt_ns\":[1000],\
             \"values\":[1.5,0]},\
             \"b.count\":{\"kind\":\"counter\",\"t0_ns\":1000,\"dt_ns\":[1000],\
             \"v0\":5,\"dv\":[4]}}}"
        );
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut t = tl();
        t.push_counter("c", 500, 1);
        t.push_counter("c", 1_500, 1);
        t.push_gauge("g", 500, 0.25);
        let v = crate::json::parse(&t.to_json()).unwrap();
        assert_eq!(v.get("timeline").unwrap().as_u64(), Some(1));
        let series = v.get("series").unwrap();
        let c = series.get("c").unwrap();
        assert_eq!(c.get("kind").unwrap().as_str(), Some("counter"));
        assert_eq!(c.get("t0_ns").unwrap().as_u64(), Some(500));
        assert_eq!(c.get("dv").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |offs: u64, scale: u64| {
            let mut t = tl();
            for i in 1..=4u64 {
                t.push_counter("c", offs + i * 1_000, i * scale);
                t.push_gauge("g", offs + i * 1_000, (i * scale) as f64);
            }
            t
        };
        let (a, b, c) = (mk(0, 1), mk(500, 10), mk(250, 100));
        let mut ab = tl();
        for t in [&a, &b, &c] {
            ab.merge_from(t);
        }
        let mut ba = tl();
        for t in [&c, &b, &a] {
            ba.merge_from(t);
        }
        assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn merge_sums_step_functions() {
        let mut a = tl();
        a.push_counter("c", 1_000, 2);
        a.push_counter("c", 3_000, 6);
        let mut b = tl();
        b.push_counter("c", 2_000, 10);
        let mut m = tl();
        m.merge_from(&a);
        m.merge_from(&b);
        let (t, v) = m.counter("c").unwrap();
        assert_eq!(t, &[1_000, 2_000, 3_000]);
        assert_eq!(v, &[2, 12, 16]);
        assert_eq!(m.counter_at("c", 999), 0);
        assert_eq!(m.counter_at("c", 2_500), 12);
        assert_eq!(m.counter_at("c", 9_999), 16);
    }

    #[test]
    fn sweep_skips_live_series_and_duplicate_ticks() {
        let mut t = tl();
        t.push_counter("live", 1_000, 7);
        t.sweep_counter("live", 2_000, 3); // stale copy: ignored
        assert_eq!(t.last_counter("live"), Some(7));
        t.sweep_counter("swept", 1_000, 1);
        t.sweep_counter("swept", 1_000, 9); // same tick: ignored
        assert_eq!(t.last_counter("swept"), Some(1));
    }

    #[test]
    fn gauge_peak_tracks_maximum() {
        let mut t = tl();
        t.push_gauge("g", 1_000, 1.0);
        t.push_gauge("g", 2_000, 8.0);
        t.push_gauge("g", 3_000, 2.0);
        assert_eq!(t.gauge_peak("g"), Some(8.0));
        assert_eq!(t.gauge_peak("missing"), None);
    }

    #[test]
    #[should_panic(expected = "regressed")]
    fn counter_regression_panics() {
        let mut t = tl();
        t.push_counter("c", 1_000, 5);
        t.push_counter("c", 2_000, 4);
    }

    #[test]
    #[should_panic(expected = "not after")]
    fn stale_timestamp_panics() {
        let mut t = tl();
        t.push_gauge("g", 2_000, 1.0);
        t.push_gauge("g", 2_000, 2.0);
    }
}
