//! Observability: a shared metrics registry and a bounded flight recorder.
//!
//! The paper's entire evaluation is read off instrumentation — per-flow
//! bandwidth traces, drop and mark counts at the policer, TCP sequence
//! traces. This crate is the simulator's equivalent of that measurement
//! harness: every layer (netsim, tcp, mpi, gara) feeds one [`Obs`] instance
//! owned by the network, and experiment binaries dump a deterministic JSON
//! snapshot (`results/<experiment>/metrics.json`) that CI can diff.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero hot-path cost.** Counter increments pre-resolve their
//!    name to a dense index once ([`Registry::counter`]) so the per-event
//!    cost is one bounds-checked vector add. The flight recorder is
//!    branch-on-disabled: when no experiment asked for a trace, a record
//!    call is a single predictable branch ([`FlightRecorder::record`]).
//!    Component-local counters that already exist (queue stats, drop
//!    stats, rule stats) stay where they are and are *published* into the
//!    registry at snapshot time instead of being double-counted live.
//! 2. **Determinism.** Snapshots sort metrics by name and format numbers
//!    identically across runs; two runs of the same seeded experiment
//!    produce byte-identical JSON. Nothing here consults wall-clock time.
//! 3. **No dependencies.** JSON is written by hand (the workspace builds
//!    fully offline); the only dependency is `mpichgq-sim` for [`SimTime`].

mod hist;
mod json;
mod metrics;
mod timeseries;
mod trace;

pub use hist::{bucket_index, bucket_low, Histogram, NUM_BUCKETS};
pub use json::{parse, JsonValue, JsonWriter};
pub use metrics::{CounterId, GaugeId, HistId, Registry};
pub use timeseries::{SeriesKind, Timeline};
pub use trace::{FlightRecorder, TraceEvent};

use mpichgq_sim::SimTime;

/// The per-simulation observability bundle: a metrics registry plus a
/// flight recorder. Owned by the network (`Net`), reachable from every
/// layer that holds `&mut Net`.
#[derive(Debug, Default)]
pub struct Obs {
    pub metrics: Registry,
    pub trace: FlightRecorder,
}

impl Obs {
    /// A fresh bundle with the trace disabled (the default: counters are
    /// always live, the ring buffer costs one branch until enabled).
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Enable the event trace with a ring of `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace.enable(capacity);
    }

    /// Record a trace event (no-op unless the trace is enabled).
    #[inline]
    pub fn event(&mut self, at: SimTime, kind: &'static str, key: u64, value: i64) {
        self.trace.record(at, kind, key, value);
    }

    /// Serialize the whole bundle as one deterministic JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...},
    /// "trace": {...}}`.
    pub fn snapshot_json(&self) -> String {
        self.snapshot_json_with(&[])
    }

    /// Like [`snapshot_json`](Obs::snapshot_json), with caller-supplied
    /// extra top-level sections appended after `"trace"`. Each entry is a
    /// `(key, raw_json_value)` pair; the caller vouches that the value is
    /// valid JSON (the network uses this to attach its `"slo"` section).
    pub fn snapshot_json_with(&self, extra: &[(&str, &str)]) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters");
        self.metrics.write_counters(&mut w);
        w.key("gauges");
        self.metrics.write_gauges(&mut w);
        w.key("histograms");
        self.metrics.write_histograms(&mut w);
        w.key("trace");
        self.trace.write_json(&mut w);
        for (key, raw) in extra {
            w.key(key);
            w.raw(raw);
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpichgq_sim::SimTime;

    #[test]
    fn counter_semantics_are_monotonic() {
        let mut r = Registry::default();
        let c = r.counter("pkts.enqueued");
        assert_eq!(r.counter_value("pkts.enqueued"), Some(0));
        r.inc(c, 1);
        r.inc(c, 41);
        assert_eq!(r.counter_value("pkts.enqueued"), Some(42));
        // Re-registering the same name returns the same slot.
        let c2 = r.counter("pkts.enqueued");
        r.inc(c2, 1);
        assert_eq!(r.counter_value("pkts.enqueued"), Some(43));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn record_total_publishes_and_stays_monotonic() {
        let mut r = Registry::default();
        r.record_total("drops.policed", 7);
        assert_eq!(r.counter_value("drops.policed"), Some(7));
        r.record_total("drops.policed", 11);
        assert_eq!(r.counter_value("drops.policed"), Some(11));
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn record_total_rejects_regressions() {
        let mut r = Registry::default();
        r.record_total("x", 5);
        r.record_total("x", 4);
    }

    #[test]
    fn gauge_tracks_value_and_high_water() {
        let mut r = Registry::default();
        let g = r.gauge("queue.depth");
        r.gauge_set(g, 10.0);
        r.gauge_set(g, 30.0);
        r.gauge_set(g, 5.0);
        assert_eq!(r.gauge_value("queue.depth"), Some(5.0));
        assert_eq!(r.gauge_high_water("queue.depth"), Some(30.0));
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let mut fr = FlightRecorder::default();
        fr.enable(3);
        for i in 0..5u64 {
            fr.record(SimTime::from_nanos(i), "ev", i, i as i64);
        }
        assert_eq!(fr.recorded(), 5);
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        // The ring holds the *newest* events, oldest first.
        let keys: Vec<u64> = fr.events().map(|e| e.key).collect();
        assert_eq!(keys, vec![2, 3, 4]);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        // The disabled path must not allocate or retain anything: the ring
        // stays empty and nothing is counted, so instrumentation sites can
        // call record() unconditionally.
        let mut fr = FlightRecorder::default();
        for i in 0..1000u64 {
            fr.record(SimTime::from_nanos(i), "ev", i, 0);
        }
        assert_eq!(fr.recorded(), 0);
        assert_eq!(fr.len(), 0);
        assert_eq!(fr.capacity(), 0);
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let build = || {
            let mut o = Obs::new();
            o.enable_trace(8);
            // Register in non-alphabetical order; output must be sorted.
            let b = o.metrics.counter("beta");
            let a = o.metrics.counter("alpha");
            o.metrics.inc(b, 2);
            o.metrics.inc(a, 1);
            let g = o.metrics.gauge("level");
            o.metrics.gauge_set(g, 1.5);
            let h = o.metrics.hist("delay");
            o.metrics.hist_observe(h, 1_000_000);
            o.metrics.hist_observe(h, 2_000_000);
            o.event(SimTime::from_millis(5), "drop", 9, -1);
            o.snapshot_json()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2);
        let alpha = s1.find("\"alpha\"").unwrap();
        let beta = s1.find("\"beta\"").unwrap();
        assert!(alpha < beta, "counters must be name-sorted: {s1}");
        assert!(s1.contains("\"counters\""));
        assert!(s1.contains("\"gauges\""));
        assert!(s1.contains("\"histograms\""));
        assert!(s1.contains("\"delay\""));
        assert!(s1.contains("\"p99\""));
        assert!(s1.contains("\"trace\""));
        assert!(s1.contains("\"high_water\""));
        assert!(s1.contains("\"t_ns\":5000000"));
    }

    #[test]
    fn extra_sections_append_after_trace() {
        let o = Obs::new();
        let s = o.snapshot_json_with(&[("slo", "{\"flows\":[],\"total_misses\":0}")]);
        assert!(
            s.ends_with(",\"slo\":{\"flows\":[],\"total_misses\":0}}"),
            "{s}"
        );
        let v = crate::parse(&s).expect("snapshot must parse");
        assert_eq!(
            v.get("slo").unwrap().get("total_misses").unwrap().as_u64(),
            Some(0)
        );
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a\"b\\c\n");
        w.string("x\ty");
        w.end_object();
        assert_eq!(w.finish(), "{\"a\\\"b\\\\c\\n\":\"x\\ty\"}");
    }
}
