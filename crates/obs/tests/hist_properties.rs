//! Property tests of the histogram's determinism contract: the bucket
//! layout is a total, invertible-to-lower-bound mapping, merge order never
//! changes quantiles, and snapshots are byte-stable.

use mpichgq_obs::{bucket_index, bucket_low, Histogram, JsonWriter, NUM_BUCKETS};
use proptest::prelude::*;

fn json(h: &Histogram) -> String {
    let mut w = JsonWriter::new();
    h.write_json(&mut w);
    w.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn bucket_layout_is_total(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        let low = bucket_low(i);
        prop_assert!(low <= v, "lower bound {low} above value {v}");
        // The reported bound is within 6.25% (one sub-bucket) of the value.
        if v >= 16 {
            prop_assert!((v - low) as u128 * 16 <= low as u128 + 16);
        } else {
            prop_assert_eq!(low, v);
        }
        // Values in the same bucket share a lower bound; the next bucket
        // starts strictly above this one.
        if i + 1 < NUM_BUCKETS {
            prop_assert!(bucket_low(i + 1) > low);
            prop_assert!(v < bucket_low(i + 1));
        }
    }

    #[test]
    fn merge_is_order_independent(
        xs in proptest::collection::vec(any::<u64>(), 0..200),
        ys in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for &v in &xs {
            a.observe(v);
            combined.observe(v);
        }
        for &v in &ys {
            b.observe(v);
            combined.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ab.quantile(q), ba.quantile(q), "q={}", q);
            prop_assert_eq!(ab.quantile(q), combined.quantile(q), "q={}", q);
        }
        // Byte-identical snapshots, both across merge orders and against
        // observing the union directly.
        prop_assert_eq!(json(&ab), json(&ba));
        prop_assert_eq!(json(&ab), json(&combined));
    }

    #[test]
    fn snapshot_is_insertion_order_independent(
        vs in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut vs = vs;
        let mut fwd = Histogram::new();
        for &v in &vs {
            fwd.observe(v);
        }
        vs.reverse();
        let mut rev = Histogram::new();
        for &v in &vs {
            rev.observe(v);
        }
        prop_assert_eq!(json(&fwd), json(&rev));
    }

    #[test]
    fn quantiles_bound_the_true_order_statistic(
        vs in proptest::collection::vec(0u64..1_000_000_000, 1..100),
        q_pct in 0u64..=100,
    ) {
        let q = q_pct as f64 / 100.0;
        let mut h = Histogram::new();
        for &v in &vs {
            h.observe(v);
        }
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        let rank = ((q * vs.len() as f64).ceil() as usize).clamp(1, vs.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q).unwrap();
        prop_assert!(est <= truth, "estimate {est} above true {truth}");
        // Within one sub-bucket: truth < next bucket boundary above est.
        if truth >= 16 {
            prop_assert!(
                (truth - est) as f64 <= truth as f64 / 16.0 + 1.0,
                "estimate {est} too far below true {truth}"
            );
        } else {
            prop_assert_eq!(est, truth);
        }
    }
}
