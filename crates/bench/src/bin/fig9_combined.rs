//! Figure 9: "Initially it runs well (0-10 seconds), then network
//! congestion affects its bandwidth (11-20 seconds) until a network
//! reservation is made (21-30 seconds). Bandwidth again decreases when
//! there is CPU contention at the sender (31-40 seconds) until there is a
//! CPU reservation (41-50 seconds)."

use mpichgq_bench::{fig9_combined_run, output, phase_mean, Fig9Cfg, TRACE_CAPACITY};
use mpichgq_sim::SimTime;

fn main() {
    let fast = output::fast_mode();
    let cfg = if fast {
        // Same staged phases on a compressed clock: enough of each phase to
        // see the level shifts, quick enough for the CI figures job.
        Fig9Cfg {
            congestion_at: SimTime::from_secs(4),
            net_reservation_at: SimTime::from_secs(9),
            hog_at: SimTime::from_secs(13),
            cpu_reservation_at: SimTime::from_secs(17),
            duration: SimTime::from_secs(21),
            ..Fig9Cfg::default()
        }
    } else {
        Fig9Cfg::default()
    };
    let (series, metrics) = fig9_combined_run(cfg, TRACE_CAPACITY);
    output::print_series(
        "Figure 9: 35 Mb/s visualization under staged network + CPU contention and reservations",
        "bandwidth_kbps",
        &series,
    );
    let phase_ends = [
        cfg.congestion_at,
        cfg.net_reservation_at,
        cfg.hog_at,
        cfg.cpu_reservation_at,
        cfg.duration,
    ]
    .map(|t| t.as_secs_f64());
    println!(
        "# phases: clean {:.0} | congestion {:.0} | net reservation {:.0} | cpu contention {:.0} | cpu reservation {:.0} Kb/s",
        phase_mean(&series, 2.0, phase_ends[0]),
        phase_mean(&series, phase_ends[0] + 1.0, phase_ends[1]),
        phase_mean(&series, phase_ends[1] + 1.0, phase_ends[2]),
        phase_mean(&series, phase_ends[2] + 1.0, phase_ends[3]),
        phase_mean(&series, phase_ends[3] + 1.0, phase_ends[4]),
    );
    println!("# paper shape: full | depressed | restored | depressed | restored — both reservations are needed");
    output::write_metrics("fig9", &metrics.metrics_json);
    output::write_timeline("fig9", metrics.timeline_json.as_deref());
}
