//! Figure 9: "Initially it runs well (0-10 seconds), then network
//! congestion affects its bandwidth (11-20 seconds) until a network
//! reservation is made (21-30 seconds). Bandwidth again decreases when
//! there is CPU contention at the sender (31-40 seconds) until there is a
//! CPU reservation (41-50 seconds)."

use mpichgq_bench::{fig9_combined, output, phase_mean, Fig9Cfg};

fn main() {
    let cfg = Fig9Cfg::default();
    let series = fig9_combined(cfg);
    output::print_series(
        "Figure 9: 35 Mb/s visualization under staged network + CPU contention and reservations",
        "bandwidth_kbps",
        &series,
    );
    println!(
        "# phases: clean {:.0} | congestion {:.0} | net reservation {:.0} | cpu contention {:.0} | cpu reservation {:.0} Kb/s",
        phase_mean(&series, 2.0, 10.0),
        phase_mean(&series, 11.0, 21.0),
        phase_mean(&series, 22.0, 31.0),
        phase_mean(&series, 32.0, 41.0),
        phase_mean(&series, 42.0, 50.0),
    );
    println!("# paper shape: full | depressed | restored | depressed | restored — both reservations are needed");
}
