//! Figure 1: "An application using TCP has made a reservation for only
//! 40 Mb/s, when it is sending at 50 Mb/s" — the bandwidth trace oscillates
//! as TCP repeatedly overruns the policer, loses packets, backs off, and
//! climbs again.

use mpichgq_bench::{fig1_tcp_sawtooth_run, output, Fig1Cfg, TRACE_CAPACITY};
use mpichgq_sim::SimTime;

fn main() {
    let mut cfg = Fig1Cfg::default();
    if output::fast_mode() {
        cfg.duration = SimTime::from_secs(30);
    }
    let (series, metrics) = fig1_tcp_sawtooth_run(cfg, TRACE_CAPACITY);
    output::print_series(
        "Figure 1: TCP at 50 Mb/s with a 40 Mb/s reservation (bandwidth vs time)",
        "bandwidth_kbps",
        &series,
    );
    println!(
        "# summary: min {:.0} Kb/s, max {:.0} Kb/s, mean {:.0} Kb/s (paper: sawtooth ~22000-52000)",
        series.min(),
        series.max(),
        series.mean()
    );
    output::write_metrics("fig1", &metrics.metrics_json);
    output::write_timeline("fig1", metrics.timeline_json.as_deref());
}
