//! The §3 anecdote, quantified: a finite-difference application across two
//! 8-host sites averages 1 Mb/s over the WAN, but sends its 100 KB halo as
//! a burst. "If we configure our network to support a premium flow at this
//! rate, we find that things do not perform as we expect."

use mpichgq_bench::{output, sec3_finite_difference, Sec3Cfg, Sec3Qos};
use mpichgq_netsim::DepthRule;

fn main() {
    let fast = output::fast_mode();
    let base = Sec3Cfg {
        iterations: if fast { 15 } else { 30 },
        ..Sec3Cfg::default()
    };
    let cases: Vec<(&str, Sec3Cfg)> = vec![
        ("uncontended best-effort (baseline)", base),
        (
            "contended, no reservation",
            Sec3Cfg {
                contention: true,
                ..base
            },
        ),
        (
            "premium at the 1 Mb/s average rate, bw/40 bucket (the paper's trap)",
            Sec3Cfg {
                contention: true,
                qos: Sec3Qos::Premium {
                    kbps: 1_000.0,
                    depth: DepthRule::Normal,
                    shaped: false,
                },
                ..base
            },
        ),
        (
            "premium 1 Mb/s, LARGE bucket (burst fits)",
            Sec3Cfg {
                contention: true,
                qos: Sec3Qos::Premium {
                    kbps: 1_000.0,
                    depth: DepthRule::Large,
                    shaped: false,
                },
                ..base
            },
        ),
        (
            "premium 1.3 Mb/s + end-system shaping (§5.4)",
            Sec3Cfg {
                contention: true,
                qos: Sec3Qos::Premium {
                    kbps: 1_300.0,
                    depth: DepthRule::Normal,
                    shaped: true,
                },
                ..base
            },
        ),
        (
            "premium 3 Mb/s, bw/40 bucket (over-reserving instead)",
            Sec3Cfg {
                contention: true,
                qos: Sec3Qos::Premium {
                    kbps: 3_000.0,
                    depth: DepthRule::Normal,
                    shaped: false,
                },
                ..base
            },
        ),
    ];
    println!("# §3: finite-difference across two sites; ideal = 1.25 iterations/s (0.8 s compute)");
    println!("configuration,iterations_done,steady_iters_per_sec,fraction_of_ideal");
    for (label, cfg) in cases {
        let out = sec3_finite_difference(cfg);
        println!(
            "\"{label}\",{},{:.3},{:.2}",
            out.iterations_done,
            out.steady_iters_per_sec,
            out.steady_iters_per_sec / out.ideal_iters_per_sec
        );
    }
    println!("# the average-rate reservation with the normal bucket underperforms:");
    println!("# the 100 KB burst exceeds the 1 Mb/s bucket's 3.1 KB depth, so most of");
    println!("# every halo is policed away and TCP slow-starts (paper §3).");
}
