//! Figure 8: "The bandwidth achieved by the visualization application.
//! Contention for the CPU on the sending side begins at 10 seconds, and a
//! reservation is made at 20 seconds."

use mpichgq_bench::{fig8_cpu_reservation_run, output, phase_mean, Fig8Cfg, TRACE_CAPACITY};

fn main() {
    let cfg = Fig8Cfg::default();
    let (series, metrics) = fig8_cpu_reservation_run(cfg, TRACE_CAPACITY);
    output::print_series(
        "Figure 8: visualization bandwidth with CPU contention at 10 s, DSRT reservation at 20 s",
        "bandwidth_kbps",
        &series,
    );
    println!(
        "# phases: clean {:.0} Kb/s | hog {:.0} Kb/s | 90% CPU reservation {:.0} Kb/s (paper: ~15000 | ~8000 | ~15000)",
        phase_mean(&series, 2.0, 10.0),
        phase_mean(&series, 11.0, 20.0),
        phase_mean(&series, 22.0, 30.0),
    );
    output::write_metrics("fig8", &metrics.metrics_json);
    output::write_trace("fig8", &metrics.trace_json);
    output::write_timeline("fig8", metrics.timeline_json.as_deref());
}
