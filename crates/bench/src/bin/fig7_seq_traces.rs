//! Figure 7: "TCP traces of two programs that each send at 400 Kb/s, but
//! with very different burstiness characteristics" — sequence number vs
//! time for 10 frames/s (40 Kb frames) and 1 frame/s (400 Kb frame).

use mpichgq_bench::{fig7_seq_trace_run, output, TRACE_CAPACITY};
use mpichgq_sim::SimTime;

fn main() {
    let window = SimTime::from_secs(1);
    for (label, fps) in [("10fps_40kb_frames", 10.0), ("1fps_400kb_frame", 1.0)] {
        let (trace, metrics) = fig7_seq_trace_run(fps, window, TRACE_CAPACITY);
        output::print_series(
            &format!("Figure 7 ({label}): TCP data-segment sequence numbers over 1 s"),
            "sequence_number",
            &trace,
        );
        // Burstiness summary: fraction of the second during which segments
        // were emitted.
        let times: Vec<f64> = trace
            .points()
            .iter()
            .map(|(t, _)| t.as_secs_f64())
            .collect();
        if times.len() > 1 {
            let span = times.last().unwrap() - times.first().unwrap();
            println!(
                "# {label}: {} segments emitted over {span:.3} s of the window",
                times.len()
            );
        }
        output::write_metrics(&format!("fig7_{label}"), &metrics.metrics_json);
        output::write_trace(&format!("fig7_{label}"), &metrics.trace_json);
        output::write_timeline(&format!("fig7_{label}"), metrics.timeline_json.as_deref());
    }
}
