//! Figure 6: "The effect of different reservations on the visualization
//! application attempting different throughputs. Note that making a
//! reservation that is even a little bit too small dramatically decreases
//! the throughput that is achieved."

use mpichgq_bench::{fig6_sweep, output, viz_run_under_contention_run, Fig6Cfg, TRACE_CAPACITY};
use mpichgq_sim::SimTime;

fn main() {
    let fast = output::fast_mode();
    let frames_kb = [5u32, 10, 20, 30]; // at 10 fps: 400..2400 Kb/s attempted
    let reservations: Vec<f64> = if fast {
        vec![0.0, 400.0, 800.0, 1200.0, 1600.0, 2000.0, 2400.0, 2800.0]
    } else {
        (0..=14).map(|i| i as f64 * 200.0).collect()
    };
    let rows = fig6_sweep(&frames_kb, &reservations, fast);
    output::print_sweep(
        "Figure 6: visualization throughput vs reservation (10 frames/s), under contention",
        "frame_kbytes",
        "reservation_kbps",
        "achieved_kbps",
        &rows,
    );
    for (fk, pts) in &rows {
        let target = fk * 80;
        let knee = pts
            .iter()
            .find(|&&(_, v)| v >= 0.97 * target as f64)
            .map(|&(r, _)| r);
        match knee {
            Some(r) => println!(
                "# {target} Kb/s attempted: adequate at ~{r:.0} Kb/s ({:.2}x)",
                r / target as f64
            ),
            None => println!("# {target} Kb/s attempted: not achieved in the sweep range"),
        }
    }
    // Representative instrumented rerun (20 KB frames, 1600 Kb/s
    // reservation — at the knee) for the metrics snapshot.
    let mut cfg = Fig6Cfg::new(20 * 1000, 10.0, 1600.0);
    if fast {
        cfg.duration = SimTime::from_secs(10);
    }
    let (_, metrics) = viz_run_under_contention_run(cfg, TRACE_CAPACITY);
    output::write_metrics("fig6", &metrics.metrics_json);
    output::write_timeline("fig6", metrics.timeline_json.as_deref());
}
