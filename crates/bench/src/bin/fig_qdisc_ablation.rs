//! Queue-discipline ablation: the Figure-1 premium workload (paced TCP
//! above an undersized reservation, under full contention) re-run across
//! the SP/WFQ/DRR × drop-tail/RED matrix, scored by the SLO layer.
//!
//! Only `GarnetCfg::core_queue` varies between cells, so the goodput and
//! deadline-miss columns isolate what the discipline itself buys: how well
//! each scheduler protects the premium class, and how much RED's early
//! dropping shortens the best-effort queues the ACK path rides through.

use mpichgq_bench::{output, qdisc_ablation_matrix, qdisc_cell_labels, QdiscAblationCfg};

fn main() {
    let cfg = if output::fast_mode() {
        QdiscAblationCfg::fast()
    } else {
        QdiscAblationCfg::default()
    };
    let (cells, metrics) = qdisc_ablation_matrix(cfg);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let (sched, dropper) = qdisc_cell_labels(c.sched, c.red);
            vec![
                sched.to_string(),
                dropper.to_string(),
                format!("{:.0}", c.premium_kbps),
                c.slo_misses.to_string(),
                c.tail_drops.to_string(),
                c.red_early_drops.to_string(),
            ]
        })
        .collect();
    output::print_table(
        "Discipline ablation: premium TCP goodput and SLO misses per scheduler × dropper",
        &[
            "sched",
            "dropper",
            "premium_kbps",
            "slo_misses",
            "tail_drops",
            "red_early",
        ],
        &rows,
    );
    output::write_metrics("qdisc_ablation", &metrics.metrics_json);
    output::write_trace("qdisc_ablation", &metrics.trace_json);
    output::write_timeline("qdisc_ablation", metrics.timeline_json.as_deref());
}
