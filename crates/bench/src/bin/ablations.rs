//! Ablations of the design choices DESIGN.md §4 calls out:
//!
//! 1. edge policing action: drop vs demote;
//! 2. token-bucket depth rules (see also `table1_burstiness`);
//! 3. end-system traffic shaping (§5.4's proposal);
//! 4. TCP era: the burstiness penalty's sensitivity to the minimum RTO;
//! 5. layer-2 framing: where the paper's 1.06× reservation factor comes
//!    from.

use mpichgq_bench::{output, viz_delivery_ratio, Fig6Cfg};
use mpichgq_core::{ip_overhead_factor, wire_overhead_factor, DEFAULT_MSS};
use mpichgq_netsim::{DepthRule, Framing, PolicingAction};
use mpichgq_sim::{SimDelta, SimTime};

fn main() {
    let fast = output::fast_mode();
    let dur = if fast { 15 } else { 30 };

    // --- 1. drop vs demote at an undersized reservation -----------------
    println!("# ablation 1: policing action at an undersized reservation");
    println!("#   (2400 Kb/s attempted, 1600 Kb/s reserved, moderate contention)");
    println!("action,delivery_ratio");
    for (label, action) in [
        ("drop", PolicingAction::Drop),
        ("demote", PolicingAction::Demote),
    ] {
        let mut cfg = Fig6Cfg::new(30_000, 10.0, 1600.0);
        cfg.policing_action = action;
        cfg.contention_bps = 100_000_000;
        cfg.duration = SimTime::from_secs(dur);
        println!("{label},{:.2}", viz_delivery_ratio(cfg));
    }

    // --- 3. end-system shaping vs policing only -------------------------
    println!(
        "# ablation 3: end-system shaping of the 1 fps burst (800 Kb/s target, 1000 Kb/s reserved)"
    );
    println!("shaping,delivery_ratio");
    for (label, shape) in [("off", false), ("on", true)] {
        let mut cfg = Fig6Cfg::new(100_000, 1.0, 1000.0);
        cfg.shape_at_source = shape;
        cfg.duration = SimTime::from_secs(dur);
        println!("{label},{:.2}", viz_delivery_ratio(cfg));
    }

    // --- 4. burstiness penalty vs minimum RTO ---------------------------
    println!("# ablation 4: Table 1 cell (800 Kb/s, 1 fps, normal bucket) vs TCP minimum RTO");
    println!("rto_min_ms,min_reservation_kbps");
    for rto_ms in [200u64, 500, 1000] {
        let min = table1_min_reservation_with_rto(800.0, 1.0, rto_ms, fast);
        println!("{rto_ms},{min:.0}");
    }

    // --- 2b. eager vs rendezvous threshold (a negative result) ----------
    println!("# ablation 2b: MPI eager threshold for the 1 fps burst (800 Kb/s target, 1100 Kb/s reserved)");
    println!("#   NEGATIVE RESULT: the protocol choice does not change the burst the");
    println!("#   policer sees — rendezvous only prepends an RTS/CTS round trip; the");
    println!("#   data still leaves as one TCP-paced burst. Shaping must happen below");
    println!("#   MPI (the token bucket or the globus-io shaper), as the paper argues.");
    println!("eager_limit,delivery_ratio");
    for (label, limit) in [("64k_eager", 64 * 1024u32), ("8k_rendezvous", 8 * 1024)] {
        let mut cfg = Fig6Cfg::new(100_000, 1.0, 1_100.0);
        cfg.eager_limit = limit;
        cfg.duration = SimTime::from_secs(dur);
        println!("{label},{:.2}", viz_delivery_ratio(cfg));
    }

    // --- 5. framing overhead (the 1.06 factor) --------------------------
    println!("# ablation 5: reservation factor per app byte, 100 KB messages, by framing");
    println!("framing,factor");
    println!("ip_only,{:.3}", ip_overhead_factor(100 * 1024, DEFAULT_MSS));
    for (label, f) in [
        ("none", Framing::None),
        ("ethernet", Framing::Ethernet),
        ("atm_aal5", Framing::AtmAal5),
    ] {
        println!(
            "{label},{:.3}",
            wire_overhead_factor(100 * 1024, DEFAULT_MSS, f)
        );
    }
    println!("# the paper's \"around 1.06 of the sending rate\" sits between the");
    println!("# ethernet and ATM figures; ATM cell padding dominates the tax.");
}

/// Table-1 bisection with an explicit minimum RTO.
fn table1_min_reservation_with_rto(target_kbps: f64, fps: f64, rto_ms: u64, fast: bool) -> f64 {
    let frame_bytes = (target_kbps * 1000.0 / 8.0 / fps).round() as u32;
    let achieves = |resv: f64| {
        let mut cfg = Fig6Cfg::new(frame_bytes, fps, resv);
        cfg.depth_rule = DepthRule::Normal;
        cfg.rto_min = SimDelta::from_millis(rto_ms);
        cfg.duration = if fast {
            SimTime::from_secs(30)
        } else {
            SimTime::from_secs(60)
        };
        viz_delivery_ratio(cfg) >= 0.95
    };
    let mut lo = target_kbps * 0.5;
    let mut hi = target_kbps * 4.0;
    if achieves(lo) {
        return lo;
    }
    while !achieves(hi) {
        hi *= 1.5;
        if hi > target_kbps * 10.0 {
            return f64::INFINITY;
        }
    }
    while hi / lo > 1.02 {
        let mid = (lo * hi).sqrt();
        if achieves(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}
