//! Thread-scaling benchmark for the sharded conservative-lookahead engine.
//!
//! Two workloads, one output file (`BENCH_parallel.json`, or the path
//! given as the first CLI argument):
//!
//! * **engine compat** — the exact `transport_multiflow_bulk` workload
//!   from `bench_engine`, run monolithically on the calendar scheduler.
//!   Its events/sec is directly comparable to the committed
//!   `BENCH_engine.json` number; scripts/perf_gate.py enforces the
//!   "single-thread within 5% of the old engine" acceptance bound.
//! * **sharded scaling** — four WAN-separated trunk groups (each a scaled
//!   copy of the multiflow workload) plus cross-group bulk flows, run
//!   through `run_partitioned` at 1, 2, and 4 worker threads. The run's
//!   FNV fingerprint must be bit-identical at every thread count (always
//!   asserted); the ≥2.5x speedup gate at 4 threads is enforced only when
//!   the host actually has ≥4 cores — on smaller hosts the numbers are
//!   still recorded, with the gate marked unenforced in the JSON.
//!
//! Run with: `cargo run --release -p mpichgq-bench --bin bench_parallel`
//! (`--quick` for the CI smoke mode: shorter simulations, one repeat).

use mpichgq_bench::bulk::{edge_link, oc12_trunk, transport_multiflow_bulk, BulkRx, BulkTx};
use mpichgq_netsim::net::TopoBuilder;
use mpichgq_netsim::queue::QueueCfg;
use mpichgq_netsim::{run_partitioned, LinkCfg, Net, NodeId, Partition};
use mpichgq_sim::{SchedulerKind, SimDelta, SimTime};
use mpichgq_tcp::Stack;
use std::time::Instant;

/// Groups in the scaling topology; also the shard count after the WAN cut.
const GROUPS: usize = 4;
/// Intra-group bulk flow pairs.
const LOCAL_FLOWS: usize = 8;
/// Thread counts swept by the scaling workload.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
/// Speedup the 4-thread run must reach over 1 thread (when enforceable).
const SPEEDUP_GATE: f64 = 2.5;

/// Node ids for one group, re-derivable by every shard worker because the
/// topology is rebuilt with identical calls in identical order.
struct Group {
    local: Vec<(NodeId, NodeId)>,
    cross_src: NodeId,
    cross_dst: NodeId,
}

/// The scaling topology: `GROUPS` copies of the multiflow trunk workload
/// (intra-group trunk delay lowered to 2 ms so the group clusters into
/// one shard), joined in a line by 20 ms OC12 WAN links — the lookahead
/// bound. Every call builds the identical topology.
fn scale_topo() -> (TopoBuilder, Vec<Group>) {
    let mut b = TopoBuilder::new(0x5CA1E);
    b.scheduler(SchedulerKind::Calendar);
    let q = QueueCfg::priority_default();
    let intra_trunk = LinkCfg {
        delay: SimDelta::from_millis(2),
        ..oc12_trunk()
    };
    let mut groups = Vec::with_capacity(GROUPS);
    let mut prev_r2: Option<NodeId> = None;
    for g in 0..GROUPS {
        let r1 = b.router(&format!("g{g}-r1"));
        let r2 = b.router(&format!("g{g}-r2"));
        b.link(r1, r2, intra_trunk, q);
        if let Some(p) = prev_r2 {
            b.link(p, r1, oc12_trunk(), q);
        }
        prev_r2 = Some(r2);
        let local = (0..LOCAL_FLOWS)
            .map(|i| {
                let src = b.host(&format!("g{g}-src{i}"));
                let dst = b.host(&format!("g{g}-dst{i}"));
                b.link(src, r1, edge_link(), q);
                b.link(r2, dst, edge_link(), q);
                (src, dst)
            })
            .collect();
        let cross_src = b.host(&format!("g{g}-xsrc"));
        let cross_dst = b.host(&format!("g{g}-xdst"));
        b.link(cross_src, r2, edge_link(), q);
        b.link(cross_dst, r1, edge_link(), q);
        groups.push(Group {
            local,
            cross_src,
            cross_dst,
        });
    }
    (b, groups)
}

/// Build one shard's world: full topology, apps only on owned hosts.
fn build_shard(shard: u32, part: &Partition) -> (Net, Stack) {
    let (b, groups) = scale_topo();
    let mut net = b.build();
    let mut stack = Stack::new();
    let owned = |n: NodeId| part.shard_of(n) == shard;
    for (g, grp) in groups.iter().enumerate() {
        for &(src, dst) in &grp.local {
            if owned(dst) {
                stack.spawn_app(&mut net, dst, Box::new(BulkRx { port: 7000 }));
            }
            if owned(src) {
                stack.spawn_app(
                    &mut net,
                    src,
                    Box::new(BulkTx::new(dst, 7000, u64::MAX / 2)),
                );
            }
        }
        // Cross-group bulk flow: group g -> group g+1, crossing the WAN
        // cut, so SYNs, data, and ACKs all ride the outbox/merge path.
        if g + 1 < groups.len() {
            let dst = groups[g + 1].cross_dst;
            if owned(dst) {
                stack.spawn_app(&mut net, dst, Box::new(BulkRx { port: 7100 }));
            }
            if owned(grp.cross_src) {
                stack.spawn_app(
                    &mut net,
                    grp.cross_src,
                    Box::new(BulkTx::new(dst, 7100, u64::MAX / 2)),
                );
            }
        }
    }
    (net, stack)
}

struct ScalingRun {
    threads: usize,
    events: u64,
    wall_secs: f64,
    fingerprint: u64,
    /// Per-shard metric registries folded in shard order — name-sorted
    /// JSON, so it must be byte-identical at every thread count.
    merged_metrics: String,
    delivered: u64,
}

/// Run the scaling workload once at `threads` workers.
fn run_scaling(part: &Partition, threads: usize, t_end: SimTime) -> ScalingRun {
    let t0 = Instant::now();
    let per_shard = run_partitioned(
        part,
        threads,
        t_end,
        |shard| build_shard(shard, part),
        |_, mut net, _stack| {
            (
                net.events_processed(),
                net.state_fingerprint(),
                std::mem::take(&mut net.obs.metrics),
            )
        },
    );
    let wall_secs = t0.elapsed().as_secs_f64();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut events = 0u64;
    let mut merged = mpichgq_obs::Registry::default();
    for (ev, digest, reg) in &per_shard {
        events += ev;
        for b in digest.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        merged.merge_from(reg);
    }
    ScalingRun {
        threads,
        events,
        wall_secs,
        fingerprint: h,
        delivered: merged.counter_value("net.pkts.delivered").unwrap_or(0),
        merged_metrics: merged.snapshot_json(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let repeats = if quick { 1 } else { 2 };
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // --- Engine compat: the bench_engine workload, monolithic. ----------
    let compat_sim_secs = if quick { 2 } else { 10 };
    eprintln!("[bench_parallel] engine compat ({compat_sim_secs} s simulated) ...");
    let mut compat_events = 0u64;
    let mut compat_best = f64::INFINITY;
    for rep in 0..repeats {
        let t0 = Instant::now();
        let n =
            transport_multiflow_bulk(SchedulerKind::Calendar, SimTime::from_secs(compat_sim_secs));
        let secs = t0.elapsed().as_secs_f64();
        if rep == 0 {
            compat_events = n;
        } else {
            assert_eq!(n, compat_events, "engine compat event count varied");
        }
        compat_best = compat_best.min(secs);
    }
    let compat_eps = compat_events as f64 / compat_best;
    eprintln!("[bench_parallel] engine compat: {compat_eps:.0} ev/s");

    // --- Sharded scaling sweep. ------------------------------------------
    let (topo, _) = scale_topo();
    let part = Partition::by_min_delay(&topo, SimDelta::from_millis(10))
        .expect("scaling topology has a positive-delay WAN cut");
    assert_eq!(part.shards() as usize, GROUPS, "cut must split per group");
    let lookahead = part.lookahead().expect("cross-shard links exist");
    let t_end = SimTime::from_millis(if quick { 500 } else { 2_000 });

    let mut runs: Vec<ScalingRun> = Vec::new();
    for &threads in &THREAD_COUNTS {
        eprintln!("[bench_parallel] scaling at {threads} thread(s) ...");
        let mut best: Option<ScalingRun> = None;
        for _ in 0..repeats {
            let r = run_scaling(&part, threads, t_end);
            if let Some(b) = &best {
                assert_eq!(
                    (r.fingerprint, r.events),
                    (b.fingerprint, b.events),
                    "scaling run varied across repeats at {threads} threads"
                );
            }
            if best.as_ref().is_none_or(|b| r.wall_secs < b.wall_secs) {
                best = Some(r);
            }
        }
        let r = best.unwrap();
        eprintln!(
            "[bench_parallel] scaling at {threads} thread(s): {} events, {:.0} ev/s, fp {:#018x}",
            r.events,
            r.events as f64 / r.wall_secs,
            r.fingerprint
        );
        runs.push(r);
    }

    // Bit-identical across every thread count — the determinism gate. This
    // holds (and is enforced) regardless of how many cores the host has.
    // The merged per-shard metric registry is part of the contract: shard
    // registries folded in shard order must snapshot to identical JSON.
    for r in &runs[1..] {
        assert_eq!(
            (r.fingerprint, r.events),
            (runs[0].fingerprint, runs[0].events),
            "{} threads diverged from 1 thread",
            r.threads
        );
        assert_eq!(
            r.merged_metrics, runs[0].merged_metrics,
            "{} threads: merged metric registry diverged from 1 thread",
            r.threads
        );
    }

    let base = runs[0].wall_secs;
    let speedup_4 = base / runs.last().unwrap().wall_secs;
    let gate_enforced = !quick && host_cores >= 4;
    let gate_reason = if quick {
        "quick mode: timing not gated"
    } else if host_cores < 4 {
        "host has fewer than 4 cores: 4 threads cannot physically speed up"
    } else {
        "full run on a >=4-core host"
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"bench_parallel\",\n");
    json.push_str(
        "  \"note\": \"sharded conservative-lookahead engine: thread-count sweep with \
         bit-identical-fingerprint enforcement; engine_compat is the bench_engine \
         transport_multiflow_bulk workload run monolithically for cross-file comparison\",\n",
    );
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str("  \"engine_compat\": {\n");
    json.push_str("    \"name\": \"transport_multiflow_bulk\",\n");
    json.push_str(&format!("    \"sim_secs\": {compat_sim_secs},\n"));
    json.push_str(&format!(
        "    \"calendar\": {{\"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}}}\n",
        compat_events, compat_best, compat_eps
    ));
    json.push_str("  },\n");
    json.push_str("  \"scaling\": {\n");
    json.push_str("    \"name\": \"sharded_multiflow_4x\",\n");
    json.push_str(&format!(
        "    \"description\": \"{GROUPS} WAN-separated trunk groups, {LOCAL_FLOWS} bulk flows \
         each plus cross-group flows, {} ms simulated\",\n",
        t_end.as_nanos() / 1_000_000
    ));
    json.push_str(&format!("    \"shards\": {},\n", part.shards()));
    json.push_str(&format!(
        "    \"lookahead_ms\": {},\n",
        lookahead.as_nanos() / 1_000_000
    ));
    json.push_str(&format!(
        "    \"fingerprint\": \"{:#018x}\",\n",
        runs[0].fingerprint
    ));
    json.push_str(&format!("    \"pkts_delivered\": {},\n", runs[0].delivered));
    json.push_str("    \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"threads\": {}, \"events\": {}, \"wall_secs\": {:.6}, \
             \"events_per_sec\": {:.1}, \"speedup_over_1_thread\": {:.3}}}{}\n",
            r.threads,
            r.events,
            r.wall_secs,
            r.events as f64 / r.wall_secs,
            base / r.wall_secs,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"speedup_gate\": {{\"threshold\": {SPEEDUP_GATE}, \"enforced\": {gate_enforced}, \
         \"reason\": \"{gate_reason}\"}}\n"
    ));
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("{json}");
    println!("4-thread speedup: {speedup_4:.3}x (gate {SPEEDUP_GATE}x, {gate_reason})");

    if gate_enforced {
        assert!(
            speedup_4 >= SPEEDUP_GATE,
            "4-thread speedup {speedup_4:.3}x below the {SPEEDUP_GATE}x gate"
        );
    }
}
