//! Chaos experiment: the Figure-9 combined workload under a scripted
//! fault plan — injected GARA rejections, a trunk outage with a loss
//! burst on recovery, two reservation revocations, and a CPU-throttle
//! window — with the QoS agent's adaptation loop doing the recovering.
//!
//! The printed series shows the staircase: premium grant after backoff
//! retries, a dip at the outage, a smaller premium step after
//! renegotiation, a best-effort trough while degraded, and full recovery
//! once capacity clears.

use mpichgq_bench::{chaos_run, output, phase_mean, ChaosCfg, TRACE_CAPACITY};

fn main() {
    let cfg = if output::fast_mode() {
        ChaosCfg::fast()
    } else {
        ChaosCfg::default()
    };
    let (series, metrics, outcome) = chaos_run(cfg, TRACE_CAPACITY);
    output::print_series(
        "Chaos: 35 Mb/s visualization under fault injection with an adaptive QoS agent",
        "bandwidth_kbps",
        &series,
    );
    let (pre_lo, pre_hi) = cfg.pre_fault_window();
    let (deg_lo, deg_hi) = cfg.degraded_window();
    let (rec_lo, rec_hi) = cfg.recovery_window();
    println!(
        "# phases: pre-fault {:.0} | degraded {:.0} | recovered {:.0} Kb/s",
        phase_mean(&series, pre_lo, pre_hi),
        phase_mean(&series, deg_lo, deg_hi),
        phase_mean(&series, rec_lo, rec_hi),
    );
    println!(
        "# adaptation: {} requests, {} rejects, {} retries, {} grants, \
         {} revocations seen, {} renegotiations, {} degrades, {} probes, {} recoveries",
        outcome.requests,
        outcome.rejects,
        outcome.retries,
        outcome.grants,
        outcome.revocations_seen,
        outcome.renegotiations,
        outcome.degrades,
        outcome.probes,
        outcome.recoveries,
    );
    println!(
        "# faults: {} link-down drops, {} loss drops, {} corrupt drops, {} downs, {} ups; final state {:?}",
        outcome.faults.drops_link_down,
        outcome.faults.drops_loss,
        outcome.faults.drops_corrupt,
        outcome.faults.link_downs,
        outcome.faults.link_ups,
        outcome.final_state,
    );
    output::write_metrics("chaos", &metrics.metrics_json);
    output::write_trace("chaos", &metrics.trace_json);
    output::write_timeline("chaos", metrics.timeline_json.as_deref());
}
