//! Events-per-second benchmark for the two event-scheduler backends.
//!
//! Runs five workloads — a pure engine churn loop, the ping-pong transport
//! workload (the headline comparison), the same ping-pong with the
//! flight recorder and timeline sampler armed (a non-gated
//! instrumentation-overhead probe), a many-flow bulk TCP simulation,
//! and the Figure 1 sawtooth — under both
//! [`SchedulerKind::Heap`] and [`SchedulerKind::Calendar`], and writes
//! `BENCH_engine.json` at the repository root (or to the path given as the
//! first CLI argument).
//!
//! For every simulation workload the processed-event counts must match
//! exactly between backends (the schedulers are observably equivalent);
//! the binary asserts this, so it doubles as a determinism smoke test.
//!
//! Run with: `cargo run --release -p mpichgq-bench --bin bench_engine`

use mpichgq_bench::bulk::transport_multiflow_bulk;
use mpichgq_bench::{
    fig1_tcp_sawtooth_counted, fig5_pingpong_point_counted, fig5_pingpong_point_sampled_counted,
    Fig1Cfg, Fig5Cfg,
};
use mpichgq_sim::{Engine, SchedulerKind, SimDelta, SimRng, SimTime};
use std::time::Instant;

/// Wall-clock repeats per (workload, backend); best run is reported so
/// one-off scheduling hiccups don't skew the ratio.
const REPEATS: usize = 3;

struct Measurement {
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
}

struct WorkloadResult {
    name: &'static str,
    description: &'static str,
    /// Whether `scripts/perf_gate.py` should compare this workload against
    /// the committed baseline. The instrumentation-overhead entry is
    /// informative only, so it reports `false`.
    perf_gated: bool,
    heap: Measurement,
    calendar: Measurement,
}

impl WorkloadResult {
    fn speedup(&self) -> f64 {
        self.calendar.events_per_sec / self.heap.events_per_sec
    }
}

/// Run `f` `repeats` times and keep the fastest wall-clock run; every
/// repeat must process the same number of events (determinism check).
fn measure(repeats: usize, f: impl Fn() -> u64) -> Measurement {
    let mut best_secs = f64::INFINITY;
    let mut events = 0u64;
    for rep in 0..repeats {
        let t0 = Instant::now();
        let n = f();
        let secs = t0.elapsed().as_secs_f64();
        if rep == 0 {
            events = n;
        } else {
            assert_eq!(n, events, "event count varied across repeats");
        }
        best_secs = best_secs.min(secs);
    }
    Measurement {
        events,
        wall_secs: best_secs,
        events_per_sec: events as f64 / best_secs,
    }
}

fn run_workload(
    repeats: usize,
    name: &'static str,
    description: &'static str,
    perf_gated: bool,
    f: impl Fn(SchedulerKind) -> u64,
) -> WorkloadResult {
    eprintln!("[bench_engine] {name}: heap ...");
    let heap = measure(repeats, || f(SchedulerKind::Heap));
    eprintln!(
        "[bench_engine] {name}: heap {:.0} ev/s; calendar ...",
        heap.events_per_sec
    );
    let calendar = measure(repeats, || f(SchedulerKind::Calendar));
    eprintln!(
        "[bench_engine] {name}: calendar {:.0} ev/s ({:.2}x)",
        calendar.events_per_sec,
        calendar.events_per_sec / heap.events_per_sec
    );
    assert_eq!(
        heap.events, calendar.events,
        "{name}: backends disagreed on processed-event count"
    );
    WorkloadResult {
        name,
        description,
        perf_gated,
        heap,
        calendar,
    }
}

/// Pure scheduler churn: hold a standing population of pending events and
/// repeatedly pop-then-reschedule with pseudorandom inter-event gaps.
/// Measures the engine alone, with no per-event simulation work diluting
/// the comparison.
fn engine_churn(kind: SchedulerKind, quick: bool) -> u64 {
    let population: usize = if quick { 50_000 } else { 100_000 };
    let ops: usize = if quick { 500_000 } else { 2_000_000 };
    let mut eng: Engine<u64> = Engine::with_scheduler(kind);
    let mut rng = SimRng::new(0xBEEF);
    for i in 0..population {
        // Gaps from 1 ns to ~1 ms, with frequent exact ties.
        let gap = rng.next_u64() % 1_000_000 + 1;
        eng.schedule(SimTime::from_nanos(gap), i as u64);
    }
    for _ in 0..ops {
        let (at, _payload) = eng.pop().expect("population never drains");
        let gap = rng.next_u64() % 1_000_000 + 1;
        eng.schedule(at + SimDelta::from_nanos(gap), 0);
    }
    eng.processed()
}

fn fig1_sawtooth(kind: SchedulerKind) -> u64 {
    let cfg = Fig1Cfg {
        duration: SimTime::from_secs(20),
        scheduler: kind,
        ..Fig1Cfg::default()
    };
    fig1_tcp_sawtooth_counted(cfg).1
}

/// The headline comparison: the paper's ping-pong transport workload (one
/// Figure 5 point) — MPI ping-pong over TCP across GARNET with contending
/// traffic on both trunk directions and a premium reservation.
fn transport_pingpong(kind: SchedulerKind, quick: bool) -> u64 {
    let mut cfg = Fig5Cfg::new(40 * 1000 / 8, 6000.0);
    cfg.scheduler = kind;
    if quick {
        cfg.duration = SimTime::from_secs(8);
        cfg.warmup = SimTime::from_secs(3);
    }
    fig5_pingpong_point_counted(cfg).1
}

/// [`transport_pingpong`] with the flight recorder and the timeline
/// sampler armed at the figure-run defaults. The events/sec delta against
/// the unsampled `transport_pingpong` entry is the cost of observability;
/// the entry is labeled `perf_gated: false` so it is never compared
/// against the committed baseline.
fn transport_pingpong_sampled(kind: SchedulerKind, quick: bool) -> u64 {
    let mut cfg = Fig5Cfg::new(40 * 1000 / 8, 6000.0);
    cfg.scheduler = kind;
    if quick {
        cfg.duration = SimTime::from_secs(8);
        cfg.warmup = SimTime::from_secs(3);
    }
    fig5_pingpong_point_sampled_counted(cfg).1
}

fn json_measurement(m: &Measurement) -> String {
    format!(
        "{{\"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}}}",
        m.events, m.wall_secs, m.events_per_sec
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--quick` is the CI perf-smoke mode: fewer repeats, smaller churn
    // loop, shorter ping-pong, and the two slowest workloads skipped. The
    // events/sec rates stay comparable to the full run (same per-event
    // work), which is what scripts/perf_gate.py compares.
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let repeats = if quick { 2 } else { REPEATS };

    let mut results = vec![
        run_workload(
            repeats,
            "engine_churn",
            "pure Engine pop+reschedule loop, 100k standing events, 2M ops",
            true,
            move |k| engine_churn(k, quick),
        ),
        run_workload(
            repeats,
            "transport_pingpong",
            "MPI ping-pong over TCP on GARNET (40 Kb msg, 6 Mb/s reservation) with bidirectional contention — the Figure 5 transport workload",
            true,
            move |k| transport_pingpong(k, quick),
        ),
        run_workload(
            repeats,
            "transport_pingpong_sampled",
            "transport_pingpong with the flight recorder and the 100 ms timeline sampler armed — instrumentation-overhead probe, informative only (not perf-gated)",
            false,
            move |k| transport_pingpong_sampled(k, quick),
        ),
    ];
    if !quick {
        results.push(run_workload(
            repeats,
            "transport_multiflow_bulk",
            "32 bulk TCP flows over a shared OC12 trunk (20 ms), 10 s simulated",
            true,
            |k| transport_multiflow_bulk(k, SimTime::from_secs(10)),
        ));
        results.push(run_workload(
            repeats,
            "fig1_sawtooth",
            "Figure 1 premium-vs-competitive sawtooth on GARNET, 20 s simulated",
            true,
            fig1_sawtooth,
        ));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"bench_engine\",\n");
    json.push_str(
        "  \"note\": \"events/sec per scheduler backend; best of N runs; release build; \
         event counts asserted identical across backends\",\n",
    );
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, w) in results.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        json.push_str(&format!("      \"description\": \"{}\",\n", w.description));
        json.push_str(&format!("      \"perf_gated\": {},\n", w.perf_gated));
        json.push_str(&format!("      \"heap\": {},\n", json_measurement(&w.heap)));
        json.push_str(&format!(
            "      \"calendar\": {},\n",
            json_measurement(&w.calendar)
        ));
        json.push_str(&format!(
            "      \"speedup_calendar_over_heap\": {:.3}\n",
            w.speedup()
        ));
        json.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    println!("{json}");
    let transport = results
        .iter()
        .find(|w| w.name == "transport_pingpong")
        .unwrap();
    println!(
        "transport_pingpong speedup (calendar/heap): {:.3}x (gate: >= 1.3x, full mode)",
        transport.speedup()
    );
    // The speedup gate needs the full-length workload; quick runs are
    // compared against the committed baseline by scripts/perf_gate.py
    // instead, which has its own noise tolerance.
    if !quick {
        assert!(
            transport.speedup() >= 1.3,
            "ping-pong transport workload below the 1.3x events/sec gate"
        );
    }
}
