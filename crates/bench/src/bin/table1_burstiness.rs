//! Table 1: "The reservation required to achieve a specified throughput,
//! for varying degrees of 'burstiness' (expressed in frames per second)
//! and token bucket sizes."

use mpichgq_bench::{output, table1};

fn main() {
    let fast = output::fast_mode();
    let rows = table1(&[400.0, 800.0, 1600.0, 2400.0], 0.95, fast);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.target_kbps),
                format!("{:.0}", r.fps10_normal),
                format!("{:.0}", r.fps1_normal),
                format!("{:.0}", r.fps1_large),
            ]
        })
        .collect();
    output::print_table(
        "Table 1: reservation (Kb/s) required for a target bandwidth",
        &[
            "bandwidth_desired",
            "normal_bucket_10fps",
            "normal_bucket_1fps",
            "large_bucket_1fps",
        ],
        &table,
    );
    println!("# paper:           400 -> 500 / 750 / 500");
    println!("# paper:           800 -> 900 / 1450 / 900");
    println!("# paper:          1600 -> 1700 / 2700 / 1700");
    println!("# paper:          2400 -> 2500 / 3600 / 2500");
    for r in &rows {
        println!(
            "# {:.0}: burstiness penalty {:.0}% (paper ~50%), eliminated by large bucket: {}",
            r.target_kbps,
            (r.fps1_normal / r.fps10_normal - 1.0) * 100.0,
            r.fps1_large <= r.fps10_normal * 1.1
        );
    }
}
