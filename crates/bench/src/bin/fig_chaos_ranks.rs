//! Chaos-ranks experiment: rolling rank failures (HostCrash/HostRestart)
//! plus one correlated two-host outage, under the paper's best-effort
//! contention, while every premium streamer pair holds a GARA
//! reservation and a delivery deadline.
//!
//! Crashed ranks respawn from their checkpoints and resume the stream;
//! the adaptive pair's reservation is released on crash and re-reserved
//! on restart. The printed scorecard shows per-pair frame progress and
//! SLO conformance — the acceptance bar is ≥90% of surviving premium
//! pairs meeting their SLO through the whole plan.

use mpichgq_bench::{chaos_ranks_run, output, ChaosRanksCfg, TRACE_CAPACITY};

fn main() {
    let cfg = if output::fast_mode() {
        ChaosRanksCfg::fast()
    } else {
        ChaosRanksCfg::default()
    };
    let (metrics, out) = chaos_ranks_run(cfg, TRACE_CAPACITY);

    let rows: Vec<Vec<String>> = out
        .scores
        .iter()
        .map(|s| {
            vec![
                s.pair.to_string(),
                s.frames.to_string(),
                s.delivered.to_string(),
                s.misses.to_string(),
                if s.slo_met { "met" } else { "MISSED" }.to_string(),
                if s.crashed { "yes" } else { "-" }.to_string(),
                format!("{}/{}", s.sender_epoch, s.receiver_epoch),
            ]
        })
        .collect();
    output::print_table(
        "Chaos ranks: premium streamer pairs under rolling rank failures",
        &[
            "pair",
            "frames",
            "delivered",
            "misses",
            "slo",
            "crashed",
            "epochs",
        ],
        &rows,
    );
    println!(
        "# slo: {}/{} surviving premium pairs met their deadline budget ({:.0}%)",
        out.pairs_meeting_slo,
        out.scores.len(),
        out.slo_fraction * 100.0,
    );
    println!(
        "# faults: {} host crashes, {} host restarts, {} host-down drops, {} dead deliveries",
        out.faults.host_crashes,
        out.faults.host_restarts,
        out.faults.drops_host_down,
        out.faults.dead_deliveries,
    );
    println!(
        "# recovery: {} checkpoints, {} failed requests, {} unexpected drops, \
         unexpected depth {:.0}; agent {} crash releases, {} restart re-reserves, {} grants",
        out.checkpoints,
        out.reqs_failed,
        out.unexpected_dropped,
        out.unexpected_depth,
        out.crash_releases,
        out.restart_rereserves,
        out.grants,
    );
    output::write_metrics("chaos_ranks", &metrics.metrics_json);
    output::write_trace("chaos_ranks", &metrics.trace_json);
    output::write_timeline("chaos_ranks", metrics.timeline_json.as_deref());
}
