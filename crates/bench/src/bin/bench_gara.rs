//! GARA control-plane benchmark: broker reserve/modify/cancel/revoke
//! churn on a managed topology, plus direct slot-table admission at
//! several standing table sizes (the interval tree's O(log n) claim,
//! measured).
//!
//! The broker workload reuses qcheck's GARA script generator
//! ([`mpichgq_qcheck::draw_gara_op`]) as a seeded load generator: many
//! tenants issuing the same reserve-heavy op mix the scenario fuzzer
//! schedules, driven straight at the `Gara` service (no packet traffic —
//! this benchmarks the control plane, not the data plane). The table
//! workloads bypass the broker and hammer one [`SlotTable`] directly —
//! single admits, all-or-nothing batches, resizes, and a compaction
//! pass — at standing populations from thousands to hundreds of
//! thousands of slots.
//!
//! Outputs:
//! - `BENCH_gara.json` (or the path given as the first CLI argument):
//!   per-workload `reservations_per_sec` and `admission_p99_us`, gated
//!   in CI by `scripts/perf_gate.py` against the committed baseline;
//! - `results/gara/metrics.json`: the full registry snapshot — grant /
//!   reject / modify / revoke lifecycle counters, the per-reason
//!   `gara.rejects.*` breakdown, and per-workload admission-latency
//!   histograms — validated by `scripts/check_metrics.py`.
//!
//! Run with: `cargo run --release -p mpichgq-bench --bin bench_gara`
//! (`--quick` for the CI smoke mode: same topology and op mix, fewer
//! ops and the largest table skipped, so rates stay comparable).

use mpichgq_bench::output::write_metrics;
use mpichgq_gara::{Gara, NetworkRequest, Request, ResvId, SlotTable, StartSpec};
use mpichgq_netsim::{DepthRule, LinkCfg, Net, NodeId, PolicingAction, QueueCfg, TopoBuilder};
use mpichgq_obs::Histogram;
use mpichgq_qcheck::{draw_gara_op, GaraOp};
use mpichgq_sim::{SimDelta, SimRng, SimTime};
use std::time::Instant;

/// Counters pre-registered so every schema-required key appears in the
/// snapshot even when its count is zero (the registry prints every
/// registered counter; unregistered ones would just be absent).
const LIFECYCLE_COUNTERS: &[&str] = &[
    "gara.reservations_granted",
    "gara.reservations_rejected",
    "gara.modifies",
    "gara.modifies_rejected",
    "gara.cancels",
    "gara.revocations",
    "gara.injected_rejections",
    "gara.rejects.over_capacity",
    "gara.rejects.unknown_slot",
    "gara.rejects.no_route",
    "gara.rejects.unknown_server",
    "gara.rejects.invalid",
    "gara.rejects.injected",
];

struct WorkloadOut {
    name: String,
    description: String,
    /// Admissions attempted (reserve calls or direct table admits).
    admissions: u64,
    /// All operations issued, admissions included.
    ops: u64,
    wall_secs: f64,
    reservations_per_sec: f64,
    admission_p99_us: f64,
    extra: Vec<(&'static str, u64)>,
}

/// Broker churn: a line of core routers with hosts hanging off it, GARA
/// managing 70% of every core trunk, and one long op schedule drawn from
/// the qcheck generator applied tenant-by-tenant. Grants install real
/// enforcement (policer rules at edge routers), so this measures the
/// whole broker path, not just the slot tables.
fn broker_churn(seed: u64, n_ops: u64, net_out: &mut Option<Net>) -> WorkloadOut {
    const ROUTERS: usize = 8;
    const HOSTS: usize = 16;
    let mut b = TopoBuilder::new(seed);
    let routers: Vec<NodeId> = (0..ROUTERS).map(|i| b.router(&format!("r{i}"))).collect();
    for i in 1..ROUTERS {
        b.link(
            routers[i - 1],
            routers[i],
            LinkCfg::atm_vc(40_000_000, SimDelta::from_micros(1_000)),
            QueueCfg::priority_default(),
        );
    }
    let hosts: Vec<NodeId> = (0..HOSTS)
        .map(|i| {
            let h = b.host(&format!("h{i}"));
            let r = routers[i % ROUTERS];
            b.link(
                h,
                r,
                LinkCfg::fast_ethernet(SimDelta::from_micros(50)),
                QueueCfg::priority_default(),
            );
            h
        })
        .collect();
    let mut net = b.build();
    let mut gara = Gara::new();
    gara.manage_core_links(&net, 0.7);
    for name in LIFECYCLE_COUNTERS {
        net.obs.metrics.counter(name);
    }

    let mut rng = SimRng::new(seed).fork_labeled("gara");
    let mut granted: Vec<ResvId> = Vec::new();
    let mut hist = Histogram::new();
    let t0 = Instant::now();
    let mut admissions = 0u64;
    for _ in 0..n_ops {
        match draw_gara_op(&mut rng, &hosts, 1_000) {
            GaraOp::Reserve {
                src,
                dst,
                proto,
                rate_bps,
                duration_ms,
                shape,
            } => {
                let req = Request::Network(NetworkRequest {
                    src,
                    dst,
                    proto,
                    src_port: None,
                    dst_port: None,
                    rate_bps,
                    depth: DepthRule::Normal,
                    action: PolicingAction::Drop,
                    shape_at_source: shape,
                });
                let dur = duration_ms.map(SimDelta::from_millis);
                let t = Instant::now();
                let res = gara.reserve(&mut net, req, StartSpec::Now, dur);
                hist.observe(t.elapsed().as_nanos() as u64);
                admissions += 1;
                if let Ok(id) = res {
                    granted.push(id);
                }
            }
            GaraOp::Modify { victim, rate_bps } => {
                if !granted.is_empty() {
                    let id = granted[(victim as usize) % granted.len()];
                    let _ = gara.modify_network_rate(&mut net, id, rate_bps);
                }
            }
            GaraOp::Cancel { victim } => {
                if !granted.is_empty() {
                    let id = granted[(victim as usize) % granted.len()];
                    gara.cancel(&mut net, id);
                }
            }
            GaraOp::Revoke { victim } => {
                if !granted.is_empty() {
                    let id = granted[(victim as usize) % granted.len()];
                    gara.revoke(&mut net, id);
                }
            }
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let p99 = hist.quantile(0.99).unwrap_or(0) as f64 / 1_000.0;
    net.obs.metrics.record_hist("gara.admission_ns", &hist);
    let c = |name: &str| net.obs.metrics.counter_value(name).unwrap_or(0);
    let extra = vec![
        ("granted", c("gara.reservations_granted")),
        ("rejected", c("gara.reservations_rejected")),
        ("modified", c("gara.modifies")),
        ("modify_rejected", c("gara.modifies_rejected")),
        ("cancelled", c("gara.cancels")),
        ("revoked", c("gara.revocations")),
    ];
    *net_out = Some(net);
    WorkloadOut {
        name: "broker_churn".into(),
        description: format!(
            "qcheck GARA op mix against the full broker on a {ROUTERS}-router line \
             ({HOSTS} hosts, 70% of each 40 Mb/s trunk managed), enforcement installed \
             per grant"
        ),
        admissions,
        ops: n_ops,
        wall_secs,
        reservations_per_sec: admissions as f64 / wall_secs,
        admission_p99_us: p99,
        extra,
    }
}

/// Direct slot-table churn at a fixed standing population: every round
/// admits a fresh slot and frees a random standing one (size stays
/// constant), with periodic resizes, all-or-nothing batches of 8
/// co-reservations, and a final same-tenant compaction pass.
fn table_churn(seed: u64, standing: u64, churn_ops: u64) -> (WorkloadOut, Histogram) {
    const HORIZON_NS: u64 = 86_400_000_000_000; // one simulated day
    let mut st = SlotTable::new(u64::MAX / 4); // capacity out of the way: measure the tree
    let mut rng = SimRng::new(seed).fork_labeled("table");
    let draw_window = |rng: &mut SimRng| {
        let start = rng.below(HORIZON_NS);
        let len = rng.range(1_000_000, HORIZON_NS / 100);
        (
            SimTime::from_nanos(start),
            SimTime::from_nanos(start.saturating_add(len).min(HORIZON_NS + len)),
        )
    };
    // Standing population: three quarters scattered windows, one quarter
    // laid down as chains of four contiguous equal-amount segments — the
    // shape a tenant renewing an advance reservation leaves behind, and
    // what the compaction pass at the end is for.
    let mut ids = Vec::with_capacity(standing as usize);
    let n_tenants = (standing / 8).max(1);
    while (ids.len() as u64) < standing {
        let tenant = rng.below(n_tenants);
        if rng.chance(0.25) {
            let (s, e) = draw_window(&mut rng);
            let seg = SimDelta::from_nanos((e.as_nanos() - s.as_nanos()).max(4) / 4);
            let amount = rng.range(1, 1_000);
            let mut at = s;
            for _ in 0..4 {
                ids.push(
                    st.try_insert_tenant(at, at + seg, amount, tenant)
                        .expect("capacity is effectively unbounded"),
                );
                at += seg;
            }
        } else {
            let (s, e) = draw_window(&mut rng);
            let amount = rng.range(1, 1_000);
            ids.push(
                st.try_insert_tenant(s, e, amount, tenant)
                    .expect("capacity is effectively unbounded"),
            );
        }
    }

    let mut hist = Histogram::new();
    let mut admissions = 0u64;
    let mut ops = 0u64;
    let t0 = Instant::now();
    for round in 0..churn_ops {
        match round % 8 {
            // Mostly: admit and free in equal measure (population stays
            // ~standing). A quarter of the admits are renewal chains —
            // four contiguous equal segments — keeping compactable runs
            // present at every table size even under heavy turnover.
            0..=5 => {
                let tenant = rng.below(n_tenants);
                let inserts = if rng.chance(0.25) {
                    let (s, e) = draw_window(&mut rng);
                    let seg = SimDelta::from_nanos((e.as_nanos() - s.as_nanos()).max(4) / 4);
                    let amount = rng.range(1, 1_000);
                    let mut at = s;
                    for _ in 0..4 {
                        let t = Instant::now();
                        let id = st.try_insert_tenant(at, at + seg, amount, tenant);
                        hist.observe(t.elapsed().as_nanos() as u64);
                        ids.push(id.expect("capacity is effectively unbounded"));
                        at += seg;
                    }
                    4
                } else {
                    let (s, e) = draw_window(&mut rng);
                    let amount = rng.range(1, 1_000);
                    let t = Instant::now();
                    let id = st.try_insert_tenant(s, e, amount, tenant);
                    hist.observe(t.elapsed().as_nanos() as u64);
                    ids.push(id.expect("capacity is effectively unbounded"));
                    1
                };
                admissions += inserts;
                for _ in 0..inserts {
                    let victim = rng.below(ids.len() as u64) as usize;
                    let id = ids.swap_remove(victim);
                    st.remove(id);
                }
                ops += 2 * inserts;
            }
            // Resize a standing slot in place.
            6 => {
                let victim = ids[rng.below(ids.len() as u64) as usize];
                let _ = st.try_resize(victim, rng.range(1, 1_000));
                ops += 1;
            }
            // A batch of 8 co-reservations, admitted all-or-nothing in
            // one tree pass, then freed.
            _ => {
                let batch: Vec<(SimTime, SimTime, u64)> = (0..8)
                    .map(|_| {
                        let (s, e) = draw_window(&mut rng);
                        (s, e, rng.range(1, 1_000))
                    })
                    .collect();
                let t = Instant::now();
                let got = st.try_insert_batch(&batch);
                hist.observe(t.elapsed().as_nanos() as u64);
                admissions += 8;
                for id in got.expect("capacity is effectively unbounded") {
                    st.remove(id);
                }
                ops += 9;
            }
        }
    }
    let churn_secs = t0.elapsed().as_secs_f64();

    // Compaction: merge adjacent same-amount slots per tenant — the
    // standing population is tenant-tagged, so chains exist whenever a
    // tenant drew back-to-back windows with equal amounts.
    let before = st.len() as u64;
    let tc = Instant::now();
    let merges = st.compact().len() as u64;
    let compact_secs = tc.elapsed().as_secs_f64();
    assert_eq!(before - merges, st.len() as u64, "compact merge accounting");

    let wall_secs = churn_secs + compact_secs;
    let p99 = hist.quantile(0.99).unwrap_or(0) as f64 / 1_000.0;
    let out = WorkloadOut {
        name: format!("table_{standing}"),
        description: format!(
            "direct SlotTable churn at a standing population of {standing} slots: \
             admit+free rounds, resizes, batches of 8, one compaction pass"
        ),
        admissions,
        ops,
        wall_secs,
        reservations_per_sec: admissions as f64 / churn_secs,
        admission_p99_us: p99,
        extra: vec![
            ("standing_slots", standing),
            ("boundary_nodes", st.boundary_count() as u64),
            ("compact_merges", merges),
            ("compact_us", (compact_secs * 1e6) as u64),
        ],
    };
    (out, hist)
}

fn json_workload(w: &WorkloadOut) -> String {
    let mut s = String::new();
    s.push_str("    {\n");
    s.push_str(&format!("      \"name\": \"{}\",\n", w.name));
    s.push_str(&format!("      \"description\": \"{}\",\n", w.description));
    s.push_str(&format!("      \"admissions\": {},\n", w.admissions));
    s.push_str(&format!("      \"ops\": {},\n", w.ops));
    s.push_str(&format!("      \"wall_secs\": {:.6},\n", w.wall_secs));
    s.push_str(&format!(
        "      \"reservations_per_sec\": {:.1},\n",
        w.reservations_per_sec
    ));
    s.push_str(&format!(
        "      \"admission_p99_us\": {:.3},\n",
        w.admission_p99_us
    ));
    s.push_str("      \"counts\": {");
    for (i, (k, v)) in w.extra.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{k}\": {v}"));
    }
    s.push_str("}\n    }");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--quick` is the CI smoke mode: identical topology and op mix with
    // fewer ops, and the largest standing table skipped. Rates stay
    // comparable (same per-op work at each size), which is what
    // scripts/perf_gate.py compares against the committed baseline.
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_gara.json".to_string());
    let seed = 0x6A7A;

    let broker_ops: u64 = if quick { 40_000 } else { 400_000 };
    let table_sizes: &[u64] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let churn_per_size: u64 = if quick { 30_000 } else { 200_000 };
    // Best of N identical runs per workload, as bench_engine does: a
    // deterministic op stream repeated, keeping the fastest wall clock so
    // one-off scheduling hiccups and cold caches don't skew the gate.
    let repeats = if quick { 2 } else { 3 };
    let best = |mut runs: Vec<(WorkloadOut, Option<Net>, Histogram)>| {
        let mut best = runs.pop().expect("at least one repeat");
        for r in runs {
            assert_eq!(
                r.0.admissions, best.0.admissions,
                "admission count varied across repeats"
            );
            if r.0.reservations_per_sec > best.0.reservations_per_sec {
                best = r;
            }
        }
        best
    };

    eprintln!("[bench_gara] broker_churn: {broker_ops} ops x{repeats} ...");
    let (broker, net, _) = best(
        (0..repeats)
            .map(|_| {
                let mut net = None;
                let w = broker_churn(seed, broker_ops, &mut net);
                (w, net, Histogram::new())
            })
            .collect(),
    );
    let mut net = net.expect("broker workload yields its net");
    eprintln!(
        "[bench_gara] broker_churn: {:.0} reservations/s, p99 {:.1} us",
        broker.reservations_per_sec, broker.admission_p99_us
    );

    let mut results = vec![broker];
    for &size in table_sizes {
        eprintln!("[bench_gara] table_{size}: {churn_per_size} churn rounds x{repeats} ...");
        let (w, _, hist) = best(
            (0..repeats)
                .map(|_| {
                    let (w, hist) = table_churn(seed, size, churn_per_size);
                    (w, None, hist)
                })
                .collect(),
        );
        eprintln!(
            "[bench_gara] table_{size}: {:.0} admissions/s, p99 {:.1} us",
            w.reservations_per_sec, w.admission_p99_us
        );
        net.obs
            .metrics
            .record_hist(&format!("gara.table_{size}.admission_ns"), &hist);
        results.push(w);
    }

    // results/gara/metrics.json: the broker net's registry carries the
    // lifecycle counters, per-reason reject breakdown, and every
    // workload's admission histogram.
    let metrics = net.metrics_json();
    write_metrics("gara", &metrics);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"bench_gara\",\n");
    json.push_str(
        "  \"note\": \"GARA control-plane throughput; admissions/sec and p99 admit \
         latency per workload; release build\",\n",
    );
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, w) in results.iter().enumerate() {
        json.push_str(&json_workload(w));
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("{json}");
}
