//! Figure 4: the GARNET testbed model — topology inventory.

use mpichgq_netsim::{Garnet, GarnetCfg, NodeKind};

fn main() {
    let g = Garnet::build(GarnetCfg::default());
    println!("# Figure 4: GARNET testbed model");
    for i in 0..g.net.node_count() {
        let id = mpichgq_netsim::NodeId(i as u32);
        let n = g.net.node(id);
        let kind = match n.kind {
            NodeKind::Host => "host",
            NodeKind::Router => "router",
        };
        println!("{id}: {kind} {}", n.name);
    }
    println!("# channels (directed):");
    for c in g.net.chan_ids() {
        let ch = g.net.chan(c);
        println!(
            "{} -> {}: {} Mb/s, {:.3} ms, {:?}{}",
            ch.from,
            ch.to,
            ch.cfg.bandwidth_bps / 1_000_000,
            ch.cfg.delay.as_secs_f64() * 1e3,
            ch.cfg.framing,
            if ch.edge_ingress {
                " [edge ingress]"
            } else {
                ""
            }
        );
    }
    let d = g.net.path_delay(g.premium_src, g.premium_dst).unwrap();
    println!(
        "# premium path one-way propagation delay: {:.3} ms",
        d.as_secs_f64() * 1e3
    );
}
