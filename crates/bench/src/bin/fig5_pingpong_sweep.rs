//! Figure 5: "The effect of different reservation sizes for the ping-pong
//! MPICH-GQ program. Each line represents the throughput achieved for a
//! particular message size at different reservation sizes."

use mpichgq_bench::{fig5_pingpong_point_run, fig5_sweep, output, Fig5Cfg, TRACE_CAPACITY};
use mpichgq_sim::SimTime;

fn main() {
    let fast = output::fast_mode();
    let msgs = [8u32, 40, 80, 120]; // kilobits, as in the paper
    let reservations: Vec<f64> = if fast {
        vec![0.0, 1000.0, 3000.0, 6000.0, 9000.0, 12000.0]
    } else {
        (0..=12).map(|i| i as f64 * 1000.0).collect()
    };
    let rows = fig5_sweep(&msgs, &reservations, fast);
    output::print_sweep(
        "Figure 5: one-way ping-pong throughput vs one-way reservation, under heavy UDP contention",
        "msg_kbits",
        "reservation_kbps",
        "one_way_throughput_kbps",
        &rows,
    );
    for (msg, pts) in &rows {
        let max = pts.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        println!("# {msg} Kb messages saturate at {max:.0} Kb/s");
    }
    // Metrics for one representative point (80 Kb messages, 6 Mb/s
    // reservation — mid-sweep, reservation active): the sweep itself runs
    // across threads, so a single instrumented rerun keeps the snapshot
    // attributable to one simulation.
    let mut cfg = Fig5Cfg::new(80 * 1000 / 8, 6000.0);
    if fast {
        cfg.duration = SimTime::from_secs(8);
        cfg.warmup = SimTime::from_secs(3);
    }
    let (_, metrics) = fig5_pingpong_point_run(cfg, TRACE_CAPACITY);
    output::write_metrics("fig5", &metrics.metrics_json);
    output::write_timeline("fig5", metrics.timeline_json.as_deref());
}
