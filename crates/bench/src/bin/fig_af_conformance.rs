//! PHB conformance under overload: one EF, one AF, and one best-effort
//! flow share a WFQ/WRED trunk offered ~135% of its capacity.
//!
//! The printed table is the DiffServ contract, one row per class: the
//! reserved EF flow delivers essentially everything, the AF flow lands
//! between its committed and offered rates (in-profile low-precedence
//! traffic survives while the policer-escalated excess takes the WRED
//! drops), and best-effort absorbs the remaining starvation.

use mpichgq_bench::{af_conformance_run, output, AfConformanceCfg, TRACE_CAPACITY};

fn main() {
    let cfg = if output::fast_mode() {
        AfConformanceCfg::fast()
    } else {
        AfConformanceCfg::default()
    };
    let (out, metrics) = af_conformance_run(cfg, TRACE_CAPACITY);
    let rows: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|r| {
            vec![
                r.class.to_string(),
                format!("{:.1}", r.offered_bps as f64 / 1e6),
                format!("{:.1}", r.delivered_bps as f64 / 1e6),
                format!("{:.1}%", r.delivery_ratio() * 100.0),
            ]
        })
        .collect();
    output::print_table(
        "PHB conformance: EF vs AF vs BE on an overloaded WFQ/WRED trunk",
        &["class", "offered_mbps", "delivered_mbps", "delivery"],
        &rows,
    );
    println!(
        "# drops: {} tail, {} RED-early ({} on AF); {} events",
        out.tail_drops, out.red_early_drops, out.early_af_drops, out.events
    );
    output::write_metrics("af_conformance", &metrics.metrics_json);
    output::write_trace("af_conformance", &metrics.trace_json);
    output::write_timeline("af_conformance", metrics.timeline_json.as_deref());
}
