//! Parallel sweep helpers.
//!
//! Every cell of a paper sweep (Figure 5/6 grids, Table 1 rows) is an
//! independent single-threaded simulation, so the harness parallelizes at
//! the cell level: a bounded worker pool pulls cell indices from an atomic
//! counter, and results are reassembled in input order, keeping output
//! deterministic regardless of completion order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` on a pool of scoped worker threads (at most one
/// per available core). Results come back in input order.
pub fn par_map<A, R, F>(items: &[A], f: F) -> Vec<R>
where
    A: Sync,
    R: Send,
    F: Fn(&A) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (f, next) = (&f, &next);
                s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        got.push((i, f(&items[i])));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Evaluate `f` over the full `rows × cols` grid, all cells in parallel,
/// returning one `(row, Vec<(col as f64, value)>)` entry per row — the
/// shape every figure sweep consumes.
pub fn par_grid<A, B, F>(rows: &[A], cols: &[B], f: F) -> Vec<(A, Vec<(f64, f64)>)>
where
    A: Sync + Send + Copy,
    B: Sync + Send + Copy + Into<f64>,
    F: Fn(&A, &B) -> f64 + Sync,
{
    let cells: Vec<(usize, usize)> = (0..rows.len())
        .flat_map(|r| (0..cols.len()).map(move |c| (r, c)))
        .collect();
    let vals = par_map(&cells, |&(r, c)| f(&rows[r], &cols[c]));
    rows.iter()
        .enumerate()
        .map(|(r, &a)| {
            let pts = cols
                .iter()
                .enumerate()
                .map(|(c, &b)| (b.into(), vals[r * cols.len() + c]))
                .collect();
            (a, pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_tiny_inputs() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_grid_shapes_rows_and_cols() {
        let rows = [1u32, 2, 3];
        let cols = [10.0f64, 20.0];
        let out = par_grid(&rows, &cols, |&r, &c| r as f64 * c);
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].0, 2);
        assert_eq!(out[1].1, vec![(10.0, 20.0), (20.0, 40.0)]);
    }
}
