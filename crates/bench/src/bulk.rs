//! Bulk-TCP benchmark workload: apps and the shared multiflow topology.
//!
//! `bench_engine` and `bench_parallel` must measure the *same*
//! single-threaded workload for their events/sec numbers to be
//! comparable (scripts/perf_gate.py checks the parallel engine's
//! one-thread rate against the committed `BENCH_engine.json` baseline),
//! so the 32-flow trunk simulation lives here and both binaries call it.

use mpichgq_netsim::link::{Framing, LinkCfg};
use mpichgq_netsim::net::TopoBuilder;
use mpichgq_netsim::queue::QueueCfg;
use mpichgq_netsim::NodeId;
use mpichgq_sim::{SchedulerKind, SimDelta, SimTime};
use mpichgq_tcp::{App, Ctx, DataMode, Sim, SockId, TcpCfg};

/// Greedy bulk sender: connect, then keep the socket's send window full.
pub struct BulkTx {
    pub dst: NodeId,
    pub port: u16,
    pub total: u64,
    pub sent: u64,
    pub sock: Option<SockId>,
}

impl BulkTx {
    pub fn new(dst: NodeId, port: u16, total: u64) -> BulkTx {
        BulkTx {
            dst,
            port,
            total,
            sent: 0,
            sock: None,
        }
    }

    fn pump(&mut self, ctx: &mut Ctx) {
        let s = self.sock.unwrap();
        while self.sent < self.total {
            let n = ctx.send(s, (self.total - self.sent).min(16 * 1024));
            self.sent += n;
            if n == 0 {
                break;
            }
        }
    }
}

impl App for BulkTx {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.sock =
            Some(ctx.tcp_connect(self.dst, self.port, TcpCfg::default(), DataMode::Counted));
    }
    fn on_connected(&mut self, _s: SockId, ctx: &mut Ctx) {
        self.pump(ctx);
    }
    fn on_writable(&mut self, _s: SockId, ctx: &mut Ctx) {
        self.pump(ctx);
    }
}

/// Drain-everything bulk receiver listening on `port`.
pub struct BulkRx {
    pub port: u16,
}

impl App for BulkRx {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.tcp_listen(self.port, TcpCfg::default(), DataMode::Counted);
    }
    fn on_readable(&mut self, s: SockId, ctx: &mut Ctx) {
        ctx.recv(s, u64::MAX);
    }
}

/// 10 GbE host-to-router edge link.
pub fn edge_link() -> LinkCfg {
    LinkCfg {
        bandwidth_bps: 10_000_000_000,
        delay: SimDelta::from_micros(10),
        framing: Framing::None,
    }
}

/// The shared OC12 trunk (20 ms) the 32 flows contend for.
pub fn oc12_trunk() -> LinkCfg {
    LinkCfg {
        bandwidth_bps: 622_080_000,
        delay: SimDelta::from_millis(20),
        framing: Framing::None,
    }
}

/// The `transport_multiflow_bulk` workload: 32 concurrent bulk TCP flows
/// sharing one high-bandwidth-delay trunk, so the engine carries a deep
/// standing population of in-flight Deliver events plus per-flow TCP
/// timers. Returns the processed-event count at `duration`.
pub fn transport_multiflow_bulk(kind: SchedulerKind, duration: SimTime) -> u64 {
    const FLOWS: usize = 32;
    let mut b = TopoBuilder::new(0xF10E5);
    b.scheduler(kind);
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    let q = QueueCfg::priority_default();
    b.link(r1, r2, oc12_trunk(), q);
    let pairs: Vec<(NodeId, NodeId)> = (0..FLOWS)
        .map(|i| {
            let src = b.host(&format!("src{i}"));
            let dst = b.host(&format!("dst{i}"));
            b.link(src, r1, edge_link(), q);
            b.link(r2, dst, edge_link(), q);
            (src, dst)
        })
        .collect();
    let mut sim = Sim::new(b.build());
    for &(src, dst) in &pairs {
        sim.spawn_app(dst, Box::new(BulkRx { port: 7000 }));
        sim.spawn_app(src, Box::new(BulkTx::new(dst, 7000, u64::MAX / 2)));
    }
    sim.run_until(duration);
    if std::env::var_os("BENCH_ENGINE_STATS").is_some() {
        if let Some(s) = sim.net.scheduler_stats() {
            eprintln!(
                "[stats] transport_multiflow: pending={} processed={} {:?}",
                sim.net.pending_events(),
                sim.net.events_processed(),
                s
            );
        }
    }
    sim.net.events_processed()
}
