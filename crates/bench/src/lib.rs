//! # mpichgq-bench — experiment harnesses for every table and figure
//!
//! Each `figN_*`/`table1_*` function regenerates one piece of the paper's
//! evaluation (§5) on the simulated GARNET testbed; the binaries in
//! `src/bin/` print the same series/rows the paper reports, and the
//! integration tests in the workspace root assert the qualitative shapes.
//! Absolute numbers differ from the paper (its substrate was a physical
//! Cisco/ATM testbed); the shapes — who wins, where the knees fall, the
//! burstiness penalty — are the reproduction targets (see EXPERIMENTS.md).

pub mod bulk;
pub mod experiments;
pub mod output;
pub mod par;

pub use experiments::*;
pub use par::{par_grid, par_map};
