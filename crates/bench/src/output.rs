//! Console output helpers for the experiment binaries: CSV series and
//! aligned tables, so each binary prints the same rows/series the paper's
//! figures and tables report.

use mpichgq_sim::TimeSeries;

/// Print a `(t, value)` series as CSV with a header.
pub fn print_series(title: &str, value_label: &str, s: &TimeSeries) {
    println!("# {title}");
    println!("time_s,{value_label}");
    print!("{}", s.to_csv());
}

/// Print a sweep family: one CSV block per row key.
pub fn print_sweep(
    title: &str,
    row_label: &str,
    col_label: &str,
    value_label: &str,
    rows: &[(u32, Vec<(f64, f64)>)],
) {
    println!("# {title}");
    println!("{row_label},{col_label},{value_label}");
    for (key, pts) in rows {
        for (x, y) in pts {
            println!("{key},{x:.0},{y:.1}");
        }
    }
}

/// Print an aligned table from header + rows of strings.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// `--fast` flag helper for experiment binaries.
pub fn fast_mode() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// Write an experiment's registry snapshot to
/// `results/<experiment>/metrics.json` (relative to the invocation
/// directory, like the `results/*.txt` series the binaries print). The
/// path is echoed on stderr so figure logs stay clean CSV.
pub fn write_metrics(experiment: &str, metrics_json: &str) {
    let dir = std::path::Path::new("results").join(experiment);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("metrics.json");
    match std::fs::write(&path, metrics_json) {
        Ok(()) => eprintln!("# metrics: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Write an experiment's packet-lifecycle Chrome trace to
/// `results/<experiment>/trace.json`. Load it in Perfetto or summarize it
/// with `qtrace`; `qtrace --check` gates its shape in CI. Traces are
/// regenerated artifacts (gitignored), unlike the committed metrics.
pub fn write_trace(experiment: &str, trace_json: &str) {
    let dir = std::path::Path::new("results").join(experiment);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("trace.json");
    match std::fs::write(&path, trace_json) {
        Ok(()) => eprintln!("# trace: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
