//! The experiment implementations (paper §5).

use mpichgq_apps::{
    finish_viz, run_env_windowed, GarnetLab, MeteredTcpReceiver, PacedTcpSender, PingPong,
    Scheduler, VizCfg, VizReceiver, VizSender,
};
use mpichgq_core::{enable_qos, AdaptPolicy, AdaptState, AdaptiveFlow, QosAgentCfg, QosAttribute};
use mpichgq_gara::{install as install_gara, CpuRequest, Gara, NetworkRequest, Request, StartSpec};
use mpichgq_mpi::{
    ErrorHandler, JobBuilder, JobHandle, Mpi, MpiProgram, Poll, ProgramFactory, ReqId, COMM_WORLD,
};
use mpichgq_netsim::{
    depth_for, ClassCfg, DepthRule, Dscp, FaultAction, FaultPlan, FaultStats, FlowSpec, Framing,
    GarnetCfg, LinkCfg, NodeId, PolicingAction, Proto, QueueCfg, RedCfg, SchedCfg, SchedKind,
    TokenBucket, TopoBuilder,
};
use mpichgq_sim::{SchedulerKind, SimDelta, SimTime, TimeSeries};
use mpichgq_tcp::{Sim, TcpCfg};

/// The offered UDP contention load: enough to keep the best-effort queue
/// of an OC3 trunk persistently full.
pub const CONTENTION_BPS: u64 = 150_000_000;

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

/// Observability bundle every instrumented experiment returns alongside its
/// series: the engine's processed-event count (for the events/sec benchmark
/// and determinism tests) and the full registry + flight-recorder snapshot
/// (what the binaries write to `results/<experiment>/metrics.json`).
#[derive(Debug, Clone)]
pub struct RunMetrics {
    pub events: u64,
    pub metrics_json: String,
    /// Chrome trace-event export of the packet lifecycle (empty events
    /// array when tracing was off); `qtrace` summarizes it.
    pub trace_json: String,
    /// Fixed-interval time-series document (`timeline.json`); `None` when
    /// sampling was off (counted perf runs, `MPICHGQ_TIMELINE_MS=off`).
    /// `qtop` summarizes it.
    pub timeline_json: Option<String>,
}

/// Flight-recorder ring size the figure binaries use; the interesting
/// events (drops, CC transitions, reservation changes) are sparse, so a
/// few thousand entries cover a whole figure run.
pub const TRACE_CAPACITY: usize = 4096;

/// Default figure-run sampling interval; overridable per run via the
/// `MPICHGQ_TIMELINE_MS` environment variable.
pub const TIMELINE_DEFAULT_MS: u64 = 100;

/// Sampling interval the instrumented figure runs use: the
/// `MPICHGQ_TIMELINE_MS` value in milliseconds, `None` for `0`/`off`
/// (sampling disabled), and [`TIMELINE_DEFAULT_MS`] when unset or
/// unparseable.
pub fn env_timeline_interval() -> Option<SimDelta> {
    match std::env::var("MPICHGQ_TIMELINE_MS") {
        Err(_) => Some(SimDelta::from_millis(TIMELINE_DEFAULT_MS)),
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            if v == "0" || v == "off" {
                None
            } else {
                Some(SimDelta::from_millis(
                    v.parse::<u64>()
                        .ok()
                        .filter(|&ms| ms > 0)
                        .unwrap_or(TIMELINE_DEFAULT_MS),
                ))
            }
        }
    }
}

fn arm_trace(lab: &mut GarnetLab, trace_capacity: usize) {
    arm_trace_with(lab, trace_capacity, env_timeline_interval());
}

/// [`arm_trace`] with the sampling interval passed explicitly instead of
/// read from the environment (`None` = sampling off). The
/// no-perturbation tests use the `*_run_timeline` figure variants built
/// on this to compare sampled and unsampled runs inside one process
/// without touching `MPICHGQ_TIMELINE_MS`.
fn arm_trace_with(lab: &mut GarnetLab, trace_capacity: usize, timeline: Option<SimDelta>) {
    if trace_capacity > 0 {
        lab.sim.net.obs.enable_trace(trace_capacity);
        lab.sim.net.enable_packet_tracing();
        // Counted perf variants pass capacity 0 and stay sampler-free; the
        // no-perturbation tests prove the figures come out bit-identical
        // either way.
        if let Some(interval) = timeline {
            lab.sim.net.enable_timeline(interval);
        }
    }
}

fn collect_metrics(lab: &mut GarnetLab) -> RunMetrics {
    let at = lab.sim.net.now();
    lab.sim.net.timeline_finalize(&mut lab.sim.stack, at);
    RunMetrics {
        events: lab.sim.net.events_processed(),
        metrics_json: lab.sim.net.metrics_json(),
        trace_json: lab.sim.net.chrome_trace_json(),
        timeline_json: lab.sim.net.timeline_json(),
    }
}

/// Delivery deadline the instrumented premium-flow runs assert against:
/// comfortably above the premium path's queueing-free one-way delay, and
/// comfortably below the delay a full best-effort trunk queue inflicts
/// (so SLO misses track loss of QoS, not noise).
pub const PREMIUM_DEADLINE: SimDelta = SimDelta::from_millis(10);

/// TCP tuning of the paper's era: the premium end systems were Solaris
/// Ultras with coarse retransmission timers (minimum RTO around half a
/// second). The coarse minimum RTO is what makes bursty flows pay for
/// shallow token buckets: every stall outlives the bucket's 0.2 s fill
/// time and wastes refill (Table 1's burstiness penalty).
pub fn era_tcp() -> TcpCfg {
    TcpCfg {
        rto_min: SimDelta::from_millis(500),
        ..TcpCfg::default()
    }
}

/// MPI configuration used by the paper-replica experiments.
pub fn era_mpi() -> mpichgq_mpi::MpiCfg {
    mpichgq_mpi::MpiCfg {
        tcp: era_tcp(),
        ..Default::default()
    }
}

/// Agent configuration for the reservation sweeps: the paper's reservation
/// axis is the raw network premium bandwidth.
pub fn sweep_agent_cfg() -> QosAgentCfg {
    QosAgentCfg {
        translate_overhead: false,
        ..QosAgentCfg::default()
    }
}

// ---------------------------------------------------------------------
// Figure 1 — raw TCP with an undersized reservation: the sawtooth
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
pub struct Fig1Cfg {
    /// Application pacing rate (paper: ~50 Mb/s).
    pub app_rate_bps: u64,
    /// Premium reservation (paper: 40 Mb/s, "somewhat too low").
    pub reservation_bps: u64,
    pub duration: SimTime,
    /// Event-scheduler backend (results are identical either way; the
    /// choice only affects wall-clock speed).
    pub scheduler: SchedulerKind,
}

impl Default for Fig1Cfg {
    fn default() -> Self {
        Fig1Cfg {
            app_rate_bps: 50_000_000,
            reservation_bps: 40_000_000,
            duration: SimTime::from_secs(100),
            scheduler: SchedulerKind::default(),
        }
    }
}

/// Run Figure 1: a plain TCP flow paced at `app_rate_bps` under heavy
/// contention, with a premium reservation of `reservation_bps`. Returns
/// the receiver's 1-second bandwidth trace (Kb/s).
pub fn fig1_tcp_sawtooth(cfg: Fig1Cfg) -> TimeSeries {
    fig1_tcp_sawtooth_counted(cfg).0
}

/// [`fig1_tcp_sawtooth`] plus the engine's processed-event count, for the
/// events-per-second benchmark and the scheduler determinism test.
pub fn fig1_tcp_sawtooth_counted(cfg: Fig1Cfg) -> (TimeSeries, u64) {
    let (series, m) = fig1_tcp_sawtooth_run(cfg, 0);
    (series, m.events)
}

/// [`fig1_tcp_sawtooth`] with full observability: a non-zero
/// `trace_capacity` arms the flight recorder, and the returned
/// [`RunMetrics`] carries the registry + trace snapshot.
pub fn fig1_tcp_sawtooth_run(cfg: Fig1Cfg, trace_capacity: usize) -> (TimeSeries, RunMetrics) {
    fig1_tcp_sawtooth_run_timeline(cfg, trace_capacity, env_timeline_interval())
}

/// [`fig1_tcp_sawtooth_run`] with the sampling interval passed explicitly
/// (`None` = sampling off) instead of read from `MPICHGQ_TIMELINE_MS`.
pub fn fig1_tcp_sawtooth_run_timeline(
    cfg: Fig1Cfg,
    trace_capacity: usize,
    timeline: Option<SimDelta>,
) -> (TimeSeries, RunMetrics) {
    let garnet = GarnetCfg {
        scheduler: cfg.scheduler,
        ..GarnetCfg::default()
    };
    let mut lab = GarnetLab::new(garnet, 0.7);
    arm_trace_with(&mut lab, trace_capacity, timeline);
    lab.add_contention(CONTENTION_BPS, SimTime::ZERO, cfg.duration);
    let (psrc, pdst) = (lab.premium_src, lab.premium_dst);

    // Reserve for the flow (both host-pair directions matter only for the
    // data path; ACKs ride best-effort as in the paper's testbed).
    lab.with_gara(|g, net| {
        g.reserve(
            net,
            Request::Network(NetworkRequest {
                src: psrc,
                dst: pdst,
                proto: Proto::Tcp,
                src_port: None,
                dst_port: None,
                rate_bps: cfg.reservation_bps,
                depth: DepthRule::Normal,
                action: PolicingAction::Drop,
                shape_at_source: false,
            }),
            StartSpec::Now,
            None,
        )
        .expect("figure-1 reservation admitted");
    });

    let tcp = TcpCfg {
        send_buf: 512 * 1024,
        recv_buf: 512 * 1024,
        ..TcpCfg::default()
    };
    let (rx, meter) = MeteredTcpReceiver::new(6000, tcp, SimDelta::from_secs(1));
    lab.sim.spawn_app(pdst, Box::new(rx));
    lab.sim.spawn_app(
        psrc,
        Box::new(PacedTcpSender::new(pdst, 6000, cfg.app_rate_bps, tcp)),
    );
    lab.run_until(cfg.duration);
    let metrics = collect_metrics(&mut lab);
    let m = std::rc::Rc::try_unwrap(meter)
        .map(|c| c.into_inner())
        .unwrap_or_else(|rc| rc.borrow().clone());
    (m.finish(cfg.duration), metrics)
}

// ---------------------------------------------------------------------
// Figure 5 — ping-pong throughput vs reservation, under contention
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
pub struct Fig5Cfg {
    pub msg_bytes: u32,
    pub reservation_kbps: f64,
    pub duration: SimTime,
    pub warmup: SimTime,
    /// Event-scheduler backend (identical results; wall-clock only).
    pub scheduler: SchedulerKind,
}

impl Fig5Cfg {
    pub fn new(msg_bytes: u32, reservation_kbps: f64) -> Fig5Cfg {
        Fig5Cfg {
            msg_bytes,
            reservation_kbps,
            duration: SimTime::from_secs(20),
            warmup: SimTime::from_secs(5),
            scheduler: SchedulerKind::default(),
        }
    }
}

/// GARNET with the wide-area extension delay used for the ping-pong
/// experiment (round-trip in the paper's ~15 ms regime, putting the
/// Figure 5 knees in the paper's 0–12 Mb/s reservation range).
pub fn fig5_garnet() -> GarnetCfg {
    GarnetCfg {
        core_delay: SimDelta::from_millis(3),
        ..GarnetCfg::default()
    }
}

/// One Figure 5 point: one-way ping-pong throughput (Kb/s) for a message
/// size and reservation, with contention on both trunk directions.
/// `reservation_kbps == 0` means no reservation.
pub fn fig5_pingpong_point(cfg: Fig5Cfg) -> f64 {
    fig5_pingpong_point_counted(cfg).0
}

/// [`fig5_pingpong_point`] plus the engine's processed-event count.
pub fn fig5_pingpong_point_counted(cfg: Fig5Cfg) -> (f64, u64) {
    let (kbps, m) = fig5_pingpong_point_run(cfg, 0);
    (kbps, m.events)
}

/// [`fig5_pingpong_point`] with full observability (see
/// [`fig1_tcp_sawtooth_run`]).
pub fn fig5_pingpong_point_run(cfg: Fig5Cfg, trace_capacity: usize) -> (f64, RunMetrics) {
    fig5_pingpong_point_inner(cfg, trace_capacity, false)
}

/// [`fig5_pingpong_point_counted`] with the flight recorder and the
/// timeline sampler unconditionally armed (trace at [`TRACE_CAPACITY`],
/// sampling at [`TIMELINE_DEFAULT_MS`], ignoring `MPICHGQ_TIMELINE_MS`).
/// `bench_engine` uses this for its labeled, non-gated
/// instrumentation-overhead entry, so the measured cost never depends on
/// the caller's environment.
pub fn fig5_pingpong_point_sampled_counted(cfg: Fig5Cfg) -> (f64, u64) {
    let (kbps, m) = fig5_pingpong_point_inner(cfg, TRACE_CAPACITY, true);
    (kbps, m.events)
}

fn fig5_pingpong_point_inner(
    cfg: Fig5Cfg,
    trace_capacity: usize,
    force_timeline: bool,
) -> (f64, RunMetrics) {
    let garnet = GarnetCfg {
        scheduler: cfg.scheduler,
        ..fig5_garnet()
    };
    let mut lab = GarnetLab::new(garnet, 0.7);
    let timeline = if force_timeline {
        Some(SimDelta::from_millis(TIMELINE_DEFAULT_MS))
    } else {
        env_timeline_interval()
    };
    arm_trace_with(&mut lab, trace_capacity, timeline);
    lab.add_contention(CONTENTION_BPS, SimTime::ZERO, cfg.duration);
    lab.add_contention_reverse(CONTENTION_BPS, SimTime::ZERO, cfg.duration);

    let (builder, env) = enable_qos(JobBuilder::new(), sweep_agent_cfg());
    let qos = if cfg.reservation_kbps > 0.0 {
        Some((
            env,
            QosAttribute::premium(cfg.reservation_kbps, cfg.msg_bytes),
        ))
    } else {
        None
    };
    let (p0, p1, result) = PingPong::pair(cfg.msg_bytes, cfg.warmup, cfg.duration, qos);
    let _job = builder
        .rank(lab.premium_src, Box::new(p0))
        .rank(lab.premium_dst, Box::new(p1))
        .cfg(era_mpi())
        .launch(&mut lab.sim);
    lab.run_until(cfg.duration);
    let metrics = collect_metrics(&mut lab);
    let r = result.borrow();
    (r.one_way_kbps(), metrics)
}

/// The full Figure 5 sweep: message sizes in kilobits (paper: 8, 40, 80,
/// 120 Kb) × reservation values (Kb/s). Returns `(msg_kbits, points)`.
pub fn fig5_sweep(
    msg_kbits: &[u32],
    reservations_kbps: &[f64],
    fast: bool,
) -> Vec<(u32, Vec<(f64, f64)>)> {
    crate::par::par_grid(msg_kbits, reservations_kbps, move |&mk, &resv| {
        let mut cfg = Fig5Cfg::new(mk * 1000 / 8, resv);
        if fast {
            cfg.duration = SimTime::from_secs(8);
            cfg.warmup = SimTime::from_secs(3);
        }
        fig5_pingpong_point(cfg)
    })
}

// ---------------------------------------------------------------------
// Figure 6 — visualization throughput vs reservation
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
pub struct Fig6Cfg {
    pub frame_bytes: u32,
    pub fps: f64,
    /// Reservation in Kb/s (0 = none).
    pub reservation_kbps: f64,
    pub depth_rule: DepthRule,
    pub shape_at_source: bool,
    /// What the edge policer does with out-of-profile packets (ablation:
    /// the paper's testbed dropped them).
    pub policing_action: PolicingAction,
    /// Offered contention load.
    pub contention_bps: u64,
    /// Minimum TCP retransmission timeout (era ablation; see
    /// EXPERIMENTS.md calibration notes).
    pub rto_min: SimDelta,
    /// MPI eager/rendezvous threshold (ablation: rendezvous paces frame
    /// bursts with an extra round trip).
    pub eager_limit: u32,
    pub duration: SimTime,
}

impl Fig6Cfg {
    pub fn new(frame_bytes: u32, fps: f64, reservation_kbps: f64) -> Fig6Cfg {
        Fig6Cfg {
            frame_bytes,
            fps,
            reservation_kbps,
            depth_rule: DepthRule::Normal,
            shape_at_source: false,
            policing_action: PolicingAction::Drop,
            contention_bps: CONTENTION_BPS,
            rto_min: SimDelta::from_millis(500),
            eager_limit: 64 * 1024,
            duration: SimTime::from_secs(20),
        }
    }
}

/// One visualization run under contention; returns steady-state achieved
/// bandwidth in Kb/s (mean of 1-s buckets over the second half).
pub fn fig6_viz_point(cfg: Fig6Cfg) -> f64 {
    viz_run_under_contention(cfg).achieved_kbps_steady
}

/// Fraction of the offered frames that were delivered by the end of the
/// run — the sustained-throughput criterion for Table 1 (delivery that
/// merely accumulates latency does not count as achieving the rate).
pub fn viz_delivery_ratio(cfg: Fig6Cfg) -> f64 {
    let offered = (cfg.fps * (cfg.duration.as_secs_f64() - 0.5)).floor();
    let run = viz_run_under_contention(cfg);
    run.frames_received as f64 / offered
}

/// Full visualization run; returns the whole bandwidth series too.
pub fn viz_run_under_contention(cfg: Fig6Cfg) -> mpichgq_apps::VizRun {
    viz_run_under_contention_run(cfg, 0).0
}

/// [`viz_run_under_contention`] with full observability (see
/// [`fig1_tcp_sawtooth_run`]).
pub fn viz_run_under_contention_run(
    cfg: Fig6Cfg,
    trace_capacity: usize,
) -> (mpichgq_apps::VizRun, RunMetrics) {
    let mut lab = GarnetLab::new(GarnetCfg::default(), 0.7);
    arm_trace(&mut lab, trace_capacity);
    lab.add_contention(cfg.contention_bps, SimTime::ZERO, cfg.duration);

    let agent_cfg = QosAgentCfg {
        depth_rule: cfg.depth_rule,
        shape_at_source: cfg.shape_at_source,
        action: cfg.policing_action,
        ..sweep_agent_cfg()
    };
    let (builder, env) = enable_qos(JobBuilder::new(), agent_cfg);
    let qos = if cfg.reservation_kbps > 0.0 {
        Some((
            env,
            QosAttribute::premium(cfg.reservation_kbps, cfg.frame_bytes),
        ))
    } else {
        None
    };
    let vcfg = VizCfg {
        frame_bytes: cfg.frame_bytes,
        fps: cfg.fps,
        work_per_frame: SimDelta::ZERO,
        start: SimTime::from_millis(500),
        end: cfg.duration,
    };
    let (tx, _stats, _proc) = VizSender::new(vcfg, qos);
    let (rx, meter, frames) = VizReceiver::new(SimDelta::from_secs(1), cfg.duration);
    let tcp = TcpCfg {
        rto_min: cfg.rto_min,
        ..TcpCfg::default()
    };
    let mpi_cfg = mpichgq_mpi::MpiCfg {
        tcp,
        eager_limit: cfg.eager_limit,
    };
    let _job = builder
        .rank(lab.premium_src, Box::new(tx))
        .rank(lab.premium_dst, Box::new(rx))
        .cfg(mpi_cfg)
        .launch(&mut lab.sim);
    lab.run_until(cfg.duration);
    if std::env::var("MPICHGQ_DEBUG").is_ok() {
        eprintln!(
            "DEBUG drops={:?} contention_delivered={} edge_rules={}",
            lab.sim.net.drops,
            lab.contention_delivered(),
            lab.sim.net.node(lab.routers[0]).classifier.len()
        );
    }
    let metrics = collect_metrics(&mut lab);
    let half = SimTime::from_nanos(cfg.duration.as_nanos() / 2);
    (
        finish_viz(meter, frames, cfg.duration, half, cfg.duration),
        metrics,
    )
}

/// The Figure 6 sweep: attempted rates via (frame size, 10 fps) as in the
/// paper (5/10/20/30 KB frames → 400/800/1600/2400 Kb/s).
pub fn fig6_sweep(
    frame_kb: &[u32],
    reservations_kbps: &[f64],
    fast: bool,
) -> Vec<(u32, Vec<(f64, f64)>)> {
    crate::par::par_grid(frame_kb, reservations_kbps, move |&fk, &resv| {
        let mut cfg = Fig6Cfg::new(fk * 1000, 10.0, resv);
        if fast {
            cfg.duration = SimTime::from_secs(10);
        }
        fig6_viz_point(cfg)
    })
}

// ---------------------------------------------------------------------
// Table 1 — burstiness vs token-bucket depth
// ---------------------------------------------------------------------

/// Find the minimum reservation (Kb/s) at which the visualization program
/// achieves ≥ `fraction` of its target bandwidth, by bisection.
pub fn table1_min_reservation(
    target_kbps: f64,
    fps: f64,
    depth_rule: DepthRule,
    fraction: f64,
    fast: bool,
) -> f64 {
    let frame_bytes = (target_kbps * 1000.0 / 8.0 / fps).round() as u32;
    let achieves = |resv_kbps: f64| -> bool {
        let mut cfg = Fig6Cfg::new(frame_bytes, fps, resv_kbps);
        cfg.depth_rule = depth_rule;
        cfg.duration = if fast {
            SimTime::from_secs(30)
        } else {
            SimTime::from_secs(60)
        };
        viz_delivery_ratio(cfg) >= fraction
    };
    // Bracket from below (a policer at half the target cannot pass 95% of
    // it) and expand upward until the target is achievable.
    let mut lo = target_kbps * 0.5;
    let mut hi = target_kbps * 3.0;
    if achieves(lo) {
        return lo;
    }
    while !achieves(hi) {
        hi *= 1.5;
        if hi > target_kbps * 10.0 {
            return f64::INFINITY;
        }
    }
    // Bisect to ~2% resolution.
    while hi / lo > 1.02 {
        let mid = (lo * hi).sqrt();
        if achieves(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// One Table 1 row: target bandwidth → required reservation for
/// (10 fps, normal), (1 fps, normal), (1 fps, large).
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    pub target_kbps: f64,
    pub fps10_normal: f64,
    pub fps1_normal: f64,
    pub fps1_large: f64,
}

pub fn table1(targets_kbps: &[f64], fraction: f64, fast: bool) -> Vec<Table1Row> {
    // Each (target, fps, depth) bisection is independent; flatten the three
    // columns into the cell list so the pool stays busy even when rows
    // finish at very different speeds.
    let cells: Vec<(f64, f64, DepthRule)> = targets_kbps
        .iter()
        .flat_map(|&t| {
            [
                (t, 10.0, DepthRule::Normal),
                (t, 1.0, DepthRule::Normal),
                (t, 1.0, DepthRule::Large),
            ]
        })
        .collect();
    let resv = crate::par::par_map(&cells, |&(t, fps, depth)| {
        table1_min_reservation(t, fps, depth, fraction, fast)
    });
    targets_kbps
        .iter()
        .zip(resv.chunks_exact(3))
        .map(|(&t, r)| Table1Row {
            target_kbps: t,
            fps10_normal: r[0],
            fps1_normal: r[1],
            fps1_large: r[2],
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 7 — sequence-number traces of two burstiness profiles
// ---------------------------------------------------------------------

/// Trace `(t, seq)` of the viz flow's data segments over `window` seconds,
/// for the given frame rate at a fixed 400 Kb/s application rate with an
/// adequate reservation (no contention; the paper isolates burstiness).
pub fn fig7_seq_trace(fps: f64, window: SimTime) -> TimeSeries {
    fig7_seq_trace_run(fps, window, 0).0
}

/// [`fig7_seq_trace`] with full observability (see
/// [`fig1_tcp_sawtooth_run`]).
pub fn fig7_seq_trace_run(
    fps: f64,
    window: SimTime,
    trace_capacity: usize,
) -> (TimeSeries, RunMetrics) {
    fig7_seq_trace_run_timeline(fps, window, trace_capacity, env_timeline_interval())
}

/// [`fig7_seq_trace_run`] with the sampling interval passed explicitly
/// (`None` = sampling off) instead of read from `MPICHGQ_TIMELINE_MS`.
pub fn fig7_seq_trace_run_timeline(
    fps: f64,
    window: SimTime,
    trace_capacity: usize,
    timeline: Option<SimDelta>,
) -> (TimeSeries, RunMetrics) {
    let target_kbps = 400.0;
    let frame_bytes = (target_kbps * 1000.0 / 8.0 / fps).round() as u32;
    let mut lab = GarnetLab::new(GarnetCfg::default(), 0.7);
    arm_trace_with(&mut lab, trace_capacity, timeline);
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let qos = Some((env, QosAttribute::premium(800.0, frame_bytes)));
    let end = window + SimDelta::from_secs(1);
    let vcfg = VizCfg {
        frame_bytes,
        fps,
        work_per_frame: SimDelta::ZERO,
        start: SimTime::from_millis(100),
        end,
    };
    let (tx, _stats, _proc) = VizSender::new(vcfg, qos);
    let (rx, _meter, _frames) = VizReceiver::new(SimDelta::from_secs(1), end);
    // Trace the sender's connection to rank 1 once it exists: do it from
    // inside the sender by wrapping the program.
    struct Traced {
        inner: VizSender,
        traced: bool,
        /// Delivery deadline for the data flow (instrumented runs only).
        deadline: Option<SimDelta>,
    }
    impl mpichgq_mpi::MpiProgram for Traced {
        fn poll(&mut self, mpi: &mut mpichgq_mpi::Mpi) -> mpichgq_mpi::Poll {
            if !self.traced {
                self.traced = true;
                mpi.trace_peer_connection(1, "fig7.seq");
                if let Some(dl) = self.deadline {
                    mpi.set_peer_deadline(1, dl);
                }
            }
            self.inner.poll(mpi)
        }
    }
    let _job = builder
        .rank(
            lab.premium_src,
            Box::new(Traced {
                inner: tx,
                traced: false,
                deadline: (trace_capacity > 0).then_some(PREMIUM_DEADLINE),
            }),
        )
        .rank(lab.premium_dst, Box::new(rx))
        .cfg(era_mpi())
        .launch(&mut lab.sim);
    lab.run_until(end);
    let metrics = collect_metrics(&mut lab);
    // The paper's Figure 7 shows exactly one second of steady state, with
    // sequence numbers rebased to the window: trim and rebase the raw trace.
    let raw = lab.sim.net.recorder.series("fig7.seq");
    let w_start = SimTime::from_millis(700); // past wireup and the QoS put
    let w_end = w_start + SimDelta::from_nanos(window.as_nanos());
    let base = raw
        .points()
        .iter()
        .find(|&&(t, _)| t >= w_start)
        .map(|&(_, v)| v)
        .unwrap_or(0.0);
    let mut out = TimeSeries::default();
    for &(t, v) in raw.points() {
        if t >= w_start && t < w_end {
            out.push(t - SimDelta::from_nanos(w_start.as_nanos()), v - base);
        }
    }
    (out, metrics)
}

// ---------------------------------------------------------------------
// Figures 8 and 9 — CPU contention and combined reservations
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
pub struct Fig8Cfg {
    pub target_mbps: f64,
    pub fps: f64,
    /// CPU render time per frame, as a fraction of the frame interval.
    pub work_fraction: f64,
    pub hog_at: SimTime,
    pub cpu_reservation_at: SimTime,
    pub cpu_fraction: f64,
    pub duration: SimTime,
}

impl Default for Fig8Cfg {
    fn default() -> Self {
        Fig8Cfg {
            target_mbps: 15.0,
            fps: 10.0,
            work_fraction: 0.8,
            hog_at: SimTime::from_secs(10),
            cpu_reservation_at: SimTime::from_secs(20),
            cpu_fraction: 0.9,
            duration: SimTime::from_secs(30),
        }
    }
}

/// Figure 8: visualization bandwidth trace with CPU contention starting at
/// `hog_at` and a DSRT reservation at `cpu_reservation_at`.
pub fn fig8_cpu_reservation(cfg: Fig8Cfg) -> TimeSeries {
    fig8_cpu_reservation_run(cfg, 0).0
}

/// [`fig8_cpu_reservation`] with full observability (see
/// [`fig1_tcp_sawtooth_run`]).
pub fn fig8_cpu_reservation_run(cfg: Fig8Cfg, trace_capacity: usize) -> (TimeSeries, RunMetrics) {
    let mut lab = GarnetLab::new(GarnetCfg::default(), 0.7);
    arm_trace(&mut lab, trace_capacity);
    let frame_bytes = (cfg.target_mbps * 1e6 / 8.0 / cfg.fps).round() as u32;
    let interval = 1.0 / cfg.fps;
    let vcfg = VizCfg {
        frame_bytes,
        fps: cfg.fps,
        work_per_frame: SimDelta::from_secs_f64(interval * cfg.work_fraction),
        start: SimTime::from_millis(200),
        end: cfg.duration,
    };
    let (builder, _env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let (tx, _stats, proc_out) = VizSender::new(vcfg, None);
    let (rx, meter, frames) = VizReceiver::new(SimDelta::from_secs(1), cfg.duration);
    let psrc = lab.premium_src;
    if trace_capacity > 0 {
        let spec = FlowSpec::host_pair(psrc, lab.premium_dst, Proto::Tcp);
        lab.sim.net.set_deadline_matching(spec, PREMIUM_DEADLINE);
    }
    let _job = builder
        .rank(lab.premium_src, Box::new(tx))
        .rank(lab.premium_dst, Box::new(rx))
        .launch(&mut lab.sim);

    let mut sched = Scheduler::new();
    sched.at(cfg.hog_at, move |net, _stack| {
        net.cpu_spawn_hog(psrc);
    });
    let proc2 = proc_out.clone();
    let cpu_frac = cfg.cpu_fraction;
    sched.at(cfg.cpu_reservation_at, move |net, stack| {
        let proc = proc2.borrow().expect("viz sender started");
        let mut gara = stack.take_service::<mpichgq_gara::Gara>().unwrap();
        gara.reserve(
            net,
            Request::Cpu(CpuRequest {
                host: psrc,
                proc,
                fraction: cpu_frac,
            }),
            StartSpec::Now,
            None,
        )
        .expect("CPU reservation admitted");
        stack.put_service_box(gara);
    });
    sched.install(&mut lab.sim);

    lab.run_until(cfg.duration);
    let metrics = collect_metrics(&mut lab);
    (
        finish_viz(meter, frames, cfg.duration, SimTime::ZERO, cfg.duration).series,
        metrics,
    )
}

#[derive(Debug, Clone, Copy)]
pub struct Fig9Cfg {
    pub target_mbps: f64,
    pub fps: f64,
    pub work_fraction: f64,
    /// Offered contention load. Defaults below full starvation so a
    /// best-effort trickle keeps TCP's RTO backoff bounded, as in the
    /// paper's trace (its congestion phase shows depressed, not zero,
    /// bandwidth).
    pub contention_bps: u64,
    pub congestion_at: SimTime,
    pub net_reservation_at: SimTime,
    pub hog_at: SimTime,
    pub cpu_reservation_at: SimTime,
    pub cpu_fraction: f64,
    pub duration: SimTime,
}

impl Default for Fig9Cfg {
    fn default() -> Self {
        Fig9Cfg {
            target_mbps: 35.0,
            fps: 10.0,
            work_fraction: 0.8,
            contention_bps: 130_000_000,
            congestion_at: SimTime::from_secs(10),
            net_reservation_at: SimTime::from_secs(21),
            hog_at: SimTime::from_secs(31),
            cpu_reservation_at: SimTime::from_secs(41),
            cpu_fraction: 0.9,
            duration: SimTime::from_secs(50),
        }
    }
}

/// Figure 9: the combined scenario — network congestion, then a network
/// reservation, then CPU contention, then a CPU reservation.
pub fn fig9_combined(cfg: Fig9Cfg) -> TimeSeries {
    fig9_combined_run(cfg, 0).0
}

/// [`fig9_combined`] with full observability (see
/// [`fig1_tcp_sawtooth_run`]).
pub fn fig9_combined_run(cfg: Fig9Cfg, trace_capacity: usize) -> (TimeSeries, RunMetrics) {
    let mut lab = GarnetLab::new(GarnetCfg::default(), 0.7);
    arm_trace(&mut lab, trace_capacity);
    lab.add_contention(cfg.contention_bps, cfg.congestion_at, cfg.duration);
    let frame_bytes = (cfg.target_mbps * 1e6 / 8.0 / cfg.fps).round() as u32;
    let interval = 1.0 / cfg.fps;
    let vcfg = VizCfg {
        frame_bytes,
        fps: cfg.fps,
        work_per_frame: SimDelta::from_secs_f64(interval * cfg.work_fraction),
        start: SimTime::from_millis(200),
        end: cfg.duration,
    };
    // 35 Mb/s with blocking frame sends needs era-appropriately tuned
    // socket buffers (the paper's §5.5 lesson about buffer sizing).
    let tcp = TcpCfg {
        send_buf: 512 * 1024,
        recv_buf: 512 * 1024,
        ..TcpCfg::default()
    };
    let mpi_cfg = mpichgq_mpi::MpiCfg {
        tcp,
        ..Default::default()
    };
    let (builder, _env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let (tx, _stats, proc_out) = VizSender::new(vcfg, None);
    let (rx, meter, frames) = VizReceiver::new(SimDelta::from_secs(1), cfg.duration);
    let psrc = lab.premium_src;
    let pdst = lab.premium_dst;
    let _job = builder
        .rank(psrc, Box::new(tx))
        .rank(pdst, Box::new(rx))
        .cfg(mpi_cfg)
        .launch(&mut lab.sim);

    let mut sched = Scheduler::new();
    let net_rate = (cfg.target_mbps * 1e6 * 1.1) as u64;
    sched.at(cfg.net_reservation_at, move |net, stack| {
        let mut gara = stack.take_service::<mpichgq_gara::Gara>().unwrap();
        gara.reserve(
            net,
            Request::Network(NetworkRequest {
                src: psrc,
                dst: pdst,
                proto: Proto::Tcp,
                src_port: None,
                dst_port: None,
                rate_bps: net_rate,
                depth: DepthRule::Normal,
                action: PolicingAction::Drop,
                shape_at_source: false,
            }),
            StartSpec::Now,
            None,
        )
        .expect("network reservation admitted");
        stack.put_service_box(gara);
    });
    sched.at(cfg.hog_at, move |net, _stack| {
        net.cpu_spawn_hog(psrc);
    });
    let proc2 = proc_out.clone();
    let cpu_frac = cfg.cpu_fraction;
    sched.at(cfg.cpu_reservation_at, move |net, stack| {
        let proc = proc2.borrow().expect("viz sender started");
        let mut gara = stack.take_service::<mpichgq_gara::Gara>().unwrap();
        gara.reserve(
            net,
            Request::Cpu(CpuRequest {
                host: psrc,
                proc,
                fraction: cpu_frac,
            }),
            StartSpec::Now,
            None,
        )
        .expect("CPU reservation admitted");
        stack.put_service_box(gara);
    });
    sched.install(&mut lab.sim);

    lab.run_until(cfg.duration);
    let metrics = collect_metrics(&mut lab);
    (
        finish_viz(meter, frames, cfg.duration, SimTime::ZERO, cfg.duration).series,
        metrics,
    )
}

/// Mean of a series over `[from, to)` seconds — phase summaries for the
/// Figure 8/9 timelines.
pub fn phase_mean(series: &TimeSeries, from: f64, to: f64) -> f64 {
    series.mean_in(secs(from), secs(to))
}

// ---------------------------------------------------------------------
// Chaos — the Figure-9 workload under a scripted fault plan, with the
// QoS agent's adaptation loop doing the recovering
// ---------------------------------------------------------------------

/// Configuration of the chaos experiment: the combined visualization
/// workload (Figure 9) with a canonical fault schedule layered on top.
///
/// The staged story:
/// 1. contention starts ([`ChaosCfg::contention_at`]);
/// 2. the agent's first premium request hits
///    [`ChaosCfg::injected_rejections`] fault-injected rejections and
///    retries with backoff until granted;
/// 3. the premium trunk goes down for [`ChaosCfg::link_outage`], comes
///    back with a loss burst, and TCP recovers;
/// 4. the broker revokes the grant while a squatter holds most (not all)
///    capacity → the agent renegotiates to a smaller premium rate;
/// 5. a second revocation with *no* spare capacity → graceful
///    degradation to best-effort, plus a CPU-throttle window at the
///    sender for good measure;
/// 6. the squatters clear and a probe restores the full reservation —
///    the recovery the shape tests assert.
#[derive(Debug, Clone, Copy)]
pub struct ChaosCfg {
    pub target_mbps: f64,
    pub fps: f64,
    pub work_fraction: f64,
    pub contention_bps: u64,
    pub contention_at: SimTime,
    /// When the adaptive flow makes its first reservation attempt.
    pub first_request_at: SimTime,
    /// Fault-injected GARA rejections before the first grant.
    pub injected_rejections: u32,
    pub link_down_at: SimTime,
    pub link_outage: SimDelta,
    /// Loss-burst probability (per mille) on the trunk right after link-up.
    pub loss_per_mille: u16,
    pub loss_duration: SimDelta,
    /// First revocation: a squatter takes *most* capacity → renegotiation.
    pub revoke_at: SimTime,
    /// Second revocation: a squatter takes *all* capacity → degradation.
    pub second_revoke_at: SimTime,
    pub cpu_throttle_at: SimTime,
    pub cpu_throttle_per_mille: u16,
    pub cpu_throttle_duration: SimDelta,
    /// When the squatters release their capacity (probing then recovers).
    pub clear_at: SimTime,
    pub duration: SimTime,
    /// Seed of the fault layer's private RNG (loss/corruption draws).
    pub seed: u64,
    pub scheduler: SchedulerKind,
}

impl Default for ChaosCfg {
    fn default() -> Self {
        ChaosCfg {
            target_mbps: 35.0,
            fps: 10.0,
            work_fraction: 0.5,
            contention_bps: 130_000_000,
            contention_at: SimTime::from_secs(1),
            first_request_at: SimTime::from_secs(2),
            injected_rejections: 2,
            link_down_at: SimTime::from_secs(9),
            link_outage: SimDelta::from_millis(700),
            loss_per_mille: 50,
            loss_duration: SimDelta::from_secs(1),
            revoke_at: SimTime::from_secs(13),
            second_revoke_at: SimTime::from_secs(17),
            cpu_throttle_at: SimTime::from_secs(19),
            cpu_throttle_per_mille: 300,
            cpu_throttle_duration: SimDelta::from_millis(1_500),
            clear_at: SimTime::from_secs(21),
            duration: SimTime::from_secs(28),
            seed: 7,
            scheduler: SchedulerKind::default(),
        }
    }
}

impl ChaosCfg {
    /// The compressed schedule the `--fast` CI job and the tier-1 shape
    /// tests share (same stages, shorter phases).
    pub fn fast() -> ChaosCfg {
        ChaosCfg {
            first_request_at: SimTime::from_millis(1_500),
            link_down_at: SimTime::from_secs(6),
            link_outage: SimDelta::from_millis(400),
            loss_duration: SimDelta::from_millis(800),
            revoke_at: SimTime::from_secs(9),
            second_revoke_at: SimTime::from_secs(11),
            cpu_throttle_at: SimTime::from_secs(12),
            cpu_throttle_duration: SimDelta::from_secs(1),
            clear_at: SimTime::from_millis(13_500),
            duration: SimTime::from_secs(18),
            ..ChaosCfg::default()
        }
    }

    /// The clean premium window before the first physical fault:
    /// `[grant + ramp, link_down_at)` in seconds.
    pub fn pre_fault_window(&self) -> (f64, f64) {
        (
            self.first_request_at.as_secs_f64() + 1.5,
            self.link_down_at.as_secs_f64(),
        )
    }

    /// The post-clearance recovery window `[clear + ramp, duration)`.
    pub fn recovery_window(&self) -> (f64, f64) {
        (
            self.clear_at.as_secs_f64() + 2.0,
            self.duration.as_secs_f64(),
        )
    }

    /// The degraded (best-effort) window between the second revocation
    /// and the capacity clearance.
    pub fn degraded_window(&self) -> (f64, f64) {
        (
            self.second_revoke_at.as_secs_f64() + 1.0,
            self.clear_at.as_secs_f64(),
        )
    }
}

/// What the adaptation loop did during a chaos run, read back from the
/// `agent.*`/`gara.*` counters plus the fault layer's own accounting.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOutcome {
    pub final_state: AdaptState,
    pub requests: u64,
    pub rejects: u64,
    pub retries: u64,
    pub grants: u64,
    pub revocations_seen: u64,
    pub renegotiations: u64,
    pub degrades: u64,
    pub probes: u64,
    pub recoveries: u64,
    pub faults: FaultStats,
}

/// A capacity-squatting reservation: debits the EF slot tables on the
/// competitive pair's path (shared trunks) without touching any real
/// traffic — the flow spec is pinned to the discard port, which nothing
/// sends to, so the installed classifier rule never matches a packet.
fn squat_request(src: NodeId, dst: NodeId, rate_bps: u64) -> Request {
    Request::Network(NetworkRequest {
        src,
        dst,
        proto: Proto::Udp,
        src_port: None,
        dst_port: Some(9),
        rate_bps,
        depth: DepthRule::Normal,
        action: PolicingAction::Drop,
        shape_at_source: false,
    })
}

/// Run the chaos experiment; returns the receiver's 1-second bandwidth
/// series (Kb/s), the observability snapshot, and the adaptation summary.
pub fn chaos_run(cfg: ChaosCfg, trace_capacity: usize) -> (TimeSeries, RunMetrics, ChaosOutcome) {
    use std::cell::RefCell;
    use std::rc::Rc;

    let garnet = GarnetCfg {
        scheduler: cfg.scheduler,
        ..GarnetCfg::default()
    };
    let mut lab = GarnetLab::new(garnet, 0.7);
    arm_trace(&mut lab, trace_capacity);
    lab.add_contention(cfg.contention_bps, cfg.contention_at, cfg.duration);
    let (psrc, pdst) = (lab.premium_src, lab.premium_dst);
    let (csrc, cdst) = (lab.competitive_src, lab.competitive_dst);

    // The Figure-9 visualization workload (no QoS attribute: the adaptive
    // flow below owns the premium reservation for the host pair).
    let frame_bytes = (cfg.target_mbps * 1e6 / 8.0 / cfg.fps).round() as u32;
    let interval = 1.0 / cfg.fps;
    let vcfg = VizCfg {
        frame_bytes,
        fps: cfg.fps,
        work_per_frame: SimDelta::from_secs_f64(interval * cfg.work_fraction),
        start: SimTime::from_millis(200),
        end: cfg.duration,
    };
    let tcp = TcpCfg {
        send_buf: 512 * 1024,
        recv_buf: 512 * 1024,
        ..TcpCfg::default()
    };
    let mpi_cfg = mpichgq_mpi::MpiCfg {
        tcp,
        ..Default::default()
    };
    let (builder, _env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let (tx, _stats, _proc) = VizSender::new(vcfg, None);
    let (rx, meter, frames) = VizReceiver::new(SimDelta::from_secs(1), cfg.duration);
    if trace_capacity > 0 {
        let spec = FlowSpec::host_pair(psrc, pdst, Proto::Tcp);
        lab.sim.net.set_deadline_matching(spec, PREMIUM_DEADLINE);
    }
    let _job = builder
        .rank(psrc, Box::new(tx))
        .rank(pdst, Box::new(rx))
        .cfg(mpi_cfg)
        .launch(&mut lab.sim);

    // The physical fault schedule: trunk outage + loss burst on link-up,
    // and a CPU-throttle window at the sender.
    let trunk = lab.sim.net.path_chans(psrc, pdst).expect("premium path")[1];
    let plan = FaultPlan::new(cfg.seed)
        .link_outage(trunk, cfg.link_down_at, cfg.link_outage)
        .at(
            cfg.link_down_at + cfg.link_outage,
            FaultAction::LossBurst {
                chan: trunk,
                per_mille: cfg.loss_per_mille,
                duration: cfg.loss_duration,
            },
        )
        .at(
            cfg.cpu_throttle_at,
            FaultAction::CpuThrottle {
                host: psrc,
                per_mille: cfg.cpu_throttle_per_mille,
                duration: Some(cfg.cpu_throttle_duration),
            },
        );
    lab.sim.net.install_fault_plan(plan);

    // The control-plane faults: injected rejections before the first
    // grant, then two revocation + capacity-squatting events.
    lab.with_gara(|g, _| g.inject_rejections(cfg.injected_rejections));
    let full_rate = (cfg.target_mbps * 1e6 * 1.1) as u64;
    let flow = AdaptiveFlow::install(
        &mut lab.sim,
        NetworkRequest {
            src: psrc,
            dst: pdst,
            proto: Proto::Tcp,
            src_port: None,
            dst_port: None,
            rate_bps: full_rate,
            depth: DepthRule::Normal,
            action: PolicingAction::Drop,
            shape_at_source: false,
        },
        cfg.first_request_at,
        AdaptPolicy {
            min_rate_bps: full_rate / 5,
            ..AdaptPolicy::default()
        },
    );

    let squatters: Rc<RefCell<Vec<mpichgq_gara::ResvId>>> = Rc::new(RefCell::new(Vec::new()));
    let mut sched = Scheduler::new();
    // First revocation: free the grant, then squat on everything except
    // ~65% of the full rate — the renegotiation ladder's first rung
    // (50%) fits, the full rate does not.
    let flow2 = flow.clone();
    let sq = squatters.clone();
    sched.at(cfg.revoke_at, move |net, stack| {
        let mut gara = stack.take_service::<mpichgq_gara::Gara>().unwrap();
        if let Some(id) = flow2.current_resv() {
            gara.revoke(net, id);
        }
        let avail = gara
            .available_on_path(net, csrc, cdst, net.now(), SimTime::MAX)
            .unwrap_or(0);
        let leave = full_rate * 65 / 100;
        let take = avail.saturating_sub(leave);
        if take > 0 {
            let id = gara
                .reserve(net, squat_request(csrc, cdst, take), StartSpec::Now, None)
                .expect("first squatter admitted");
            sq.borrow_mut().push(id);
        }
        stack.put_service_box(gara);
    });
    // Second revocation: free the renegotiated grant, then squat on all
    // remaining capacity — the whole ladder fails and the flow degrades.
    let flow3 = flow.clone();
    let sq = squatters.clone();
    sched.at(cfg.second_revoke_at, move |net, stack| {
        let mut gara = stack.take_service::<mpichgq_gara::Gara>().unwrap();
        if let Some(id) = flow3.current_resv() {
            gara.revoke(net, id);
        }
        let avail = gara
            .available_on_path(net, csrc, cdst, net.now(), SimTime::MAX)
            .unwrap_or(0);
        if avail > 0 {
            let id = gara
                .reserve(net, squat_request(csrc, cdst, avail), StartSpec::Now, None)
                .expect("second squatter admitted");
            sq.borrow_mut().push(id);
        }
        stack.put_service_box(gara);
    });
    // Clearance: the squatters leave; the agent's next probe recovers.
    let sq = squatters.clone();
    sched.at(cfg.clear_at, move |net, stack| {
        let mut gara = stack.take_service::<mpichgq_gara::Gara>().unwrap();
        for id in sq.borrow_mut().drain(..) {
            gara.cancel(net, id);
        }
        stack.put_service_box(gara);
    });
    sched.install(&mut lab.sim);

    lab.run_until(cfg.duration);
    let metrics = collect_metrics(&mut lab);
    let counter = |name: &str| lab.sim.net.obs.metrics.counter_value(name).unwrap_or(0);
    let outcome = ChaosOutcome {
        final_state: flow.state(),
        requests: counter("agent.requests"),
        rejects: counter("agent.rejects"),
        retries: counter("agent.retries"),
        grants: counter("agent.grants"),
        revocations_seen: counter("agent.revocations_seen"),
        renegotiations: counter("agent.renegotiations"),
        degrades: counter("agent.degrades"),
        probes: counter("agent.probes"),
        recoveries: counter("agent.recoveries"),
        faults: lab.sim.net.fault_stats().unwrap_or_default(),
    };
    (
        finish_viz(meter, frames, cfg.duration, SimTime::ZERO, cfg.duration).series,
        metrics,
        outcome,
    )
}

// ---------------------------------------------------------------------
// PHB conformance — EF vs AF vs BE on a WFQ/WRED trunk under overload
// ---------------------------------------------------------------------

/// Configuration of the three-class conformance experiment: one flow per
/// PHB sharing an overloaded trunk, with the trunk running WFQ over
/// per-class queues and WRED on the AF queue.
///
/// EF is admission-controlled (a GARA reservation polices it at the edge),
/// AF is marked by an edge `Remark` policer — in-profile traffic enters at
/// low drop precedence, excess is escalated and thus RED-dropped first —
/// and best-effort is the paper's contention blaster, offered well above
/// the trunk's spare capacity.
#[derive(Debug, Clone, Copy)]
pub struct AfConformanceCfg {
    /// Offered EF load (UDP, premium host pair).
    pub ef_rate_bps: u64,
    /// EF reservation; above the offered rate, so EF stays in profile.
    pub ef_reservation_bps: u64,
    /// Offered AF load (UDP, a second premium-host-pair flow).
    pub af_rate_bps: u64,
    /// AF committed rate: traffic under it is marked low drop precedence,
    /// the excess is escalated by the edge policer's `Remark` action.
    pub af_commit_bps: u64,
    /// Offered best-effort load (the contention blaster).
    pub be_rate_bps: u64,
    pub duration: SimTime,
}

impl Default for AfConformanceCfg {
    fn default() -> Self {
        AfConformanceCfg {
            ef_rate_bps: 20_000_000,
            ef_reservation_bps: 25_000_000,
            af_rate_bps: 60_000_000,
            af_commit_bps: 25_000_000,
            be_rate_bps: CONTENTION_BPS,
            duration: SimTime::from_secs(20),
        }
    }
}

impl AfConformanceCfg {
    /// The compressed `--fast` CI variant (same overload, shorter run).
    pub fn fast() -> AfConformanceCfg {
        AfConformanceCfg {
            duration: SimTime::from_secs(6),
            ..AfConformanceCfg::default()
        }
    }
}

/// One per-class row of the conformance table.
#[derive(Debug, Clone, Copy)]
pub struct PhbRow {
    pub class: &'static str,
    pub offered_bps: u64,
    pub delivered_bps: u64,
}

impl PhbRow {
    pub fn delivery_ratio(&self) -> f64 {
        self.delivered_bps as f64 / self.offered_bps.max(1) as f64
    }
}

/// What the conformance run reports: the EF/AF/BE delivery rows plus the
/// discipline's drop accounting (tail vs RED-early, and the AF early
/// drops that the WRED precedence ramp concentrates on escalated traffic).
#[derive(Debug, Clone, Copy)]
pub struct AfConformanceOut {
    pub rows: [PhbRow; 3],
    pub tail_drops: u64,
    pub red_early_drops: u64,
    pub early_af_drops: u64,
    pub events: u64,
}

/// The WFQ/WRED trunk discipline the conformance experiment runs on.
/// Weights 8/2/6: EF is protected outright, and because WFQ is
/// work-conserving the share EF leaves idle is split 2:6 between AF and
/// best-effort — which puts AF's service rate between its committed and
/// offered rates, so the WRED precedence ramp (not the scheduler alone)
/// decides which AF packets survive. WRED runs on AF, plain RED on BE.
pub fn af_conformance_queue() -> QueueCfg {
    QueueCfg::Sched(
        SchedCfg::wfq()
            .af(ClassCfg::new(150_000)
                .weight(2)
                .wred(RedCfg::wred_ramp(30_000, 120_000)))
            .be(ClassCfg::new(150_000)
                .weight(6)
                .red(RedCfg::new(30_000, 120_000))),
    )
}

/// Run the three-PHB conformance experiment. Expected shape under the
/// ~35% overload of the defaults: EF delivers ~everything (reserved and
/// weight-protected), AF lands between its committed and offered rates
/// (the in-profile fraction survives, the escalated excess takes the RED
/// drops), best-effort absorbs the rest of the starvation.
pub fn af_conformance_run(
    cfg: AfConformanceCfg,
    trace_capacity: usize,
) -> (AfConformanceOut, RunMetrics) {
    let garnet = GarnetCfg {
        core_queue: af_conformance_queue(),
        ..GarnetCfg::default()
    };
    let mut lab = GarnetLab::new(garnet, 0.7);
    arm_trace(&mut lab, trace_capacity);
    lab.add_contention(cfg.be_rate_bps, SimTime::ZERO, cfg.duration);
    let (psrc, pdst) = (lab.premium_src, lab.premium_dst);

    // EF: a reserved UDP flow on the premium pair; the grant installs the
    // edge policer that marks it EF (all of it in profile).
    lab.with_gara(|g, net| {
        g.reserve(
            net,
            Request::Network(NetworkRequest {
                src: psrc,
                dst: pdst,
                proto: Proto::Udp,
                src_port: None,
                dst_port: Some(6000),
                rate_bps: cfg.ef_reservation_bps,
                depth: DepthRule::Normal,
                action: PolicingAction::Drop,
                shape_at_source: false,
            }),
            StartSpec::Now,
            None,
        )
        .expect("conformance EF reservation admitted");
    });

    // AF: marked at the ingress edge router. In-profile traffic becomes
    // AF at the default (low) drop precedence; the excess is escalated by
    // `Remark`, so WRED sheds it first when the AF queue fills.
    let af_spec = FlowSpec {
        proto: Some(Proto::Udp),
        dst_port: Some(6100),
        ..FlowSpec::default()
    };
    let ingress = lab.routers[0];
    lab.sim.net.node_mut(ingress).classifier.install(
        af_spec,
        Dscp::Af(Default::default()),
        Some(TokenBucket::new(
            cfg.af_commit_bps,
            depth_for(DepthRule::Normal, cfg.af_commit_bps),
        )),
        PolicingAction::Remark,
    );

    if trace_capacity > 0 {
        let ef_spec = FlowSpec {
            proto: Some(Proto::Udp),
            dst_port: Some(6000),
            ..FlowSpec::default()
        };
        lab.sim.net.set_deadline_matching(ef_spec, PREMIUM_DEADLINE);
    }

    // Both marked flows ride the premium hosts' uncongested uplink so the
    // three classes contend at the trunk, where the discipline under test
    // runs — not at a shared drop-tail host queue upstream of the marker.
    use mpichgq_apps::{UdpBlaster, UdpSink};
    let (ef_sink, ef_meter) = UdpSink::new(6000, SimDelta::from_secs(1));
    lab.sim.spawn_app(pdst, Box::new(ef_sink));
    lab.sim.spawn_app(
        psrc,
        Box::new(UdpBlaster::with_rate(pdst, 6000, 1472, cfg.ef_rate_bps)),
    );
    let (af_sink, af_meter) = UdpSink::new(6100, SimDelta::from_secs(1));
    lab.sim.spawn_app(pdst, Box::new(af_sink));
    lab.sim.spawn_app(
        psrc,
        Box::new(UdpBlaster::with_rate(pdst, 6100, 1472, cfg.af_rate_bps).sport(59_998)),
    );

    lab.run_until(cfg.duration);
    let metrics = collect_metrics(&mut lab);
    let secs = cfg.duration.as_secs_f64();
    let bps = |bytes: u64| (bytes as f64 * 8.0 / secs) as u64;
    let counter = |name: &str| lab.sim.net.obs.metrics.counter_value(name).unwrap_or(0);
    let early = counter("qdisc.early_drops.ef")
        + counter("qdisc.early_drops.af")
        + counter("qdisc.early_drops.be");
    let out = AfConformanceOut {
        rows: [
            PhbRow {
                class: "EF",
                offered_bps: cfg.ef_rate_bps,
                delivered_bps: bps(ef_meter.borrow().total_bytes()),
            },
            PhbRow {
                class: "AF",
                offered_bps: cfg.af_rate_bps,
                delivered_bps: bps(af_meter.borrow().total_bytes()),
            },
            PhbRow {
                class: "BE",
                offered_bps: cfg.be_rate_bps,
                delivered_bps: bps(lab.contention_delivered()),
            },
        ],
        tail_drops: counter("net.drops.queue_full").saturating_sub(early),
        red_early_drops: counter("net.drops.red_early"),
        early_af_drops: counter("qdisc.early_drops.af"),
        events: metrics.events,
    };
    (out, metrics)
}

// ---------------------------------------------------------------------
// Discipline ablation — scheduler × dropper matrix, scored by the SLO layer
// ---------------------------------------------------------------------

/// Configuration of one ablation cell's workload: the Figure-1 premium
/// TCP flow (paced above an undersized reservation) under full contention,
/// with the delivery deadline armed so the SLO layer scores the run.
#[derive(Debug, Clone, Copy)]
pub struct QdiscAblationCfg {
    pub app_rate_bps: u64,
    pub reservation_bps: u64,
    pub contention_bps: u64,
    pub duration: SimTime,
}

impl Default for QdiscAblationCfg {
    fn default() -> Self {
        QdiscAblationCfg {
            app_rate_bps: 50_000_000,
            reservation_bps: 40_000_000,
            contention_bps: CONTENTION_BPS,
            duration: SimTime::from_secs(20),
        }
    }
}

impl QdiscAblationCfg {
    /// The compressed `--fast` CI variant.
    pub fn fast() -> QdiscAblationCfg {
        QdiscAblationCfg {
            duration: SimTime::from_secs(5),
            ..QdiscAblationCfg::default()
        }
    }
}

/// One cell of the scheduler × dropper matrix.
#[derive(Debug, Clone, Copy)]
pub struct QdiscCell {
    pub sched: SchedKind,
    pub red: bool,
    /// Steady premium goodput over the run (Kb/s).
    pub premium_kbps: f64,
    /// Deadline misses the SLO layer charged to the premium flow's path.
    pub slo_misses: u64,
    pub tail_drops: u64,
    pub red_early_drops: u64,
    pub events: u64,
}

/// Human-readable labels for a cell's coordinates.
pub fn qdisc_cell_labels(sched: SchedKind, red: bool) -> (&'static str, &'static str) {
    let s = match sched {
        SchedKind::Sp => "SP",
        SchedKind::Wfq => "WFQ",
        SchedKind::Drr => "DRR",
    };
    (s, if red { "RED" } else { "drop-tail" })
}

/// The trunk discipline of one ablation cell: the chosen scheduler with
/// default 8/3/1 weights, and optionally RED on best-effort plus the WRED
/// precedence ramp on AF.
pub fn qdisc_cell_queue(sched: SchedKind, red: bool) -> QueueCfg {
    let mut sc = match sched {
        SchedKind::Sp => SchedCfg::sp(),
        SchedKind::Wfq => SchedCfg::wfq(),
        SchedKind::Drr => SchedCfg::drr(),
    };
    if red {
        sc = sc
            .af(ClassCfg::new(150_000)
                .weight(3)
                .wred(RedCfg::wred_ramp(30_000, 120_000)))
            .be(ClassCfg::new(150_000)
                .weight(1)
                .red(RedCfg::new(30_000, 120_000)));
    }
    QueueCfg::Sched(sc)
}

/// Run one ablation cell. The workload is identical across the matrix;
/// only `GarnetCfg::core_queue` varies, so differences in goodput and SLO
/// misses are attributable to the discipline alone.
pub fn qdisc_ablation_cell(
    sched: SchedKind,
    red: bool,
    cfg: QdiscAblationCfg,
    trace_capacity: usize,
) -> (QdiscCell, RunMetrics) {
    let garnet = GarnetCfg {
        core_queue: qdisc_cell_queue(sched, red),
        ..GarnetCfg::default()
    };
    let mut lab = GarnetLab::new(garnet, 0.7);
    arm_trace(&mut lab, trace_capacity);
    lab.add_contention(cfg.contention_bps, SimTime::ZERO, cfg.duration);
    let (psrc, pdst) = (lab.premium_src, lab.premium_dst);
    lab.with_gara(|g, net| {
        g.reserve(
            net,
            Request::Network(NetworkRequest {
                src: psrc,
                dst: pdst,
                proto: Proto::Tcp,
                src_port: None,
                dst_port: None,
                rate_bps: cfg.reservation_bps,
                depth: DepthRule::Normal,
                action: PolicingAction::Drop,
                shape_at_source: false,
            }),
            StartSpec::Now,
            None,
        )
        .expect("ablation reservation admitted");
    });
    if trace_capacity > 0 {
        lab.sim.net.set_deadline_matching(
            FlowSpec::host_pair(psrc, pdst, Proto::Tcp),
            PREMIUM_DEADLINE,
        );
    }
    let tcp = TcpCfg {
        send_buf: 512 * 1024,
        recv_buf: 512 * 1024,
        ..TcpCfg::default()
    };
    let (rx, meter) = MeteredTcpReceiver::new(6000, tcp, SimDelta::from_secs(1));
    lab.sim.spawn_app(pdst, Box::new(rx));
    lab.sim.spawn_app(
        psrc,
        Box::new(PacedTcpSender::new(pdst, 6000, cfg.app_rate_bps, tcp)),
    );
    lab.run_until(cfg.duration);
    let metrics = collect_metrics(&mut lab);
    let counter = |name: &str| lab.sim.net.obs.metrics.counter_value(name).unwrap_or(0);
    let m = std::rc::Rc::try_unwrap(meter)
        .map(|c| c.into_inner())
        .unwrap_or_else(|rc| rc.borrow().clone());
    let series = m.finish(cfg.duration);
    let half = cfg.duration.as_secs_f64() / 2.0;
    let cell = QdiscCell {
        sched,
        red,
        premium_kbps: phase_mean(&series, half, cfg.duration.as_secs_f64()),
        slo_misses: counter("slo.misses"),
        tail_drops: counter("net.drops.queue_full").saturating_sub(counter("net.drops.red_early")),
        red_early_drops: counter("net.drops.red_early"),
        events: metrics.events,
    };
    (cell, metrics)
}

/// The full SP/WFQ/DRR × drop-tail/RED matrix, in a fixed order. Returns
/// the six cells plus the metrics snapshot of the WFQ × RED cell (the
/// matrix's designated `results/qdisc_ablation/metrics.json` source).
pub fn qdisc_ablation_matrix(cfg: QdiscAblationCfg) -> (Vec<QdiscCell>, RunMetrics) {
    let mut cells = Vec::new();
    let mut designated = None;
    for sched in [SchedKind::Sp, SchedKind::Wfq, SchedKind::Drr] {
        for red in [false, true] {
            let (cell, metrics) = qdisc_ablation_cell(sched, red, cfg, TRACE_CAPACITY);
            if sched == SchedKind::Wfq && red {
                designated = Some(metrics);
            }
            cells.push(cell);
        }
    }
    (
        cells,
        designated.expect("matrix includes the WFQ × RED cell"),
    )
}

// ---------------------------------------------------------------------
// §3 anecdote — the finite-difference application whose bursts defeat an
// "average-rate" reservation
// ---------------------------------------------------------------------

/// Which QoS the boundary ranks request for their intercommunicator.
#[derive(Debug, Clone, Copy)]
pub enum Sec3Qos {
    None,
    /// Premium at the given app rate (Kb/s), with the given bucket rule.
    Premium {
        kbps: f64,
        depth: DepthRule,
        shaped: bool,
    },
}

#[derive(Debug, Clone, Copy)]
pub struct Sec3Cfg {
    pub ranks_per_site: usize,
    pub halo_bytes: u32,
    /// Compute time per iteration; with the paper's numbers (100 KB halo,
    /// 0.8 s compute) the average WAN rate is 1 Mb/s.
    pub compute: SimDelta,
    pub iterations: u32,
    pub wan_bps: u64,
    pub qos: Sec3Qos,
    /// Add best-effort UDP contention across the WAN.
    pub contention: bool,
}

impl Default for Sec3Cfg {
    fn default() -> Self {
        Sec3Cfg {
            ranks_per_site: 8,
            halo_bytes: 100_000,
            compute: SimDelta::from_millis(800),
            iterations: 30,
            wan_bps: 10_000_000,
            qos: Sec3Qos::None,
            contention: false,
        }
    }
}

/// Result: steady iteration rate vs the rate compute time alone allows.
#[derive(Debug, Clone, Copy)]
pub struct Sec3Out {
    pub iterations_done: usize,
    pub steady_iters_per_sec: f64,
    pub ideal_iters_per_sec: f64,
}

pub fn sec3_finite_difference(cfg: Sec3Cfg) -> Sec3Out {
    use mpichgq_apps::{
        steady_iteration_rate, StencilCfg, StencilRank, TwoSites, UdpBlaster, UdpSink,
    };

    let mut ts = TwoSites::build(
        cfg.ranks_per_site,
        cfg.wan_bps,
        SimTime::from_millis(5),
        0.7,
    );
    let horizon =
        SimTime::from_secs_f64(cfg.iterations as f64 * cfg.compute.as_secs_f64() * 8.0 + 20.0);
    if cfg.contention {
        let (sink, _m) = UdpSink::new(20_000, SimDelta::from_secs(1));
        let sink_host = ts.site_b[cfg.ranks_per_site - 1];
        let src_host = ts.site_a[cfg.ranks_per_site - 1];
        ts.sim.spawn_app(sink_host, Box::new(sink));
        ts.sim.spawn_app(
            src_host,
            Box::new(UdpBlaster::with_rate(
                sink_host,
                20_000,
                1472,
                cfg.wan_bps * 12 / 10,
            )),
        );
    }

    let agent_cfg = match cfg.qos {
        Sec3Qos::Premium { depth, shaped, .. } => QosAgentCfg {
            depth_rule: depth,
            shape_at_source: shaped,
            ..sweep_agent_cfg()
        },
        Sec3Qos::None => sweep_agent_cfg(),
    };
    let (mut builder, env) = enable_qos(JobBuilder::new(), agent_cfg);
    let qos = match cfg.qos {
        Sec3Qos::Premium { kbps, .. } => Some((env, QosAttribute::premium(kbps, cfg.halo_bytes))),
        Sec3Qos::None => None,
    };
    let scfg = StencilCfg {
        ranks: cfg.ranks_per_site * 2,
        iterations: cfg.iterations,
        halo_bytes: cfg.halo_bytes,
        compute: cfg.compute,
    };
    let (ranks, log) = StencilRank::job(scfg, qos);
    for (host, rank) in ts.hosts().into_iter().zip(ranks) {
        builder = builder.rank(host, Box::new(rank));
    }
    builder.cfg(era_mpi()).launch(&mut ts.sim);
    run_env_windowed(&mut ts.sim, horizon);

    let iterations_done = log.borrow().len();
    // A run that never finished its iterations has no steady state: the
    // intra-burst rate over the completed tail wildly overstates a flow
    // that stalls for tens of seconds between bursts. Report the
    // effective pace over the whole horizon instead.
    let steady_iters_per_sec = if iterations_done < cfg.iterations as usize {
        iterations_done as f64 / horizon.as_secs_f64()
    } else {
        steady_iteration_rate(&log)
    };
    Sec3Out {
        iterations_done,
        steady_iters_per_sec,
        ideal_iters_per_sec: 1.0 / cfg.compute.as_secs_f64(),
    }
}

// ---------------------------------------------------------------------
// Chaos ranks — rolling rank failures + a correlated two-host outage
// while surviving premium flows hold their SLO (fig_chaos_ranks)
// ---------------------------------------------------------------------

/// Configuration of the rank-failure chaos experiment.
///
/// `pairs` premium checkpoint/restart streamer pairs (one two-rank MPI
/// job each) share a two-router trunk with the paper's best-effort
/// contention blaster. The fault plan is the MPICH-G2 multi-site
/// reality: a *rolling* schedule crashes and restarts the first
/// [`ChaosRanksCfg::rolling_crashes`] sender hosts one at a time, then
/// one *correlated* outage takes both hosts of the last pair down at
/// once (a site dropping off the grid). Every pair holds a GARA premium
/// reservation and a [`PREMIUM_DEADLINE`] delivery deadline scored by
/// the SLO layer; the first pair's reservation is owned by an
/// [`AdaptiveFlow`] bound to its sender host, so the run exercises the
/// crash-release → restart-re-reserve adaptation path end to end.
///
/// Every rank is restartable: senders checkpoint the next sequence
/// number after each acked frame, receivers checkpoint their expected
/// sequence number, and both resume from [`Mpi::restored`] after a
/// `HostRestart` — the stop-and-wait ack protocol dedups the replayed
/// frame, so each receiver observes every sequence number exactly once.
#[derive(Debug, Clone, Copy)]
pub struct ChaosRanksCfg {
    /// Premium streamer pairs (sender at site A, receiver at site B).
    pub pairs: usize,
    /// Payload of one streamed frame (sequence number + padding).
    pub frame_bytes: u32,
    /// Pacing between acked frames (also the retry backoff while a
    /// peer is down).
    pub frame_interval: SimDelta,
    /// Per-pair premium reservation.
    pub reserve_bps: u64,
    pub trunk_bps: u64,
    pub trunk_delay: SimDelta,
    /// Offered best-effort contention load (over trunk capacity).
    pub contention_bps: u64,
    pub contention_at: SimTime,
    /// How many sender hosts the rolling plan crashes (pairs `0..n`,
    /// strictly fewer than `pairs` so the correlated pair is distinct).
    pub rolling_crashes: usize,
    pub first_crash_at: SimTime,
    pub crash_spacing: SimDelta,
    /// Down time of each rolling crash before its `HostRestart`.
    pub outage: SimDelta,
    /// When both hosts of the last pair fail together.
    pub correlated_at: SimTime,
    pub correlated_outage: SimDelta,
    pub duration: SimTime,
    /// Seed of the fault layer's private RNG.
    pub seed: u64,
    pub scheduler: SchedulerKind,
}

impl Default for ChaosRanksCfg {
    fn default() -> Self {
        ChaosRanksCfg {
            pairs: 6,
            frame_bytes: 12_500,
            frame_interval: SimDelta::from_millis(50),
            reserve_bps: 3_000_000,
            trunk_bps: 100_000_000,
            trunk_delay: SimDelta::from_millis(2),
            contention_bps: 130_000_000,
            contention_at: SimTime::from_secs(1),
            rolling_crashes: 3,
            first_crash_at: SimTime::from_secs(4),
            crash_spacing: SimDelta::from_secs(3),
            outage: SimDelta::from_secs(2),
            correlated_at: SimTime::from_secs(15),
            correlated_outage: SimDelta::from_millis(2_500),
            duration: SimTime::from_secs(24),
            seed: 29,
            scheduler: SchedulerKind::default(),
        }
    }
}

impl ChaosRanksCfg {
    /// The compressed schedule the `--fast` CI job and the tier-1 shape
    /// tests share (same stages, shorter phases, fewer pairs).
    pub fn fast() -> ChaosRanksCfg {
        ChaosRanksCfg {
            pairs: 4,
            rolling_crashes: 2,
            contention_at: SimTime::from_millis(500),
            first_crash_at: SimTime::from_secs(2),
            crash_spacing: SimDelta::from_secs(2),
            outage: SimDelta::from_millis(1_200),
            correlated_at: SimTime::from_millis(6_500),
            correlated_outage: SimDelta::from_millis(1_500),
            duration: SimTime::from_secs(11),
            ..ChaosRanksCfg::default()
        }
    }
}

/// Per-pair scorecard of one chaos-ranks run.
#[derive(Debug, Clone, Copy)]
pub struct PairScore {
    pub pair: usize,
    /// Frames the receiver accepted in order (across incarnations).
    pub frames: u64,
    /// Data-direction packets delivered / delivered past deadline.
    pub delivered: u64,
    pub misses: u64,
    /// ≥99% of deliveries on time, and the pair actually streamed.
    pub slo_met: bool,
    /// Whether the fault plan touched this pair's hosts.
    pub crashed: bool,
    /// Incarnation counts (0 = never restarted).
    pub sender_epoch: u32,
    pub receiver_epoch: u32,
}

/// What the rolling-failure run did, read back from the SLO layer, the
/// fault layer, the adaptation agent, and the MPI engine's counters.
#[derive(Debug, Clone)]
pub struct ChaosRanksOutcome {
    pub scores: Vec<PairScore>,
    /// Pairs meeting their SLO; every pair survives the plan (all
    /// crashed hosts restart), so the denominator is `scores.len()`.
    pub pairs_meeting_slo: usize,
    pub slo_fraction: f64,
    pub checkpoints: u64,
    pub reqs_failed: u64,
    pub unexpected_dropped: u64,
    /// Final `mpi.unexpected.depth` gauge: a leak shows up as non-zero.
    pub unexpected_depth: f64,
    pub crash_releases: u64,
    pub restart_rereserves: u64,
    pub grants: u64,
    pub faults: FaultStats,
}

const CR_TAG_DATA: u32 = 40;
const CR_TAG_ACK: u32 = 41;
const CR_TIMER: u32 = 1;

fn cr_seq(payload: &[u8]) -> u64 {
    u64::from_le_bytes(payload[..8].try_into().expect("8-byte header"))
}

/// Restartable stop-and-wait frame streamer (rank 0 of a pair): sends
/// `frame_bytes` frames paced at `interval`, checkpoints the next
/// sequence number after each ack, resumes from the checkpoint after a
/// restart, and backs off by one interval whenever the peer is down.
fn chaos_ranks_sender(frame_bytes: u32, interval: SimDelta) -> ProgramFactory {
    use std::rc::Rc;
    Rc::new(move || {
        let mut cur: Option<u64> = None;
        let mut send: Option<ReqId> = None;
        let mut ack: Option<ReqId> = None;
        let mut waiting = false;
        Box::new(move |mpi: &mut Mpi| {
            mpi.set_errhandler(COMM_WORLD, ErrorHandler::Return);
            if cur.is_none() {
                cur = Some(mpi.restored().map_or(0, |b| cr_seq(&b)));
            }
            loop {
                if waiting {
                    if !mpi.take_timer(CR_TIMER) {
                        return Poll::Pending;
                    }
                    waiting = false;
                }
                let seq = cur.expect("restored above");
                if send.is_none() && ack.is_none() {
                    let mut frame = vec![0u8; frame_bytes as usize];
                    frame[..8].copy_from_slice(&seq.to_le_bytes());
                    send = Some(mpi.isend_bytes(COMM_WORLD, 1, CR_TAG_DATA, frame));
                    ack = Some(mpi.irecv(COMM_WORLD, Some(1), Some(CR_TAG_ACK)));
                }
                if let Some(s) = send {
                    match mpi.test_result(s) {
                        Ok(None) => {}
                        Ok(Some(_)) | Err(_) => send = None,
                    }
                }
                match mpi.test_result(ack.expect("posted with send")) {
                    Ok(Some(info)) => {
                        ack = None;
                        let acked = cr_seq(&info.payload.expect("eager ack"));
                        // A stale ack (a pre-crash duplicate) is ignored;
                        // the current frame is simply retried.
                        if acked >= seq {
                            cur = Some(acked + 1);
                            mpi.checkpoint((acked + 1).to_le_bytes().to_vec());
                        }
                        mpi.set_timer(interval, CR_TIMER);
                        waiting = true;
                    }
                    Ok(None) => return Poll::Pending,
                    Err(_) => {
                        // Peer down: requests to it fail fast, so pace the
                        // retries with the frame interval.
                        send = None;
                        ack = None;
                        mpi.set_timer(interval, CR_TIMER);
                        waiting = true;
                    }
                }
            }
        }) as Box<dyn MpiProgram>
    })
}

/// Restartable receiver (rank 1): accepts in-order frames, checkpoints
/// the expected sequence number, and acks duplicates so a replayed
/// frame unsticks the sender after either side restarts.
fn chaos_ranks_receiver(
    pair: usize,
    progress: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
) -> ProgramFactory {
    use std::rc::Rc;
    Rc::new(move || {
        let progress = progress.clone();
        let mut expected: Option<u64> = None;
        let mut recv: Option<ReqId> = None;
        let mut acks: Vec<ReqId> = Vec::new();
        Box::new(move |mpi: &mut Mpi| {
            mpi.set_errhandler(COMM_WORLD, ErrorHandler::Return);
            if expected.is_none() {
                expected = Some(mpi.restored().map_or(0, |b| cr_seq(&b)));
            }
            acks.retain(|&a| matches!(mpi.test_result(a), Ok(None)));
            loop {
                if recv.is_none() {
                    recv = Some(mpi.irecv(COMM_WORLD, Some(0), Some(CR_TAG_DATA)));
                }
                match mpi.test_result(recv.expect("just posted")) {
                    Ok(Some(info)) => {
                        recv = None;
                        let s = cr_seq(&info.payload.expect("frame payload"));
                        let e = expected.expect("restored above");
                        if s == e {
                            expected = Some(e + 1);
                            mpi.checkpoint((e + 1).to_le_bytes().to_vec());
                            let mut p = progress.borrow_mut();
                            p[pair] = p[pair].max(e + 1);
                        }
                        acks.push(mpi.isend_bytes(
                            COMM_WORLD,
                            0,
                            CR_TAG_ACK,
                            s.to_le_bytes().to_vec(),
                        ));
                    }
                    Ok(None) => return Poll::Pending,
                    Err(_) => {
                        // Sender down: the next arrival (from its next
                        // incarnation) re-polls this program.
                        recv = None;
                        return Poll::Pending;
                    }
                }
            }
        }) as Box<dyn MpiProgram>
    })
}

/// Run the chaos-ranks experiment with the standard (environment-driven)
/// windowing; see [`chaos_ranks_run_windowed`] for the explicit-window
/// variant the determinism tests compare against.
pub fn chaos_ranks_run(
    cfg: ChaosRanksCfg,
    trace_capacity: usize,
) -> (RunMetrics, ChaosRanksOutcome) {
    chaos_ranks_inner(cfg, trace_capacity, env_timeline_interval(), None)
}

/// [`chaos_ranks_run`] driven through the parallel engine's lock-step
/// lookahead windows of the given width. The lab topology is a single
/// shard, so the result must be bit-identical to the plain run — the
/// 1-vs-N-threads determinism guarantee the CI smoke job rides on.
pub fn chaos_ranks_run_windowed(
    cfg: ChaosRanksCfg,
    trace_capacity: usize,
    window: SimDelta,
) -> (RunMetrics, ChaosRanksOutcome) {
    chaos_ranks_inner(cfg, trace_capacity, env_timeline_interval(), Some(window))
}

fn chaos_ranks_inner(
    cfg: ChaosRanksCfg,
    trace_capacity: usize,
    timeline: Option<SimDelta>,
    window: Option<SimDelta>,
) -> (RunMetrics, ChaosRanksOutcome) {
    use mpichgq_apps::{UdpBlaster, UdpSink};
    use std::cell::RefCell;
    use std::rc::Rc;

    assert!(cfg.pairs >= 2, "need at least two pairs");
    assert!(
        cfg.rolling_crashes < cfg.pairs,
        "rolling plan must leave the correlated pair distinct"
    );

    // Two sites around one trunk: senders (and the contention source) at
    // site A, receivers (and the sink) at site B. Gigabit access links
    // keep the trunk the bottleneck.
    let mut b = TopoBuilder::new(0xC4A05);
    let srcs: Vec<NodeId> = (0..cfg.pairs).map(|i| b.host(&format!("s{i}"))).collect();
    let csrc = b.host("cx");
    let ra = b.router("ra");
    let rb = b.router("rb");
    let dsts: Vec<NodeId> = (0..cfg.pairs).map(|i| b.host(&format!("d{i}"))).collect();
    let cdst = b.host("cy");
    let access = LinkCfg {
        bandwidth_bps: 1_000_000_000,
        delay: SimDelta::from_micros(20),
        framing: Framing::Ethernet,
    };
    for &h in srcs.iter().chain([&csrc]) {
        b.link(h, ra, access, QueueCfg::priority_default());
    }
    for &h in dsts.iter().chain([&cdst]) {
        b.link(h, rb, access, QueueCfg::priority_default());
    }
    let trunk = LinkCfg {
        bandwidth_bps: cfg.trunk_bps,
        delay: cfg.trunk_delay,
        framing: Framing::Ethernet,
    };
    b.link(ra, rb, trunk, QueueCfg::priority_default());
    let mut sim = Sim::new(b.build());
    let mut gara = Gara::new();
    gara.manage_core_links(&sim.net, 0.7);
    install_gara(&mut sim.stack, gara);

    // Observability: flight recorder + timeline sampler as configured,
    // and lifecycle tracing unconditionally — the SLO scorecard *is*
    // this experiment's figure of merit.
    if trace_capacity > 0 {
        sim.net.obs.enable_trace(trace_capacity);
    }
    sim.net.enable_packet_tracing();
    if let Some(interval) = timeline {
        sim.net.enable_timeline(interval);
    }
    for i in 0..cfg.pairs {
        sim.net.set_deadline_matching(
            FlowSpec::host_pair(srcs[i], dsts[i], Proto::Tcp),
            PREMIUM_DEADLINE,
        );
    }

    // Contention: the paper's best-effort blaster, offered above trunk
    // capacity so the BE queue stays persistently full.
    let (sink, _meter) = UdpSink::new(20_000, SimDelta::from_secs(1));
    sim.spawn_app(cdst, Box::new(sink));
    sim.spawn_app(
        csrc,
        Box::new(
            UdpBlaster::with_rate(cdst, 20_000, 1472, cfg.contention_bps)
                .window(cfg.contention_at, cfg.duration),
        ),
    );

    // Premium reservations: pair 0 through the adaptive agent (bound to
    // its crash-scheduled sender host), the rest as static grants.
    let flow = AdaptiveFlow::install(
        &mut sim,
        NetworkRequest {
            src: srcs[0],
            dst: dsts[0],
            proto: Proto::Tcp,
            src_port: None,
            dst_port: None,
            rate_bps: cfg.reserve_bps,
            depth: DepthRule::Normal,
            action: PolicingAction::Drop,
            shape_at_source: false,
        },
        SimTime::from_millis(300),
        AdaptPolicy {
            min_rate_bps: cfg.reserve_bps / 2,
            ..AdaptPolicy::default()
        },
    );
    flow.bind_host(&mut sim, srcs[0]);
    for i in 1..cfg.pairs {
        let mut g = sim.stack.take_service::<Gara>().expect("gara installed");
        g.reserve(
            &mut sim.net,
            Request::Network(NetworkRequest {
                src: srcs[i],
                dst: dsts[i],
                proto: Proto::Tcp,
                src_port: None,
                dst_port: None,
                rate_bps: cfg.reserve_bps,
                depth: DepthRule::Normal,
                action: PolicingAction::Drop,
                shape_at_source: false,
            }),
            StartSpec::Now,
            None,
        )
        .expect("static premium reservation admitted");
        sim.stack.put_service_box(g);
    }

    // The fault plan: rolling sender crashes, then the correlated
    // two-host outage of the last pair.
    let mut plan = FaultPlan::new(cfg.seed);
    for (k, &victim) in srcs.iter().enumerate().take(cfg.rolling_crashes) {
        let at = cfg.first_crash_at + cfg.crash_spacing * k as u64;
        plan = plan
            .at(at, FaultAction::HostCrash { host: victim })
            .at(at + cfg.outage, FaultAction::HostRestart { host: victim });
    }
    let last = cfg.pairs - 1;
    plan = plan
        .at(
            cfg.correlated_at,
            FaultAction::HostCrash { host: srcs[last] },
        )
        .at(
            cfg.correlated_at,
            FaultAction::HostCrash { host: dsts[last] },
        )
        .at(
            cfg.correlated_at + cfg.correlated_outage,
            FaultAction::HostRestart { host: srcs[last] },
        )
        .at(
            cfg.correlated_at + cfg.correlated_outage,
            FaultAction::HostRestart { host: dsts[last] },
        );
    sim.net.install_fault_plan(plan);

    // One two-rank restartable job per pair.
    let progress: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![0; cfg.pairs]));
    let mpi_cfg = mpichgq_mpi::MpiCfg {
        tcp: TcpCfg {
            send_buf: 256 * 1024,
            recv_buf: 256 * 1024,
            ..TcpCfg::default()
        },
        ..Default::default()
    };
    let jobs: Vec<JobHandle> = (0..cfg.pairs)
        .map(|i| {
            JobBuilder::new()
                .base_port(12_000 + (i as u16) * 16)
                .rank_restartable(
                    srcs[i],
                    chaos_ranks_sender(cfg.frame_bytes, cfg.frame_interval),
                )
                .rank_restartable(dsts[i], chaos_ranks_receiver(i, progress.clone()))
                .cfg(mpi_cfg.clone())
                .launch(&mut sim)
        })
        .collect();

    match window {
        Some(w) => mpichgq_netsim::run_windowed(&mut sim.net, &mut sim.stack, w, cfg.duration),
        None => run_env_windowed(&mut sim, cfg.duration),
    }

    let at = sim.net.now();
    sim.net.timeline_finalize(&mut sim.stack, at);
    let metrics = RunMetrics {
        events: sim.net.events_processed(),
        metrics_json: sim.net.metrics_json(),
        trace_json: sim.net.chrome_trace_json(),
        timeline_json: sim.net.timeline_json(),
    };

    // Scorecard: data-direction deliveries and deadline misses per pair,
    // from the SLO layer's per-flow ledger.
    let tracer = sim.net.packet_tracer().expect("tracing armed above");
    let scores: Vec<PairScore> = (0..cfg.pairs)
        .map(|i| {
            let (mut delivered, mut misses) = (0u64, 0u64);
            for f in tracer.flows() {
                if f.key.src == srcs[i] && f.key.dst == dsts[i] {
                    delivered += f.delivered;
                    misses += f.misses;
                }
            }
            let frames = progress.borrow()[i];
            PairScore {
                pair: i,
                frames,
                delivered,
                misses,
                slo_met: delivered > 0 && misses * 100 <= delivered,
                crashed: i < cfg.rolling_crashes || i == last,
                sender_epoch: jobs[i].epoch_of(0),
                receiver_epoch: jobs[i].epoch_of(1),
            }
        })
        .collect();
    let pairs_meeting_slo = scores.iter().filter(|s| s.slo_met).count();
    let counter = |name: &str| sim.net.obs.metrics.counter_value(name).unwrap_or(0);
    let outcome = ChaosRanksOutcome {
        slo_fraction: pairs_meeting_slo as f64 / scores.len() as f64,
        pairs_meeting_slo,
        checkpoints: counter("mpi.checkpoints"),
        reqs_failed: counter("mpi.reqs_failed"),
        unexpected_dropped: counter("mpi.unexpected_dropped"),
        unexpected_depth: sim
            .net
            .obs
            .metrics
            .gauge_value("mpi.unexpected.depth")
            .unwrap_or(0.0),
        crash_releases: counter("agent.crash_releases"),
        restart_rereserves: counter("agent.restart_rereserves"),
        grants: counter("agent.grants"),
        faults: sim.net.fault_stats().unwrap_or_default(),
        scores,
    };
    (metrics, outcome)
}
