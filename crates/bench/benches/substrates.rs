//! Microbenchmarks of the simulation substrates: the event engine, the
//! DiffServ mechanisms, and GARA's slot tables. These bound how much
//! simulated traffic the experiment harnesses can push per wall-clock
//! second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mpichgq_gara::SlotTable;
use mpichgq_netsim::{
    Classifier, Dscp, FlowSpec, NodeId, Packet, PolicingAction, Proto, Queue, QueueCfg,
    TokenBucket, L4,
};
use mpichgq_sim::{Engine, SimTime};
use std::hint::black_box;

fn pkt(sport: u16) -> Packet {
    Packet {
        src: NodeId(0),
        dst: NodeId(1),
        src_port: sport,
        dst_port: 80,
        dscp: Dscp::BestEffort,
        l4: L4::Udp,
        payload_len: 1472,
        id: 0,
        born: SimTime::ZERO,
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/schedule_pop_100k", |b| {
        b.iter(|| {
            let mut e: Engine<u32> = Engine::new();
            for i in 0..100_000u32 {
                e.schedule(
                    SimTime::from_nanos((i as u64 * 2_654_435_761) % 1_000_000_000),
                    i,
                );
            }
            let mut acc = 0u64;
            while let Some((_, v)) = e.pop() {
                acc += v as u64;
            }
            black_box(acc)
        })
    });
}

fn bench_token_bucket(c: &mut Criterion) {
    c.bench_function("diffserv/token_bucket_1m_consumes", |b| {
        b.iter(|| {
            let mut tb = TokenBucket::new(100_000_000, 1_000_000);
            let mut ok = 0u32;
            for i in 0..1_000_000u64 {
                if tb.try_consume(SimTime::from_nanos(i * 1000), 1500) {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
}

fn bench_classifier(c: &mut Criterion) {
    // 16 installed flows; packets match the last rule (worst case).
    c.bench_function("diffserv/classifier_16rules_100k_pkts", |b| {
        b.iter_batched(
            || {
                let mut cl = Classifier::new();
                for i in 0..16u16 {
                    cl.install(
                        FlowSpec::exact(NodeId(0), NodeId(1), Proto::Udp, 1000 + i, 80),
                        Dscp::Ef,
                        Some(TokenBucket::new(10_000_000, 100_000)),
                        PolicingAction::Drop,
                    );
                }
                cl
            },
            |mut cl| {
                let mut fwd = 0u32;
                for i in 0..100_000u64 {
                    let mut p = pkt(1015);
                    if cl.classify(SimTime::from_nanos(i * 1000), &mut p)
                        == mpichgq_netsim::Verdict::Forward
                    {
                        fwd += 1;
                    }
                }
                black_box(fwd)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_priority_queue(c: &mut Criterion) {
    c.bench_function("diffserv/priority_queue_100k_cycle", |b| {
        b.iter(|| {
            let mut q = Queue::new(QueueCfg::priority_default());
            let mut out = 0u32;
            for i in 0..100_000u32 {
                let mut p = pkt(1);
                p.dscp = if i % 4 == 0 {
                    Dscp::Ef
                } else {
                    Dscp::BestEffort
                };
                let _ = q.enqueue(p);
                if i % 2 == 0 && q.pop().is_some() {
                    out += 1;
                }
            }
            black_box(out)
        })
    });
}

fn bench_slot_table(c: &mut Criterion) {
    c.bench_function("gara/slot_table_1k_inserts_removes", |b| {
        b.iter(|| {
            let mut st = SlotTable::new(1_000_000);
            let mut ids = Vec::new();
            for i in 0..1_000u64 {
                let start = SimTime::from_secs(i % 97);
                let end = SimTime::from_secs(i % 97 + 3);
                if let Ok(id) = st.try_insert(start, end, 10_000) {
                    ids.push(id);
                }
                if ids.len() > 64 {
                    let id = ids.remove(0);
                    st.remove(id);
                }
            }
            black_box(st.len())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine, bench_token_bucket, bench_classifier, bench_priority_queue, bench_slot_table
);
criterion_main!(benches);
