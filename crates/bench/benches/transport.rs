//! Transport-level benchmarks: wall-clock cost of simulating TCP bulk
//! transfers and MPI exchanges (events per second of the whole stack).

use criterion::{criterion_group, criterion_main, Criterion};
use mpichgq_apps::PingPong;
use mpichgq_mpi::JobBuilder;
use mpichgq_netsim::topology::Dumbbell;
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::{App, Ctx, DataMode, Sim, SockId, TcpCfg};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

struct BulkTx {
    dst: mpichgq_netsim::NodeId,
    total: u64,
    sent: u64,
    sock: Option<SockId>,
}
impl App for BulkTx {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.sock = Some(ctx.tcp_connect(self.dst, 7000, TcpCfg::default(), DataMode::Counted));
    }
    fn on_connected(&mut self, _s: SockId, ctx: &mut Ctx) {
        self.pump(ctx);
    }
    fn on_writable(&mut self, _s: SockId, ctx: &mut Ctx) {
        self.pump(ctx);
    }
}
impl BulkTx {
    fn pump(&mut self, ctx: &mut Ctx) {
        let s = self.sock.unwrap();
        while self.sent < self.total {
            let n = ctx.send(s, (self.total - self.sent).min(16 * 1024));
            self.sent += n;
            if n == 0 {
                break;
            }
        }
    }
}
struct BulkRx {
    got: Rc<RefCell<u64>>,
}
impl App for BulkRx {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.tcp_listen(7000, TcpCfg::default(), DataMode::Counted);
    }
    fn on_readable(&mut self, s: SockId, ctx: &mut Ctx) {
        *self.got.borrow_mut() += ctx.recv(s, u64::MAX);
    }
}

fn bench_tcp_bulk(c: &mut Criterion) {
    c.bench_function("tcp/bulk_4mb_over_dumbbell", |b| {
        b.iter(|| {
            let d = Dumbbell::build(50_000_000, SimDelta::from_millis(2), 1);
            let (src, dst) = (d.src, d.dst);
            let mut sim = Sim::new(d.net);
            let got = Rc::new(RefCell::new(0u64));
            sim.spawn_app(dst, Box::new(BulkRx { got: got.clone() }));
            sim.spawn_app(
                src,
                Box::new(BulkTx {
                    dst,
                    total: 4_000_000,
                    sent: 0,
                    sock: None,
                }),
            );
            sim.run_until(SimTime::from_secs(10));
            let delivered = *got.borrow();
            assert_eq!(delivered, 4_000_000);
            black_box(sim.net.events_processed())
        })
    });
}

fn bench_mpi_pingpong(c: &mut Criterion) {
    c.bench_function("mpi/pingpong_4s_10kb", |b| {
        b.iter(|| {
            let d = Dumbbell::build(50_000_000, SimDelta::from_millis(1), 2);
            let (h0, h1) = (d.src, d.dst);
            let mut sim = Sim::new(d.net);
            let (p0, p1, result) = PingPong::pair(
                10_000,
                SimTime::from_millis(500),
                SimTime::from_secs(4),
                None,
            );
            let _job = JobBuilder::new()
                .rank(h0, Box::new(p0))
                .rank(h1, Box::new(p1))
                .launch(&mut sim);
            sim.run_until(SimTime::from_secs(4));
            let rounds = result.borrow().rounds;
            assert!(rounds > 100);
            black_box(rounds)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tcp_bulk, bench_mpi_pingpong
);
criterion_main!(benches);
