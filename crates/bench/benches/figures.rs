//! One representative point per paper table/figure, run at reduced scale,
//! so `cargo bench` exercises every experiment path and tracks its
//! wall-clock cost. The full-resolution regeneration lives in the
//! `src/bin/figN_*` harness binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use mpichgq_bench::*;
use mpichgq_netsim::DepthRule;
use mpichgq_sim::SimTime;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("figures/fig1_sawtooth_10s", |b| {
        b.iter(|| {
            let cfg = Fig1Cfg {
                duration: SimTime::from_secs(10),
                ..Fig1Cfg::default()
            };
            black_box(fig1_tcp_sawtooth(cfg).mean())
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("figures/fig5_point_120kb_9mbps", |b| {
        b.iter(|| {
            let mut cfg = Fig5Cfg::new(15_000, 9_000.0);
            cfg.duration = SimTime::from_secs(6);
            cfg.warmup = SimTime::from_secs(2);
            black_box(fig5_pingpong_point(cfg))
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("figures/fig6_point_30kb_2600", |b| {
        b.iter(|| {
            let mut cfg = Fig6Cfg::new(30_000, 10.0, 2_600.0);
            cfg.duration = SimTime::from_secs(8);
            black_box(fig6_viz_point(cfg))
        })
    });
}

fn bench_table1_cell(c: &mut Criterion) {
    c.bench_function("figures/table1_cell_800_1fps", |b| {
        b.iter(|| {
            let mut cfg = Fig6Cfg::new(100_000, 1.0, 1_200.0);
            cfg.depth_rule = DepthRule::Normal;
            cfg.duration = SimTime::from_secs(15);
            black_box(viz_delivery_ratio(cfg))
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("figures/fig7_trace_1s", |b| {
        b.iter(|| black_box(fig7_seq_trace(10.0, SimTime::from_secs(1)).len()))
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("figures/fig8_timeline_30s", |b| {
        b.iter(|| black_box(fig8_cpu_reservation(Fig8Cfg::default()).mean()))
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("figures/fig9_timeline_50s", |b| {
        b.iter(|| black_box(fig9_combined(Fig9Cfg::default()).mean()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig5, bench_fig6, bench_table1_cell, bench_fig7, bench_fig8, bench_fig9
);
criterion_main!(benches);
