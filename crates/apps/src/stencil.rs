//! The paper's §3 motivating example: a finite-difference application
//! "partitioned across two 8-processor multiprocessors connected by a wide
//! area network. A simple calculation of the total data volume exchanged by
//! the application suggests that the application maintains an average data
//! rate of 1 Mb/s. Yet if we configure our network to support a premium
//! flow at this rate, we find that things do not perform as we expect. The
//! application immediately performs an MPI_Send involving a large buffer
//! (100 KB), depleting the token bucket and causing packets to be dropped.
//! TCP kicks into slow start mode... The result is an extremely low
//! communication rate and an underutilized network."
//!
//! [`StencilRank`] is a 1-D halo-exchange stencil: each iteration, every
//! rank exchanges halos with its line neighbors, then computes. The two
//! boundary ranks communicate across the WAN through a *two-party
//! intercommunicator* — the communicator shape MPICH-GQ attaches QoS
//! attributes to (§4.1).

use mpichgq_core::{QosAttribute, QosEnv};
use mpichgq_mpi::{CommId, Mpi, MpiProgram, Poll, ReqId};
use mpichgq_sim::{SimDelta, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

const TAG_HALO: u32 = 0x57E;
const TIMER_COMPUTE: u32 = 3;

/// Stencil configuration (shared by every rank).
#[derive(Debug, Clone, Copy)]
pub struct StencilCfg {
    /// Total ranks; the site boundary is between `n/2 - 1` and `n/2`.
    pub ranks: usize,
    pub iterations: u32,
    /// Halo exchanged with each neighbor, per iteration, per direction.
    pub halo_bytes: u32,
    /// Wall-clock compute time per iteration (modeled as a timer; the §3
    /// example is communication-bound across the WAN).
    pub compute: SimDelta,
}

impl StencilCfg {
    pub fn boundary(&self) -> (usize, usize) {
        (self.ranks / 2 - 1, self.ranks / 2)
    }

    /// The cross-WAN application data rate if iterations run on schedule
    /// (one halo each way per iteration).
    pub fn wan_rate_bps(&self) -> f64 {
        self.halo_bytes as f64 * 8.0 / self.compute.as_secs_f64()
    }
}

/// Progress record: completion time of each iteration on rank 0.
pub type IterationLog = Rc<RefCell<Vec<SimTime>>>;

enum State {
    Init,
    Exchange,
    WaitExchange,
    Compute,
    Done,
}

/// One rank of the stencil.
pub struct StencilRank {
    cfg: StencilCfg,
    rank: usize,
    /// QoS attribute the *boundary* ranks put on their intercommunicator.
    qos: Option<(QosEnv, QosAttribute)>,
    log: IterationLog,
    state: State,
    iter: u32,
    inter: Option<CommId>,
    pending: Vec<ReqId>,
}

impl StencilRank {
    /// Build all rank programs plus the shared iteration log.
    pub fn job(
        cfg: StencilCfg,
        qos: Option<(QosEnv, QosAttribute)>,
    ) -> (Vec<StencilRank>, IterationLog) {
        assert!(
            cfg.ranks >= 2 && cfg.ranks.is_multiple_of(2),
            "even rank count ≥ 2"
        );
        let log: IterationLog = Rc::new(RefCell::new(Vec::new()));
        let ranks = (0..cfg.ranks)
            .map(|rank| StencilRank {
                cfg,
                rank,
                qos: qos.clone(),
                log: log.clone(),
                state: State::Init,
                iter: 0,
                inter: None,
                pending: Vec::new(),
            })
            .collect();
        (ranks, log)
    }

    fn neighbors(&self) -> Vec<usize> {
        let mut out = Vec::new();
        if self.rank > 0 {
            out.push(self.rank - 1);
        }
        if self.rank + 1 < self.cfg.ranks {
            out.push(self.rank + 1);
        }
        out
    }

    /// The communicator (and peer rank within it) used to reach `peer`.
    fn comm_for(&self, peer: usize, mpi: &Mpi) -> (CommId, usize) {
        let (lo, hi) = self.cfg.boundary();
        if (self.rank == lo && peer == hi) || (self.rank == hi && peer == lo) {
            // Across the WAN: the two-party intercommunicator; the remote
            // group has exactly one member.
            (self.inter.expect("intercomm created at init"), 0)
        } else {
            (mpi.comm_world(), peer)
        }
    }
}

impl MpiProgram for StencilRank {
    fn poll(&mut self, mpi: &mut Mpi) -> Poll {
        loop {
            match self.state {
                State::Init => {
                    let (lo, hi) = self.cfg.boundary();
                    if self.rank == lo || self.rank == hi {
                        let peer = if self.rank == lo { hi } else { lo };
                        let ic = mpi.intercomm_pair(peer);
                        self.inter = Some(ic);
                        if let Some((env, attr)) = self.qos.take() {
                            mpi.attr_put(ic, env.keyval(), Rc::new(attr));
                        }
                    }
                    self.state = State::Exchange;
                }
                State::Exchange => {
                    if self.iter == self.cfg.iterations {
                        self.state = State::Done;
                        continue;
                    }
                    for peer in self.neighbors() {
                        let (comm, peer_rank) = self.comm_for(peer, mpi);
                        self.pending
                            .push(mpi.irecv(comm, Some(peer_rank), Some(TAG_HALO)));
                        let s = mpi.isend(comm, peer_rank, TAG_HALO, self.cfg.halo_bytes);
                        self.pending.push(s);
                    }
                    self.state = State::WaitExchange;
                }
                State::WaitExchange => {
                    let mut i = 0;
                    while i < self.pending.len() {
                        if mpi.test(self.pending[i]).is_some() {
                            self.pending.swap_remove(i);
                        } else {
                            i += 1;
                        }
                    }
                    if !self.pending.is_empty() {
                        return Poll::Pending;
                    }
                    mpi.set_timer(self.cfg.compute, TIMER_COMPUTE);
                    self.state = State::Compute;
                }
                State::Compute => {
                    if !mpi.take_timer(TIMER_COMPUTE) {
                        return Poll::Pending;
                    }
                    self.iter += 1;
                    if self.rank == 0 {
                        self.log.borrow_mut().push(mpi.now());
                    }
                    self.state = State::Exchange;
                }
                State::Done => return Poll::Done,
            }
        }
    }
}

/// Iterations per second over the second half of the run (steady state).
pub fn steady_iteration_rate(log: &IterationLog) -> f64 {
    let log = log.borrow();
    if log.len() < 4 {
        return 0.0;
    }
    let mid = log.len() / 2;
    let span = log[log.len() - 1].since(log[mid]).as_secs_f64();
    if span <= 0.0 {
        return 0.0;
    }
    (log.len() - 1 - mid) as f64 / span
}
