//! The ping-pong benchmark (paper §5.2).
//!
//! "A simple 'ping-pong' program, in which two processes repeatedly
//! exchange a fixed-sized message via MPI_Send and MPI_Recv calls. While
//! artificial, this communication pattern is characteristic of many SPMD
//! applications."

use mpichgq_core::{QosAttribute, QosEnv};
use mpichgq_mpi::{Mpi, MpiProgram, Poll, ReqId};
use mpichgq_sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Measurement accumulated by rank 0.
#[derive(Debug, Clone, Default)]
pub struct PingPongResult {
    pub rounds: u64,
    pub bytes_each_way: u64,
    pub measure_start: Option<SimTime>,
    pub measure_end: Option<SimTime>,
}

impl PingPongResult {
    /// One-way throughput in Kb/s, as plotted in Figure 5 ("as the two
    /// processes exchange messages, total throughput — and reservation —
    /// is twice what is shown here").
    pub fn one_way_kbps(&self) -> f64 {
        let (Some(s), Some(e)) = (self.measure_start, self.measure_end) else {
            return 0.0;
        };
        let dur = e.since(s).as_secs_f64();
        if dur <= 0.0 {
            return 0.0;
        }
        self.bytes_each_way as f64 * 8.0 / 1_000.0 / dur
    }
}

/// One rank of the ping-pong pair. Rank 0 optionally installs a QoS
/// attribute before the exchange begins.
pub struct PingPong {
    msg_bytes: u32,
    warmup: SimTime,
    end: SimTime,
    qos: Option<(QosEnv, QosAttribute)>,
    result: Rc<RefCell<PingPongResult>>,
    state: State,
    send_req: Option<ReqId>,
    recv_req: Option<ReqId>,
}

enum State {
    Init,
    Exchanging,
    Finished,
}

const TAG: u32 = 0xBEEF;

impl PingPong {
    /// Build the two rank programs and the shared result handle.
    ///
    /// If `qos` is provided, *both* ranks put the attribute (each side
    /// reserves its outgoing direction, which is why the paper notes the
    /// total reservation is twice the one-way value).
    pub fn pair(
        msg_bytes: u32,
        warmup: SimTime,
        end: SimTime,
        qos: Option<(QosEnv, QosAttribute)>,
    ) -> (PingPong, PingPong, Rc<RefCell<PingPongResult>>) {
        let result = Rc::new(RefCell::new(PingPongResult::default()));
        let mk = || PingPong {
            msg_bytes,
            warmup,
            end,
            qos: qos.clone(),
            result: result.clone(),
            state: State::Init,
            send_req: None,
            recv_req: None,
        };
        (mk(), mk(), result)
    }

    fn peer(mpi: &Mpi) -> usize {
        1 - mpi.rank()
    }

    fn start_round(&mut self, mpi: &mut Mpi) {
        let w = mpi.comm_world();
        let peer = Self::peer(mpi);
        if mpi.rank() == 0 {
            self.send_req = Some(mpi.isend(w, peer, TAG, self.msg_bytes));
            self.recv_req = Some(mpi.irecv(w, Some(peer), Some(TAG)));
        } else {
            self.recv_req = Some(mpi.irecv(w, Some(peer), Some(TAG)));
        }
    }
}

impl MpiProgram for PingPong {
    fn poll(&mut self, mpi: &mut Mpi) -> Poll {
        loop {
            match self.state {
                State::Init => {
                    if let Some((env, attr)) = self.qos.take() {
                        let w = mpi.comm_world();
                        mpi.attr_put(w, env.keyval(), Rc::new(attr));
                    }
                    self.state = State::Exchanging;
                    self.start_round(mpi);
                }
                State::Exchanging => {
                    let now = mpi.now();
                    // Rank 1: echo every message back.
                    if mpi.rank() == 1 {
                        let Some(r) = self.recv_req else {
                            self.state = State::Finished;
                            continue;
                        };
                        match mpi.test(r) {
                            Some(info) => {
                                self.recv_req = None;
                                if now >= self.end {
                                    self.state = State::Finished;
                                    continue;
                                }
                                let w = mpi.comm_world();
                                mpi.isend(w, 0, TAG, info.len);
                                self.recv_req = Some(mpi.irecv(w, Some(0), Some(TAG)));
                            }
                            None => return Poll::Pending,
                        }
                        continue;
                    }
                    // Rank 0: measure completed rounds.
                    let Some(r) = self.recv_req else {
                        self.state = State::Finished;
                        continue;
                    };
                    match mpi.test(r) {
                        Some(_) => {
                            self.recv_req = None;
                            if let Some(s) = self.send_req.take() {
                                // Eager sends complete quickly; drain it.
                                let _ = mpi.test(s);
                            }
                            let mut res = self.result.borrow_mut();
                            if now >= self.warmup {
                                if res.measure_start.is_none() {
                                    res.measure_start = Some(now);
                                } else {
                                    res.rounds += 1;
                                    res.bytes_each_way += self.msg_bytes as u64;
                                }
                                res.measure_end = Some(now);
                            }
                            drop(res);
                            if now >= self.end {
                                self.state = State::Finished;
                                continue;
                            }
                            self.start_round(mpi);
                        }
                        None => return Poll::Pending,
                    }
                }
                State::Finished => return Poll::Done,
            }
        }
    }
}
