//! The distance-visualization pipeline (paper §5.3).
//!
//! "An MPI program designed to emulate a distance visualization pipeline.
//! The program communicates a stream of fixed-sized messages from a sender
//! to a receiver at a fixed rate; both the rate ('frames per second') and
//! the message size ('frame size') can be adjusted, hence varying both the
//! generated bandwidth and the burstiness of the traffic."
//!
//! Per §5.5's lesson, the sender can also "do some 'work' between sending
//! frames" — CPU work scheduled through the host's DSRT model — which is
//! what makes it sensitive to CPU contention (Figures 8 and 9).

use mpichgq_core::{QosAttribute, QosEnv};
use mpichgq_mpi::{Mpi, MpiProgram, Poll, ReqId};
use mpichgq_sim::{SimDelta, SimTime, ThroughputMeter, TimeSeries};
use std::cell::RefCell;
use std::rc::Rc;

const TAG: u32 = 0xF00D;
const TIMER_FRAME: u32 = 1;

/// Sender parameters.
#[derive(Debug, Clone, Copy)]
pub struct VizCfg {
    pub frame_bytes: u32,
    /// Frames per second the application *attempts*.
    pub fps: f64,
    /// CPU time to "render" each frame (zero = the paper's original,
    /// inaccurate sleep-only simulation).
    pub work_per_frame: SimDelta,
    pub start: SimTime,
    pub end: SimTime,
}

impl VizCfg {
    pub fn interval(&self) -> SimDelta {
        SimDelta::from_secs_f64(1.0 / self.fps)
    }

    /// Attempted application bandwidth in bits/s.
    pub fn target_bps(&self) -> u64 {
        (self.frame_bytes as f64 * 8.0 * self.fps).round() as u64
    }
}

/// Sender-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct VizSendStats {
    pub frames_sent: u64,
    /// Frames whose send started later than their schedule (backpressure).
    pub frames_late: u64,
}

/// The sending rank: render (CPU work) → blocking send → wait for the next
/// frame boundary.
pub struct VizSender {
    cfg: VizCfg,
    qos: Option<(QosEnv, QosAttribute)>,
    stats: Rc<RefCell<VizSendStats>>,
    state: SendState,
    next_deadline: SimTime,
    send_req: Option<ReqId>,
    /// Filled at startup so scenario scripts can make CPU reservations for
    /// this process (Figures 8–9).
    proc_out: Rc<RefCell<Option<mpichgq_dsrt::ProcId>>>,
}

enum SendState {
    Init,
    WaitStart,
    Render,
    WaitWork,
    WaitSend,
    WaitFrameBoundary,
    Finished,
}

impl VizSender {
    #[allow(clippy::type_complexity)]
    pub fn new(
        cfg: VizCfg,
        qos: Option<(QosEnv, QosAttribute)>,
    ) -> (
        VizSender,
        Rc<RefCell<VizSendStats>>,
        Rc<RefCell<Option<mpichgq_dsrt::ProcId>>>,
    ) {
        let stats = Rc::new(RefCell::new(VizSendStats::default()));
        let proc_out = Rc::new(RefCell::new(None));
        (
            VizSender {
                cfg,
                qos,
                stats: stats.clone(),
                state: SendState::Init,
                next_deadline: cfg.start,
                send_req: None,
                proc_out: proc_out.clone(),
            },
            stats,
            proc_out,
        )
    }
}

impl MpiProgram for VizSender {
    fn poll(&mut self, mpi: &mut Mpi) -> Poll {
        loop {
            match self.state {
                SendState::Init => {
                    *self.proc_out.borrow_mut() = Some(mpi.cpu_proc());
                    if let Some((env, attr)) = self.qos.take() {
                        let w = mpi.comm_world();
                        mpi.attr_put(w, env.keyval(), Rc::new(attr));
                    }
                    let wait = self.cfg.start.since(mpi.now());
                    mpi.set_timer(wait, TIMER_FRAME);
                    self.state = SendState::WaitStart;
                }
                SendState::WaitStart => {
                    if !mpi.take_timer(TIMER_FRAME) {
                        return Poll::Pending;
                    }
                    self.next_deadline = mpi.now();
                    self.state = SendState::Render;
                }
                SendState::Render => {
                    if mpi.now() >= self.cfg.end {
                        self.state = SendState::Finished;
                        continue;
                    }
                    if self.cfg.work_per_frame.is_zero() {
                        self.state = SendState::WaitSend;
                        self.send_frame(mpi);
                    } else {
                        mpi.cpu_work(self.cfg.work_per_frame);
                        self.state = SendState::WaitWork;
                    }
                }
                SendState::WaitWork => {
                    if !mpi.take_cpu_done() {
                        return Poll::Pending;
                    }
                    self.send_frame(mpi);
                    self.state = SendState::WaitSend;
                }
                SendState::WaitSend => {
                    // Blocking-send semantics: wait until TCP accepted the
                    // whole frame before scheduling the next one.
                    let Some(r) = self.send_req else {
                        self.state = SendState::WaitFrameBoundary;
                        continue;
                    };
                    match mpi.test(r) {
                        Some(_) => {
                            self.send_req = None;
                            self.state = SendState::WaitFrameBoundary;
                        }
                        None => return Poll::Pending,
                    }
                }
                SendState::WaitFrameBoundary => {
                    self.next_deadline += self.cfg.interval();
                    let now = mpi.now();
                    if now >= self.next_deadline {
                        // Running behind schedule: produce immediately.
                        self.stats.borrow_mut().frames_late += 1;
                        self.state = SendState::Render;
                    } else {
                        mpi.set_timer(self.next_deadline.since(now), TIMER_FRAME);
                        self.state = SendState::WaitStart;
                    }
                }
                SendState::Finished => return Poll::Done,
            }
        }
    }
}

impl VizSender {
    fn send_frame(&mut self, mpi: &mut Mpi) {
        let w = mpi.comm_world();
        self.send_req = Some(mpi.isend(w, 1, TAG, self.cfg.frame_bytes));
        self.stats.borrow_mut().frames_sent += 1;
    }
}

/// The receiving rank: drains frames and meters achieved bandwidth, like
/// the paper's "Bandwidth Achieved (Kb/s)" traces.
pub struct VizReceiver {
    meter: Rc<RefCell<ThroughputMeter>>,
    frames: Rc<RefCell<u64>>,
    end: SimTime,
    req: Option<ReqId>,
}

impl VizReceiver {
    pub fn new(
        bucket: SimDelta,
        end: SimTime,
    ) -> (VizReceiver, Rc<RefCell<ThroughputMeter>>, Rc<RefCell<u64>>) {
        let meter = Rc::new(RefCell::new(ThroughputMeter::new(bucket)));
        let frames = Rc::new(RefCell::new(0));
        (
            VizReceiver {
                meter: meter.clone(),
                frames: frames.clone(),
                end,
                req: None,
            },
            meter,
            frames,
        )
    }
}

impl MpiProgram for VizReceiver {
    fn poll(&mut self, mpi: &mut Mpi) -> Poll {
        loop {
            if mpi.now() >= self.end {
                return Poll::Done;
            }
            if self.req.is_none() {
                let w = mpi.comm_world();
                self.req = Some(mpi.irecv(w, Some(0), Some(TAG)));
            }
            match mpi.test(self.req.unwrap()) {
                Some(info) => {
                    self.req = None;
                    self.meter.borrow_mut().on_bytes(mpi.now(), info.len as u64);
                    *self.frames.borrow_mut() += 1;
                }
                None => return Poll::Pending,
            }
        }
    }
}

/// Summary of one visualization run.
#[derive(Debug, Clone)]
pub struct VizRun {
    pub series: TimeSeries,
    pub frames_received: u64,
    pub achieved_kbps_steady: f64,
}

/// Finish a receiver meter into a run summary. `steady_from`/`steady_to`
/// bound the window over which the steady-state average is computed.
pub fn finish_viz(
    meter: Rc<RefCell<ThroughputMeter>>,
    frames: Rc<RefCell<u64>>,
    end: SimTime,
    steady_from: SimTime,
    steady_to: SimTime,
) -> VizRun {
    let meter = Rc::try_unwrap(meter)
        .map(|c| c.into_inner())
        .unwrap_or_else(|rc| rc.borrow().clone());
    let series = meter.finish(end);
    VizRun {
        achieved_kbps_steady: series.mean_in(steady_from, steady_to),
        series,
        frames_received: *frames.borrow(),
    }
}
