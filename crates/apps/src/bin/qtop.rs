//! Summarize or validate a sampled timeline document.
//!
//! ```text
//! qtop <timeline.json>            print the series/burn-rate report
//! qtop --check <timeline.json>    validate timeline shape (CI gate)
//! qtop --top N <timeline.json>    bound each ranked table to N rows
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut top = 15usize;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--top" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("qtop: --top needs a number");
                    return ExitCode::from(2);
                };
                top = n;
            }
            "-h" | "--help" => {
                println!("usage: qtop [--check] [--top N] <timeline.json>");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(a),
            other => {
                eprintln!("qtop: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: qtop [--check] [--top N] <timeline.json>");
        return ExitCode::from(2);
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qtop: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if check {
        match mpichgq_apps::qtop::check(&json) {
            Ok(()) => {
                println!("{path}: timeline shape OK");
                ExitCode::SUCCESS
            }
            Err(errs) => {
                eprintln!("{path}: {} problem(s):", errs.len());
                for e in &errs {
                    eprintln!("  {e}");
                }
                ExitCode::FAILURE
            }
        }
    } else {
        match mpichgq_apps::qtop::summarize(&json, top) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("qtop: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
