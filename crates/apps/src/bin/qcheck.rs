//! Deterministic scenario fuzzer + invariant auditor driver.
//!
//! ```text
//! qcheck                             fuzz seeds 0..200
//! qcheck --seeds 0..500              fuzz a seed range
//! qcheck --seed 17                   run one seed, verbose
//! qcheck --inject-bug karn           arm a deliberate bug (must fail)
//! qcheck --replay results/qcheck/repro-17.json
//! qcheck --out DIR                   artifact directory (default results/qcheck)
//! qcheck --threads 4                 determinism self-test: every seed must
//!                                    fingerprint identically at 1 and N threads
//! ```
//!
//! On a violation: shrink to a minimal knob vector, write
//! `repro-<seed>.json`, verify the artifact replays bit-identically, exit
//! nonzero. A summary (`summary.json`) is written either way;
//! `scripts/check_metrics.py` validates its schema in CI.

use mpichgq_qcheck::{
    parse_repro, replay, repro_json, run_par_scenario, run_spec, run_spec_threads, shrink,
    summary_json, Inject, RunOutcome, ScenarioSpec,
};
use std::process::ExitCode;

struct Args {
    seeds: std::ops::Range<u64>,
    inject: Inject,
    out_dir: String,
    replay_path: Option<String>,
    shrink_budget: usize,
    threads: usize,
    verbose: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: qcheck [--seeds A..B | --seed N] [--inject-bug karn] \
         [--out DIR] [--shrink-budget N] [--threads N] [--replay FILE] [-v]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        seeds: 0..200,
        inject: Inject::default(),
        out_dir: "results/qcheck".to_string(),
        replay_path: None,
        shrink_budget: 60,
        threads: 1,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                let Some(spec) = it.next() else {
                    return Err(usage());
                };
                let Some((a, b)) = spec.split_once("..") else {
                    return Err(usage());
                };
                match (a.parse(), b.parse()) {
                    (Ok(lo), Ok(hi)) if lo < hi => args.seeds = lo..hi,
                    _ => return Err(usage()),
                }
            }
            "--seed" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    return Err(usage());
                };
                args.seeds = n..n + 1;
                args.verbose = true;
            }
            "--inject-bug" => match it.next().as_deref() {
                Some("karn") => args.inject.karn = true,
                _ => {
                    eprintln!("qcheck: known bugs: karn");
                    return Err(ExitCode::from(2));
                }
            },
            "--out" => {
                let Some(d) = it.next() else {
                    return Err(usage());
                };
                args.out_dir = d;
            }
            "--shrink-budget" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    return Err(usage());
                };
                args.shrink_budget = n;
            }
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    return Err(usage());
                };
                if n == 0 {
                    eprintln!("qcheck: --threads must be >= 1");
                    return Err(ExitCode::from(2));
                }
                args.threads = n;
            }
            "--replay" => {
                let Some(p) = it.next() else {
                    return Err(usage());
                };
                args.replay_path = Some(p);
            }
            "-v" | "--verbose" => args.verbose = true,
            "-h" | "--help" => {
                usage();
                return Err(ExitCode::SUCCESS);
            }
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn do_replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("qcheck: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let repro = match parse_repro(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qcheck: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rep = replay(&repro);
    println!(
        "replay seed {} [{}]: invariant {} fingerprint {:#018x} (expected {:#018x})",
        repro.spec.seed,
        if rep.ok() { "OK" } else { "MISMATCH" },
        if rep.same_invariant {
            "re-failed"
        } else {
            "LOST"
        },
        rep.outcome.fingerprint,
        repro.fingerprint,
    );
    if rep.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    if let Some(path) = &args.replay_path {
        return do_replay(path);
    }

    let n = args.seeds.end - args.seeds.start;
    let mut outcomes: Vec<RunOutcome> = Vec::with_capacity(n as usize);
    let mut failures = 0usize;
    if std::fs::create_dir_all(&args.out_dir).is_err() {
        eprintln!("qcheck: cannot create {}", args.out_dir);
        return ExitCode::FAILURE;
    }
    let mut determinism_breaks = 0usize;
    for seed in args.seeds.clone() {
        let spec = ScenarioSpec::from_seed(seed);
        let out = run_spec(&spec, &args.inject);
        // Determinism self-test: the same seed driven through the parallel
        // engine's windowed schedule must land on the same FNV fingerprint.
        // Any divergence is a parallel-engine bug, not a scenario bug.
        if args.threads > 1 {
            let par = run_spec_threads(&spec, &args.inject, args.threads);
            if par.fingerprint != out.fingerprint || par.events != out.events {
                determinism_breaks += 1;
                eprintln!(
                    "seed {seed}: DETERMINISM BREAK — 1 thread {:#018x} ({} events) \
                     vs {} threads {:#018x} ({} events)",
                    out.fingerprint, out.events, args.threads, par.fingerprint, par.events
                );
            }
            let mono = run_par_scenario(seed, 1);
            let multi = run_par_scenario(seed, args.threads);
            if (mono.fingerprint, mono.events) != (multi.fingerprint, multi.events) {
                determinism_breaks += 1;
                eprintln!(
                    "seed {seed}: PARTITIONED DETERMINISM BREAK — {} shards, \
                     1 thread {:#018x} vs {} threads {:#018x}",
                    mono.shards, mono.fingerprint, args.threads, multi.fingerprint
                );
            }
        }
        if args.verbose {
            println!(
                "seed {seed}: events {} sent {} delivered {} {}",
                out.events,
                out.sent,
                out.delivered,
                if out.ok() { "clean" } else { "VIOLATION" }
            );
        }
        if !out.ok() {
            failures += 1;
            let v = &out.violations[0];
            eprintln!("seed {seed}: {} — {}", v.invariant, v.detail);
            let shrunk = shrink(&spec, &args.inject, &v.invariant, args.shrink_budget);
            let artifact = repro_json(&shrunk.outcome);
            let path = format!("{}/repro-{seed}.json", args.out_dir);
            if let Err(e) = std::fs::write(&path, &artifact) {
                eprintln!("qcheck: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            // Prove the artifact is replayable before asking a human to.
            let repro = parse_repro(&artifact).expect("own artifact parses");
            let rep = replay(&repro);
            eprintln!(
                "seed {seed}: shrunk to {:?} in {} runs; artifact {path} replay {}",
                shrunk.spec.knobs,
                shrunk.runs_spent,
                if rep.ok() { "verified" } else { "UNSTABLE" }
            );
        }
        outcomes.push(out);
    }
    let summary = summary_json(&outcomes);
    let spath = format!("{}/summary.json", args.out_dir);
    if let Err(e) = std::fs::write(&spath, &summary) {
        eprintln!("qcheck: cannot write {spath}: {e}");
        return ExitCode::FAILURE;
    }
    let total_events: u64 = outcomes.iter().map(|o| o.events).sum();
    if args.threads > 1 {
        println!(
            "qcheck: determinism self-test at {} threads: {} seeds, {} breaks",
            args.threads, n, determinism_breaks
        );
    }
    println!(
        "qcheck: {} seeds, {} failures, {} events -> {}",
        n, failures, total_events, spath
    );
    if failures == 0 && determinism_breaks == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
