//! Summarize or validate a packet-lifecycle Chrome trace.
//!
//! ```text
//! qtrace <trace.json>            print the latency/SLO report
//! qtrace --check <trace.json>    validate trace shape (CI gate)
//! qtrace --top N <trace.json>    bound the flow table to N rows
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut top = 10usize;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--top" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("qtrace: --top needs a number");
                    return ExitCode::from(2);
                };
                top = n;
            }
            "-h" | "--help" => {
                println!("usage: qtrace [--check] [--top N] <trace.json>");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(a),
            other => {
                eprintln!("qtrace: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: qtrace [--check] [--top N] <trace.json>");
        return ExitCode::from(2);
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qtrace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if check {
        match mpichgq_apps::qtrace::check(&json) {
            Ok(()) => {
                println!("{path}: trace shape OK");
                ExitCode::SUCCESS
            }
            Err(errs) => {
                eprintln!("{path}: {} problem(s):", errs.len());
                for e in &errs {
                    eprintln!("  {e}");
                }
                ExitCode::FAILURE
            }
        }
    } else {
        match mpichgq_apps::qtrace::summarize(&json, top) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("qtrace: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
