//! Offline analysis of sampled timeline documents.
//!
//! `Net::timeline_json` exports the fixed-interval time-series document
//! (`results/<exp>/timeline.json`) the in-run sampler records: named
//! counter and gauge series with delta-encoded timestamps. This module
//! turns that document into a human-readable report:
//!
//! * per-series summary tables (counters ranked by total increase,
//!   gauges by peak),
//! * the SLO burn-rate report (peak fast/slow-window burn, time spent
//!   above the alert threshold),
//! * peak attribution: when each hot series hit its maximum.
//!
//! [`summarize`] produces the report; [`check`] validates the document's
//! shape for CI (the `qtop --check` gate). Both are deterministic:
//! identical input bytes produce identical output bytes (stable sort
//! keys, shortest-round-trip float formatting), so reports can be
//! snapshot-tested.

use mpichgq_obs::parse;

/// Series flavor, mirroring `obs::timeseries::SeriesKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
}

/// One decoded series: absolute timestamps plus counter or gauge values.
struct SeriesView {
    name: String,
    kind: Kind,
    t: Vec<u64>,
    u: Vec<u64>,
    f: Vec<f64>,
}

/// Validate a timeline document's structure. Returns every problem found
/// (empty vector = conformant). This is the `qtop --check` CI gate.
///
/// Checked invariants: version tag, positive sampling interval,
/// name-sorted non-empty series map, per-series delta arrays of matching
/// length with strictly positive time deltas (timestamps strictly
/// increase), and non-negative counter deltas (counters are monotone).
pub fn check(json: &str) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let doc = match parse(json) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    if doc.get("timeline").and_then(|v| v.as_u64()) != Some(1) {
        errs.push("missing or unknown timeline version (want 1)".into());
    }
    match doc.get("interval_ns").and_then(|v| v.as_u64()) {
        Some(i) if i > 0 => {}
        _ => errs.push("interval_ns missing or zero".into()),
    }
    let Some(series) = doc.get("series").and_then(|v| v.members()) else {
        errs.push("missing series object".into());
        return Err(errs);
    };
    if series.is_empty() {
        errs.push("series object is empty (sampler never ticked?)".into());
    }
    for pair in series.windows(2) {
        if pair[0].0 >= pair[1].0 {
            errs.push(format!(
                "series names not strictly sorted: {:?} then {:?}",
                pair[0].0, pair[1].0
            ));
        }
    }
    for (name, s) in series {
        let kind = match s.get("kind").and_then(|v| v.as_str()) {
            Some("counter") => Kind::Counter,
            Some("gauge") => Kind::Gauge,
            other => {
                errs.push(format!("series {name}: unknown kind {other:?}"));
                continue;
            }
        };
        let Some(dt) = s.get("dt_ns").and_then(|v| v.as_array()) else {
            errs.push(format!("series {name}: missing dt_ns"));
            continue;
        };
        let t0 = s.get("t0_ns").and_then(|v| v.as_u64());
        if t0.is_none() {
            errs.push(format!("series {name}: empty (null t0_ns)"));
            continue;
        }
        if dt.iter().any(|d| !matches!(d.as_u64(), Some(d) if d > 0)) {
            errs.push(format!(
                "series {name}: dt_ns has a non-positive entry (timestamps must strictly increase)"
            ));
        }
        match kind {
            Kind::Counter => {
                if s.get("v0").and_then(|v| v.as_u64()).is_none() {
                    errs.push(format!("series {name}: counter without v0"));
                }
                match s.get("dv").and_then(|v| v.as_array()) {
                    None => errs.push(format!("series {name}: counter without dv")),
                    Some(dv) => {
                        if dv.len() != dt.len() {
                            errs.push(format!(
                                "series {name}: dv length {} != dt_ns length {}",
                                dv.len(),
                                dt.len()
                            ));
                        }
                        if dv.iter().any(|d| d.as_u64().is_none()) {
                            errs.push(format!(
                                "series {name}: dv has a negative or non-integer entry \
                                 (counters are monotone)"
                            ));
                        }
                    }
                }
            }
            Kind::Gauge => match s.get("values").and_then(|v| v.as_array()) {
                None => errs.push(format!("series {name}: gauge without values")),
                Some(vals) => {
                    if vals.len() != dt.len() + 1 {
                        errs.push(format!(
                            "series {name}: values length {} != sample count {}",
                            vals.len(),
                            dt.len() + 1
                        ));
                    }
                    if vals.iter().any(|v| v.as_f64().is_none()) {
                        errs.push(format!("series {name}: non-numeric gauge value"));
                    }
                }
            },
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Decode the document into `(interval_ns, series)` with absolute
/// timestamps and values reconstructed from the delta encoding.
fn decode(json: &str) -> Result<(u64, Vec<SeriesView>), String> {
    let doc = parse(json)?;
    let interval = doc
        .get("interval_ns")
        .and_then(|v| v.as_u64())
        .ok_or("missing interval_ns")?;
    let members = doc
        .get("series")
        .and_then(|v| v.members())
        .ok_or("missing series object")?;
    let mut out = Vec::with_capacity(members.len());
    for (name, s) in members {
        let kind = match s.get("kind").and_then(|v| v.as_str()) {
            Some("counter") => Kind::Counter,
            Some("gauge") => Kind::Gauge,
            other => return Err(format!("series {name}: unknown kind {other:?}")),
        };
        let mut view = SeriesView {
            name: name.clone(),
            kind,
            t: Vec::new(),
            u: Vec::new(),
            f: Vec::new(),
        };
        if let Some(t0) = s.get("t0_ns").and_then(|v| v.as_u64()) {
            view.t.push(t0);
            for d in s.get("dt_ns").and_then(|v| v.as_array()).unwrap_or(&[]) {
                let d = d.as_u64().ok_or_else(|| format!("series {name}: bad dt"))?;
                view.t.push(view.t.last().unwrap() + d);
            }
            match kind {
                Kind::Counter => {
                    let v0 = s
                        .get("v0")
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| format!("series {name}: counter without v0"))?;
                    view.u.push(v0);
                    for d in s.get("dv").and_then(|v| v.as_array()).unwrap_or(&[]) {
                        let d = d.as_u64().ok_or_else(|| format!("series {name}: bad dv"))?;
                        view.u.push(view.u.last().unwrap() + d);
                    }
                    if view.u.len() != view.t.len() {
                        return Err(format!("series {name}: counter length mismatch"));
                    }
                }
                Kind::Gauge => {
                    for v in s.get("values").and_then(|v| v.as_array()).unwrap_or(&[]) {
                        view.f.push(
                            v.as_f64()
                                .ok_or_else(|| format!("series {name}: bad gauge value"))?,
                        );
                    }
                    if view.f.len() != view.t.len() {
                        return Err(format!("series {name}: gauge length mismatch"));
                    }
                }
            }
        }
        out.push(view);
    }
    Ok((interval, out))
}

/// Render the timeline report. `top` bounds each ranked table (0 = all).
pub fn summarize(json: &str, top: usize) -> Result<String, String> {
    let (interval, series) = decode(json)?;
    let max_samples = series.iter().map(|s| s.t.len()).max().unwrap_or(0);
    let t_min = series.iter().filter_map(|s| s.t.first()).min().copied();
    let t_max = series.iter().filter_map(|s| s.t.last()).max().copied();
    let span = match (t_min, t_max) {
        (Some(a), Some(b)) => b - a,
        _ => 0,
    };
    let mut out = String::new();
    out.push_str(&format!(
        "timeline: {} series, {} samples max, interval {}, span {}\n",
        series.len(),
        max_samples,
        fmt_ns(interval),
        fmt_ns(span),
    ));

    // --- Counters by total increase --------------------------------------
    let mut counters: Vec<&SeriesView> =
        series.iter().filter(|s| s.kind == Kind::Counter).collect();
    counters.sort_by(|a, b| total(b).cmp(&total(a)).then(a.name.cmp(&b.name)));
    let shown = bound(top, counters.len());
    if shown > 0 {
        out.push_str(&format!(
            "\ncounters by total increase ({shown} of {}):\n",
            counters.len()
        ));
        out.push_str(
            "  series                                 samples       last      total  max_step\n",
        );
        for s in counters.iter().take(shown) {
            let max_step = s.u.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
            out.push_str(&format!(
                "  {:<38} {:>7} {:>10} {:>10} {:>9}\n",
                s.name,
                s.t.len(),
                s.u.last().copied().unwrap_or(0),
                total(s),
                max_step,
            ));
        }
    }

    // --- Gauges by peak ---------------------------------------------------
    let mut gauges: Vec<&SeriesView> = series.iter().filter(|s| s.kind == Kind::Gauge).collect();
    gauges.sort_by(|a, b| {
        peak(b)
            .total_cmp(&peak(a))
            .then_with(|| a.name.cmp(&b.name))
    });
    let shown = bound(top, gauges.len());
    if shown > 0 {
        out.push_str(&format!(
            "\ngauges by peak ({shown} of {}):\n",
            gauges.len()
        ));
        out.push_str(
            "  series                                 samples       last       peak  at\n",
        );
        for s in gauges.iter().take(shown) {
            let (pv, pt) = peak_at(s);
            out.push_str(&format!(
                "  {:<38} {:>7} {:>10} {:>10}  {}\n",
                s.name,
                s.t.len(),
                fmt_f64(s.f.last().copied().unwrap_or(0.0)),
                fmt_f64(pv),
                fmt_ns(pt),
            ));
        }
    }

    // --- SLO burn-rate report ---------------------------------------------
    out.push_str("\nSLO burn rate:\n");
    match series.iter().find(|s| s.name == "slo.misses") {
        Some(m) => out.push_str(&format!(
            "  slo.misses: {} total\n",
            m.u.last().copied().unwrap_or(0)
        )),
        None => out.push_str("  slo.misses: series absent (no deadline tracking)\n"),
    }
    let mut any_burn = false;
    for (label, name) in [("fast", "slo.burn.fast"), ("slow", "slo.burn.slow")] {
        if let Some(s) = series.iter().find(|s| s.name == name) {
            any_burn = true;
            let (pv, pt) = peak_at(s);
            let hot = s.f.iter().filter(|&&v| v >= 1.0).count();
            out.push_str(&format!(
                "  {label} window: peak {}x budget at {}; {hot} sample(s) >= 1.0x (~{})\n",
                fmt_f64(pv),
                fmt_ns(pt),
                fmt_ns(hot as u64 * interval),
            ));
        }
    }
    if !any_burn {
        out.push_str("  burn series absent (sampler ran without lifecycle tracking)\n");
    }
    Ok(out)
}

/// Total increase of a counter over the run.
fn total(s: &SeriesView) -> u64 {
    match (s.u.first(), s.u.last()) {
        (Some(a), Some(b)) => b - a,
        _ => 0,
    }
}

/// Peak value of a gauge (0.0 when empty).
fn peak(s: &SeriesView) -> f64 {
    s.f.iter().copied().fold(0.0f64, f64::max)
}

/// Peak gauge value and the timestamp of its first occurrence.
fn peak_at(s: &SeriesView) -> (f64, u64) {
    let p = peak(s);
    let at =
        s.f.iter()
            .position(|&v| v == p)
            .and_then(|i| s.t.get(i))
            .copied()
            .unwrap_or(0);
    (p, at)
}

/// Table row bound: `top == 0` means all rows.
fn bound(top: usize, len: usize) -> usize {
    if top == 0 {
        len
    } else {
        top.min(len)
    }
}

/// Format a gauge value with Rust's shortest-round-trip float display
/// (deterministic, byte-stable).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Format nanoseconds with an SI unit, integer math only (byte-stable).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!(
            "{}.{:03}s",
            ns / 1_000_000_000,
            (ns % 1_000_000_000) / 1_000_000
        )
    } else if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else if ns >= 1_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpichgq_obs::Timeline;

    fn sample_doc() -> String {
        let mut tl = Timeline::new(100);
        tl.push_counter("slo.misses", 100, 0);
        tl.push_counter("slo.misses", 200, 3);
        tl.push_counter("net.pkts.delivered", 100, 10);
        tl.push_counter("net.pkts.delivered", 200, 30);
        tl.push_gauge("iface000.backlog_bytes", 100, 0.0);
        tl.push_gauge("iface000.backlog_bytes", 200, 1500.0);
        tl.push_gauge("slo.burn.fast", 200, 2.5);
        tl.to_json()
    }

    #[test]
    fn sampler_output_passes_check() {
        assert_eq!(check(&sample_doc()), Ok(()));
    }

    #[test]
    fn summarize_reports_counters_gauges_and_burn() {
        let report = summarize(&sample_doc(), 0).unwrap();
        assert!(report.contains("4 series"));
        assert!(report.contains("slo.misses: 3 total"));
        assert!(report.contains("net.pkts.delivered"));
        assert!(report.contains("iface000.backlog_bytes"));
        assert!(report.contains("fast window: peak 2.5x budget"));
        // Deterministic: same bytes in, same bytes out.
        assert_eq!(report, summarize(&sample_doc(), 0).unwrap());
    }

    #[test]
    fn check_catches_shape_violations() {
        let json = r#"{"timeline":1,"interval_ns":100,"series":{"b":{"kind":"counter","t0_ns":5,"dt_ns":[0],"v0":1,"dv":[2,3]},"a":{"kind":"gauge","t0_ns":null,"dt_ns":[],"values":[]}}}"#;
        let errs = check(json).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not strictly sorted")));
        assert!(errs.iter().any(|e| e.contains("non-positive entry")));
        assert!(errs.iter().any(|e| e.contains("dv length")));
        assert!(errs.iter().any(|e| e.contains("empty (null t0_ns)")));
    }

    #[test]
    fn check_rejects_missing_series() {
        assert!(check(r#"{"timeline":1,"interval_ns":100}"#).is_err());
        assert!(check(r#"{"timeline":2,"interval_ns":100,"series":{}}"#).is_err());
    }
}
