//! # mpichgq-apps — the paper's workloads
//!
//! * [`pingpong`] — the §5.2 ping-pong benchmark (Figure 5);
//! * [`viz`] — the §5.3 distance-visualization pipeline with configurable
//!   frame rate, frame size, and per-frame CPU work (Figures 6–9, Table 1);
//! * [`traffic`] — the UDP contention generator, its sink, and the paced
//!   TCP sender of Figure 1;
//! * [`scenario`] — GARNET lab assembly and mid-run action scripting (the
//!   reservation timelines of Figures 8–9);
//! * [`stencil`] — the §3 motivating finite-difference application: halo
//!   exchange across two sites through a two-party intercommunicator;
//! * [`qtrace`] — offline analysis of packet-lifecycle Chrome traces (the
//!   `qtrace` binary: flow latency tables, per-hop delay decomposition,
//!   SLO reports);
//! * [`qtop`] — offline analysis of sampled timeline documents (the
//!   `qtop` binary: per-series summary tables, SLO burn-rate report,
//!   peak attribution, and the `--check` CI shape gate).

pub mod pingpong;
pub mod qtop;
pub mod qtrace;
pub mod scenario;
pub mod stencil;
pub mod traffic;
pub mod viz;

pub use pingpong::{PingPong, PingPongResult};
pub use scenario::{env_threads, run_env_windowed, GarnetLab, Scheduler, TwoSites};
pub use stencil::{steady_iteration_rate, IterationLog, StencilCfg, StencilRank};
pub use traffic::{MeteredTcpReceiver, PacedTcpSender, UdpBlaster, UdpSink};
pub use viz::{finish_viz, VizCfg, VizReceiver, VizRun, VizSendStats, VizSender};
