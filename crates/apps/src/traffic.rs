//! Traffic generators: the UDP contention source ("contention is generated
//! via a UDP traffic generator that is quite capable of overwhelming any
//! TCP application that does not have a reservation", §5.2), its sink, and
//! the plain paced TCP sender used for Figure 1.

use mpichgq_netsim::NodeId;
use mpichgq_sim::{SimDelta, SimTime, ThroughputMeter};
use mpichgq_tcp::{App, Ctx, DataMode, SockId, TcpCfg};
use std::cell::RefCell;
use std::rc::Rc;

/// Constant-bit-rate UDP blaster with optional start/stop times and
/// inter-packet jitter (to avoid deterministic phase-locking against other
/// periodic sources — real generators are never perfectly periodic).
pub struct UdpBlaster {
    pub dst: NodeId,
    pub dport: u16,
    pub payload: u32,
    pub interval: SimDelta,
    /// Uniform jitter as a fraction of the interval (0.0 = strict CBR).
    pub jitter: f64,
    /// Source port to bind; two blasters on one host need distinct ports.
    pub sport: u16,
    pub start_at: SimTime,
    pub stop_at: SimTime,
    sock: Option<SockId>,
}

impl UdpBlaster {
    /// A blaster offering `rate_bps` of UDP with `payload`-byte datagrams.
    pub fn with_rate(dst: NodeId, dport: u16, payload: u32, rate_bps: u64) -> UdpBlaster {
        let interval = SimDelta::transmission((payload + 28) as u64, rate_bps);
        UdpBlaster {
            dst,
            dport,
            payload,
            interval,
            jitter: 0.1,
            sport: 59_999,
            start_at: SimTime::ZERO,
            stop_at: SimTime::MAX,
            sock: None,
        }
    }

    pub fn window(mut self, start: SimTime, stop: SimTime) -> UdpBlaster {
        self.start_at = start;
        self.stop_at = stop;
        self
    }

    pub fn sport(mut self, sport: u16) -> UdpBlaster {
        self.sport = sport;
        self
    }

    fn arm(&self, ctx: &mut Ctx) {
        let mut d = self.interval;
        if self.jitter > 0.0 {
            // Uniform in [interval - span, interval + span].
            let span = ((self.interval.as_nanos() as f64 * self.jitter) as u64)
                .min(self.interval.as_nanos());
            if span > 0 {
                let off = ctx.net.rng.below(2 * span + 1);
                d = SimDelta::from_nanos(self.interval.as_nanos() - span + off);
            }
        }
        ctx.set_timer(d, 0);
    }
}

impl App for UdpBlaster {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.sock = Some(ctx.udp_bind(self.sport));
        let wait = self.start_at.since(ctx.now());
        ctx.set_timer(wait, 0);
    }
    fn on_timer(&mut self, _t: u32, ctx: &mut Ctx) {
        let now = ctx.now();
        if now >= self.stop_at {
            return;
        }
        if now >= self.start_at {
            ctx.udp_send(self.sock.unwrap(), self.dst, self.dport, self.payload);
        }
        self.arm(ctx);
    }
}

/// Counts received UDP payload bytes into a shared meter.
pub struct UdpSink {
    pub port: u16,
    pub meter: Rc<RefCell<ThroughputMeter>>,
}

impl UdpSink {
    pub fn new(port: u16, bucket: SimDelta) -> (UdpSink, Rc<RefCell<ThroughputMeter>>) {
        let meter = Rc::new(RefCell::new(ThroughputMeter::new(bucket)));
        (
            UdpSink {
                port,
                meter: meter.clone(),
            },
            meter,
        )
    }
}

impl App for UdpSink {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.udp_bind(self.port);
    }
    fn on_udp(&mut self, _s: SockId, _from: (NodeId, u16), len: u32, ctx: &mut Ctx) {
        self.meter.borrow_mut().on_bytes(ctx.now(), len as u64);
    }
}

/// Figure 1's workload: "a simple TCP program that is attempting to send
/// data at approximately 50 Mb/s over a congested network". The sender
/// paces application writes at `target_bps`; TCP (and the reservation
/// policer) decide what actually gets through.
pub struct PacedTcpSender {
    pub dst: NodeId,
    pub dport: u16,
    pub target_bps: u64,
    pub chunk: u64,
    pub cfg: TcpCfg,
    pub stop_at: SimTime,
    sock: Option<SockId>,
    /// Bytes the pacing schedule has released but TCP hasn't accepted.
    backlog: u64,
    connected: bool,
}

impl PacedTcpSender {
    pub fn new(dst: NodeId, dport: u16, target_bps: u64, cfg: TcpCfg) -> PacedTcpSender {
        PacedTcpSender {
            dst,
            dport,
            target_bps,
            chunk: 16 * 1024,
            cfg,
            stop_at: SimTime::MAX,
            sock: None,
            backlog: 0,
            connected: false,
        }
    }

    fn interval(&self) -> SimDelta {
        SimDelta::transmission(self.chunk, self.target_bps)
    }

    fn pump(&mut self, ctx: &mut Ctx) {
        let sock = self.sock.unwrap();
        while self.backlog > 0 {
            let n = ctx.send(sock, self.backlog);
            self.backlog -= n;
            if n == 0 {
                break;
            }
        }
    }
}

impl App for PacedTcpSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.sock = Some(ctx.tcp_connect(self.dst, self.dport, self.cfg, DataMode::Counted));
    }
    fn on_connected(&mut self, _s: SockId, ctx: &mut Ctx) {
        self.connected = true;
        ctx.set_timer(self.interval(), 0);
    }
    fn on_timer(&mut self, _t: u32, ctx: &mut Ctx) {
        if ctx.now() >= self.stop_at {
            return;
        }
        self.backlog += self.chunk;
        self.pump(ctx);
        ctx.set_timer(self.interval(), 0);
    }
    fn on_writable(&mut self, _s: SockId, ctx: &mut Ctx) {
        self.pump(ctx);
    }
}

/// TCP receiver recording goodput into a shared meter.
pub struct MeteredTcpReceiver {
    pub port: u16,
    pub cfg: TcpCfg,
    pub meter: Rc<RefCell<ThroughputMeter>>,
}

impl MeteredTcpReceiver {
    pub fn new(
        port: u16,
        cfg: TcpCfg,
        bucket: SimDelta,
    ) -> (MeteredTcpReceiver, Rc<RefCell<ThroughputMeter>>) {
        let meter = Rc::new(RefCell::new(ThroughputMeter::new(bucket)));
        (
            MeteredTcpReceiver {
                port,
                cfg,
                meter: meter.clone(),
            },
            meter,
        )
    }
}

impl App for MeteredTcpReceiver {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.tcp_listen(self.port, self.cfg, DataMode::Counted);
    }
    fn on_readable(&mut self, sock: SockId, ctx: &mut Ctx) {
        let n = ctx.recv(sock, u64::MAX);
        self.meter.borrow_mut().on_bytes(ctx.now(), n);
    }
}
