//! Offline analysis of packet-lifecycle traces.
//!
//! `Net::chrome_trace_json` exports a Chrome trace-event document (loadable
//! in Perfetto) whose `otherData` block carries per-flow delay/jitter
//! histogram snapshots and the SLO conformance table. This module turns
//! that document into a human-readable report:
//!
//! * top flows ranked by p99 one-way delay,
//! * per-hop delay decomposition (queue / serialization / wire per channel),
//! * the SLO report (deadlines, misses, worst streaks).
//!
//! [`summarize`] produces the report; [`check`] validates the document's
//! shape for CI. Both are deterministic: identical input bytes produce
//! identical output bytes (integer-only formatting, stable sort keys), so
//! the report can be snapshot-tested.

use mpichgq_obs::{parse, JsonValue};
use std::collections::BTreeMap;

/// Per-channel accumulated hop timing (from complete spans).
#[derive(Debug, Default, Clone, Copy)]
struct HopAgg {
    queue_ns: u64,
    queue_n: u64,
    tx_ns: u64,
    tx_n: u64,
    wire_ns: u64,
    wire_n: u64,
}

/// Validate a trace document's structure. Returns every problem found
/// (empty vector = conformant). This is the `qtrace --check` CI gate.
pub fn check(json: &str) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let doc = match parse(json) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    let Some(events) = doc.get("traceEvents").and_then(|v| v.as_array()) else {
        return Err(vec!["missing traceEvents array".into()]);
    };
    let mut named_pids: Vec<u64> = Vec::new();
    let mut used_pids: Vec<u64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        let pid = ev.get("pid").and_then(|v| v.as_u64());
        if ev.get("name").and_then(|v| v.as_str()).is_none() {
            errs.push(format!("event {i}: missing name"));
        }
        let Some(pid) = pid else {
            errs.push(format!("event {i}: missing pid"));
            continue;
        };
        match ph {
            "M" => named_pids.push(pid),
            "X" => {
                used_pids.push(pid);
                if ev.get("ts").is_none() || ev.get("dur").is_none() {
                    errs.push(format!("event {i}: complete span without ts/dur"));
                }
                check_args(ev, i, &mut errs);
            }
            "i" => {
                used_pids.push(pid);
                if ev.get("s").and_then(|v| v.as_str()) != Some("p") {
                    errs.push(format!("event {i}: instant without process scope"));
                }
                check_args(ev, i, &mut errs);
            }
            other => errs.push(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    named_pids.sort_unstable();
    for pid in used_pids {
        if named_pids.binary_search(&pid).is_err() {
            errs.push(format!("pid {pid} has events but no process_name metadata"));
        }
    }
    if doc.get("displayTimeUnit").and_then(|v| v.as_str()) != Some("ms") {
        errs.push("displayTimeUnit is not \"ms\"".into());
    }
    match doc.get("otherData") {
        None => errs.push("missing otherData summary block".into()),
        Some(od) => {
            if od.get("spans_dropped").and_then(|v| v.as_u64()).is_none() {
                errs.push("otherData.spans_dropped missing".into());
            }
            let mut misses_sum = 0u64;
            match od.get("flows").and_then(|v| v.as_array()) {
                None => errs.push("otherData.flows missing".into()),
                Some(flows) => {
                    for f in flows {
                        let name = f.get("flow").and_then(|v| v.as_str()).unwrap_or("?");
                        let delivered = f.get("delivered").and_then(|v| v.as_u64());
                        match delivered {
                            None => errs.push(format!("flow {name}: missing delivered")),
                            Some(d) => {
                                let hist_count = f
                                    .get("delay_ns")
                                    .and_then(|h| h.get("count"))
                                    .and_then(|v| v.as_u64());
                                if hist_count != Some(d) {
                                    errs.push(format!(
                                        "flow {name}: delay histogram count {hist_count:?} != delivered {d}"
                                    ));
                                }
                            }
                        }
                        misses_sum += f.get("misses").and_then(|v| v.as_u64()).unwrap_or(0);
                        if f.get("jitter_ns").is_none() {
                            errs.push(format!("flow {name}: missing jitter histogram"));
                        }
                    }
                }
            }
            match od.get("slo") {
                None => errs.push("otherData.slo missing".into()),
                Some(slo) => {
                    let total = slo.get("total_misses").and_then(|v| v.as_u64());
                    if total != Some(misses_sum) {
                        errs.push(format!(
                            "slo.total_misses {total:?} != sum of per-flow misses {misses_sum}"
                        ));
                    }
                }
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn check_args(ev: &JsonValue, i: usize, errs: &mut Vec<String>) {
    let Some(args) = ev.get("args") else {
        errs.push(format!("event {i}: missing args"));
        return;
    };
    for k in ["pkt", "ts_ns", "dur_ns"] {
        if args.get(k).and_then(|v| v.as_u64()).is_none() {
            errs.push(format!("event {i}: args.{k} missing"));
        }
    }
    if args.get("flow").and_then(|v| v.as_str()).is_none() {
        errs.push(format!("event {i}: args.flow missing"));
    }
}

/// Render the trace report. `top` bounds the flow table (0 = all flows).
pub fn summarize(json: &str, top: usize) -> Result<String, String> {
    let doc = parse(json)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;

    // pid -> process name, from metadata events.
    let mut pid_names: BTreeMap<u64, &str> = BTreeMap::new();
    for ev in events {
        if ev.get("ph").and_then(|v| v.as_str()) == Some("M") {
            if let (Some(pid), Some(name)) = (
                ev.get("pid").and_then(|v| v.as_u64()),
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str()),
            ) {
                pid_names.insert(pid, name);
            }
        }
    }

    // Per-channel hop decomposition and instant-event counts.
    let mut hops: BTreeMap<u64, HopAgg> = BTreeMap::new();
    let mut instants: BTreeMap<&str, u64> = BTreeMap::new();
    let mut span_events = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        let name = ev.get("name").and_then(|v| v.as_str()).unwrap_or("");
        let dur = ev
            .get("args")
            .and_then(|a| a.get("dur_ns"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let pid = ev.get("pid").and_then(|v| v.as_u64()).unwrap_or(0);
        match ph {
            "X" => {
                span_events += 1;
                let agg = hops.entry(pid).or_default();
                match name {
                    "queue" => {
                        agg.queue_ns += dur;
                        agg.queue_n += 1;
                    }
                    "tx" => {
                        agg.tx_ns += dur;
                        agg.tx_n += 1;
                    }
                    "wire" => {
                        agg.wire_ns += dur;
                        agg.wire_n += 1;
                    }
                    _ => {}
                }
            }
            "i" => {
                span_events += 1;
                *instants.entry(name).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let od = doc.get("otherData");
    let dropped = od
        .and_then(|o| o.get("spans_dropped"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    out.push_str(&format!(
        "trace: {span_events} lifecycle events ({dropped} spans dropped at capture)\n"
    ));

    // --- Flow table, ranked by p99 one-way delay -------------------------
    let flows = od.and_then(|o| o.get("flows")).and_then(|v| v.as_array());
    if let Some(flows) = flows {
        // (p99, name, row) — sort desc by p99, then name for determinism.
        let mut rows: Vec<(u64, &str, &JsonValue)> = flows
            .iter()
            .map(|f| {
                let name = f.get("flow").and_then(|v| v.as_str()).unwrap_or("?");
                let p99 = f
                    .get("delay_ns")
                    .and_then(|h| h.get("p99"))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                (p99, name, f)
            })
            .collect();
        rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
        let shown = if top == 0 {
            rows.len()
        } else {
            top.min(rows.len())
        };
        out.push_str(&format!(
            "\nflows by p99 one-way delay ({shown} of {}):\n",
            rows.len()
        ));
        out.push_str(
            "  flow                              delivered      p50      p90      p99    worst\n",
        );
        for (p99, name, f) in rows.iter().take(shown) {
            let h = f.get("delay_ns");
            let g = |k: &str| {
                h.and_then(|h| h.get(k))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0)
            };
            let delivered = f.get("delivered").and_then(|v| v.as_u64()).unwrap_or(0);
            let worst = f
                .get("worst_delay_ns")
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            out.push_str(&format!(
                "  {:<32} {:>10} {:>8} {:>8} {:>8} {:>8}\n",
                name,
                delivered,
                fmt_ns(g("p50")),
                fmt_ns(g("p90")),
                fmt_ns(*p99),
                fmt_ns(worst),
            ));
        }
    }

    // --- Per-hop decomposition ------------------------------------------
    let chan_rows: Vec<(u64, &HopAgg)> = hops
        .iter()
        .filter(|(pid, _)| pid_names.get(pid).is_some_and(|n| n.starts_with("chan")))
        .map(|(pid, agg)| (*pid, agg))
        .collect();
    if !chan_rows.is_empty() {
        out.push_str("\nper-hop delay decomposition (totals across packets):\n");
        out.push_str("  channel                           pkts    queue       tx     wire\n");
        let mut tq = 0u64;
        let mut tt = 0u64;
        let mut tw = 0u64;
        for (pid, agg) in &chan_rows {
            let name = pid_names.get(pid).copied().unwrap_or("?");
            out.push_str(&format!(
                "  {:<32} {:>5} {:>8} {:>8} {:>8}\n",
                name,
                agg.tx_n,
                fmt_ns(agg.queue_ns),
                fmt_ns(agg.tx_ns),
                fmt_ns(agg.wire_ns),
            ));
            tq += agg.queue_ns;
            tt += agg.tx_ns;
            tw += agg.wire_ns;
        }
        let total = tq + tt + tw;
        let pct = |x: u64| (x * 100).checked_div(total).unwrap_or(0);
        if total > 0 {
            out.push_str(&format!(
                "  total: queue {} ({}%), tx {} ({}%), wire {} ({}%)\n",
                fmt_ns(tq),
                pct(tq),
                fmt_ns(tt),
                pct(tt),
                fmt_ns(tw),
                pct(tw),
            ));
        }
    }

    // --- Instant events --------------------------------------------------
    if !instants.is_empty() {
        out.push_str("\ninstant events:\n");
        for (name, n) in &instants {
            out.push_str(&format!("  {name:<20} {n:>8}\n"));
        }
    }

    // --- SLO report ------------------------------------------------------
    if let Some(slo) = od.and_then(|o| o.get("slo")) {
        let total = slo
            .get("total_misses")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        out.push_str(&format!("\nSLO conformance (total misses: {total}):\n"));
        if let Some(flows) = slo.get("flows").and_then(|v| v.as_array()) {
            out.push_str(
                "  flow                               deadline delivered   misses maxstreak\n",
            );
            for f in flows {
                let name = f.get("flow").and_then(|v| v.as_str()).unwrap_or("?");
                let dl = match f.get("deadline_ns").and_then(|v| v.as_u64()) {
                    Some(d) => fmt_ns(d),
                    None => "-".to_string(),
                };
                let delivered = f.get("delivered").and_then(|v| v.as_u64()).unwrap_or(0);
                let misses = f.get("misses").and_then(|v| v.as_u64()).unwrap_or(0);
                let streak = f
                    .get("miss_streak_max")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                out.push_str(&format!(
                    "  {name:<32} {dl:>10} {delivered:>9} {misses:>8} {streak:>9}\n"
                ));
            }
        }
    }
    Ok(out)
}

/// Format nanoseconds with an SI unit, integer math only (byte-stable).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!(
            "{}.{:03}s",
            ns / 1_000_000_000,
            (ns % 1_000_000_000) / 1_000_000
        )
    } else if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else if ns >= 1_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_is_fixed_width_per_magnitude() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_000), "1.000us");
        assert_eq!(fmt_ns(1_500_000), "1.500ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.000s");
        assert_eq!(fmt_ns(3_932_160), "3.932ms");
    }

    #[test]
    fn empty_trace_summarizes_and_checks() {
        let json = r#"{"traceEvents":[],"displayTimeUnit":"ms"}"#;
        let report = summarize(json, 10).unwrap();
        assert!(report.contains("0 lifecycle events"));
        // The empty (tracing-disabled) export has no otherData: check
        // flags it, since CI should never gate on a disabled trace.
        assert!(check(json).is_err());
    }

    #[test]
    fn check_catches_shape_violations() {
        let json = r#"{"traceEvents":[{"name":"queue","ph":"X","ts":0,"pid":1,"tid":1}],"displayTimeUnit":"ms"}"#;
        let errs = check(json).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("without ts/dur")));
        assert!(errs.iter().any(|e| e.contains("no process_name")));
        assert!(errs.iter().any(|e| e.contains("otherData")));
    }
}
