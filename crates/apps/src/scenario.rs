//! Scenario assembly: the GARNET laboratory with GARA installed, scripted
//! mid-run actions (contention starting, reservations being made — the
//! timelines of Figures 8 and 9), and the standard contention source.

use crate::traffic::{UdpBlaster, UdpSink};
use mpichgq_gara::{install, Gara};
use mpichgq_netsim::{Garnet, GarnetCfg, Net, NodeId};
use mpichgq_sim::{SimDelta, SimTime, ThroughputMeter};
use mpichgq_tcp::{Controller, Sim, Stack};
use std::cell::RefCell;
use std::rc::Rc;

/// Worker-thread count requested via the `MPICHGQ_THREADS` environment
/// variable (default 1). Lab experiments honor it by driving the
/// simulation through the parallel engine's windowed schedule, so CI can
/// diff a figure's CSV at 1 vs N threads byte-for-byte.
pub fn env_threads() -> usize {
    std::env::var("MPICHGQ_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Window width for [`run_env_windowed`] when `MPICHGQ_THREADS > 1`.
const ENV_WINDOW_MS: u64 = 10;

/// Advance `sim` to `t`, honoring `MPICHGQ_THREADS`: above one thread the
/// run uses the parallel engine's lock-step lookahead windows — lab
/// topologies are a single shard, so the event order (and thus every CSV
/// and metric) must be bit-identical to the plain path. That equality is
/// what the CI `parallel-smoke` job asserts.
pub fn run_env_windowed(sim: &mut Sim, t: SimTime) {
    if env_threads() > 1 {
        mpichgq_netsim::run_windowed(
            &mut sim.net,
            &mut sim.stack,
            SimDelta::from_millis(ENV_WINDOW_MS),
            t,
        );
    } else {
        sim.run_until(t);
    }
}

/// One-shot actions scheduled at absolute times.
type Action = Box<dyn FnOnce(&mut Net, &mut Stack)>;

struct Script {
    actions: Vec<Option<Action>>,
}

impl Controller for Script {
    fn on_control(&mut self, payload: u64, net: &mut Net, stack: &mut Stack) {
        if let Some(f) = self
            .actions
            .get_mut(payload as usize)
            .and_then(Option::take)
        {
            f(net, stack);
        }
    }
}

/// Collects `(time, action)` pairs, then installs them as a controller.
pub struct Scheduler {
    entries: Vec<(SimTime, Action)>,
}

impl Scheduler {
    pub fn new() -> Scheduler {
        Scheduler {
            entries: Vec::new(),
        }
    }

    /// Run `f` at simulated time `t`.
    pub fn at(&mut self, t: SimTime, f: impl FnOnce(&mut Net, &mut Stack) + 'static) {
        self.entries.push((t, Box::new(f)));
    }

    pub fn install(self, sim: &mut Sim) {
        let times: Vec<SimTime> = self.entries.iter().map(|(t, _)| *t).collect();
        let actions = self.entries.into_iter().map(|(_, a)| Some(a)).collect();
        let id = sim.stack.add_controller(Box::new(Script { actions }));
        for (i, t) in times.into_iter().enumerate() {
            sim.stack.schedule_control(&mut sim.net, id, t, i as u64);
        }
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

/// The assembled testbed: GARNET topology + GARA + helpers.
pub struct GarnetLab {
    pub sim: Sim,
    pub premium_src: NodeId,
    pub premium_dst: NodeId,
    pub competitive_src: NodeId,
    pub competitive_dst: NodeId,
    pub routers: [NodeId; 3],
    contention_meter: Option<Rc<RefCell<ThroughputMeter>>>,
}

impl GarnetLab {
    /// Build the lab; GARA manages `reservable_fraction` of each trunk.
    pub fn new(cfg: GarnetCfg, reservable_fraction: f64) -> GarnetLab {
        let g = Garnet::build(cfg);
        let (psrc, pdst, csrc, cdst, routers) = (
            g.premium_src,
            g.premium_dst,
            g.competitive_src,
            g.competitive_dst,
            g.routers,
        );
        let mut sim = Sim::new(g.net);
        let mut gara = Gara::new();
        gara.manage_core_links(&sim.net, reservable_fraction);
        install(&mut sim.stack, gara);
        GarnetLab {
            sim,
            premium_src: psrc,
            premium_dst: pdst,
            competitive_src: csrc,
            competitive_dst: cdst,
            routers,
            contention_meter: None,
        }
    }

    /// Run `f` with the GARA service and the network.
    pub fn with_gara<R>(&mut self, f: impl FnOnce(&mut Gara, &mut Net) -> R) -> R {
        let mut g = self
            .sim
            .stack
            .take_service::<Gara>()
            .expect("GARA service installed by GarnetLab::new");
        let r = f(&mut g, &mut self.sim.net);
        self.sim.stack.put_service_box(g);
        r
    }

    /// Start the paper's UDP contention generator between the competitive
    /// hosts, active over `[start, stop)` at `rate_bps` offered load.
    pub fn add_contention(&mut self, rate_bps: u64, start: SimTime, stop: SimTime) {
        let (sink, meter) = UdpSink::new(20_000, SimDelta::from_secs(1));
        self.contention_meter = Some(meter);
        let cdst = self.competitive_dst;
        let csrc = self.competitive_src;
        self.sim.spawn_app(cdst, Box::new(sink));
        let blaster = UdpBlaster::with_rate(cdst, 20_000, 1472, rate_bps).window(start, stop);
        self.sim.spawn_app(csrc, Box::new(blaster));
    }

    /// Contention in the reverse trunk direction (loads the pong path of
    /// the ping-pong experiment as heavily as the ping path).
    pub fn add_contention_reverse(&mut self, rate_bps: u64, start: SimTime, stop: SimTime) {
        let (sink, _meter) = UdpSink::new(20_001, SimDelta::from_secs(1));
        let csrc = self.competitive_src;
        let cdst = self.competitive_dst;
        self.sim.spawn_app(csrc, Box::new(sink));
        let blaster = UdpBlaster::with_rate(csrc, 20_001, 1472, rate_bps).window(start, stop);
        self.sim.spawn_app(cdst, Box::new(blaster));
    }

    /// Bytes the contention sink has received (sanity checks).
    pub fn contention_delivered(&self) -> u64 {
        self.contention_meter
            .as_ref()
            .map(|m| m.borrow().total_bytes())
            .unwrap_or(0)
    }

    pub fn run_until(&mut self, t: SimTime) {
        run_env_windowed(&mut self.sim, t);
    }
}

/// The §3 setting: two multiprocessor sites joined by a wide-area VC.
/// One rank per host; ranks `0..n` live at site A, `n..2n` at site B.
pub struct TwoSites {
    pub sim: Sim,
    pub site_a: Vec<NodeId>,
    pub site_b: Vec<NodeId>,
    pub router_a: NodeId,
    pub router_b: NodeId,
}

impl TwoSites {
    /// Build two sites of `n` hosts around a WAN VC of `wan_bps` /
    /// `wan_delay`, with GARA managing `reservable_fraction` of the VC.
    pub fn build(n: usize, wan_bps: u64, wan_delay: SimTime, reservable_fraction: f64) -> TwoSites {
        use mpichgq_netsim::{LinkCfg, QueueCfg, TopoBuilder};
        let mut b = TopoBuilder::new(0x517E5);
        let site_a: Vec<NodeId> = (0..n).map(|i| b.host(&format!("a{i}"))).collect();
        let router_a = b.router("site-a-edge");
        let router_b = b.router("site-b-edge");
        let site_b: Vec<NodeId> = (0..n).map(|i| b.host(&format!("b{i}"))).collect();
        // Fast intra-site interconnect.
        let access = LinkCfg::fast_ethernet(SimDelta::from_micros(20));
        for &h in &site_a {
            b.link(h, router_a, access, QueueCfg::priority_default());
        }
        for &h in &site_b {
            b.link(h, router_b, access, QueueCfg::priority_default());
        }
        let wan = LinkCfg::atm_vc(wan_bps, SimDelta::from_nanos(wan_delay.as_nanos()));
        b.link(router_a, router_b, wan, QueueCfg::priority_default());
        let mut sim = Sim::new(b.build());
        let mut gara = Gara::new();
        gara.manage_core_links(&sim.net, reservable_fraction);
        install(&mut sim.stack, gara);
        TwoSites {
            sim,
            site_a,
            site_b,
            router_a,
            router_b,
        }
    }

    /// Rank-ordered host list for a job spanning both sites.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.site_a
            .iter()
            .chain(self.site_b.iter())
            .copied()
            .collect()
    }
}
