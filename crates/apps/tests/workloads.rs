//! Workload-level behavior of the paper's applications on an uncontended
//! network: cadence, accounting, and blocking-send backpressure semantics.

use mpichgq_apps::{
    finish_viz, steady_iteration_rate, PingPong, StencilCfg, StencilRank, TwoSites, VizCfg,
    VizReceiver, VizSender,
};
use mpichgq_mpi::JobBuilder;
use mpichgq_netsim::topology::Dumbbell;
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::Sim;

fn sim2() -> (Sim, mpichgq_netsim::NodeId, mpichgq_netsim::NodeId) {
    let d = Dumbbell::build(50_000_000, SimDelta::from_millis(1), 77);
    let (a, b) = (d.src, d.dst);
    (Sim::new(d.net), a, b)
}

#[test]
fn viz_sender_keeps_cadence_on_clean_network() {
    let (mut sim, a, b) = sim2();
    let end = SimTime::from_secs(10);
    let vcfg = VizCfg {
        frame_bytes: 20_000,
        fps: 10.0,
        work_per_frame: SimDelta::ZERO,
        start: SimTime::from_millis(500),
        end,
    };
    let (tx, stats, _proc) = VizSender::new(vcfg, None);
    let (rx, meter, frames) = VizReceiver::new(SimDelta::from_secs(1), end);
    let _job = JobBuilder::new()
        .rank(a, Box::new(tx))
        .rank(b, Box::new(rx))
        .launch(&mut sim);
    sim.run_until(end);
    let run = finish_viz(meter, frames, end, SimTime::from_secs(2), end);
    // ~95 frames offered over 9.5 s; all delivered, none late.
    assert!(run.frames_received >= 93, "got {}", run.frames_received);
    let st = stats.borrow();
    assert_eq!(st.frames_sent, run.frames_received);
    assert_eq!(st.frames_late, 0, "clean network: no backpressure");
    // Steady bandwidth = 1.6 Mb/s.
    assert!((run.achieved_kbps_steady - 1600.0).abs() < 50.0);
}

#[test]
fn viz_sender_reports_late_frames_under_backpressure() {
    // A 1 Mb/s bottleneck cannot carry 1.6 Mb/s of frames: the blocking
    // send pushes the sender off schedule, and it says so.
    let d = Dumbbell::build(1_000_000, SimDelta::from_millis(1), 78);
    let (a, b) = (d.src, d.dst);
    let mut sim = Sim::new(d.net);
    let end = SimTime::from_secs(10);
    let vcfg = VizCfg {
        frame_bytes: 20_000,
        fps: 10.0,
        work_per_frame: SimDelta::ZERO,
        start: SimTime::from_millis(500),
        end,
    };
    let (tx, stats, _proc) = VizSender::new(vcfg, None);
    let (rx, meter, frames) = VizReceiver::new(SimDelta::from_secs(1), end);
    let _job = JobBuilder::new()
        .rank(a, Box::new(tx))
        .rank(b, Box::new(rx))
        .launch(&mut sim);
    sim.run_until(end);
    let run = finish_viz(meter, frames, end, SimTime::from_secs(2), end);
    let st = stats.borrow();
    assert!(st.frames_late > 10, "late frames: {}", st.frames_late);
    // Achieved bandwidth is capped near the bottleneck, not the target.
    assert!(
        run.achieved_kbps_steady < 1_100.0,
        "{}",
        run.achieved_kbps_steady
    );
    assert!(
        run.achieved_kbps_steady > 700.0,
        "{}",
        run.achieved_kbps_steady
    );
}

#[test]
fn pingpong_round_time_matches_path_rtt() {
    let (mut sim, a, b) = sim2();
    let end = SimTime::from_secs(5);
    // 1000-byte messages over a ~2 ms path: round time ≈ RTT + overheads.
    let (p0, p1, result) = PingPong::pair(1_000, SimTime::from_millis(500), end, None);
    let _job = JobBuilder::new()
        .rank(a, Box::new(p0))
        .rank(b, Box::new(p1))
        .launch(&mut sim);
    sim.run_until(end);
    let r = result.borrow();
    assert!(r.rounds > 0);
    let dur = r
        .measure_end
        .unwrap()
        .since(r.measure_start.unwrap())
        .as_secs_f64();
    let per_round_ms = dur * 1e3 / r.rounds as f64;
    // One-way propagation is 1.02 ms (10 µs + 1 ms + 10 µs), so RTT is
    // ~2.04 ms; serialization and per-hop store-and-forward add ~0.4 ms.
    assert!(
        (2.2..3.2).contains(&per_round_ms),
        "round time {per_round_ms:.2} ms"
    );
}

#[test]
fn stencil_two_ranks_completes_and_paces() {
    let mut ts = TwoSites::build(1, 10_000_000, SimTime::from_millis(2), 0.7);
    let cfg = StencilCfg {
        ranks: 2,
        iterations: 20,
        halo_bytes: 10_000,
        compute: SimDelta::from_millis(100),
    };
    let (ranks, log) = StencilRank::job(cfg, None);
    let mut builder = JobBuilder::new();
    for (host, rank) in ts.hosts().into_iter().zip(ranks) {
        builder = builder.rank(host, Box::new(rank));
    }
    builder.launch(&mut ts.sim);
    ts.sim.run_until(SimTime::from_secs(30));
    assert_eq!(log.borrow().len(), 20, "all iterations completed");
    let rate = steady_iteration_rate(&log);
    // Compute-bound ideal is 10/s; halo transfer adds ~10 ms per iteration.
    assert!((6.0..10.0).contains(&rate), "iteration rate {rate:.2}");
}

#[test]
fn stencil_rejects_odd_rank_counts() {
    let cfg = StencilCfg {
        ranks: 3,
        iterations: 1,
        halo_bytes: 1,
        compute: SimDelta::from_millis(1),
    };
    let result = std::panic::catch_unwind(|| StencilRank::job(cfg, None));
    assert!(result.is_err());
}
