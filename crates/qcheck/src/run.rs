//! Scenario execution and the always-on invariant battery.
//!
//! A run advances the simulation in fixed time slices and re-checks every
//! cross-layer invariant at each slice boundary — the conservation and
//! slot-table identities hold *at every instant*, not just at quiescence,
//! so sampling mid-run catches transient double-counting (e.g. a packet
//! charged to both a queue and a wire) that an end-of-run check would
//! never see. The run also produces a state fingerprint; a repro artifact
//! replays bit-identically exactly when the fingerprint matches.

use crate::scenario;
use crate::spec::{Inject, ScenarioSpec};
use mpichgq_gara::Gara;
use mpichgq_sim::SimDelta;
use mpichgq_tcp::Sim;

/// Slice boundaries per run at which the instant-level battery fires.
const SLICES: u64 = 24;

/// One invariant failure. `invariant` is a stable machine-readable name
/// (shrinking preserves it); `detail` is for humans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub invariant: String,
    pub detail: String,
}

impl Violation {
    fn new(invariant: &str, detail: String) -> Violation {
        Violation {
            invariant: invariant.to_string(),
            detail,
        }
    }
}

/// Everything a completed (or violation-aborted) run reports.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub spec: ScenarioSpec,
    pub inject: Inject,
    /// Empty on a clean run; otherwise the first slice's violations.
    pub violations: Vec<Violation>,
    /// FNV-1a over the final simulation state (event count, ledgers,
    /// per-connection stats). Equal fingerprints ⇔ bit-identical replay.
    pub fingerprint: u64,
    pub events: u64,
    pub sent: u64,
    pub delivered: u64,
}

impl RunOutcome {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Window width used when a run is driven through the parallel engine's
/// schedule ([`run_spec_threads`] with `threads > 1`). Fuzz scenarios are
/// a single shard, so any positive width is bit-identical to the plain
/// path; 5 ms keeps the loop genuinely windowed over every duration knob.
const PAR_WINDOW_MS: u64 = 5;

/// Expand and run one scenario, auditing at every slice boundary. Stops
/// at the first slice that yields violations (the state is then frozen
/// for fingerprinting, so a shrunk repro re-fails identically).
pub fn run_spec(spec: &ScenarioSpec, inject: &Inject) -> RunOutcome {
    run_spec_threads(spec, inject, 1)
}

/// [`run_spec`] driven through the parallel engine's windowed schedule
/// when `threads > 1`: each slice advances via lock-step lookahead
/// windows — the exact event order an N-thread shard worker executes.
/// Fuzz scenarios are one shard (their GARA controller is global state),
/// so the windowed schedule must be bit-identical to the plain one; the
/// `--threads` determinism self-test asserts precisely that, guarding the
/// window arithmetic the multi-shard engine shares.
pub fn run_spec_threads(spec: &ScenarioSpec, inject: &Inject, threads: usize) -> RunOutcome {
    let built = scenario::build(spec, inject);
    let jobs = built.jobs;
    let mut sim = built.sim;
    let slice = SimDelta::from_nanos((built.t_end.as_nanos() / SLICES).max(1));
    let mut violations = Vec::new();
    for s in 1..=SLICES {
        let t = if s == SLICES {
            built.t_end
        } else {
            mpichgq_sim::SimTime::ZERO + slice * s
        };
        if threads > 1 {
            mpichgq_netsim::run_windowed(
                &mut sim.net,
                &mut sim.stack,
                SimDelta::from_millis(PAR_WINDOW_MS),
                t,
            );
        } else {
            sim.run_until(t);
        }
        check_instant(&mut sim, &mut violations);
        if !violations.is_empty() {
            break;
        }
    }
    if violations.is_empty() {
        check_final(&mut sim, &jobs, &mut violations);
    }
    let audit = sim.net.audit();
    RunOutcome {
        spec: *spec,
        inject: *inject,
        violations,
        fingerprint: fingerprint(&mut sim),
        events: sim.net.events_processed(),
        sent: audit.sent,
        delivered: audit.delivered,
    }
}

/// The instant-level battery: valid at any point in simulated time.
fn check_instant(sim: &mut Sim, out: &mut Vec<Violation>) {
    let now = sim.now();
    let audit = sim.net.audit();
    if audit.sent != audit.accounted() {
        out.push(Violation::new(
            "conservation",
            format!(
                "t={:?}: sent {} != accounted {} (delivered {} policed {} queue_full {} \
                 misrouted {} fault_drops {} queued {} shaper {} wire {})",
                now,
                audit.sent,
                audit.accounted(),
                audit.delivered,
                audit.policed,
                audit.queue_full,
                audit.misrouted,
                audit.fault_drops,
                audit.queued_pkts,
                audit.shaper_pkts,
                audit.wire_pkts
            ),
        ));
    }
    for c in &audit.chans {
        if !c.conserved() {
            out.push(Violation::new(
                "chan_conservation",
                format!(
                    "t={:?} iface {}: enq {} deq {} queued {} tx {} rx {}",
                    now,
                    c.chan.0,
                    c.enqueued,
                    c.dequeued,
                    c.queued_pkts,
                    c.tx_packets,
                    c.rx_packets
                ),
            ));
        }
    }
    if audit.prio_inversions > 0 {
        out.push(Violation::new(
            "prio_inversion",
            format!(
                "t={now:?}: {} best-effort packets dequeued past waiting EF",
                audit.prio_inversions
            ),
        ));
    }
    // The weighted-service generalization of prio_inversion: WFQ virtual
    // time regressed or the DRR rotation guard overflowed. Any discipline
    // keeps this at zero by construction.
    if audit.sched_violations > 0 {
        out.push(Violation::new(
            "sched_violation",
            format!(
                "t={now:?}: {} scheduler self-audit violations (WFQ vtime \
                 regression / DRR rotation overflow)",
                audit.sched_violations
            ),
        ));
    }
    if audit.bucket_violations > 0 {
        out.push(Violation::new(
            "token_bucket",
            format!(
                "t={now:?}: {} token-bucket levels outside [0, depth]",
                audit.bucket_violations
            ),
        ));
    }
    // No packet may ever be handed to a host that is down: delivery to a
    // crashed host is gated at dispatch, and the tripwire counts misses.
    if let Some(fs) = sim.net.fault_stats() {
        if fs.dead_deliveries > 0 {
            out.push(Violation::new(
                "dead_host_delivery",
                format!(
                    "t={now:?}: {} packets delivered to crashed hosts",
                    fs.dead_deliveries
                ),
            ));
        }
    }
    for sock in sim.stack.tcp_sock_ids() {
        let st = sim.stack.conn_stats(sock).expect("tcp sock has stats");
        if st.karn_violations > 0 {
            out.push(Violation::new(
                "karn",
                format!(
                    "t={:?} sock {}: {} RTT samples accepted from retransmitted segments",
                    now, sock.0, st.karn_violations
                ),
            ));
        }
        if st.invariant_violations > 0 {
            out.push(Violation::new(
                "tcp_invariant",
                format!(
                    "t={:?} sock {}: {} sequence/cwnd self-audit failures",
                    now, sock.0, st.invariant_violations
                ),
            ));
        }
    }
    if let Some(g) = sim.stack.service_mut::<Gara>() {
        let mut worst = 0u64;
        for (_, t) in g.slot_tables() {
            worst = worst.max(t.max_overcommit());
        }
        for (_, t) in g.cpu_tables() {
            worst = worst.max(t.max_overcommit());
        }
        if worst > 0 {
            out.push(Violation::new(
                "slot_overcommit",
                format!("t={now:?}: slot-table peak exceeds capacity by {worst}"),
            ));
        }
    }
}

/// End-of-run consistency between the lifecycle tracer and the ledger,
/// and between the timeline sampler and the metrics registry.
fn check_final(sim: &mut Sim, jobs: &[mpichgq_mpi::JobHandle], out: &mut Vec<Violation>) {
    let audit = sim.net.audit();
    // A job with a crashed, never-respawned member must not leave any
    // survivor spinning: the failure propagates (Abort terminates the
    // program, Return surfaces the error) and every surviving rank's
    // program has returned by quiescence.
    for (i, job) in jobs.iter().enumerate() {
        if job.any_failed() && !job.surviving_finished() {
            out.push(Violation::new(
                "mpi_failure_progress",
                format!("job {i}: a rank is dead but surviving ranks have not finished"),
            ));
        }
    }
    if let Some(tracer) = sim.net.packet_tracer() {
        let mut flow_delivered = 0u64;
        for f in tracer.flows() {
            flow_delivered += f.delivered;
            if f.delay.count() != f.delivered {
                out.push(Violation::new(
                    "lifecycle_histogram",
                    format!(
                        "flow {}: delay histogram count {} != delivered {}",
                        f.name,
                        f.delay.count(),
                        f.delivered
                    ),
                ));
            }
        }
        if flow_delivered != audit.delivered {
            out.push(Violation::new(
                "lifecycle_delivered",
                format!(
                    "sum of per-flow deliveries {} != net delivered {}",
                    flow_delivered, audit.delivered
                ),
            ));
        }
    }
    check_timeline(sim, out);
}

/// The `timeline_consistency` invariant slice: take the run's final
/// sample, publish the registry, and require the last sample of every
/// cumulative series to equal the end-of-run counter of the same name.
/// Timestamp monotonicity is enforced at push time (`Timeline` asserts
/// strictly increasing sample times), so value agreement here closes the
/// loop on the in-run sampler: a stale sweep, a missed explicit push, or
/// a gating mismatch between `publish_metrics` and the sampler all
/// surface as a named violation on ordinary fuzz seeds.
fn check_timeline(sim: &mut Sim, out: &mut Vec<Violation>) {
    if !sim.net.timeline_enabled() {
        return;
    }
    let now = sim.net.now();
    sim.net.timeline_finalize(&mut sim.stack, now);
    sim.net.publish_metrics();
    let Some(tl) = sim.net.timeline() else {
        return;
    };
    let mut series = 0u64;
    for name in tl.names() {
        let Some(last) = tl.last_counter(name) else {
            continue; // gauges fluctuate; only cumulative series are pinned
        };
        series += 1;
        if let Some(reg) = sim.net.obs.metrics.counter_value(name) {
            if last != reg {
                out.push(Violation::new(
                    "timeline_consistency",
                    format!("series {name}: final sample {last} != end-of-run counter {reg}"),
                ));
            }
        }
    }
    if series == 0 {
        out.push(Violation::new(
            "timeline_consistency",
            "sampler armed but recorded no counter series".to_string(),
        ));
    }
}

/// 64-bit FNV-1a.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest the run's observable end state. Deliberately avoids anything
/// iteration-order-dependent (hash maps); every input comes from a vector
/// in creation order or a named counter.
fn fingerprint(sim: &mut Sim) -> u64 {
    let audit = sim.net.audit();
    let mut h = Fnv::new();
    h.u64(sim.net.events_processed());
    h.u64(audit.sent);
    h.u64(audit.delivered);
    h.u64(audit.policed);
    h.u64(audit.queue_full);
    h.u64(audit.misrouted);
    h.u64(audit.fault_drops);
    h.u64(audit.queued_pkts);
    h.u64(audit.shaper_pkts);
    h.u64(audit.wire_pkts);
    for c in &audit.chans {
        h.u64(c.enqueued);
        h.u64(c.dequeued);
        h.u64(c.tx_packets);
        h.u64(c.rx_packets);
    }
    for sock in sim.stack.tcp_sock_ids() {
        let st = sim.stack.conn_stats(sock).expect("tcp sock has stats");
        h.u64(st.segs_sent);
        h.u64(st.bytes_sent);
        h.u64(st.rtx_segs);
        h.u64(st.rtos);
        h.u64(st.fast_retransmits);
        h.u64(st.dup_acks_received);
        h.u64(st.karn_violations);
        h.u64(st.invariant_violations);
    }
    for name in ["gara.reservations_granted", "gara.reservations_rejected"] {
        h.u64(sim.net.obs.metrics.counter_value(name).unwrap_or(0));
    }
    h.finish()
}
