//! Seed → scenario expansion: topology, DiffServ/GARA schedule, fault
//! plan, and workload mix, all drawn from per-dimension forks of the
//! seed's RNG so the shrinker can lower one knob without shifting any
//! other dimension's draws.

use crate::spec::{Inject, ScenarioSpec};
use crate::workload::{QcPingPong, QcTcpSender, QcTcpSink, QcUdpPulse, QcUdpSink};
use mpichgq_gara::{install, Gara, NetworkRequest, Request, ResvId, StartSpec};
use mpichgq_netsim::{
    depth_for, ChanId, ClassCfg, DepthRule, Dscp, FaultAction, FaultPlan, FlowSpec, LinkCfg, Net,
    NodeId, PolicingAction, Proto, QueueCfg, RedCfg, SchedCfg, SchedKind, TokenBucket, TopoBuilder,
};
use mpichgq_sim::{SimDelta, SimRng, SimTime};
use mpichgq_tcp::{Controller, Sim, Stack, TcpCfg};

/// One scheduled GARA operation. Victim indices are resolved modulo the
/// list of reservations actually granted so far, so an op never dangles.
#[derive(Debug, Clone)]
pub enum GaraOp {
    Reserve {
        src: NodeId,
        dst: NodeId,
        proto: Proto,
        rate_bps: u64,
        duration_ms: Option<u64>,
        shape: bool,
    },
    Modify {
        victim: u64,
        rate_bps: u64,
    },
    Cancel {
        victim: u64,
    },
    Revoke {
        victim: u64,
    },
}

/// Scenario-script controller executing the GARA schedule. Mirrors the
/// GARA driver idiom: temporarily take the service, act, put it back.
struct QcScript {
    ops: Vec<GaraOp>,
    granted: Vec<ResvId>,
}

impl Controller for QcScript {
    fn on_control(&mut self, payload: u64, net: &mut Net, stack: &mut Stack) {
        let Some(mut g) = stack.take_service::<Gara>() else {
            return;
        };
        match &self.ops[payload as usize] {
            GaraOp::Reserve {
                src,
                dst,
                proto,
                rate_bps,
                duration_ms,
                shape,
            } => {
                let req = Request::Network(NetworkRequest {
                    src: *src,
                    dst: *dst,
                    proto: *proto,
                    src_port: None,
                    dst_port: None,
                    rate_bps: *rate_bps,
                    depth: DepthRule::Normal,
                    action: PolicingAction::Drop,
                    shape_at_source: *shape,
                });
                let dur = duration_ms.map(SimDelta::from_millis);
                if let Ok(id) = g.reserve(net, req, StartSpec::Now, dur) {
                    self.granted.push(id);
                }
            }
            GaraOp::Modify { victim, rate_bps } => {
                if !self.granted.is_empty() {
                    let id = self.granted[(*victim as usize) % self.granted.len()];
                    let _ = g.modify_network_rate(net, id, *rate_bps);
                }
            }
            GaraOp::Cancel { victim } => {
                if !self.granted.is_empty() {
                    let id = self.granted[(*victim as usize) % self.granted.len()];
                    g.cancel(net, id);
                }
            }
            GaraOp::Revoke { victim } => {
                if !self.granted.is_empty() {
                    let id = self.granted[(*victim as usize) % self.granted.len()];
                    g.revoke(net, id);
                }
            }
        }
        stack.put_service_box(g);
    }
}

/// A scenario expanded and armed, ready to run.
pub struct BuiltScenario {
    pub sim: Sim,
    pub t_end: SimTime,
    /// Handles to the MPI jobs, for the failure-progress invariant.
    pub jobs: Vec<mpichgq_mpi::JobHandle>,
}

/// Expand `spec` into a live simulation. Deterministic: identical
/// `(spec, inject)` always yields a bit-identical event sequence.
pub fn build(spec: &ScenarioSpec, inject: &Inject) -> BuiltScenario {
    let k = &spec.knobs;
    let mut rng = SimRng::new(spec.seed);
    // One labeled fork per dimension, in fixed order, regardless of knob
    // values — the label names the stream, the fork order seeds it.
    let mut topo_rng = rng.fork_labeled("topology");
    let mut tcp_rng = rng.fork_labeled("tcp");
    let mut udp_rng = rng.fork_labeled("udp");
    let mut mpi_rng = rng.fork_labeled("mpi");
    let mut gara_rng = rng.fork_labeled("gara");
    let mut fault_rng = rng.fork_labeled("faults");
    // Forked last so pre-qdisc corpora keep their historical streams; the
    // stream is consumed only when `knobs.qdisc > 0`.
    let mut qdisc_rng = rng.fork_labeled("qdisc");
    // Newest stream, forked after every older one and consumed only when
    // `knobs.host_faults > 0` — crash-free scenarios stay bit-identical.
    let mut hostfault_rng = rng.fork_labeled("hostfaults");

    let duration = SimDelta::from_millis(k.duration_ms);
    let t_end = SimTime::ZERO + duration;
    // A span equal to a random per-mille fraction of the run duration.
    let frac = |rng: &mut SimRng, lo_pm: u64, hi_pm: u64| -> SimDelta {
        SimDelta::from_nanos(duration.as_nanos() * rng.range(lo_pm, hi_pm) / 1000)
    };

    // --- Topology: a line of routers with hosts hanging off it. ---------
    let mut b = TopoBuilder::new(spec.seed);
    let routers: Vec<NodeId> = (0..k.routers).map(|i| b.router(&format!("r{i}"))).collect();
    let mut chans: Vec<ChanId> = Vec::new();
    for i in 1..routers.len() {
        let bw = topo_rng.range(8, 60) * 1_000_000;
        let delay = SimDelta::from_micros(topo_rng.range(200, 5_000));
        // Deliberately small best-effort buffers so queue_full drops (and
        // the retransmissions they force) are routine, not exotic. The
        // best-effort capacity is always drawn from the topology stream —
        // discipline parameters come from the dedicated qdisc stream, so
        // qdisc = 0 reproduces pre-qdisc scenarios draw-for-draw.
        let be_cap = topo_rng.range(20_000, 150_000);
        let qcfg = if k.qdisc == 0 {
            QueueCfg::Priority {
                ef_cap_bytes: 500_000,
                be_cap_bytes: be_cap,
            }
        } else {
            draw_discipline(&mut qdisc_rng, k.qdisc, be_cap)
        };
        let (ab, ba) = b.link(routers[i - 1], routers[i], LinkCfg::atm_vc(bw, delay), qcfg);
        chans.push(ab);
        chans.push(ba);
    }
    let hosts: Vec<NodeId> = (0..k.hosts)
        .map(|i| {
            let h = b.host(&format!("h{i}"));
            // Hosts 0 and 1 pin the ends of the line so cross-core paths
            // always exist; the rest scatter.
            let r = if i == 0 {
                routers[0]
            } else if i == 1 {
                *routers.last().unwrap()
            } else {
                routers[topo_rng.below(routers.len() as u64) as usize]
            };
            let delay = SimDelta::from_micros(topo_rng.range(20, 200));
            let (hr, rh) = b.link(
                h,
                r,
                LinkCfg::fast_ethernet(delay),
                QueueCfg::priority_default(),
            );
            chans.push(hr);
            chans.push(rh);
            h
        })
        .collect();
    let mut net = b.build();
    net.enable_packet_tracing();

    // --- AF marking (qdisc scenarios only). --------------------------------
    // Some UDP flows enter the network as Assured Forwarding behind a
    // token-bucket policer that escalates their drop precedence when out of
    // profile (Remark). The rule is installed on every router so the flow
    // is marked at whichever edge it enters; build-time rules precede any
    // GARA-installed reservation rules in match order.
    if k.qdisc > 0 {
        for f in 0..k.udp_flows {
            if !qdisc_rng.chance(0.5) {
                continue;
            }
            let rate_bps = qdisc_rng.range(1, 8) * 1_000_000;
            let spec = FlowSpec {
                proto: Some(Proto::Udp),
                dst_port: Some(6_000 + f as u16),
                ..FlowSpec::default()
            };
            for &r in &routers {
                net.node_mut(r).classifier.install(
                    spec,
                    Dscp::Af(Default::default()),
                    Some(TokenBucket::new(
                        rate_bps,
                        depth_for(DepthRule::Normal, rate_bps),
                    )),
                    PolicingAction::Remark,
                );
            }
        }
    }

    // --- Fault plan (always-restoring windows inside the run). ----------
    if k.faults > 0 || k.host_faults > 0 {
        let mut plan = FaultPlan::new(spec.seed);
        for _ in 0..k.faults {
            let chan = chans[fault_rng.below(chans.len() as u64) as usize];
            let at = SimTime::ZERO + frac(&mut fault_rng, 100, 600);
            let dur = frac(&mut fault_rng, 50, 200);
            plan = match fault_rng.below(3) {
                0 => plan.link_outage(chan, at, dur),
                1 => plan.at(
                    at,
                    FaultAction::LossBurst {
                        chan,
                        per_mille: fault_rng.range(20, 300) as u16,
                        duration: dur,
                    },
                ),
                _ => plan.at(
                    at,
                    FaultAction::CorruptBurst {
                        chan,
                        per_mille: fault_rng.range(10, 150) as u16,
                        duration: dur,
                    },
                ),
            };
        }
        // Crash/restart cycles, drawn after every link-fault window so the
        // link-fault stream keeps its historical draws. The restart is
        // *not* clamped to the run: a cycle near the end leaves its host
        // dead at quiescence, which is exactly the never-restarted case
        // the `mpi_failure_progress` invariant wants to see.
        for _ in 0..k.host_faults {
            let victim = hosts[hostfault_rng.below(hosts.len() as u64) as usize];
            let at = SimTime::ZERO + frac(&mut hostfault_rng, 150, 700);
            let down_for = frac(&mut hostfault_rng, 80, 250);
            plan = plan
                .at(at, FaultAction::HostCrash { host: victim })
                .at(at + down_for, FaultAction::HostRestart { host: victim });
        }
        net.install_fault_plan(plan);
    }

    let mut sim = Sim::new(net);
    let tcp_cfg = TcpCfg {
        karn_disable: inject.karn,
        ..TcpCfg::default()
    };

    // --- TCP flows. ------------------------------------------------------
    for f in 0..k.tcp_flows {
        let (src, dst) = distinct_pair(&mut tcp_rng, &hosts);
        let port = 5_000 + f as u16;
        sim.spawn_app(dst, Box::new(QcTcpSink { port, cfg: tcp_cfg }));
        let start = frac(&mut tcp_rng, 0, 300);
        let total = tcp_rng.range(20_000, 1_500_000);
        let close = tcp_rng.chance(0.5);
        sim.spawn_app(
            src,
            Box::new(QcTcpSender::new(dst, port, tcp_cfg, start, total, close)),
        );
    }

    // --- UDP flows. ------------------------------------------------------
    for f in 0..k.udp_flows {
        let (src, dst) = distinct_pair(&mut udp_rng, &hosts);
        let dport = 6_000 + f as u16;
        let sport = 7_000 + f as u16;
        sim.spawn_app(dst, Box::new(QcUdpSink { port: dport }));
        let interval = SimDelta::from_micros(udp_rng.range(200, 5_000));
        let start = frac(&mut udp_rng, 0, 300);
        let payload = udp_rng.range(200, 1_400) as u32;
        let count = udp_rng.range(20, 400);
        sim.spawn_app(
            src,
            Box::new(QcUdpPulse::new(
                dst, dport, sport, payload, interval, start, count,
            )),
        );
    }

    // --- MPI ping-pong pairs. --------------------------------------------
    let mut jobs = Vec::new();
    for p in 0..k.mpi_pairs {
        let (a, z) = distinct_pair(&mut mpi_rng, &hosts);
        let iters = mpi_rng.range(3, 30) as u32;
        let len = mpi_rng.range(1_000, 64_000) as u32;
        let cfg = mpichgq_mpi::MpiCfg {
            tcp: tcp_cfg,
            ..Default::default()
        };
        let builder = mpichgq_mpi::JobBuilder::new();
        // With crash/restart cycles armed, ranks are restartable: a
        // revived host re-wires a fresh incarnation (its peer, under the
        // default Abort handler, has already terminated — the respawn
        // exercises wireup against finished engines). Crash-free
        // scenarios keep the plain path so launch behavior is untouched.
        let builder = if k.host_faults > 0 {
            let mk = move |_p: u64| -> mpichgq_mpi::ProgramFactory {
                std::rc::Rc::new(move || {
                    Box::new(QcPingPong::new(iters, len)) as Box<dyn mpichgq_mpi::MpiProgram>
                })
            };
            builder
                .rank_restartable(a, mk(p))
                .rank_restartable(z, mk(p))
        } else {
            builder
                .rank(a, Box::new(QcPingPong::new(iters, len)))
                .rank(z, Box::new(QcPingPong::new(iters, len)))
        };
        jobs.push(
            builder
                .base_port(9_000 + 100 * p as u16)
                .cfg(cfg)
                .launch(&mut sim),
        );
    }

    // --- GARA service + schedule. ----------------------------------------
    let mut gara = Gara::new();
    gara.manage_core_links(&sim.net, 0.7);
    install(&mut sim.stack, gara);
    let mut ops = Vec::new();
    let mut ats = Vec::new();
    for _ in 0..k.gara_ops {
        let at = SimTime::ZERO + frac(&mut gara_rng, 50, 800);
        ops.push(draw_gara_op(&mut gara_rng, &hosts, k.duration_ms));
        ats.push(at);
    }
    let script = sim.stack.add_controller(Box::new(QcScript {
        ops,
        granted: Vec::new(),
    }));
    for (i, at) in ats.iter().enumerate() {
        sim.stack
            .schedule_control(&mut sim.net, script, *at, i as u64);
    }

    // The sampler is part of the audited surface: every fuzz scenario
    // records a ~16-tick timeline so `timeline_consistency` (check_final)
    // cross-checks the final sample of each cumulative series against the
    // registry on every seed — both on the plain schedule and through the
    // windowed parallel one. Sampling reifies no events and draws no RNG,
    // so the pinned corpus fingerprints are unaffected.
    sim.net
        .enable_timeline(SimDelta::from_nanos((t_end.as_nanos() / 16).max(1_000_000)));

    BuiltScenario { sim, t_end, jobs }
}

/// Draw one GARA operation from `rng` against `hosts`: the exact
/// distribution the scenario fuzzer schedules (reserve-heavy so
/// modify/cancel/revoke usually have a victim, half the reserves
/// bounded to at most `duration_ms`). Public so load generators —
/// `bench_gara` in particular — can replay the fuzzer's op mix at
/// arbitrary scale instead of inventing a second, divergent one.
pub fn draw_gara_op(rng: &mut SimRng, hosts: &[NodeId], duration_ms: u64) -> GaraOp {
    match rng.below(5) {
        // Reserves dominate so modify/cancel/revoke usually have a
        // victim to act on.
        0 | 1 => {
            let (src, dst) = distinct_pair(rng, hosts);
            GaraOp::Reserve {
                src,
                dst,
                proto: if rng.chance(0.5) {
                    Proto::Udp
                } else {
                    Proto::Tcp
                },
                rate_bps: rng.range(1, 15) * 1_000_000,
                duration_ms: if rng.chance(0.5) {
                    Some(rng.range(20, duration_ms.max(21)))
                } else {
                    None
                },
                shape: rng.chance(0.3),
            }
        }
        2 => GaraOp::Modify {
            victim: rng.next_u64(),
            rate_bps: rng.range(1, 25) * 1_000_000,
        },
        3 => GaraOp::Cancel {
            victim: rng.next_u64(),
        },
        _ => GaraOp::Revoke {
            victim: rng.next_u64(),
        },
    }
}

/// Expand a nonzero `qdisc` knob into a core-link discipline. The knob
/// picks the scheduler (`(qdisc-1) % 3`: SP/WFQ/DRR) and whether AQM is
/// armed (`(qdisc-1) / 3`: drop-tail vs RED on BE + WRED on AF); weights,
/// capacities, and RED thresholds are drawn from the dedicated qdisc
/// stream so the topology stream stays untouched.
fn draw_discipline(rng: &mut SimRng, qdisc: u64, be_cap: u64) -> QueueCfg {
    let kind = match (qdisc - 1) % 3 {
        0 => SchedKind::Sp,
        1 => SchedKind::Wfq,
        _ => SchedKind::Drr,
    };
    let aqm = (qdisc - 1) / 3 == 1;
    let ef_w = rng.range(4, 12) as u32;
    let af_w = rng.range(2, 6) as u32;
    let be_w = rng.range(1, 3) as u32;
    let af_cap = rng.range(be_cap / 2, be_cap + 1);
    let ef = ClassCfg::new(500_000).weight(ef_w);
    let mut af = ClassCfg::new(af_cap).weight(af_w);
    let mut be = ClassCfg::new(be_cap).weight(be_w);
    if aqm {
        let min = rng.range(be_cap / 8, be_cap / 3);
        let max = rng.range(be_cap / 2, be_cap + 1);
        let max_p = rng.range(50, 500) as u32;
        be = be.red(RedCfg::new(min, max).max_p_permille(max_p));
        af = af.wred(RedCfg::wred_ramp(min, max));
    }
    QueueCfg::Sched(SchedCfg { kind, ef, af, be })
}

/// Two distinct hosts, uniformly.
fn distinct_pair(rng: &mut SimRng, hosts: &[NodeId]) -> (NodeId, NodeId) {
    let a = rng.below(hosts.len() as u64) as usize;
    let step = 1 + rng.below(hosts.len() as u64 - 1) as usize;
    let b = (a + step) % hosts.len();
    (hosts[a], hosts[b])
}
