//! Scenario specifications: the knob vector a seed expands into.
//!
//! A scenario is fully determined by `(seed, knobs)`. The default path
//! derives the knobs from the seed itself ([`ScenarioSpec::from_seed`]),
//! but the two are kept separate so the shrinker can lower individual
//! knobs without perturbing any other dimension's random draws — every
//! generator forks its own child stream from the seed in a fixed order,
//! so "fewer UDP flows" never changes which hosts the TCP flows picked.

use mpichgq_obs::{JsonValue, JsonWriter};
use mpichgq_sim::SimRng;

/// A named mutable accessor for one [`Knobs`] field (shrinker plumbing).
pub type KnobField = fn(&mut Knobs) -> &mut u64;

/// Scenario size/shape parameters. Every field is a count or a duration;
/// the shrinker only ever lowers them (toward [`Knobs::min`]), which keeps
/// a shrunk spec inside the space the generator can expand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knobs {
    /// Simulated run length, milliseconds.
    pub duration_ms: u64,
    /// Hosts attached to the router line (≥ 2; host 0 and host 1 are
    /// pinned to opposite ends so cross-network paths always exist).
    pub hosts: u64,
    /// Routers in the core line (≥ 1).
    pub routers: u64,
    pub tcp_flows: u64,
    pub udp_flows: u64,
    /// Two-rank MPI ping-pong jobs.
    pub mpi_pairs: u64,
    /// GARA operations (reserve / modify / cancel / revoke) scheduled
    /// through a scenario-script controller.
    pub gara_ops: u64,
    /// Injected fault windows (link outage, loss burst, corruption burst).
    pub faults: u64,
    /// Crash/restart cycles: each draws a victim host, a crash time, and
    /// a downtime; the restart may land past the end of the run, leaving
    /// the host dead at quiescence (the never-restarted case the
    /// `mpi_failure_progress` invariant audits). Zero draws nothing from
    /// the `"hostfaults"` stream, keeping pre-fault corpora bit-identical.
    pub host_faults: u64,
    /// Core-link queue discipline selector. Zero is the legacy
    /// strict-priority drop-tail configuration (bit-identical to
    /// pre-qdisc corpora); 1..=6 picks a scheduler (SP/WFQ/DRR) and
    /// dropper (drop-tail, RED/WRED) combination whose thresholds and
    /// weights are drawn from the scenario's `"qdisc"` RNG stream.
    pub qdisc: u64,
}

impl Knobs {
    /// The smallest scenario the generator accepts: two hosts, one router,
    /// no traffic, no faults.
    pub fn min() -> Knobs {
        Knobs {
            duration_ms: 100,
            hosts: 2,
            routers: 1,
            tcp_flows: 0,
            udp_flows: 0,
            mpi_pairs: 0,
            gara_ops: 0,
            faults: 0,
            host_faults: 0,
            qdisc: 0,
        }
    }

    /// Draw a knob vector from `rng` (the seed's stream 0 fork). New knobs
    /// are always drawn *after* the existing ones so every pre-existing
    /// dimension keeps its historical value for a given seed.
    pub fn sample(rng: &mut SimRng) -> Knobs {
        Knobs {
            duration_ms: rng.range(150, 900),
            hosts: rng.range(2, 7),
            routers: rng.range(1, 5),
            tcp_flows: rng.range(0, 4),
            udp_flows: rng.range(0, 4),
            mpi_pairs: rng.range(0, 2),
            gara_ops: rng.range(0, 6),
            faults: rng.range(0, 3),
            qdisc: rng.range(0, 7),
            // Drawn last (newest knob) so every older dimension keeps its
            // historical value for a given seed.
            host_faults: rng.range(0, 3),
        }
    }

    /// Named accessors used by the shrinker, in shrink-priority order:
    /// cheapest dimensions to remove first.
    pub fn fields() -> &'static [(&'static str, KnobField)] {
        &[
            ("host_faults", |k| &mut k.host_faults),
            ("qdisc", |k| &mut k.qdisc),
            ("faults", |k| &mut k.faults),
            ("mpi_pairs", |k| &mut k.mpi_pairs),
            ("gara_ops", |k| &mut k.gara_ops),
            ("udp_flows", |k| &mut k.udp_flows),
            ("tcp_flows", |k| &mut k.tcp_flows),
            ("hosts", |k| &mut k.hosts),
            ("routers", |k| &mut k.routers),
            ("duration_ms", |k| &mut k.duration_ms),
        ]
    }

    /// Floor for the named field.
    pub fn floor(name: &str) -> u64 {
        let min = Knobs::min();
        match name {
            "duration_ms" => min.duration_ms,
            "hosts" => min.hosts,
            "routers" => min.routers,
            _ => 0,
        }
    }

    /// Append this knob vector as a JSON object under the writer's current
    /// position (caller opens/keys the object).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("duration_ms");
        w.u64(self.duration_ms);
        w.key("hosts");
        w.u64(self.hosts);
        w.key("routers");
        w.u64(self.routers);
        w.key("tcp_flows");
        w.u64(self.tcp_flows);
        w.key("udp_flows");
        w.u64(self.udp_flows);
        w.key("mpi_pairs");
        w.u64(self.mpi_pairs);
        w.key("gara_ops");
        w.u64(self.gara_ops);
        w.key("faults");
        w.u64(self.faults);
        w.key("host_faults");
        w.u64(self.host_faults);
        w.key("qdisc");
        w.u64(self.qdisc);
        w.end_object();
    }

    /// Parse a knob vector from a JSON object.
    pub fn from_json(v: &JsonValue) -> Result<Knobs, String> {
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("knobs: missing or non-integer field {name:?}"))
        };
        Ok(Knobs {
            duration_ms: field("duration_ms")?,
            hosts: field("hosts")?,
            routers: field("routers")?,
            tcp_flows: field("tcp_flows")?,
            udp_flows: field("udp_flows")?,
            mpi_pairs: field("mpi_pairs")?,
            gara_ops: field("gara_ops")?,
            faults: field("faults")?,
            // Absent in pre-qdisc repro artifacts: default to the legacy
            // strict-priority discipline they were recorded under.
            qdisc: v.get("qdisc").and_then(|x| x.as_u64()).unwrap_or(0),
            // Likewise absent in pre-host-fault artifacts.
            host_faults: v.get("host_faults").and_then(|x| x.as_u64()).unwrap_or(0),
        })
    }
}

/// A fully replayable scenario identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    pub seed: u64,
    pub knobs: Knobs,
}

impl ScenarioSpec {
    /// The fuzzer's default path: the seed also picks the knobs.
    pub fn from_seed(seed: u64) -> ScenarioSpec {
        let mut rng = SimRng::new(seed);
        let mut knob_rng = rng.fork_labeled("knobs");
        ScenarioSpec {
            seed,
            knobs: Knobs::sample(&mut knob_rng),
        }
    }
}

/// Deliberate bug switches the fuzzer can arm to prove it would catch the
/// corresponding regression (the acceptance test re-introduces the Karn
/// bug this way without patching source).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Inject {
    /// Disable Karn's algorithm in every generated TCP connection
    /// (`TcpCfg::karn_disable`): RTT samples may be armed on retransmitted
    /// segments, which the `karn` invariant convicts.
    pub karn: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_roundtrip_json() {
        let spec = ScenarioSpec::from_seed(17);
        let mut w = JsonWriter::new();
        spec.knobs.write_json(&mut w);
        let v = mpichgq_obs::parse(&w.finish()).unwrap();
        assert_eq!(Knobs::from_json(&v).unwrap(), spec.knobs);
    }

    #[test]
    fn from_seed_is_deterministic_and_varied() {
        let a = ScenarioSpec::from_seed(3);
        let b = ScenarioSpec::from_seed(3);
        assert_eq!(a, b);
        let distinct = (0..32)
            .map(|s| ScenarioSpec::from_seed(s).knobs)
            .collect::<Vec<_>>();
        assert!(distinct.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn sampled_knobs_respect_floors() {
        for seed in 0..64 {
            let k = ScenarioSpec::from_seed(seed).knobs;
            let min = Knobs::min();
            assert!(k.duration_ms >= min.duration_ms);
            assert!(k.hosts >= min.hosts);
            assert!(k.routers >= min.routers);
        }
    }
}
