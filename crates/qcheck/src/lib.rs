//! # mpichgq-qcheck — deterministic scenario fuzzing + invariant auditing
//!
//! The repo's correctness tooling (DESIGN.md §12): a seeded generator
//! expands each `u64` seed into a random scenario — topology, DiffServ
//! configuration, GARA reservation/revocation schedule, fault plan, and a
//! TCP/UDP/MPI workload mix — runs it through the full engine, and audits
//! an always-on battery of cross-layer invariants at every time slice:
//!
//! * **packet/byte conservation** per interface and globally
//!   (`enqueued = delivered + dropped + in-flight`, [`mpichgq_netsim::NetAudit`]);
//! * **token-bucket sanity**: every policer/shaper level ∈ `[0, burst]`;
//! * **scheduler service order**: with the legacy strict-priority
//!   discipline (the `qdisc = 0` knob) EF is never dequeued past waiting
//!   best-effort; the WFQ/DRR disciplines are instead audited by their
//!   structural self-checks (virtual-time monotonicity, rotation-guard
//!   bounds), surfaced as the `sched_violation` invariant;
//! * **TCP monotonicity**: `snd_una ≤ snd_nxt`, delivered monotone,
//!   `cwnd ≥ mss`, and Karn's rule (no RTT samples from retransmissions);
//! * **slot tables**: reserved peak ≤ capacity at every instant;
//! * **lifecycle consistency**: per-flow histogram counts equal deliveries.
//!
//! On a violation the driver shrinks the scenario to a minimal knob
//! vector, writes a replayable artifact
//! (`results/qcheck/repro-<seed>.json`), and exits nonzero; [`replay`]
//! re-executes an artifact and checks it still fails the same invariant
//! with a bit-identical state fingerprint. The `qcheck` binary lives in
//! `mpichgq-apps`; a CI smoke job runs a few hundred seeds per push.

pub mod audit;
pub mod parscen;
pub mod repro;
pub mod run;
pub mod scenario;
pub mod shrink;
pub mod spec;
pub mod workload;

pub use audit::audit_metrics_json;
pub use parscen::{run_par_scenario, run_par_scenario_timeline, ParOutcome, ParTimelines};
pub use repro::{parse_repro, replay, repro_json, summary_json, Replay, Repro};
pub use run::{run_spec, run_spec_threads, RunOutcome, Violation};
pub use scenario::{build, draw_gara_op, BuiltScenario, GaraOp};
pub use shrink::{shrink, Shrunk};
pub use spec::{Inject, Knobs, ScenarioSpec};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fingerprint() {
        let spec = ScenarioSpec::from_seed(11);
        let a = run_spec(&spec, &Inject::default());
        let b = run_spec(&spec, &Inject::default());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.events, b.events);
        assert!(a.events > 0, "scenario 11 should do work");
    }

    #[test]
    fn first_seeds_run_clean() {
        for seed in 0..12 {
            let out = run_spec(&ScenarioSpec::from_seed(seed), &Inject::default());
            assert!(
                out.ok(),
                "seed {seed} violated {:?}",
                out.violations.first()
            );
        }
    }

    #[test]
    fn karn_injection_is_caught_and_replayable() {
        let inject = Inject { karn: true };
        let mut caught = None;
        for seed in 0..40 {
            let out = run_spec(&ScenarioSpec::from_seed(seed), &inject);
            if out.violations.iter().any(|v| v.invariant == "karn") {
                caught = Some(out);
                break;
            }
        }
        let out = caught.expect("no seed in 0..40 tripped the injected Karn bug");
        // Shrink, serialize, parse back, replay: the artifact must re-fail
        // the same invariant bit-identically.
        let shrunk = shrink(&out.spec, &inject, "karn", 40);
        assert!(shrunk
            .outcome
            .violations
            .iter()
            .any(|v| v.invariant == "karn"));
        let json = repro_json(&shrunk.outcome);
        let repro = parse_repro(&json).expect("artifact parses");
        assert_eq!(repro.spec, shrunk.spec);
        let rep = replay(&repro);
        assert!(rep.same_invariant, "replay lost the violation");
        assert!(rep.same_fingerprint, "replay was not bit-identical");
    }

    #[test]
    fn live_audit_and_snapshot_audit_agree_on_clean_runs() {
        let spec = ScenarioSpec::from_seed(2);
        let built = build(&spec, &Inject::default());
        let mut sim = built.sim;
        sim.run_until(built.t_end);
        let snapshot = sim.net.metrics_json();
        let viols = audit_metrics_json(&snapshot).expect("snapshot parses");
        assert!(viols.is_empty(), "snapshot audit found {viols:?}");
    }

    #[test]
    fn summary_shape() {
        let outs: Vec<RunOutcome> = (0..3)
            .map(|s| run_spec(&ScenarioSpec::from_seed(s), &Inject::default()))
            .collect();
        let s = summary_json(&outs);
        let v = mpichgq_obs::parse(&s).unwrap();
        assert_eq!(v.get("qcheck_summary").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("seeds").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("violations").unwrap().as_u64(), Some(0));
    }
}
