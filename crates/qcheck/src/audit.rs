//! Snapshot-level audit: run the conservation battery against a metrics
//! JSON document rather than a live simulation.
//!
//! This is what the pinned-corpus tests apply to the canonical figure and
//! chaos runs: every `results/<experiment>/metrics.json` the repo ships —
//! and every snapshot a future experiment produces — must satisfy the same
//! per-interface and global identities the live auditor enforces, using
//! only the published counters and gauges.

use crate::run::Violation;
use mpichgq_obs::{parse, JsonValue};

fn counter(counters: &JsonValue, name: &str) -> u64 {
    counters.get(name).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn gauge(gauges: &JsonValue, name: &str) -> Option<f64> {
    gauges
        .get(name)
        .and_then(|g| g.get("value"))
        .and_then(JsonValue::as_f64)
}

/// Audit a full metrics snapshot (the string from `Net::metrics_json` or a
/// `results/*/metrics.json` file). Returns the violations found.
pub fn audit_metrics_json(s: &str) -> Result<Vec<Violation>, String> {
    let doc = parse(s).map_err(|e| format!("metrics audit: bad JSON: {e}"))?;
    let counters = doc
        .get("counters")
        .ok_or("metrics audit: no counters section")?;
    let gauges = doc
        .get("gauges")
        .ok_or("metrics audit: no gauges section")?;
    let members = counters
        .members()
        .ok_or("metrics audit: counters is not an object")?;

    let mut out = Vec::new();
    let mut queued = 0u64;
    let mut wire = 0u64;
    let mut shaper = 0u64;

    // Per-interface ledger rows, discovered by their `.dequeued` counter.
    for (name, _) in members {
        let Some(p) = name.strip_suffix(".dequeued") else {
            continue;
        };
        if !p.starts_with("iface") {
            continue;
        }
        let c = |suffix: &str| counter(counters, &format!("{p}.{suffix}"));
        let enq = c("enq_ef") + c("enq_be") + c("enq_af");
        let deq = c("dequeued");
        let tx = c("tx_packets");
        let rx = c("rx_packets");
        let backlog = gauge(gauges, &format!("{p}.backlog_pkts")).unwrap_or(0.0) as u64;
        queued += backlog;
        wire += tx.saturating_sub(rx);
        if enq != deq + backlog {
            out.push(Violation {
                invariant: "chan_conservation".into(),
                detail: format!("{p}: enq {enq} != dequeued {deq} + backlog {backlog}"),
            });
        }
        if deq != tx {
            out.push(Violation {
                invariant: "chan_conservation".into(),
                detail: format!("{p}: dequeued {deq} != tx_packets {tx}"),
            });
        }
        if rx > tx {
            out.push(Violation {
                invariant: "chan_conservation".into(),
                detail: format!("{p}: rx_packets {rx} > tx_packets {tx}"),
            });
        }
        let inversions = c("prio_inversions");
        if inversions > 0 {
            out.push(Violation {
                invariant: "prio_inversion".into(),
                detail: format!("{p}: {inversions} strict-priority inversions"),
            });
        }
        let sched = c("sched_violations");
        if sched > 0 {
            out.push(Violation {
                invariant: "sched_violation".into(),
                detail: format!("{p}: {sched} scheduler self-audit violations"),
            });
        }
    }

    // Shaper backlogs and token-bucket levels (gauges).
    if let Some(gm) = gauges.members() {
        for (name, g) in gm {
            if name.ends_with(".backlog_pkts") && name.contains(".shaper") {
                shaper += g.get("value").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
            }
            if name.ends_with(".bucket_level_bytes") {
                if let Some(level) = g.get("value").and_then(JsonValue::as_f64) {
                    if level < -1e-6 {
                        out.push(Violation {
                            invariant: "token_bucket".into(),
                            detail: format!("{name}: negative bucket level {level}"),
                        });
                    }
                }
            }
        }
    }

    // The global identity, from published counters + gauges alone.
    let sent = counter(counters, "net.pkts.sent");
    let delivered = counter(counters, "net.pkts.delivered");
    let drops = counter(counters, "net.drops.policed")
        + counter(counters, "net.drops.queue_full")
        + counter(counters, "net.drops.misrouted")
        + counter(counters, "faults.drops.link_down")
        + counter(counters, "faults.drops.loss")
        + counter(counters, "faults.drops.corrupt");
    let accounted = delivered + drops + queued + shaper + wire;
    if sent != accounted {
        out.push(Violation {
            invariant: "conservation".into(),
            detail: format!(
                "sent {sent} != accounted {accounted} \
                 (delivered {delivered} drops {drops} queued {queued} shaper {shaper} wire {wire})"
            ),
        });
    }
    Ok(out)
}
