//! Greedy scenario shrinking: lower one knob at a time while the failure
//! (same invariant name) still reproduces.
//!
//! Knobs shrink independently because the generator forks one RNG stream
//! per dimension — removing the last UDP flow does not reshuffle the TCP
//! flows, so a smaller spec usually keeps failing for the same reason.
//! The loop is budgeted in *runs*, not iterations, since each probe costs
//! a full simulation.

use crate::run::{run_spec, RunOutcome};
use crate::spec::{Inject, Knobs, ScenarioSpec};

/// Result of a shrink pass: the smallest still-failing spec found and the
/// outcome of its run (whose fingerprint the repro artifact pins).
pub struct Shrunk {
    pub spec: ScenarioSpec,
    pub outcome: RunOutcome,
    pub runs_spent: usize,
}

/// True when `outcome` fails with the invariant being chased.
fn fails_with(outcome: &RunOutcome, invariant: &str) -> bool {
    outcome.violations.iter().any(|v| v.invariant == invariant)
}

/// Shrink `spec` while preserving a violation of `invariant`. `budget`
/// bounds the number of candidate runs (a typical failure shrinks in well
/// under 50).
pub fn shrink(spec: &ScenarioSpec, inject: &Inject, invariant: &str, budget: usize) -> Shrunk {
    let mut best_spec = *spec;
    let mut best = run_spec(&best_spec, inject);
    debug_assert!(fails_with(&best, invariant));
    let mut spent = 1usize;
    let mut progress = true;
    while progress && spent < budget {
        progress = false;
        for (name, field) in Knobs::fields() {
            let floor = Knobs::floor(name);
            loop {
                let cur = {
                    let mut k = best_spec.knobs;
                    *field(&mut k)
                };
                if cur <= floor || spent >= budget {
                    break;
                }
                // Try the floor first (drop the dimension entirely), then
                // halve the distance.
                let mut candidates = vec![floor];
                let half = floor + (cur - floor) / 2;
                if half != floor && half != cur {
                    candidates.push(half);
                }
                let mut improved = false;
                for cand in candidates {
                    let mut trial = best_spec;
                    *field(&mut trial.knobs) = cand;
                    let out = run_spec(&trial, inject);
                    spent += 1;
                    if fails_with(&out, invariant) {
                        best_spec = trial;
                        best = out;
                        progress = true;
                        improved = true;
                        break;
                    }
                    if spent >= budget {
                        break;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
    }
    Shrunk {
        spec: best_spec,
        outcome: best,
        runs_spent: spent,
    }
}
