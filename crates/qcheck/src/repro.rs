//! Repro artifacts and run summaries.
//!
//! A repro artifact pins everything needed to re-fail bit-identically:
//! the (shrunk) spec, the injected bug switches, the convicted invariant,
//! and the run fingerprint. [`replay`] re-executes the artifact and
//! verifies both that the same invariant fails and that the simulation
//! reaches the same fingerprint — a fingerprint mismatch means the replay
//! was *not* bit-identical (nondeterminism, or the code under test
//! changed), which is itself a finding.

use crate::run::{run_spec, RunOutcome, Violation};
use crate::spec::{Inject, Knobs, ScenarioSpec};
use mpichgq_obs::{parse, JsonValue, JsonWriter};

/// Schema version written into every artifact.
pub const REPRO_SCHEMA: u64 = 1;
/// Schema version of the summary document.
pub const SUMMARY_SCHEMA: u64 = 1;

/// A parsed repro artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    pub spec: ScenarioSpec,
    pub inject: Inject,
    pub violation: Violation,
    pub fingerprint: u64,
    pub events: u64,
}

/// Serialize a failing outcome (first violation wins) as an artifact.
pub fn repro_json(outcome: &RunOutcome) -> String {
    let v = outcome
        .violations
        .first()
        .expect("repro_json on a clean run");
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("qcheck_repro");
    w.u64(REPRO_SCHEMA);
    w.key("seed");
    w.u64(outcome.spec.seed);
    w.key("knobs");
    outcome.spec.knobs.write_json(&mut w);
    w.key("inject");
    w.begin_object();
    w.key("karn");
    w.raw(if outcome.inject.karn { "true" } else { "false" });
    w.end_object();
    w.key("violation");
    w.begin_object();
    w.key("invariant");
    w.string(&v.invariant);
    w.key("detail");
    w.string(&v.detail);
    w.end_object();
    w.key("fingerprint");
    w.u64(outcome.fingerprint);
    w.key("events");
    w.u64(outcome.events);
    w.end_object();
    w.finish()
}

/// Parse an artifact produced by [`repro_json`].
pub fn parse_repro(s: &str) -> Result<Repro, String> {
    let v = parse(s).map_err(|e| format!("repro: bad JSON: {e}"))?;
    let schema = v
        .get("qcheck_repro")
        .and_then(JsonValue::as_u64)
        .ok_or("repro: missing qcheck_repro schema tag")?;
    if schema != REPRO_SCHEMA {
        return Err(format!("repro: unsupported schema {schema}"));
    }
    let seed = v
        .get("seed")
        .and_then(JsonValue::as_u64)
        .ok_or("repro: missing seed")?;
    let knobs = Knobs::from_json(v.get("knobs").ok_or("repro: missing knobs")?)?;
    let karn = matches!(
        v.get("inject").and_then(|i| i.get("karn")),
        Some(JsonValue::Bool(true))
    );
    let viol = v.get("violation").ok_or("repro: missing violation")?;
    let invariant = viol
        .get("invariant")
        .and_then(JsonValue::as_str)
        .ok_or("repro: missing violation.invariant")?
        .to_string();
    let detail = viol
        .get("detail")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();
    let fingerprint = v
        .get("fingerprint")
        .and_then(JsonValue::as_u64)
        .ok_or("repro: missing fingerprint")?;
    let events = v.get("events").and_then(JsonValue::as_u64).unwrap_or(0);
    Ok(Repro {
        spec: ScenarioSpec { seed, knobs },
        inject: Inject { karn },
        violation: Violation { invariant, detail },
        fingerprint,
        events,
    })
}

/// Outcome of replaying an artifact.
#[derive(Debug)]
pub struct Replay {
    pub outcome: RunOutcome,
    /// The pinned invariant failed again.
    pub same_invariant: bool,
    /// The simulation reached the pinned fingerprint (bit-identical).
    pub same_fingerprint: bool,
}

impl Replay {
    pub fn ok(&self) -> bool {
        self.same_invariant && self.same_fingerprint
    }
}

/// Re-execute an artifact and compare against its pinned expectations.
pub fn replay(r: &Repro) -> Replay {
    let outcome = run_spec(&r.spec, &r.inject);
    let same_invariant = outcome
        .violations
        .iter()
        .any(|v| v.invariant == r.violation.invariant);
    let same_fingerprint = outcome.fingerprint == r.fingerprint;
    Replay {
        outcome,
        same_invariant,
        same_fingerprint,
    }
}

/// Summarize a batch of runs (what `qcheck` writes next to the repro
/// artifacts; `scripts/check_metrics.py` validates this shape in CI).
pub fn summary_json(outcomes: &[RunOutcome]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("qcheck_summary");
    w.u64(SUMMARY_SCHEMA);
    w.key("seeds");
    w.u64(outcomes.len() as u64);
    let failed: Vec<&RunOutcome> = outcomes.iter().filter(|o| !o.ok()).collect();
    w.key("violations");
    w.u64(failed.iter().map(|o| o.violations.len() as u64).sum());
    w.key("failed_seeds");
    w.begin_array();
    for o in &failed {
        w.u64(o.spec.seed);
    }
    w.end_array();
    w.key("totals");
    w.begin_object();
    w.key("events");
    w.u64(outcomes.iter().map(|o| o.events).sum());
    w.key("sent");
    w.u64(outcomes.iter().map(|o| o.sent).sum());
    w.key("delivered");
    w.u64(outcomes.iter().map(|o| o.delivered).sum());
    w.end_object();
    w.end_object();
    w.finish()
}
