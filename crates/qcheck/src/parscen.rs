//! Partitionable fuzz scenarios: the cross-thread determinism gate.
//!
//! The main fuzz corpus ([`crate::scenario`]) is deliberately monolithic —
//! its GARA controller is global state — so it exercises the parallel
//! engine only through the single-shard windowed schedule. The scenarios
//! here are the complement: a seed expands into `2..=4` WAN-separated
//! islands with island-local UDP plus cross-island TCP and UDP flows, the
//! topology partitions on the WAN delay cut, and the world runs through
//! [`mpichgq_netsim::run_partitioned`] on a caller-chosen thread count.
//!
//! Every draw comes from a labeled fork of the seed's stream and every
//! worker rebuilds its shard from the same spec, so the run's FNV-1a
//! fingerprint must be invariant in the thread count — that equality,
//! checked seed by seed, is qcheck's parallel-engine determinism gate.

use crate::workload::{QcTcpSender, QcTcpSink, QcUdpPulse, QcUdpSink};
use mpichgq_netsim::{run_partitioned, LinkCfg, Net, NodeId, Partition, QueueCfg, TopoBuilder};
use mpichgq_obs::{Registry, Timeline};
use mpichgq_sim::{SimDelta, SimRng, SimTime};
use mpichgq_tcp::{Stack, TcpCfg};

/// What a partitioned run reports. Equal fingerprints ⇔ every shard ended
/// in a bit-identical state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParOutcome {
    /// FNV-1a over per-shard digests in shard order.
    pub fingerprint: u64,
    /// Events processed, summed over shards.
    pub events: u64,
    /// Number of shards the seed's topology split into.
    pub shards: u32,
    /// Worker threads actually used.
    pub threads: usize,
}

/// The shape a seed expands into (kept tiny on purpose: the interesting
/// state space is the interleaving, not the topology zoo).
struct ParShape {
    islands: u64,
    hosts_per_island: u64,
    wan_delay: SimDelta,
    t_end: SimTime,
    seed: u64,
}

impl ParShape {
    fn from_seed(seed: u64) -> ParShape {
        let mut rng = SimRng::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut shape = rng.fork_labeled("par-shape");
        ParShape {
            islands: shape.range(2, 5),
            hosts_per_island: shape.range(2, 4),
            wan_delay: SimDelta::from_millis(shape.range(5, 21)),
            t_end: SimTime::from_millis(shape.range(150, 400)),
            seed,
        }
    }

    /// Node id of host `h` on island `i` (islands are laid out
    /// router-first, then hosts, in island order).
    fn host(&self, island: u64, h: u64) -> u64 {
        island * (1 + self.hosts_per_island) + 1 + h
    }

    /// The full topology: one router + `hosts_per_island` hosts per
    /// island, islands joined in a line by WAN links of `wan_delay`.
    fn topo(&self) -> TopoBuilder {
        let mut b = TopoBuilder::new(self.seed);
        let mut routers = Vec::new();
        for i in 0..self.islands {
            let r = b.router(&format!("i{i}-r"));
            for h in 0..self.hosts_per_island {
                let host = b.host(&format!("i{i}-h{h}"));
                b.link(
                    host,
                    r,
                    LinkCfg::fast_ethernet(SimDelta::from_micros(50)),
                    QueueCfg::priority_default(),
                );
            }
            if let Some(&prev) = routers.last() {
                b.link(
                    prev,
                    r,
                    LinkCfg::atm_vc(45_000_000, self.wan_delay),
                    QueueCfg::Priority {
                        ef_cap_bytes: 500_000,
                        be_cap_bytes: 120_000,
                    },
                );
            }
            routers.push(r);
        }
        b
    }

    /// Build the shard copy: full topology, apps only on owned hosts.
    /// Workloads are drawn from labeled forks *per flow*, so a worker can
    /// skip foreign flows without consuming draws another flow depends on.
    fn build(&self, shard: u32, part: &Partition) -> (Net, Stack) {
        let mut net = self.topo().build();
        let mut stack = Stack::new();
        let tcp_cfg = TcpCfg::default();
        let owned = |node: u64| part.shard_of(NodeId(node as u32)) == shard;

        for i in 0..self.islands {
            let next = (i + 1) % self.islands;
            let mut rng = SimRng::new(self.seed ^ 0xA076_1D64_78BD_642F);
            let mut f = rng.fork_labeled(&format!("island-{i}"));

            // Island-local UDP: h0 -> h1, entirely inside one shard.
            let (src, dst) = (self.host(i, 0), self.host(i, 1));
            let payload = f.range(200, 1_200) as u32;
            let interval = SimDelta::from_micros(f.range(300, 3_000));
            let start = SimDelta::from_millis(f.range(0, 50));
            let count = f.range(50, 300);
            if owned(dst) {
                stack.spawn_app(
                    &mut net,
                    NodeId(dst as u32),
                    Box::new(QcUdpSink { port: 6000 }),
                );
            }
            if owned(src) {
                stack.spawn_app(
                    &mut net,
                    NodeId(src as u32),
                    Box::new(QcUdpPulse::new(
                        NodeId(dst as u32),
                        6000,
                        7000,
                        payload,
                        interval,
                        start,
                        count,
                    )),
                );
            }

            // Cross-island TCP: island i's h0 -> island i+1's h1. The SYN,
            // data, and ACKs all cross the WAN cut, exercising the
            // outbox/merge path in both directions.
            let (csrc, cdst) = (self.host(i, 0), self.host(next, 1));
            let port = 5_000 + i as u16;
            let cstart = SimDelta::from_millis(f.range(0, 80));
            let total = f.range(30_000, 400_000);
            let close = f.chance(0.5);
            if owned(cdst) {
                stack.spawn_app(
                    &mut net,
                    NodeId(cdst as u32),
                    Box::new(QcTcpSink { port, cfg: tcp_cfg }),
                );
            }
            if owned(csrc) {
                stack.spawn_app(
                    &mut net,
                    NodeId(csrc as u32),
                    Box::new(QcTcpSender::new(
                        NodeId(cdst as u32),
                        port,
                        tcp_cfg,
                        cstart,
                        total,
                        close,
                    )),
                );
            }

            // Cross-island UDP the other way: i+1's h0 -> i's h1.
            let (usrc, udst) = (self.host(next, 0), self.host(i, 1));
            let uport = 6_500 + i as u16;
            let upayload = f.range(200, 1_200) as u32;
            let uinterval = SimDelta::from_micros(f.range(500, 4_000));
            let ustart = SimDelta::from_millis(f.range(0, 60));
            let ucount = f.range(30, 200);
            if owned(udst) {
                stack.spawn_app(
                    &mut net,
                    NodeId(udst as u32),
                    Box::new(QcUdpSink { port: uport }),
                );
            }
            if owned(usrc) {
                stack.spawn_app(
                    &mut net,
                    NodeId(usrc as u32),
                    Box::new(QcUdpPulse::new(
                        NodeId(udst as u32),
                        uport,
                        7_500 + i as u16,
                        upayload,
                        uinterval,
                        ustart,
                        ucount,
                    )),
                );
            }
        }
        (net, stack)
    }
}

/// FNV-1a digest of one shard's end state: engine clock + event count +
/// wire counters via [`Net::state_fingerprint`], plus per-connection TCP
/// stats in socket-creation order.
fn shard_digest(net: &Net, stack: &Stack) -> u64 {
    let mut h = net.state_fingerprint();
    let mut put = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for sock in stack.tcp_sock_ids() {
        let st = stack.conn_stats(sock).expect("tcp sock has stats");
        put(st.segs_sent);
        put(st.bytes_sent);
        put(st.rtx_segs);
        put(st.rtos);
        put(st.fast_retransmits);
        put(st.dup_acks_received);
    }
    h
}

/// Expand `seed` into a partitioned scenario and run it on `threads`
/// worker threads. The outcome's fingerprint is a pure function of the
/// seed — any dependence on `threads` is a determinism bug in the
/// parallel engine, which is exactly what the self-test hunts.
pub fn run_par_scenario(seed: u64, threads: usize) -> ParOutcome {
    let shape = ParShape::from_seed(seed);
    let topo = shape.topo();
    let part = Partition::by_min_delay(&topo, SimDelta::from_millis(1))
        .expect("island topologies have positive WAN delays");
    assert_eq!(
        part.shards(),
        shape.islands as u32,
        "delay cut must split exactly at the WAN links"
    );
    let per_shard = run_partitioned(
        &part,
        threads,
        shape.t_end,
        |shard| shape.build(shard, &part),
        |_, net, stack| (net.events_processed(), shard_digest(&net, &stack)),
    );
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut events = 0u64;
    for &(ev, digest) in &per_shard {
        events += ev;
        for b in digest.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    ParOutcome {
        fingerprint: h,
        events,
        shards: part.shards(),
        threads,
    }
}

/// A partitioned run's merged observability: the shard-merged timeline
/// plus the merged metrics registry.
pub struct ParTimelines {
    /// Order-independent merge of the per-shard timelines (shards sampled
    /// on the same grid, merged in shard order — but
    /// `Timeline::merge_from` is commutative, so the order is cosmetic).
    pub timeline: Timeline,
    /// Merged registry after [`Registry::refine_gauge_peaks`]: gauge
    /// high-water marks are true combined peaks at sampling resolution
    /// wherever a series exists, the documented sum-of-peaks upper bound
    /// elsewhere.
    pub registry: Registry,
    /// Gauge high-water marks as the naive registry merge left them
    /// (sums of per-shard peaks), captured before refinement so tests can
    /// prove the refinement actually tightens the bound.
    pub summed_peaks: Vec<(String, f64)>,
}

/// [`run_par_scenario`] with the timeline sampler armed on every shard.
/// The sampling grid is a pure function of the seed, so — exactly like
/// the state fingerprint — the merged timeline's JSON must be
/// byte-identical in the thread count; the parallel-smoke CI job diffs
/// precisely that.
pub fn run_par_scenario_timeline(seed: u64, threads: usize) -> ParTimelines {
    let shape = ParShape::from_seed(seed);
    let topo = shape.topo();
    let part = Partition::by_min_delay(&topo, SimDelta::from_millis(1))
        .expect("island topologies have positive WAN delays");
    let t_end = shape.t_end;
    let interval = SimDelta::from_nanos((t_end.as_nanos() / 16).max(1_000_000));
    let per_shard = run_partitioned(
        &part,
        threads,
        t_end,
        |shard| {
            let (mut net, stack) = shape.build(shard, &part);
            net.enable_timeline(interval);
            (net, stack)
        },
        |_, mut net, mut stack| {
            net.timeline_finalize(&mut stack, t_end);
            net.publish_metrics();
            let tl = net.take_timeline().expect("sampler was armed");
            (tl, std::mem::take(&mut net.obs.metrics))
        },
    );
    let mut timeline = Timeline::new(interval.as_nanos());
    let mut registry = Registry::default();
    for (tl, reg) in &per_shard {
        timeline.merge_from(tl);
        registry.merge_from(reg);
    }
    let names: Vec<String> = registry.gauges().map(|(n, _)| n.to_owned()).collect();
    let summed_peaks: Vec<(String, f64)> = names
        .into_iter()
        .map(|n| {
            let hw = registry.gauge_high_water(&n).expect("touched gauge");
            (n, hw)
        })
        .collect();
    registry.refine_gauge_peaks(&timeline);
    ParTimelines {
        timeline,
        registry,
        summed_peaks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_scenarios_do_real_cross_shard_work() {
        let out = run_par_scenario(0, 1);
        assert!(out.shards >= 2);
        assert!(out.events > 1_000, "only {} events", out.events);
    }

    #[test]
    fn merged_timeline_is_thread_count_invariant() {
        for seed in 0..2 {
            let one = run_par_scenario_timeline(seed, 1);
            let four = run_par_scenario_timeline(seed, 4);
            assert_eq!(
                one.timeline.to_json(),
                four.timeline.to_json(),
                "seed {seed}: merged timeline depends on thread count"
            );
            assert_eq!(
                one.registry.snapshot_json(),
                four.registry.snapshot_json(),
                "seed {seed}: merged registry depends on thread count"
            );
        }
    }

    /// Satellite check for the gauge-peak merge fix: the naive registry
    /// merge sums per-shard high-water marks (an upper bound — shards
    /// need not peak simultaneously), and `refine_gauge_peaks` replaces
    /// that with the true combined peak read off the merged series.
    #[test]
    fn merged_gauge_peaks_are_refined_not_summed() {
        let out = run_par_scenario_timeline(0, 2);
        let name = "engine.pending_events";
        let refined = out
            .registry
            .gauge_high_water(name)
            .expect("every shard publishes the engine gauge");
        let summed = out
            .summed_peaks
            .iter()
            .find(|(n, _)| n == name)
            .expect("captured before refinement")
            .1;
        let from_series = out
            .timeline
            .gauge_peak(name)
            .expect("the sampler records the engine gauge");
        let final_value = out.registry.gauge_value(name).unwrap_or(0.0);
        assert!(
            refined <= summed,
            "refined peak {refined} exceeds the sum-of-peaks bound {summed}"
        );
        assert_eq!(
            refined,
            from_series.max(final_value),
            "refined peak must come from the merged series"
        );
    }

    #[test]
    fn fingerprint_is_thread_count_invariant() {
        for seed in 0..4 {
            let one = run_par_scenario(seed, 1);
            for threads in [2, 4] {
                let n = run_par_scenario(seed, threads);
                assert_eq!(
                    (one.fingerprint, one.events, one.shards),
                    (n.fingerprint, n.events, n.shards),
                    "seed {seed}: 1 vs {threads} threads diverged"
                );
            }
        }
    }
}
