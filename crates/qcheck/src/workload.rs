//! Minimal deterministic workload applications the fuzzer composes into
//! scenarios.
//!
//! These deliberately live here rather than reusing `mpichgq-apps`: the
//! `qcheck` binary ships inside the apps crate, so this crate must sit
//! below it in the dependency graph. The implementations mirror the apps
//! crate's idioms (backlog pumping, timer-paced CBR) but are stripped to
//! the behaviors the invariant battery needs to exercise: connection
//! setup/teardown, loss-driven retransmission, sustained queue pressure,
//! and MPI's rendezvous traffic over reserved paths.

use mpichgq_mpi::{Mpi, MpiProgram, Poll, ReqId};
use mpichgq_netsim::NodeId;
use mpichgq_sim::SimDelta;
use mpichgq_tcp::{App, Ctx, DataMode, SockId, TcpCfg};

/// Sends `total` counted bytes to `dst:dport`, starting after `start`.
pub struct QcTcpSender {
    pub dst: NodeId,
    pub dport: u16,
    pub cfg: TcpCfg,
    pub start: SimDelta,
    pub total: u64,
    /// Close the sending direction once everything is accepted (exercises
    /// FIN paths; left open half the time so teardown mid-transfer and
    /// run-end truncation both occur).
    pub close_when_done: bool,
    sock: Option<SockId>,
    sent: u64,
    closed: bool,
}

impl QcTcpSender {
    pub fn new(
        dst: NodeId,
        dport: u16,
        cfg: TcpCfg,
        start: SimDelta,
        total: u64,
        close_when_done: bool,
    ) -> QcTcpSender {
        QcTcpSender {
            dst,
            dport,
            cfg,
            start,
            total,
            close_when_done,
            sock: None,
            sent: 0,
            closed: false,
        }
    }

    fn pump(&mut self, sock: SockId, ctx: &mut Ctx) {
        while self.sent < self.total {
            let chunk = (self.total - self.sent).min(16 * 1024);
            let n = ctx.send(sock, chunk);
            if n == 0 {
                return;
            }
            self.sent += n;
        }
        if self.close_when_done && !self.closed {
            self.closed = true;
            ctx.close(sock);
        }
    }
}

impl App for QcTcpSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.start, 0);
    }
    fn on_timer(&mut self, _token: u32, ctx: &mut Ctx) {
        if self.sock.is_none() {
            self.sock = Some(ctx.tcp_connect(self.dst, self.dport, self.cfg, DataMode::Counted));
        }
    }
    fn on_connected(&mut self, sock: SockId, ctx: &mut Ctx) {
        self.pump(sock, ctx);
    }
    fn on_writable(&mut self, sock: SockId, ctx: &mut Ctx) {
        self.pump(sock, ctx);
    }
}

/// Accepts connections on `port` and drains whatever arrives.
pub struct QcTcpSink {
    pub port: u16,
    pub cfg: TcpCfg,
}

impl App for QcTcpSink {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.tcp_listen(self.port, self.cfg, DataMode::Counted);
    }
    fn on_readable(&mut self, sock: SockId, ctx: &mut Ctx) {
        loop {
            let n = ctx.recv(sock, 1 << 30);
            if n == 0 {
                break;
            }
        }
    }
}

/// Timer-paced constant-bit-rate UDP source: `count` datagrams of
/// `payload` bytes every `interval`, starting after `start`.
pub struct QcUdpPulse {
    pub dst: NodeId,
    pub dport: u16,
    pub sport: u16,
    pub payload: u32,
    pub interval: SimDelta,
    pub start: SimDelta,
    pub count: u64,
    sock: Option<SockId>,
    sent: u64,
}

impl QcUdpPulse {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        dst: NodeId,
        dport: u16,
        sport: u16,
        payload: u32,
        interval: SimDelta,
        start: SimDelta,
        count: u64,
    ) -> QcUdpPulse {
        QcUdpPulse {
            dst,
            dport,
            sport,
            payload,
            interval,
            start,
            count,
            sock: None,
            sent: 0,
        }
    }
}

impl App for QcUdpPulse {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.sock = Some(ctx.udp_bind(self.sport));
        ctx.set_timer(self.start, 0);
    }
    fn on_timer(&mut self, _token: u32, ctx: &mut Ctx) {
        if self.sent >= self.count {
            return;
        }
        let sock = self.sock.expect("pulse timer before bind");
        ctx.udp_send(sock, self.dst, self.dport, self.payload);
        self.sent += 1;
        if self.sent < self.count {
            ctx.set_timer(self.interval, 0);
        }
    }
}

/// Binds `port` and absorbs datagrams (delivery is what the ledger needs;
/// the payload is not interpreted).
pub struct QcUdpSink {
    pub port: u16,
}

impl App for QcUdpSink {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.udp_bind(self.port);
    }
}

enum PpState {
    Idle,
    Sending(ReqId),
    Receiving(ReqId),
}

/// Two-rank ping-pong: rank 0 sends then receives, rank 1 mirrors. The
/// job is not required to finish within the scenario window — a run cut
/// off mid-rendezvous is exactly the kind of state the conservation audit
/// must still balance.
pub struct QcPingPong {
    pub iters: u32,
    pub len: u32,
    done: u32,
    state: PpState,
}

impl QcPingPong {
    pub fn new(iters: u32, len: u32) -> QcPingPong {
        QcPingPong {
            iters,
            len,
            done: 0,
            state: PpState::Idle,
        }
    }
}

const PP_TAG: u32 = 77;

impl MpiProgram for QcPingPong {
    fn poll(&mut self, mpi: &mut Mpi) -> Poll {
        let w = mpi.comm_world();
        let peer = 1 - mpi.rank();
        let leader = mpi.rank() == 0;
        while self.done < self.iters {
            match self.state {
                PpState::Idle => {
                    self.state = if leader {
                        PpState::Sending(mpi.isend(w, peer, PP_TAG, self.len))
                    } else {
                        PpState::Receiving(mpi.irecv(w, Some(peer), Some(PP_TAG)))
                    };
                }
                PpState::Sending(req) => {
                    if mpi.test(req).is_none() {
                        return Poll::Pending;
                    }
                    if leader {
                        self.state = PpState::Receiving(mpi.irecv(w, Some(peer), Some(PP_TAG)));
                    } else {
                        self.done += 1;
                        self.state = PpState::Idle;
                    }
                }
                PpState::Receiving(req) => {
                    if mpi.test(req).is_none() {
                        return Poll::Pending;
                    }
                    if leader {
                        self.done += 1;
                        self.state = PpState::Idle;
                    } else {
                        self.state = PpState::Sending(mpi.isend(w, peer, PP_TAG, self.len));
                    }
                }
            }
        }
        Poll::Done
    }
}
