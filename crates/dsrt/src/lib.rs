//! # mpichgq-dsrt — Dynamic Soft Real-Time CPU scheduler model
//!
//! The paper (§5.5) combines network reservations with CPU reservations made
//! through DSRT, a user-level soft real-time scheduler that overrides the
//! Unix scheduler for selected processes. A CPU-intensive competitor on the
//! sending host halves the visualization application's frame rate; a 90% CPU
//! reservation restores it (Figures 8 and 9).
//!
//! This crate models one host CPU:
//!
//! * processes are *best-effort* by default and split the residual CPU
//!   equally (an idealized fair-share Unix scheduler);
//! * a process may hold a *reservation* for a fraction of the CPU, which it
//!   receives whenever it is runnable (soft real-time: unused reserved
//!   capacity is returned to the pool, i.e. the model is work-conserving);
//! * admission control caps total reservations at [`MAX_RESERVABLE`], as
//!   DSRT does to keep the host responsive.
//!
//! The model is *sans-io*: it never schedules events itself. Every mutation
//! returns the new estimated completion times ([`Update`]) for affected work
//! items, each tagged with a generation number; the caller schedules events
//! and ignores stale generations (lazy cancellation). This keeps the crate
//! independently testable and free of event-engine coupling.

pub mod cpu;

pub use cpu::{AdmissionError, CompleteOutcome, Cpu, ProcId, Update, WorkId, MAX_RESERVABLE};
