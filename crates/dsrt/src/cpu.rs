//! The per-host CPU model.

use mpichgq_sim::{SimDelta, SimTime};

/// DSRT admits reservations only up to this fraction of the CPU, so the
/// host never starves completely (mirrors DSRT's admission policy).
pub const MAX_RESERVABLE: f64 = 0.95;

/// Identifies a process registered with a [`Cpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(pub u32);

/// Identifies a unit of CPU work started by a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkId(pub u32);

/// A refreshed completion estimate for an in-flight work item.
///
/// The caller schedules a wake-up at `eta` carrying `gen`; when it fires it
/// calls [`Cpu::complete`], which rejects stale generations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Update {
    pub work: WorkId,
    pub eta: SimTime,
    pub gen: u64,
}

/// Reservation request rejected by admission control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionError {
    pub requested: f64,
    pub available: f64,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CPU reservation of {:.0}% rejected; only {:.0}% available",
            self.requested * 100.0,
            self.available * 100.0
        )
    }
}
impl std::error::Error for AdmissionError {}

#[derive(Debug, Clone)]
struct Proc {
    alive: bool,
    reservation: Option<f64>,
    /// A hog is permanently runnable even with no work items (models a
    /// CPU-intensive competitor application).
    hog: bool,
    active_works: u32,
}

#[derive(Debug, Clone)]
struct Work {
    proc: ProcId,
    /// Remaining CPU time, in CPU-nanoseconds (fractional during rescaling).
    remaining: f64,
    gen: u64,
    done: bool,
}

/// Result of [`Cpu::complete`].
#[derive(Debug)]
pub enum CompleteOutcome {
    /// The wake-up was for an outdated schedule; ignore it.
    Stale,
    /// The work item finished. `updates` re-times the remaining work items
    /// (their shares grew now that this one is gone).
    Done { proc: ProcId, updates: Vec<Update> },
}

/// One host CPU with fair-share scheduling plus DSRT-style reservations.
#[derive(Debug)]
pub struct Cpu {
    procs: Vec<Proc>,
    works: Vec<Work>,
    last_advance: SimTime,
    next_gen: u64,
    /// Whole-CPU capacity factor in `(0, 1]` (thermal/power throttling —
    /// a fault-injection knob). Scales every share uniformly, so relative
    /// fairness and reservation ratios are preserved.
    throttle: f64,
}

impl Cpu {
    pub fn new() -> Self {
        Cpu {
            procs: Vec::new(),
            works: Vec::new(),
            last_advance: SimTime::ZERO,
            next_gen: 1,
            throttle: 1.0,
        }
    }

    /// Throttle the whole CPU to `factor` of its capacity (`1.0` restores
    /// full speed). Reservation *admission* is unaffected — DSRT admitted
    /// those fractions of the nominal CPU; a throttled host simply runs
    /// everything proportionally slower, which is exactly the failure the
    /// adaptation layer must notice from the outside.
    pub fn set_throttle(&mut self, now: SimTime, factor: f64) -> Vec<Update> {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "throttle factor out of (0, 1]: {factor}"
        );
        self.advance(now);
        self.throttle = factor;
        self.reschedule(now)
    }

    /// The current whole-CPU throttle factor.
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// Register a best-effort process.
    pub fn add_process(&mut self) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(Proc {
            alive: true,
            reservation: None,
            hog: false,
            active_works: 0,
        });
        id
    }

    /// Register a permanently-runnable CPU hog (competitor application).
    /// Returns updated ETAs for work items whose share just shrank.
    pub fn spawn_hog(&mut self, now: SimTime) -> (ProcId, Vec<Update>) {
        self.advance(now);
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(Proc {
            alive: true,
            reservation: None,
            hog: true,
            active_works: 0,
        });
        (id, self.reschedule(now))
    }

    /// Deregister a process; its in-flight work is abandoned.
    pub fn remove_process(&mut self, now: SimTime, pid: ProcId) -> Vec<Update> {
        self.advance(now);
        let p = &mut self.procs[pid.0 as usize];
        p.alive = false;
        p.active_works = 0;
        for w in &mut self.works {
            if w.proc == pid && !w.done {
                w.done = true;
                w.gen = self.next_gen;
                self.next_gen += 1;
            }
        }
        self.reschedule(now)
    }

    /// Grant or clear a CPU reservation for `pid`.
    ///
    /// `fraction` in `(0, 1]`; admission control rejects requests that would
    /// push the total reserved fraction past [`MAX_RESERVABLE`].
    pub fn set_reservation(
        &mut self,
        now: SimTime,
        pid: ProcId,
        fraction: Option<f64>,
    ) -> Result<Vec<Update>, AdmissionError> {
        if let Some(f) = fraction {
            assert!(
                f > 0.0 && f <= 1.0,
                "reservation fraction out of range: {f}"
            );
            let reserved_by_others: f64 = self
                .procs
                .iter()
                .enumerate()
                .filter(|&(i, p)| p.alive && i != pid.0 as usize)
                .filter_map(|(_, p)| p.reservation)
                .sum();
            if reserved_by_others + f > MAX_RESERVABLE + 1e-12 {
                return Err(AdmissionError {
                    requested: f,
                    available: (MAX_RESERVABLE - reserved_by_others).max(0.0),
                });
            }
        }
        self.advance(now);
        self.procs[pid.0 as usize].reservation = fraction;
        Ok(self.reschedule(now))
    }

    pub fn reservation_of(&self, pid: ProcId) -> Option<f64> {
        self.procs[pid.0 as usize].reservation
    }

    /// Begin `cpu_time` of work for `pid`. The returned [`Update`]s include
    /// the new item and any other items whose shares changed.
    pub fn start_work(
        &mut self,
        now: SimTime,
        pid: ProcId,
        cpu_time: SimDelta,
    ) -> (WorkId, Vec<Update>) {
        assert!(self.procs[pid.0 as usize].alive, "work on dead process");
        self.advance(now);
        let wid = WorkId(self.works.len() as u32);
        let gen = self.bump_gen();
        self.works.push(Work {
            proc: pid,
            remaining: cpu_time.as_nanos() as f64,
            gen,
            done: false,
        });
        self.procs[pid.0 as usize].active_works += 1;
        (wid, self.reschedule(now))
    }

    /// Abandon an in-flight work item.
    pub fn cancel_work(&mut self, now: SimTime, wid: WorkId) -> Vec<Update> {
        self.advance(now);
        let w = &mut self.works[wid.0 as usize];
        if !w.done {
            w.done = true;
            w.gen = self.next_gen;
            self.next_gen += 1;
            let pid = w.proc;
            self.procs[pid.0 as usize].active_works -= 1;
        }
        self.reschedule(now)
    }

    /// A scheduled wake-up fired. Completes the work if the generation is
    /// current; returns [`CompleteOutcome::Stale`] otherwise.
    pub fn complete(&mut self, now: SimTime, wid: WorkId, gen: u64) -> CompleteOutcome {
        {
            let w = &self.works[wid.0 as usize];
            if w.done || w.gen != gen {
                return CompleteOutcome::Stale;
            }
        }
        self.advance(now);
        let w = &mut self.works[wid.0 as usize];
        // The wake-up was computed under the shares in force since the last
        // reschedule, so by now the remaining work is (numerically) zero.
        debug_assert!(
            w.remaining <= 2.0,
            "completion fired early: {} cpu-ns left",
            w.remaining
        );
        w.done = true;
        let proc = w.proc;
        self.procs[proc.0 as usize].active_works -= 1;
        let updates = self.reschedule(now);
        CompleteOutcome::Done { proc, updates }
    }

    /// Current CPU share of `pid` in `[0, 1]` (0 if not runnable).
    pub fn share_of(&self, pid: ProcId) -> f64 {
        self.shares()
            .into_iter()
            .find(|&(p, _)| p == pid)
            .map(|(_, s)| s)
            .unwrap_or(0.0)
    }

    /// How long `cpu_time` of work would take for `pid` under current shares
    /// (used by apps for planning; actual completion still tracks changes).
    pub fn estimate(&self, pid: ProcId, cpu_time: SimDelta) -> Option<SimDelta> {
        // Estimate as if the work had been started: a non-runnable process
        // becomes runnable once it has work.
        let mut shares = self.shares_with_extra_runnable(pid);
        shares.retain(|&(p, _)| p == pid);
        let share = shares.first().map(|&(_, s)| s)?;
        if share <= 0.0 {
            return None;
        }
        Some(SimDelta::from_nanos(
            (cpu_time.as_nanos() as f64 / share).ceil() as u64,
        ))
    }

    fn bump_gen(&mut self) -> u64 {
        let g = self.next_gen;
        self.next_gen += 1;
        g
    }

    /// Shares for currently runnable processes.
    fn shares(&self) -> Vec<(ProcId, f64)> {
        self.shares_inner(None)
    }

    fn shares_with_extra_runnable(&self, extra: ProcId) -> Vec<(ProcId, f64)> {
        self.shares_inner(Some(extra))
    }

    fn shares_inner(&self, extra: Option<ProcId>) -> Vec<(ProcId, f64)> {
        let runnable: Vec<(ProcId, &Proc)> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcId(i as u32), p))
            .filter(|&(id, p)| p.alive && (p.hog || p.active_works > 0 || extra == Some(id)))
            .collect();
        if runnable.is_empty() {
            return Vec::new();
        }
        let reserved: f64 = runnable
            .iter()
            .filter_map(|(_, p)| p.reservation)
            .sum::<f64>()
            .min(1.0);
        let leftover = (1.0 - reserved).max(0.0);
        let be_count = runnable
            .iter()
            .filter(|(_, p)| p.reservation.is_none())
            .count();
        let reserved_count = runnable.len() - be_count;
        runnable
            .iter()
            .map(|&(id, p)| {
                let s = match p.reservation {
                    Some(r) => {
                        // Work-conserving: if no best-effort process is
                        // runnable, reserved processes share the leftover.
                        r + if be_count == 0 {
                            leftover / reserved_count as f64
                        } else {
                            0.0
                        }
                    }
                    None => leftover / be_count as f64,
                };
                (id, s * self.throttle)
            })
            .collect()
    }

    /// Progress all active work items from `last_advance` to `now` under the
    /// shares in force during that interval.
    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_nanos() as f64;
        self.last_advance = self.last_advance.max(now);
        if dt <= 0.0 {
            return;
        }
        let shares = self.shares();
        for w in self.works.iter_mut().filter(|w| !w.done) {
            let proc_share = shares
                .iter()
                .find(|&&(p, _)| p == w.proc)
                .map(|&(_, s)| s)
                .unwrap_or(0.0);
            let nworks = self.procs[w.proc.0 as usize].active_works.max(1) as f64;
            let work_share = proc_share / nworks;
            w.remaining = (w.remaining - dt * work_share).max(0.0);
        }
    }

    /// Recompute ETAs for all active work items and bump their generations.
    fn reschedule(&mut self, now: SimTime) -> Vec<Update> {
        let shares = self.shares();
        let mut updates = Vec::new();
        let mut gens_needed = 0;
        for w in self.works.iter().filter(|w| !w.done) {
            let _ = w;
            gens_needed += 1;
        }
        let mut gen = self.next_gen;
        self.next_gen += gens_needed;
        for (i, w) in self.works.iter_mut().enumerate() {
            if w.done {
                continue;
            }
            let proc_share = shares
                .iter()
                .find(|&&(p, _)| p == w.proc)
                .map(|&(_, s)| s)
                .unwrap_or(0.0);
            let nworks = self.procs[w.proc.0 as usize].active_works.max(1) as f64;
            let work_share = proc_share / nworks;
            w.gen = gen;
            gen += 1;
            if work_share > 0.0 {
                let eta = now + SimDelta::from_nanos((w.remaining / work_share).ceil() as u64);
                updates.push(Update {
                    work: WorkId(i as u32),
                    eta,
                    gen: w.gen,
                });
            }
            // A zero share means the work is stalled; it will be re-timed by
            // the next share change (no update emitted, old wake-ups stale).
        }
        updates
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }
    fn d(s: f64) -> SimDelta {
        SimDelta::from_secs_f64(s)
    }

    fn eta_of(updates: &[Update], w: WorkId) -> SimTime {
        updates
            .iter()
            .rev()
            .find(|u| u.work == w)
            .map(|u| u.eta)
            .expect("no update for work")
    }

    #[test]
    fn solo_process_runs_at_full_speed() {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        let (w, ups) = cpu.start_work(t(0.0), p, d(2.0));
        assert_eq!(eta_of(&ups, w), t(2.0));
        let g = ups.last().unwrap().gen;
        match cpu.complete(t(2.0), w, g) {
            CompleteOutcome::Done { proc, .. } => assert_eq!(proc, p),
            CompleteOutcome::Stale => panic!("should complete"),
        }
    }

    #[test]
    fn hog_halves_best_effort_share() {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        let (w, ups) = cpu.start_work(t(0.0), p, d(2.0));
        assert_eq!(eta_of(&ups, w), t(2.0));
        // Hog arrives at t=1: half the work remains, now at half speed.
        let (_hog, ups) = cpu.spawn_hog(t(1.0));
        assert_eq!(eta_of(&ups, w), t(3.0));
    }

    #[test]
    fn reservation_restores_rate() {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        let (_hog, _) = cpu.spawn_hog(t(0.0));
        let (w, ups) = cpu.start_work(t(0.0), p, d(1.0));
        // Fair share 50% -> 2s elapsed time.
        assert_eq!(eta_of(&ups, w), t(2.0));
        // 90% reservation at t=1 (0.5 cpu-s done, 0.5 left at 0.9 share).
        let ups = cpu.set_reservation(t(1.0), p, Some(0.9)).unwrap();
        let eta = eta_of(&ups, w);
        let expect = 1.0 + 0.5 / 0.9;
        assert!((eta.as_secs_f64() - expect).abs() < 1e-6, "eta {eta}");
    }

    #[test]
    fn stale_generation_is_ignored() {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        let (w, ups) = cpu.start_work(t(0.0), p, d(2.0));
        let old_gen = ups.last().unwrap().gen;
        let (_hog, ups2) = cpu.spawn_hog(t(1.0));
        // Old wake-up at t=2 fires but the schedule moved to t=3.
        assert!(matches!(
            cpu.complete(t(2.0), w, old_gen),
            CompleteOutcome::Stale
        ));
        let g2 = eta_gen(&ups2, w);
        assert!(matches!(
            cpu.complete(t(3.0), w, g2),
            CompleteOutcome::Done { .. }
        ));
    }

    fn eta_gen(updates: &[Update], w: WorkId) -> u64 {
        updates.iter().rev().find(|u| u.work == w).unwrap().gen
    }

    #[test]
    fn throttle_scales_all_shares_uniformly() {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        let (w, ups) = cpu.start_work(t(0.0), p, d(2.0));
        assert_eq!(eta_of(&ups, w), t(2.0));
        // Throttle to 25% at t=1: 1 cpu-s left now takes 4 s.
        let ups = cpu.set_throttle(t(1.0), 0.25);
        assert_eq!(eta_of(&ups, w), t(5.0));
        assert!((cpu.share_of(p) - 0.25).abs() < 1e-9);
        // Restoring full speed re-times the remainder.
        let ups = cpu.set_throttle(t(2.0), 1.0);
        // 0.25 cpu-s progressed during the throttled second; 0.75 left.
        let eta = eta_of(&ups, w).as_secs_f64();
        assert!((eta - 2.75).abs() < 1e-9, "eta {eta}");
    }

    #[test]
    fn throttle_preserves_reservation_ratios() {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        cpu.set_reservation(t(0.0), p, Some(0.8)).unwrap();
        cpu.spawn_hog(t(0.0));
        cpu.set_throttle(t(0.0), 0.5);
        let (_w, _ups) = cpu.start_work(t(0.0), p, d(1.0));
        assert!((cpu.share_of(p) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn admission_control_rejects_oversubscription() {
        let mut cpu = Cpu::new();
        let a = cpu.add_process();
        let b = cpu.add_process();
        cpu.set_reservation(t(0.0), a, Some(0.6)).unwrap();
        let err = cpu.set_reservation(t(0.0), b, Some(0.5)).unwrap_err();
        assert!((err.available - 0.35).abs() < 1e-9);
        // Clearing a's reservation frees capacity.
        cpu.set_reservation(t(0.0), a, None).unwrap();
        cpu.set_reservation(t(0.0), b, Some(0.5)).unwrap();
    }

    #[test]
    fn work_conserving_when_only_reserved_runnable() {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        cpu.set_reservation(t(0.0), p, Some(0.5)).unwrap();
        // No other runnable process: p should get the whole CPU.
        let (w, ups) = cpu.start_work(t(0.0), p, d(1.0));
        assert_eq!(eta_of(&ups, w), t(1.0));
    }

    #[test]
    fn two_hogs_split_with_reserved_process() {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        cpu.set_reservation(t(0.0), p, Some(0.8)).unwrap();
        cpu.spawn_hog(t(0.0));
        cpu.spawn_hog(t(0.0));
        let (w, ups) = cpu.start_work(t(0.0), p, d(0.8));
        // p gets exactly its 80%; hogs share the remaining 20%.
        assert_eq!(eta_of(&ups, w), t(1.0));
        assert!((cpu.share_of(p) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn cancel_work_frees_share() {
        let mut cpu = Cpu::new();
        let a = cpu.add_process();
        let b = cpu.add_process();
        let (wa, _) = cpu.start_work(t(0.0), a, d(1.0));
        let (wb, _) = cpu.start_work(t(0.0), b, d(1.0));
        // Both at 50%. Cancel a's at t=1 (0.5 cpu-s done for each).
        let ups = cpu.cancel_work(t(1.0), wa);
        assert_eq!(eta_of(&ups, wb), t(1.5));
    }

    #[test]
    fn estimate_matches_schedule_for_new_work() {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        cpu.spawn_hog(t(0.0));
        let est = cpu.estimate(p, d(1.0)).unwrap();
        assert_eq!(est, d(2.0));
        let (w, ups) = cpu.start_work(t(0.0), p, d(1.0));
        assert_eq!(eta_of(&ups, w), t(0.0) + est);
    }

    #[test]
    fn remove_process_abandons_work_and_frees_cpu() {
        let mut cpu = Cpu::new();
        let a = cpu.add_process();
        let b = cpu.add_process();
        let (_wa, _) = cpu.start_work(t(0.0), a, d(10.0));
        let (wb, _) = cpu.start_work(t(0.0), b, d(1.0));
        let ups = cpu.remove_process(t(1.0), a);
        // b had 0.5 cpu-s done; remaining 0.5 at full speed.
        assert_eq!(eta_of(&ups, wb), t(1.5));
    }

    #[test]
    fn work_conservation_under_many_share_changes() {
        // Total CPU time consumed must equal the work requested, regardless
        // of how often shares change in between.
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        let (w, mut ups) = cpu.start_work(t(0.0), p, d(4.0));
        let mut hogs = Vec::new();
        // Add a hog every second for 3 seconds, then remove them all.
        for i in 1..=3u64 {
            let (h, u) = cpu.spawn_hog(SimTime::from_secs(i));
            hogs.push(h);
            ups = u;
        }
        // After t=3: share 1/4. Work done so far: 1 + 1/2 + 1/3 = 1.8333.
        // Remaining 2.1667 at 1/4 -> eta 3 + 8.6667.
        let eta = eta_of(&ups, w).as_secs_f64();
        assert!((eta - (3.0 + (4.0 - (1.0 + 0.5 + 1.0 / 3.0)) * 4.0)).abs() < 1e-6);
        for h in hogs {
            ups = cpu.remove_process(t(5.0), h);
        }
        // Done by t=5: 1 + .5 + .3333 + (2s at 1/4)=0.5 -> 2.3333; left 1.6667 at 1.0.
        let eta = eta_of(&ups, w).as_secs_f64();
        assert!((eta - (5.0 + 4.0 - (1.0 + 0.5 + 1.0 / 3.0 + 0.5))).abs() < 1e-6);
    }
}
