//! Property tests of the CPU scheduler model: work conservation, share
//! bounds, and schedule consistency under arbitrary event sequences.

use mpichgq_dsrt::{CompleteOutcome, Cpu, ProcId, Update, WorkId};
use mpichgq_sim::{SimDelta, SimTime};
use proptest::prelude::*;
use std::cell::Cell;
use std::rc::Rc;

/// Replays scheduler updates against a simulated event queue, merging a
/// list of timed disturbances (share changes) into the event order, until
/// the target work completes. Returns the completion time.
type Disturbance = (SimTime, Box<dyn FnOnce(&mut Cpu) -> Vec<Update>>);

fn run_to_completion(
    cpu: &mut Cpu,
    target: WorkId,
    mut pending: Vec<Update>,
    mut disturbances: Vec<Disturbance>,
) -> SimTime {
    disturbances.sort_by_key(|(t, _)| *t);
    let mut now = SimTime::ZERO;
    for _ in 0..10_000 {
        pending.sort_by_key(|u| u.eta);
        let next_eta = pending.first().map(|u| u.eta);
        let next_dist = disturbances.first().map(|(t, _)| *t);
        let take_disturbance = match (next_dist, next_eta) {
            (Some(d), Some(e)) => d <= e,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => panic!("nothing pending but work not complete"),
        };
        if take_disturbance {
            let (t, f) = disturbances.remove(0);
            assert!(t >= now, "disturbance in the past");
            now = t;
            let ups = f(cpu);
            if !ups.is_empty() {
                pending = ups;
            }
            continue;
        }
        let u = pending.remove(0);
        assert!(u.eta >= now, "schedule went backwards");
        now = u.eta;
        match cpu.complete(now, u.work, u.gen) {
            CompleteOutcome::Stale => {}
            CompleteOutcome::Done { updates, .. } => {
                if u.work == target {
                    return now;
                }
                pending = updates;
            }
        }
    }
    panic!("runaway schedule");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// A work item of `w` CPU-seconds never finishes in less than `w` wall
    /// seconds, no matter how many hogs come and go; and with `h` permanent
    /// hogs it never finishes faster than `w × (h+1)`.
    #[test]
    fn work_takes_at_least_its_cpu_time(
        work_ms in 100u64..5_000,
        hogs in 0usize..4,
    ) {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        for _ in 0..hogs {
            let _ = cpu.spawn_hog(SimTime::ZERO);
        }
        let (wid, ups) = cpu.start_work(SimTime::ZERO, p, SimDelta::from_millis(work_ms));
        let done = run_to_completion(&mut cpu, wid, ups, Vec::new());
        let wall = done.as_secs_f64();
        let w = work_ms as f64 / 1000.0;
        prop_assert!(wall >= w - 1e-9, "finished in {wall} < {w}");
        let expected = w * (hogs as f64 + 1.0);
        prop_assert!((wall - expected).abs() < 1e-6,
            "fair share: expected {expected}, got {wall}");
    }

    /// Work is conserved across arbitrary mid-flight share changes: with a
    /// hog arriving at `t1` and leaving at `t2`, total CPU time given to
    /// the work equals the requested amount exactly.
    #[test]
    fn work_conserved_across_share_changes(
        work_ms in 500u64..4_000,
        t1_ms in 1u64..400,
        dwell_ms in 1u64..2_000,
    ) {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        let (wid, ups) = cpu.start_work(SimTime::ZERO, p, SimDelta::from_millis(work_ms));
        let t1 = SimTime::from_millis(t1_ms);
        let t2 = SimTime::from_millis(t1_ms + dwell_ms);
        let hog: Rc<Cell<Option<ProcId>>> = Rc::new(Cell::new(None));
        let hog2 = hog.clone();
        let disturbances: Vec<Disturbance> = vec![
            (t1, Box::new(move |cpu: &mut Cpu| {
                let (h, ups) = cpu.spawn_hog(t1);
                hog.set(Some(h));
                ups
            })),
            (t2, Box::new(move |cpu: &mut Cpu| {
                match hog2.get() {
                    Some(h) => cpu.remove_process(t2, h),
                    None => Vec::new(),
                }
            })),
        ];
        let done = run_to_completion(&mut cpu, wid, ups, disturbances);
        // Closed form: full speed before t1 and after t2, half speed
        // between (one hog).
        let w = work_ms as f64 / 1000.0;
        let (t1s, t2s) = (t1.as_secs_f64(), t2.as_secs_f64());
        let expected = if w <= t1s {
            w
        } else {
            let after_t1 = w - t1s; // cpu-seconds left at t1
            let half_window = (t2s - t1s) / 2.0; // cpu-secs doable in [t1,t2]
            if after_t1 <= half_window {
                t1s + after_t1 * 2.0
            } else {
                t2s + (after_t1 - half_window)
            }
        };
        prop_assert!((done.as_secs_f64() - expected).abs() < 1e-6,
            "expected {expected}, got {}", done.as_secs_f64());
    }

    /// Reservations are honored exactly: with one hog present, a process
    /// holding fraction `f` finishes `w` cpu-seconds in `w/f` wall seconds.
    #[test]
    fn reservation_rate_is_exact(
        work_ms in 100u64..2_000,
        frac_pct in 10u64..95,
    ) {
        let mut cpu = Cpu::new();
        let p = cpu.add_process();
        let _ = cpu.spawn_hog(SimTime::ZERO);
        cpu.set_reservation(SimTime::ZERO, p, Some(frac_pct as f64 / 100.0)).unwrap();
        let (wid, ups) = cpu.start_work(SimTime::ZERO, p, SimDelta::from_millis(work_ms));
        let done = run_to_completion(&mut cpu, wid, ups, Vec::new());
        let expected = work_ms as f64 / 1000.0 / (frac_pct as f64 / 100.0);
        prop_assert!((done.as_secs_f64() - expected).abs() < 1e-6,
            "expected {expected}, got {}", done.as_secs_f64());
    }

    /// Admission control: sequences of reservations never admit more than
    /// MAX_RESERVABLE in total.
    #[test]
    fn reservations_never_exceed_cap(fracs in proptest::collection::vec(1u64..60, 1..8)) {
        let mut cpu = Cpu::new();
        let mut admitted = 0.0f64;
        for f in fracs {
            let p = cpu.add_process();
            let frac = f as f64 / 100.0;
            if cpu.set_reservation(SimTime::ZERO, p, Some(frac)).is_ok() {
                admitted += frac;
            }
        }
        prop_assert!(admitted <= mpichgq_dsrt::MAX_RESERVABLE + 1e-9,
            "admitted {admitted}");
    }
}
