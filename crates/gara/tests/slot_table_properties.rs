//! Property tests of the slot table: the bandwidth broker's core
//! invariant — committed capacity never exceeds the limit at any instant,
//! under arbitrary insert/remove/resize sequences.

use mpichgq_gara::{SlotId, SlotTable};
use mpichgq_sim::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { start: u64, len: u64, amount: u64 },
    Remove { idx: usize },
    Resize { idx: usize, amount: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..100, 1u64..50, 1u64..60).prop_map(|(start, len, amount)| Op::Insert {
            start,
            len,
            amount
        }),
        (any::<usize>()).prop_map(|idx| Op::Remove { idx }),
        (any::<usize>(), 1u64..60).prop_map(|(idx, amount)| Op::Resize { idx, amount }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn never_oversubscribed(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        const CAP: u64 = 100;
        let mut st = SlotTable::new(CAP);
        let mut held: Vec<SlotId> = Vec::new();
        for op in ops {
            match op {
                Op::Insert { start, len, amount } => {
                    let s = SimTime::from_secs(start);
                    let e = SimTime::from_secs(start + len);
                    if let Ok(id) = st.try_insert(s, e, amount) {
                        held.push(id);
                    }
                }
                Op::Remove { idx } => {
                    if !held.is_empty() {
                        let id = held.remove(idx % held.len());
                        assert!(st.remove(id));
                    }
                }
                Op::Resize { idx, amount } => {
                    if !held.is_empty() {
                        let id = held[idx % held.len()];
                        let _ = st.try_resize(id, amount);
                    }
                }
            }
            // Invariant: load at every whole second stays within capacity.
            for t in 0..160u64 {
                let load = st.load_at(SimTime::from_secs(t));
                prop_assert!(load <= CAP, "load {load} at t={t} exceeds capacity");
            }
        }
    }

    /// `available` is exact: a request for exactly the available amount is
    /// admitted; one unit more is rejected.
    #[test]
    fn available_is_tight(
        bookings in proptest::collection::vec((0u64..50, 1u64..30, 1u64..50), 0..12),
        qstart in 0u64..60,
        qlen in 1u64..30,
    ) {
        const CAP: u64 = 100;
        let mut st = SlotTable::new(CAP);
        for (start, len, amount) in bookings {
            let _ = st.try_insert(
                SimTime::from_secs(start),
                SimTime::from_secs(start + len),
                amount,
            );
        }
        let qs = SimTime::from_secs(qstart);
        let qe = SimTime::from_secs(qstart + qlen);
        let avail = st.available(qs, qe);
        prop_assert!(avail <= CAP);
        if avail > 0 {
            let id = st.try_insert(qs, qe, avail);
            prop_assert!(id.is_ok(), "exact-fit insert of {avail} rejected");
            st.remove(id.unwrap());
        }
        prop_assert!(st.try_insert(qs, qe, avail + 1).is_err(),
            "over-fit insert of {} admitted", avail + 1);
    }

    /// Removing everything restores full capacity everywhere.
    #[test]
    fn remove_all_restores_capacity(
        bookings in proptest::collection::vec((0u64..50, 1u64..30, 1u64..100), 1..12),
    ) {
        const CAP: u64 = 100;
        let mut st = SlotTable::new(CAP);
        let mut held = Vec::new();
        for (start, len, amount) in bookings {
            if let Ok(id) = st.try_insert(
                SimTime::from_secs(start),
                SimTime::from_secs(start + len),
                amount,
            ) {
                held.push(id);
            }
        }
        for id in held {
            assert!(st.remove(id));
        }
        prop_assert!(st.is_empty());
        prop_assert_eq!(st.available(SimTime::ZERO, SimTime::from_secs(1000)), CAP);
    }
}
