//! Equivalence of the interval-tree [`SlotTable`] against a naive
//! reference model — a flat slot list whose every query is a full
//! re-scan (the shape of the pre-PR-7 implementation). Both models are
//! driven through the same random churn of reserve / batch-reserve /
//! resize / free / capacity-change / compact operations and must agree
//! on every result, including the exact `Rejected { requested,
//! available, reason }` payloads and the saturating-`available`
//! behavior after a capacity lowering leaves the table overcommitted.

use mpichgq_gara::{RejectReason, Rejected, SlotId, SlotTable};
use mpichgq_sim::SimTime;
use proptest::prelude::*;

/// The reference model: a flat slot list, every peak query a full
/// re-scan of boundaries. Correct by inspection, O(n) per query.
#[derive(Debug, Default)]
struct NaiveTable {
    capacity: u64,
    next_id: u64,
    // (id, start, end, amount, tenant)
    slots: Vec<(u64, SimTime, SimTime, u64, u64)>,
}

impl NaiveTable {
    fn new(capacity: u64) -> Self {
        NaiveTable {
            capacity,
            ..Default::default()
        }
    }

    fn load_at(&self, t: SimTime) -> u64 {
        self.slots
            .iter()
            .filter(|&&(_, s, e, _, _)| s <= t && t < e)
            .map(|&(_, _, _, a, _)| a)
            .sum()
    }

    /// Peak load over `[start, end)`: the load can only change at slot
    /// boundaries, so evaluating at `start` and at every boundary
    /// strictly inside the interval covers every level the profile takes.
    fn peak_in(&self, start: SimTime, end: SimTime) -> u64 {
        let mut peak = self.load_at(start);
        for &(_, s, e, _, _) in &self.slots {
            for b in [s, e] {
                if b > start && b < end {
                    peak = peak.max(self.load_at(b));
                }
            }
        }
        peak
    }

    fn available(&self, start: SimTime, end: SimTime) -> u64 {
        self.capacity.saturating_sub(self.peak_in(start, end))
    }

    fn max_peak(&self) -> u64 {
        self.slots
            .iter()
            .map(|&(_, s, _, _, _)| self.load_at(s))
            .max()
            .unwrap_or(0)
    }

    fn insert_unchecked(&mut self, start: SimTime, end: SimTime, amount: u64, tenant: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.slots.push((id, start, end, amount, tenant));
        id
    }

    fn try_insert_tenant(
        &mut self,
        start: SimTime,
        end: SimTime,
        amount: u64,
        tenant: u64,
    ) -> Result<u64, Rejected> {
        let peak = self.peak_in(start, end);
        if peak.saturating_add(amount) > self.capacity {
            return Err(Rejected {
                requested: amount,
                available: self.capacity.saturating_sub(peak),
                reason: RejectReason::OverCapacity,
            });
        }
        Ok(self.insert_unchecked(start, end, amount, tenant))
    }

    /// All-or-nothing batch admission, auditing in input order with the
    /// whole batch committed — the decision a sequential loop with
    /// rollback would make.
    fn try_insert_batch_tenant(
        &mut self,
        items: &[(SimTime, SimTime, u64)],
        tenant: u64,
    ) -> Result<Vec<u64>, Rejected> {
        let ids: Vec<u64> = items
            .iter()
            .map(|&(s, e, a)| self.insert_unchecked(s, e, a, tenant))
            .collect();
        for &(s, e, amount) in items {
            let peak = self.peak_in(s, e);
            if peak > self.capacity {
                let available = self.capacity.saturating_sub(peak.saturating_sub(amount));
                self.slots.retain(|&(id, ..)| !ids.contains(&id));
                return Err(Rejected {
                    requested: amount,
                    available,
                    reason: RejectReason::OverCapacity,
                });
            }
        }
        Ok(ids)
    }

    fn remove(&mut self, id: u64) -> bool {
        let before = self.slots.len();
        self.slots.retain(|&(sid, ..)| sid != id);
        self.slots.len() < before
    }

    fn try_resize(&mut self, id: u64, new_amount: u64) -> Result<(), Rejected> {
        let Some(i) = self.slots.iter().position(|&(sid, ..)| sid == id) else {
            return Err(Rejected {
                requested: new_amount,
                available: 0,
                reason: RejectReason::UnknownSlot,
            });
        };
        let (_, start, end, old, _) = self.slots[i];
        self.slots[i].3 = 0;
        let peak_others = self.peak_in(start, end);
        if peak_others.saturating_add(new_amount) > self.capacity {
            self.slots[i].3 = old;
            return Err(Rejected {
                requested: new_amount,
                available: self.capacity.saturating_sub(peak_others),
                reason: RejectReason::OverCapacity,
            });
        }
        self.slots[i].3 = new_amount;
        Ok(())
    }

    /// Same sweep the tree performs: sort by (tenant, start, end, id),
    /// fold end-abutting same-amount same-tenant runs into the earlier
    /// slot, report (absorbed, survivor) pairs.
    fn compact(&mut self) -> Vec<(u64, u64)> {
        let mut order = self.slots.clone();
        order.sort_by_key(|&(id, s, e, _, t)| (t, s, e, id));
        let mut merged = Vec::new();
        let mut i = 0;
        while i + 1 < order.len() {
            let (sid, _, s_end, s_amt, s_ten) = order[i];
            let (tid, t_start, t_end, t_amt, t_ten) = order[i + 1];
            if s_ten == t_ten && s_amt == t_amt && s_end == t_start {
                self.slots.retain(|&(id, ..)| id != tid);
                let surv = self.slots.iter_mut().find(|(id, ..)| *id == sid).unwrap();
                surv.2 = t_end;
                merged.push((tid, sid));
                order[i].2 = t_end;
                order.remove(i + 1);
            } else {
                i += 1;
            }
        }
        merged
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert {
        start: u64,
        len: u64,
        amount: u64,
        tenant: u64,
    },
    InsertBatch {
        items: Vec<(u64, u64, u64)>,
        tenant: u64,
    },
    // Book a window abutting an existing slot's end with the same tenant
    // and amount — the adjacency `compact` folds; random draws never
    // produce it.
    Extend {
        idx: usize,
        len: u64,
    },
    Remove {
        idx: usize,
    },
    RemoveUnknown {
        id: u64,
    },
    Resize {
        idx: usize,
        amount: u64,
    },
    ResizeUnknown {
        id: u64,
        amount: u64,
    },
    SetCapacity {
        cap: u64,
    },
    Compact,
}

fn insert_strategy() -> impl Strategy<Value = Op> {
    (0u64..100, 1u64..40, 1u64..70, 0u64..4).prop_map(|(start, len, amount, tenant)| Op::Insert {
        start,
        len,
        amount,
        tenant,
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shim's prop_oneof! is unweighted; repeating the insert arm
    // biases the mix toward a populated table.
    prop_oneof![
        insert_strategy(),
        insert_strategy(),
        insert_strategy(),
        (
            proptest::collection::vec((0u64..100, 1u64..40, 1u64..50), 1..5),
            0u64..4,
        )
            .prop_map(|(items, tenant)| Op::InsertBatch { items, tenant }),
        (any::<usize>(), 1u64..20).prop_map(|(idx, len)| Op::Extend { idx, len }),
        (any::<usize>(), 1u64..20).prop_map(|(idx, len)| Op::Extend { idx, len }),
        any::<usize>().prop_map(|idx| Op::Remove { idx }),
        (10_000u64..20_000).prop_map(|id| Op::RemoveUnknown { id }),
        (any::<usize>(), 1u64..70).prop_map(|(idx, amount)| Op::Resize { idx, amount }),
        (10_000u64..20_000, 1u64..70).prop_map(|(id, amount)| Op::ResizeUnknown { id, amount }),
        // Includes lowering below the committed peak: the table goes
        // overcommitted and `available` must saturate to 0 identically
        // in both models until enough load drains.
        (20u64..200).prop_map(|cap| Op::SetCapacity { cap }),
        Just(Op::Compact),
    ]
}

fn sec(t: u64) -> SimTime {
    SimTime::from_secs(t)
}

/// Compare every observable the two models share, at a churn step.
fn assert_observables_agree(st: &SlotTable, nv: &NaiveTable, held: &[(SlotId, u64)]) {
    prop_assert_eq!(st.len(), nv.slots.len(), "slot counts diverged");
    prop_assert_eq!(st.max_peak(), nv.max_peak(), "max_peak diverged");
    prop_assert_eq!(
        st.max_overcommit(),
        nv.max_peak().saturating_sub(nv.capacity),
        "max_overcommit diverged"
    );
    for t in (0..220).step_by(7) {
        prop_assert_eq!(
            st.load_at(sec(t)),
            nv.load_at(sec(t)),
            "load_at({}) diverged",
            t
        );
    }
    for (qs, qe) in [(0, 50), (25, 90), (0, 220), (140, 141)] {
        prop_assert_eq!(
            st.available(sec(qs), sec(qe)),
            nv.available(sec(qs), sec(qe)),
            "available([{}, {})) diverged",
            qs,
            qe
        );
    }
    for &(tree_id, naive_id) in held {
        let want = nv
            .slots
            .iter()
            .find(|&&(id, ..)| id == naive_id)
            .map(|&(_, _, _, a, t)| (a, t));
        prop_assert_eq!(
            st.amount_of(tree_id).zip(st.tenant_of(tree_id)),
            want,
            "slot {:?} amount/tenant diverged",
            tree_id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// The interval tree and the naive full-re-scan model make identical
    /// decisions — same admitted ids in the same order, bit-identical
    /// `Rejected` payloads, same compaction merges — under arbitrary
    /// churn including capacity lowering into overcommit.
    #[test]
    fn tree_matches_naive_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        const CAP: u64 = 100;
        let mut st = SlotTable::new(CAP);
        let mut nv = NaiveTable::new(CAP);
        // Live slots as (tree id, naive id) pairs; the two id sequences
        // are compared for lockstep equality as they are handed out.
        let mut held: Vec<(SlotId, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert { start, len, amount, tenant } => {
                    let (s, e) = (sec(start), sec(start + len));
                    let a = st.try_insert_tenant(s, e, amount, tenant);
                    let b = nv.try_insert_tenant(s, e, amount, tenant);
                    match (a, b) {
                        (Ok(tid), Ok(nid)) => {
                            prop_assert_eq!(tid, SlotId(nid), "insert ids diverged");
                            held.push((tid, nid));
                        }
                        (Err(ra), Err(rb)) => prop_assert_eq!(ra, rb, "insert rejections diverged"),
                        (a, b) => prop_assert!(false, "insert decisions diverged: {a:?} vs {b:?}"),
                    }
                }
                Op::InsertBatch { items, tenant } => {
                    let items: Vec<(SimTime, SimTime, u64)> = items
                        .iter()
                        .map(|&(s, l, a)| (sec(s), sec(s + l), a))
                        .collect();
                    let a = st.try_insert_batch_tenant(&items, tenant);
                    let b = nv.try_insert_batch_tenant(&items, tenant);
                    match (a, b) {
                        (Ok(tids), Ok(nids)) => {
                            prop_assert_eq!(tids.len(), nids.len());
                            for (&tid, &nid) in tids.iter().zip(&nids) {
                                prop_assert_eq!(tid, SlotId(nid), "batch ids diverged");
                                held.push((tid, nid));
                            }
                        }
                        (Err(ra), Err(rb)) => prop_assert_eq!(ra, rb, "batch rejections diverged"),
                        (a, b) => prop_assert!(false, "batch decisions diverged: {a:?} vs {b:?}"),
                    }
                }
                Op::Extend { idx, len } => {
                    if !held.is_empty() {
                        let (_, nid) = held[idx % held.len()];
                        let &(_, _, end, amount, tenant) = nv
                            .slots
                            .iter()
                            .find(|&&(id, ..)| id == nid)
                            .expect("held slot exists in the naive model");
                        let e2 = SimTime::from_nanos(end.as_nanos() + len * 1_000_000_000);
                        let a = st.try_insert_tenant(end, e2, amount, tenant);
                        let b = nv.try_insert_tenant(end, e2, amount, tenant);
                        match (a, b) {
                            (Ok(tid), Ok(nid2)) => {
                                prop_assert_eq!(tid, SlotId(nid2), "extend ids diverged");
                                held.push((tid, nid2));
                            }
                            (Err(ra), Err(rb)) => {
                                prop_assert_eq!(ra, rb, "extend rejections diverged")
                            }
                            (a, b) => {
                                prop_assert!(false, "extend decisions diverged: {a:?} vs {b:?}")
                            }
                        }
                    }
                }
                Op::Remove { idx } => {
                    if !held.is_empty() {
                        let (tid, nid) = held.remove(idx % held.len());
                        prop_assert!(st.remove(tid));
                        prop_assert!(nv.remove(nid));
                    }
                }
                Op::RemoveUnknown { id } => {
                    prop_assert!(!st.remove(SlotId(id)));
                    prop_assert!(!nv.remove(id));
                }
                Op::Resize { idx, amount } => {
                    if !held.is_empty() {
                        let (tid, nid) = held[idx % held.len()];
                        let a = st.try_resize(tid, amount);
                        let b = nv.try_resize(nid, amount);
                        prop_assert_eq!(a, b, "resize outcomes diverged");
                    }
                }
                Op::ResizeUnknown { id, amount } => {
                    let a = st.try_resize(SlotId(id), amount);
                    let b = nv.try_resize(id, amount);
                    prop_assert_eq!(a, b, "unknown-slot resize diverged");
                    prop_assert_eq!(
                        a,
                        Err(Rejected {
                            requested: amount,
                            available: 0,
                            reason: RejectReason::UnknownSlot,
                        })
                    );
                }
                Op::SetCapacity { cap } => {
                    st.set_capacity(cap);
                    nv.capacity = cap;
                    prop_assert_eq!(st.capacity(), cap);
                }
                Op::Compact => {
                    let a = st.compact();
                    let b = nv.compact();
                    let b: Vec<(SlotId, SlotId)> =
                        b.into_iter().map(|(x, y)| (SlotId(x), SlotId(y))).collect();
                    prop_assert_eq!(&a, &b, "compaction merges diverged");
                    // Drop absorbed handles from the held set.
                    for (absorbed, _) in a {
                        held.retain(|&(tid, _)| tid != absorbed);
                    }
                }
            }
            assert_observables_agree(&st, &nv, &held);
        }
    }

    /// The capacity-lowering edge in isolation: fill the table, lower
    /// capacity below the committed peak, and check that admission,
    /// resize, and `available` all report through the saturating path
    /// identically in both models while overcommitted.
    #[test]
    fn overcommit_after_capacity_lowering_matches(
        bookings in proptest::collection::vec((0u64..60, 1u64..30, 10u64..60), 2..10),
        new_cap in 1u64..40,
        probe in (0u64..80, 1u64..30, 1u64..80),
    ) {
        const CAP: u64 = 100;
        let mut st = SlotTable::new(CAP);
        let mut nv = NaiveTable::new(CAP);
        for (start, len, amount) in bookings {
            let (s, e) = (sec(start), sec(start + len));
            let a = st.try_insert(s, e, amount);
            let b = nv.try_insert_tenant(s, e, amount, 0);
            prop_assert_eq!(a.is_ok(), b.is_ok());
        }
        if st.max_peak() <= new_cap {
            // Not overcommitted for this draw; nothing edge-shaped to pin.
            return;
        }
        st.set_capacity(new_cap);
        nv.capacity = new_cap;
        prop_assert_eq!(st.max_overcommit(), nv.max_peak() - new_cap);

        let (ps, plen, pamt) = probe;
        let (qs, qe) = (sec(ps), sec(ps + plen));
        prop_assert_eq!(st.available(qs, qe), nv.available(qs, qe));
        let a = st.try_insert(qs, qe, pamt);
        let b = nv.try_insert_tenant(qs, qe, pamt, 0);
        match (a, b) {
            (Ok(tid), Ok(nid)) => prop_assert_eq!(tid, SlotId(nid)),
            (Err(ra), Err(rb)) => {
                // An overcommitted window must report zero available, not
                // wrap around: the saturating edge this test pins down.
                if nv.peak_in(qs, qe) > new_cap {
                    prop_assert_eq!(ra.available, 0);
                }
                prop_assert_eq!(ra, rb);
            }
            (a, b) => prop_assert!(false, "probe decisions diverged: {a:?} vs {b:?}"),
        }
    }
}
