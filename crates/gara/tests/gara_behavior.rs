//! Behavioral tests for GARA: admission control, advance reservations,
//! co-reservation atomicity, and end-to-end enforcement on the simulated
//! network and CPUs.

use mpichgq_gara::{
    install, CpuRequest, Gara, NetworkRequest, Request, ReserveError, StartSpec, Status,
    StorageRequest,
};
use mpichgq_netsim::{topology::Dumbbell, DepthRule, NodeId, PolicingAction, Proto};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::{App, Ctx, Sim, SockId};
use std::cell::RefCell;
use std::rc::Rc;

fn net_request(src: NodeId, dst: NodeId, rate_bps: u64) -> Request {
    net_request_port(src, dst, rate_bps, None)
}

fn net_request_port(src: NodeId, dst: NodeId, rate_bps: u64, dst_port: Option<u16>) -> Request {
    Request::Network(NetworkRequest {
        src,
        dst,
        proto: Proto::Udp,
        src_port: None,
        dst_port,
        rate_bps,
        depth: DepthRule::Normal,
        action: PolicingAction::Drop,
        shape_at_source: false,
    })
}

/// A constant-bit-rate UDP source.
struct UdpCbr {
    dst: NodeId,
    dport: u16,
    payload: u32,
    interval: SimDelta,
    sock: Option<SockId>,
}

impl App for UdpCbr {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.sock = Some(ctx.udp_bind(9999));
        ctx.set_timer(self.interval, 0);
    }
    fn on_timer(&mut self, _t: u32, ctx: &mut Ctx) {
        ctx.udp_send(self.sock.unwrap(), self.dst, self.dport, self.payload);
        ctx.set_timer(self.interval, 0);
    }
}

/// Counts received UDP payload bytes.
struct UdpSink {
    port: u16,
    got: Rc<RefCell<u64>>,
}

impl App for UdpSink {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.udp_bind(self.port);
    }
    fn on_udp(&mut self, _s: SockId, _from: (NodeId, u16), len: u32, _ctx: &mut Ctx) {
        *self.got.borrow_mut() += len as u64;
    }
}

fn dumbbell_sim() -> (Sim, NodeId, NodeId) {
    let d = Dumbbell::build(10_000_000, SimDelta::from_millis(1), 11);
    let (src, dst) = (d.src, d.dst);
    let mut sim = Sim::new(d.net);
    let mut gara = Gara::new();
    gara.manage_core_links(&sim.net, 0.5); // 5 Mb/s reservable on the trunk
    install(&mut sim.stack, gara);
    (sim, src, dst)
}

fn with_gara<R>(sim: &mut Sim, f: impl FnOnce(&mut Gara, &mut mpichgq_netsim::Net) -> R) -> R {
    let mut g = sim.stack.take_service::<Gara>().expect("gara installed");
    let r = f(&mut g, &mut sim.net);
    sim.stack.put_service_box(g);
    r
}

#[test]
fn admission_is_limited_to_reservable_fraction() {
    let (mut sim, src, dst) = dumbbell_sim();
    with_gara(&mut sim, |g, net| {
        assert_eq!(g.managed_chan_count(), 2); // both trunk directions
        g.reserve(net, net_request(src, dst, 3_000_000), StartSpec::Now, None)
            .unwrap();
        // 2 Mb/s left of the 5 Mb/s reservable.
        let err = g
            .reserve(net, net_request(src, dst, 2_500_000), StartSpec::Now, None)
            .unwrap_err();
        match err {
            ReserveError::Admission(r) => assert_eq!(r.available, 2_000_000),
            other => panic!("unexpected error {other}"),
        }
        g.reserve(net, net_request(src, dst, 2_000_000), StartSpec::Now, None)
            .unwrap();
    });
}

#[test]
fn cancel_releases_capacity_and_enforcement() {
    let (mut sim, src, dst) = dumbbell_sim();
    with_gara(&mut sim, |g, net| {
        let id = g
            .reserve(net, net_request(src, dst, 5_000_000), StartSpec::Now, None)
            .unwrap();
        assert_eq!(g.status(id), Some(Status::Active));
        assert!(g
            .reserve(net, net_request(src, dst, 1_000_000), StartSpec::Now, None)
            .is_err());
        g.cancel(net, id);
        assert_eq!(g.status(id), Some(Status::Cancelled));
        g.reserve(net, net_request(src, dst, 5_000_000), StartSpec::Now, None)
            .unwrap();
        // The classifier rule of the cancelled reservation is gone; exactly
        // one rule (the new reservation's) remains on the edge router.
        let r1 = NodeId(1);
        assert_eq!(net.node(r1).classifier.len(), 1);
    });
}

#[test]
fn reservation_protects_flow_from_congestion() {
    // Blast 12 Mb/s of best-effort UDP over the 10 Mb/s trunk alongside a
    // 2 Mb/s premium flow. Without a reservation the premium flow loses
    // proportionally; with one it gets everything through.
    let run = |reserve: bool| {
        let (mut sim, src, dst) = dumbbell_sim();
        if reserve {
            with_gara(&mut sim, |g, net| {
                g.reserve(
                    net,
                    net_request_port(src, dst, 2_500_000, Some(7000)),
                    StartSpec::Now,
                    None,
                )
                .unwrap();
            });
        }
        let got = Rc::new(RefCell::new(0u64));
        sim.spawn_app(
            dst,
            Box::new(UdpSink {
                port: 7000,
                got: got.clone(),
            }),
        );
        // Premium flow: 1000-byte payloads every 4 ms = 2 Mb/s.
        sim.spawn_app(
            src,
            Box::new(UdpCbr {
                dst,
                dport: 7000,
                payload: 1000,
                interval: SimDelta::from_millis(4),
                sock: None,
            }),
        );
        // Contention: a second sink port and a ~30 Mb/s blaster that keeps
        // the best-effort queue persistently full.
        let waste = Rc::new(RefCell::new(0u64));
        sim.spawn_app(
            dst,
            Box::new(UdpSink {
                port: 7001,
                got: waste.clone(),
            }),
        );
        let mut blaster = UdpCbr {
            dst,
            dport: 7001,
            payload: 1500,
            interval: SimDelta::from_micros(400),
            sock: None,
        };
        blaster.sock = None;
        struct Blaster2(UdpCbr);
        impl App for Blaster2 {
            fn on_start(&mut self, ctx: &mut Ctx) {
                self.0.sock = Some(ctx.udp_bind(9998));
                ctx.set_timer(self.0.interval, 0);
            }
            fn on_timer(&mut self, _t: u32, ctx: &mut Ctx) {
                ctx.udp_send(
                    self.0.sock.unwrap(),
                    self.0.dst,
                    self.0.dport,
                    self.0.payload,
                );
                ctx.set_timer(self.0.interval, 0);
            }
        }
        sim.spawn_app(src, Box::new(Blaster2(blaster)));
        sim.run_until(SimTime::from_secs(10));
        let delivered = *got.borrow();
        delivered
    };
    let with_resv = run(true);
    let without = run(false);
    let offered = 2_000_000 / 8 * 10; // bytes the premium source offered
    assert!(
        with_resv as f64 > 0.99 * offered as f64,
        "reserved flow delivered {with_resv} of {offered}"
    );
    assert!(
        (without as f64) < 0.9 * offered as f64,
        "unreserved flow should suffer under congestion: {without} of {offered}"
    );
}

#[test]
fn advance_reservation_activates_and_expires_on_schedule() {
    let (mut sim, src, dst) = dumbbell_sim();
    let id = with_gara(&mut sim, |g, net| {
        g.reserve(
            net,
            net_request(src, dst, 1_000_000),
            StartSpec::At(SimTime::from_secs(5)),
            Some(SimDelta::from_secs(3)),
        )
        .unwrap()
    });
    let r1 = NodeId(1);
    assert_eq!(
        with_gara(&mut sim, |g, _| g.status(id)),
        Some(Status::Pending)
    );
    assert_eq!(sim.net.node(r1).classifier.len(), 0);

    sim.run_until(SimTime::from_secs(6));
    assert_eq!(
        with_gara(&mut sim, |g, _| g.status(id)),
        Some(Status::Active)
    );
    assert_eq!(
        sim.net.node(r1).classifier.len(),
        1,
        "policer installed at start"
    );

    sim.run_until(SimTime::from_secs(9));
    assert_eq!(
        with_gara(&mut sim, |g, _| g.status(id)),
        Some(Status::Expired)
    );
    assert_eq!(
        sim.net.node(r1).classifier.len(),
        0,
        "policer removed at end"
    );
}

#[test]
fn overlapping_advance_reservations_respect_capacity() {
    let (mut sim, src, dst) = dumbbell_sim();
    with_gara(&mut sim, |g, net| {
        g.reserve(
            net,
            net_request(src, dst, 4_000_000),
            StartSpec::At(SimTime::from_secs(10)),
            Some(SimDelta::from_secs(10)),
        )
        .unwrap();
        // Overlaps the future window: only 1 Mb/s free there.
        assert!(g
            .reserve(net, net_request(src, dst, 2_000_000), StartSpec::Now, None)
            .is_err());
        // Fits before the window ends... no: open-ended overlaps. A bounded
        // one that ends before 10 s works.
        g.reserve(
            net,
            net_request(src, dst, 2_000_000),
            StartSpec::Now,
            Some(SimDelta::from_secs(10)),
        )
        .unwrap();
    });
}

#[test]
fn co_reservation_is_atomic() {
    let (mut sim, src, dst) = dumbbell_sim();
    let proc = sim.net.cpu_add_process(src);
    with_gara(&mut sim, |g, net| {
        // Second request oversubscribes the network: everything rolls back.
        let result = g.co_reserve(
            net,
            vec![
                (
                    Request::Cpu(CpuRequest {
                        host: src,
                        proc,
                        fraction: 0.9,
                    }),
                    StartSpec::Now,
                    None,
                ),
                (net_request(src, dst, 100_000_000), StartSpec::Now, None),
            ],
        );
        assert!(result.is_err());
        // The CPU reservation must have been rolled back.
        let ok = g.co_reserve(
            net,
            vec![
                (
                    Request::Cpu(CpuRequest {
                        host: src,
                        proc,
                        fraction: 0.9,
                    }),
                    StartSpec::Now,
                    None,
                ),
                (net_request(src, dst, 1_000_000), StartSpec::Now, None),
            ],
        );
        assert_eq!(ok.unwrap().len(), 2);
    });
}

#[test]
fn cpu_reservation_is_enforced_end_to_end() {
    let (mut sim, src, _dst) = dumbbell_sim();
    let proc = sim.net.cpu_add_process(src);
    sim.net.cpu_spawn_hog(src);
    // Fair share 50%.
    assert!((sim.net.cpu_share_of(src, proc) - 0.0).abs() < 1e-9); // not runnable yet
    with_gara(&mut sim, |g, net| {
        g.reserve(
            net,
            Request::Cpu(CpuRequest {
                host: src,
                proc,
                fraction: 0.8,
            }),
            StartSpec::Now,
            Some(SimDelta::from_secs(5)),
        )
        .unwrap();
    });
    let wid = sim.net.cpu_start_work(src, proc, SimDelta::from_secs(30));
    let _ = wid;
    assert!((sim.net.cpu_share_of(src, proc) - 0.8).abs() < 1e-9);
    // After expiry the share reverts to fair (50% with one hog).
    sim.run_until(SimTime::from_secs(6));
    assert!(
        (sim.net.cpu_share_of(src, proc) - 0.5).abs() < 1e-9,
        "share after expiry: {}",
        sim.net.cpu_share_of(src, proc)
    );
}

#[test]
fn storage_reservations_account_bandwidth() {
    let (mut sim, _src, _dst) = dumbbell_sim();
    with_gara(&mut sim, |g, net| {
        g.manage_storage("dpss-1", 100_000_000);
        let a = g
            .reserve(
                net,
                Request::Storage(StorageRequest {
                    server: "dpss-1".into(),
                    bytes_per_sec: 80_000_000,
                }),
                StartSpec::Now,
                None,
            )
            .unwrap();
        assert!(g
            .reserve(
                net,
                Request::Storage(StorageRequest {
                    server: "dpss-1".into(),
                    bytes_per_sec: 30_000_000,
                }),
                StartSpec::Now,
                None,
            )
            .is_err());
        g.cancel(net, a);
        assert!(g
            .reserve(
                net,
                Request::Storage(StorageRequest {
                    server: "dpss-1".into(),
                    bytes_per_sec: 30_000_000,
                }),
                StartSpec::Now,
                None,
            )
            .is_ok());
        // Unknown server is a distinct error.
        assert!(matches!(
            g.reserve(
                net,
                Request::Storage(StorageRequest {
                    server: "nope".into(),
                    bytes_per_sec: 1
                }),
                StartSpec::Now,
                None,
            ),
            Err(ReserveError::UnknownServer(_))
        ));
    });
}

#[test]
fn modify_network_rate_live() {
    let (mut sim, src, dst) = dumbbell_sim();
    with_gara(&mut sim, |g, net| {
        let id = g
            .reserve(net, net_request(src, dst, 2_000_000), StartSpec::Now, None)
            .unwrap();
        // Grow within capacity.
        g.modify_network_rate(net, id, 4_000_000).unwrap();
        // Too big.
        assert!(g.modify_network_rate(net, id, 6_000_000).is_err());
        // The failed modify must not have leaked capacity: 1 Mb/s fits.
        g.reserve(net, net_request(src, dst, 1_000_000), StartSpec::Now, None)
            .unwrap();
    });
}

#[test]
fn status_events_and_callbacks_fire() {
    let (mut sim, src, dst) = dumbbell_sim();
    let log = Rc::new(RefCell::new(Vec::new()));
    let log2 = log.clone();
    with_gara(&mut sim, |g, _| {
        g.subscribe(Box::new(move |id, st| log2.borrow_mut().push((id, st))));
    });
    let id = with_gara(&mut sim, |g, net| {
        g.reserve(
            net,
            net_request(src, dst, 1_000_000),
            StartSpec::At(SimTime::from_secs(2)),
            Some(SimDelta::from_secs(2)),
        )
        .unwrap()
    });
    sim.run_until(SimTime::from_secs(5));
    let log = log.borrow();
    assert_eq!(
        *log,
        vec![
            (id, Status::Pending),
            (id, Status::Active),
            (id, Status::Expired)
        ]
    );
    let events = with_gara(&mut sim, |g, _| g.take_events());
    assert_eq!(events.len(), 3);
}

#[test]
fn revoke_tears_down_and_frees_capacity() {
    let (mut sim, src, dst) = dumbbell_sim();
    with_gara(&mut sim, |g, net| {
        let id = g
            .reserve(net, net_request(src, dst, 5_000_000), StartSpec::Now, None)
            .unwrap();
        assert_eq!(g.status(id), Some(Status::Active));
        g.take_events();
        g.revoke(net, id);
        assert_eq!(g.status(id), Some(Status::Revoked));
        assert_eq!(g.take_events(), vec![(id, Status::Revoked)]);
        // Enforcement gone, capacity back.
        assert_eq!(net.node(NodeId(1)).classifier.len(), 0);
        g.reserve(net, net_request(src, dst, 5_000_000), StartSpec::Now, None)
            .unwrap();
        // Revoking a non-live reservation is a no-op.
        g.revoke(net, id);
        assert_eq!(g.status(id), Some(Status::Revoked));
        assert_eq!(net.obs.metrics.counter_value("gara.revocations"), Some(1));
    });
}

#[test]
fn injected_rejections_fail_then_clear() {
    let (mut sim, src, dst) = dumbbell_sim();
    with_gara(&mut sim, |g, net| {
        g.inject_rejections(2);
        for _ in 0..2 {
            assert!(matches!(
                g.reserve(net, net_request(src, dst, 1_000_000), StartSpec::Now, None),
                Err(ReserveError::Injected)
            ));
        }
        // Third attempt succeeds; the injections consumed no capacity.
        g.reserve(net, net_request(src, dst, 5_000_000), StartSpec::Now, None)
            .unwrap();
        assert_eq!(
            net.obs.metrics.counter_value("gara.injected_rejections"),
            Some(2)
        );
    });
}

#[test]
fn cpu_reservation_can_be_modified_live() {
    let (mut sim, src, _dst) = dumbbell_sim();
    let proc = sim.net.cpu_add_process(src);
    sim.net.cpu_spawn_hog(src);
    sim.net.cpu_start_work(src, proc, SimDelta::from_secs(100));
    with_gara(&mut sim, |g, net| {
        let id = g
            .reserve(
                net,
                Request::Cpu(CpuRequest {
                    host: src,
                    proc,
                    fraction: 0.5,
                }),
                StartSpec::Now,
                None,
            )
            .unwrap();
        assert!((net.cpu_share_of(src, proc) - 0.5).abs() < 1e-9);
        // Grow the reservation in place.
        g.modify_cpu_fraction(net, id, 0.9).unwrap();
        assert!((net.cpu_share_of(src, proc) - 0.9).abs() < 1e-9);
        // Growing past the admission cap fails and leaves 0.9 in force.
        assert!(g.modify_cpu_fraction(net, id, 0.96).is_err());
        assert!((net.cpu_share_of(src, proc) - 0.9).abs() < 1e-9);
        // Shrinking frees capacity for another process.
        g.modify_cpu_fraction(net, id, 0.2).unwrap();
        let p2 = net.cpu_add_process(src);
        g.reserve(
            net,
            Request::Cpu(CpuRequest {
                host: src,
                proc: p2,
                fraction: 0.7,
            }),
            StartSpec::Now,
            None,
        )
        .unwrap();
    });
}

#[test]
fn failed_multi_link_modify_rolls_back_infallibly() {
    // A reservation path crossing two managed trunks with different
    // reservable capacities: growing the rate succeeds on the roomier
    // first trunk and is refused on the tighter second. The refusal must
    // restore the first trunk's slot to the old rate — without panicking
    // (regression: the rollback chained `try_resize(..).unwrap()` /
    // `get_mut(..).unwrap()` and aborted the process on any wrinkle).
    use mpichgq_netsim::{LinkCfg, QueueCfg, TopoBuilder};
    let mut b = TopoBuilder::new(77);
    let h1 = b.host("h1");
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    let r3 = b.router("r3");
    let h2 = b.host("h2");
    let edge = LinkCfg::fast_ethernet(SimDelta::from_micros(50));
    let trunk = LinkCfg::atm_vc(10_000_000, SimDelta::from_millis(2));
    b.link(h1, r1, edge, QueueCfg::droptail_default());
    let (t12, _) = b.link(r1, r2, trunk, QueueCfg::priority_default());
    let (t23, _) = b.link(r2, r3, trunk, QueueCfg::priority_default());
    b.link(r3, h2, edge, QueueCfg::droptail_default());
    let mut sim = Sim::new(b.build());
    let mut gara = Gara::new();
    gara.manage_chan(t12, 8_000_000);
    gara.manage_chan(t23, 5_000_000);
    install(&mut sim.stack, gara);

    with_gara(&mut sim, |g, net| {
        let id = g
            .reserve(net, net_request(h1, h2, 4_000_000), StartSpec::Now, None)
            .unwrap();
        let horizon = SimTime::from_secs(1000);
        assert_eq!(g.available_on(t12, SimTime::ZERO, horizon), Some(4_000_000));
        assert_eq!(g.available_on(t23, SimTime::ZERO, horizon), Some(1_000_000));

        // 6 Mb/s fits trunk 1 (8 reservable) but not trunk 2 (5 reservable).
        let err = g.modify_network_rate(net, id, 6_000_000).unwrap_err();
        match err {
            ReserveError::Admission(r) => {
                assert_eq!(r.requested, 6_000_000);
                assert_eq!(r.available, 5_000_000);
            }
            other => panic!("unexpected error {other}"),
        }
        // Prior state restored on BOTH trunks: the old rate is still
        // admitted, and the freed capacity adds up exactly.
        assert_eq!(g.status(id), Some(Status::Active));
        assert_eq!(g.available_on(t12, SimTime::ZERO, horizon), Some(4_000_000));
        assert_eq!(g.available_on(t23, SimTime::ZERO, horizon), Some(1_000_000));

        // A feasible modify still works after the refused one.
        g.modify_network_rate(net, id, 5_000_000).unwrap();
        assert_eq!(g.available_on(t12, SimTime::ZERO, horizon), Some(3_000_000));
        assert_eq!(g.available_on(t23, SimTime::ZERO, horizon), Some(0));
    });
}

#[test]
fn modify_rollback_survives_capacity_lowering_reconfiguration() {
    // Broker lowers a trunk's reservable capacity below the committed peak
    // *after* admission. A later refused modify must still roll back
    // cleanly — `restore` bypasses admission, so the old (now formally
    // overcommitted) amount is reinstated instead of the process dying.
    use mpichgq_netsim::{LinkCfg, QueueCfg, TopoBuilder};
    let mut b = TopoBuilder::new(78);
    let h1 = b.host("h1");
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    let r3 = b.router("r3");
    let h2 = b.host("h2");
    let edge = LinkCfg::fast_ethernet(SimDelta::from_micros(50));
    let trunk = LinkCfg::atm_vc(10_000_000, SimDelta::from_millis(2));
    b.link(h1, r1, edge, QueueCfg::droptail_default());
    let (t12, _) = b.link(r1, r2, trunk, QueueCfg::priority_default());
    let (t23, _) = b.link(r2, r3, trunk, QueueCfg::priority_default());
    b.link(r3, h2, edge, QueueCfg::droptail_default());
    let mut sim = Sim::new(b.build());
    let mut gara = Gara::new();
    gara.manage_chan(t12, 8_000_000);
    gara.manage_chan(t23, 8_000_000);
    install(&mut sim.stack, gara);

    with_gara(&mut sim, |g, net| {
        let id = g
            .reserve(net, net_request(h1, h2, 6_000_000), StartSpec::Now, None)
            .unwrap();
        // Reconfiguration squeezes the first trunk under the committed 6.
        assert!(g.set_chan_capacity(t12, 4_000_000));
        let over: Vec<_> = g
            .slot_tables()
            .filter(|(_, t)| t.max_overcommit() > 0)
            .map(|(c, t)| (c, t.max_overcommit()))
            .collect();
        assert_eq!(over, vec![(t12, 2_000_000)]);

        // Any modify is now refused at trunk 1 (over capacity), and the
        // rollback leaves the original 6 Mb/s in force everywhere.
        assert!(g.modify_network_rate(net, id, 7_000_000).is_err());
        assert_eq!(g.status(id), Some(Status::Active));
        for (_, t) in g.slot_tables() {
            assert_eq!(t.len(), 1);
        }
        let horizon = SimTime::from_secs(1000);
        assert_eq!(g.available_on(t23, SimTime::ZERO, horizon), Some(2_000_000));
        assert_eq!(g.available_on(t12, SimTime::ZERO, horizon), Some(0));
    });
}
