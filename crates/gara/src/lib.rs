//! # mpichgq-gara — the GARA reservation architecture
//!
//! The General-purpose Architecture for Reservation and Allocation (§4.2):
//! slot-table admission control (the bandwidth-broker role), a uniform
//! reservation API over heterogeneous resources (DiffServ network flows,
//! DSRT CPU shares, DPSS-style storage bandwidth), immediate and advance
//! reservations, atomic co-reservation, and reservation handles with
//! modify/cancel/monitor operations.
//!
//! In the paper, MPICH-GQ "can use GARA mechanisms to reserve shared
//! resources, such as networks and CPUs, and then to bind specific flows
//! (sockets) and processes to those reservations"; the binding happens in
//! `mpichgq-core`'s QoS agent, which translates communicator-level QoS
//! attributes into [`Request`]s.

pub mod gara;
pub mod slot_table;

pub use gara::{
    install, CpuRequest, Gara, NetworkRequest, Request, ReserveError, ResvId, StartSpec, Status,
    StorageRequest,
};
pub use slot_table::{RejectReason, Rejected, SlotId, SlotTable};
