//! Slot tables: interval-based capacity accounting for admission control.
//!
//! "This manager uses a slot table to keep track of reservations and invokes
//! resource-specific operations to enforce reservations." (§4.2, citing
//! Degermark et al. and the LBNL bandwidth broker design.)
//!
//! A [`SlotTable`] tracks allocations of a scalar capacity (bits/s of EF
//! bandwidth on a link, percent of a CPU, MB/s of a storage server) over
//! time intervals, supporting immediate and *advance* reservations with
//! all-or-nothing admission.
//!
//! # Implementation (DESIGN.md §14)
//!
//! The table is an augmented balanced tree (a treap with deterministic
//! priorities) keyed on the *time boundaries* of reservations. Each
//! boundary node carries the net load change at that instant (`+amount`
//! at a slot's start, `-amount` at its end) and every subtree aggregates
//! the sum of its deltas and the maximum prefix sum over its in-order
//! sequence. The committed load at any instant is a prefix sum of
//! boundary deltas, so:
//!
//! * peak load over an interval (`[SlotTable::available]`, admission) is
//!   one `O(log n)` range query — prefix sum up to the interval's start
//!   plus the max prefix of the boundaries strictly inside it;
//! * admit / free / resize are `O(log n)` boundary updates;
//! * the global peak ([`SlotTable::max_peak`]) is the root's max-prefix
//!   aggregate, `O(1)`;
//! * capacity changes ([`SlotTable::set_capacity`]) are `O(1)` — the
//!   tree stores loads, not headroom.
//!
//! Batch admission ([`SlotTable::try_insert_batch`]) admits a vector of
//! co-reservations all-or-nothing in one pass over the tree, and
//! compaction ([`SlotTable::compact`]) merges a tenant's adjacent
//! same-amount slots so long-running reservations that are repeatedly
//! extended do not grow the boundary set without bound.

use mpichgq_sim::SimTime;
use std::collections::HashMap;

/// Identifies an allocation within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub u64);

#[derive(Debug, Clone, Copy)]
struct Slot {
    start: SimTime,
    end: SimTime,
    amount: u64,
    tenant: u64,
}

/// Why an admission or resize attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RejectReason {
    /// The interval lacks capacity at its tightest instant.
    #[default]
    OverCapacity,
    /// [`SlotTable::try_resize`] named a slot this table does not hold.
    UnknownSlot,
}

/// Admission failure: how much was free at the worst point of the interval.
///
/// `available` is reported with saturating arithmetic: if existing slots
/// already exceed capacity (possible transiently after a capacity-lowering
/// [`SlotTable::set_capacity`]), it reads 0 rather than wrapping.
/// `requested` always carries the amount that was asked for, for
/// [`RejectReason::UnknownSlot`] refusals as much as capacity ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    pub requested: u64,
    pub available: u64,
    pub reason: RejectReason,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            RejectReason::OverCapacity => write!(
                f,
                "reservation of {} rejected; only {} available in the interval",
                self.requested, self.available
            ),
            RejectReason::UnknownSlot => {
                write!(f, "resize to {} rejected: no such slot", self.requested)
            }
        }
    }
}
impl std::error::Error for Rejected {}

// ---------------------------------------------------------------------
// The boundary tree
// ---------------------------------------------------------------------

const NIL: u32 = u32::MAX;

/// One boundary instant: the net load change across every slot endpoint
/// at this time, plus how many endpoints reference it (the node is freed
/// when the last endpoint goes away, even if its net delta is zero).
#[derive(Debug, Clone, Copy)]
struct Node {
    key: SimTime,
    prio: u64,
    left: u32,
    right: u32,
    /// Net load change at `key` (sum over endpoints here).
    delta: i128,
    /// Endpoints (slot starts + slot ends) located at `key`.
    refs: u32,
    /// Sum of `delta` over this subtree.
    sum: i128,
    /// Max over k of the sum of the first k deltas (in key order) of this
    /// subtree, k >= 1.
    max_prefix: i128,
}

/// Capacity-over-time bookkeeping with all-or-nothing admission.
#[derive(Debug, Clone)]
pub struct SlotTable {
    capacity: u64,
    slots: HashMap<u64, Slot>,
    next_id: u64,
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    /// Counter feeding the deterministic priority stream (splitmix64), so
    /// identical operation sequences build identical trees.
    prio_seq: u64,
}

/// splitmix64: cheap, well-mixed deterministic priorities for the treap.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SlotTable {
    pub fn new(capacity: u64) -> Self {
        SlotTable {
            capacity,
            slots: HashMap::new(),
            next_id: 0,
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            prio_seq: 0,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Reconfigure the capacity in place, keeping every existing slot.
    /// Lowering it below the committed peak leaves the table transiently
    /// overcommitted — admission of *new* load is refused until enough
    /// slots end or are removed, and auditors can quantify the overshoot
    /// via [`SlotTable::max_overcommit`]. `O(1)`: the tree stores loads,
    /// not remaining headroom.
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
    }

    // -- tree plumbing -------------------------------------------------

    fn node(&self, i: u32) -> &Node {
        &self.nodes[i as usize]
    }

    fn sum_of(&self, i: u32) -> i128 {
        if i == NIL {
            0
        } else {
            self.nodes[i as usize].sum
        }
    }

    /// Max prefix of subtree `i`, or `None` when empty.
    fn max_prefix_of(&self, i: u32) -> Option<i128> {
        if i == NIL {
            None
        } else {
            Some(self.nodes[i as usize].max_prefix)
        }
    }

    /// Recompute `i`'s aggregates from its children (the "pull" step).
    fn pull(&mut self, i: u32) {
        let (l, r, delta) = {
            let n = &self.nodes[i as usize];
            (n.left, n.right, n.delta)
        };
        let lsum = self.sum_of(l);
        let rsum = self.sum_of(r);
        let mut best = lsum + delta; // prefix ending at this node
        if let Some(m) = self.max_prefix_of(l) {
            best = best.max(m);
        }
        if let Some(m) = self.max_prefix_of(r) {
            best = best.max(lsum + delta + m);
        }
        let n = &mut self.nodes[i as usize];
        n.sum = lsum + delta + rsum;
        n.max_prefix = best;
    }

    fn alloc(&mut self, key: SimTime, delta: i128, refs: u32) -> u32 {
        let prio = splitmix64(self.prio_seq);
        self.prio_seq += 1;
        let n = Node {
            key,
            prio,
            left: NIL,
            right: NIL,
            delta,
            refs,
            sum: delta,
            max_prefix: delta,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = n;
                i
            }
            None => {
                self.nodes.push(n);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.node(a).prio >= self.node(b).prio {
            let ar = self.node(a).right;
            let m = self.merge(ar, b);
            self.nodes[a as usize].right = m;
            self.pull(a);
            a
        } else {
            let bl = self.node(b).left;
            let m = self.merge(a, bl);
            self.nodes[b as usize].left = m;
            self.pull(b);
            b
        }
    }

    /// Add `delta` (and `refs_delta` endpoint references) at boundary
    /// `key`, creating the node if absent, freeing it when its last
    /// reference goes away.
    fn apply(&mut self, key: SimTime, delta: i128, refs_delta: i32) {
        let root = self.root;
        self.root = self.apply_rec(root, key, delta, refs_delta);
    }

    fn apply_rec(&mut self, t: u32, key: SimTime, delta: i128, refs_delta: i32) -> u32 {
        if t == NIL {
            debug_assert!(refs_delta > 0, "releasing a boundary that was never added");
            return self.alloc(key, delta, refs_delta as u32);
        }
        let (nkey, nprio) = {
            let n = self.node(t);
            (n.key, n.prio)
        };
        if key == nkey {
            let n = &mut self.nodes[t as usize];
            n.delta += delta;
            n.refs = (n.refs as i64 + refs_delta as i64) as u32;
            if n.refs == 0 {
                debug_assert_eq!(n.delta, 0, "freed boundary with nonzero delta");
                let (l, r) = (n.left, n.right);
                self.free.push(t);
                return self.merge(l, r);
            }
            self.pull(t);
            return t;
        }
        if key < nkey {
            let l = self.node(t).left;
            let nl = self.apply_rec(l, key, delta, refs_delta);
            self.nodes[t as usize].left = nl;
            // Rotate the child up when a fresh node won the priority draw.
            if nl != NIL && self.node(nl).prio > nprio {
                let t2 = self.rotate_right(t);
                return t2;
            }
        } else {
            let r = self.node(t).right;
            let nr = self.apply_rec(r, key, delta, refs_delta);
            self.nodes[t as usize].right = nr;
            if nr != NIL && self.node(nr).prio > nprio {
                let t2 = self.rotate_left(t);
                return t2;
            }
        }
        self.pull(t);
        t
    }

    /// Right rotation: left child becomes the subtree root.
    fn rotate_right(&mut self, t: u32) -> u32 {
        let l = self.node(t).left;
        let lr = self.node(l).right;
        self.nodes[t as usize].left = lr;
        self.pull(t);
        self.nodes[l as usize].right = t;
        self.pull(l);
        l
    }

    fn rotate_left(&mut self, t: u32) -> u32 {
        let r = self.node(t).right;
        let rl = self.node(r).left;
        self.nodes[t as usize].right = rl;
        self.pull(t);
        self.nodes[r as usize].left = t;
        self.pull(r);
        r
    }

    /// Committed load just after every boundary `<= t` has applied —
    /// i.e. the load at instant `t`. Non-mutating `O(log n)` walk.
    fn prefix_le(&self, t: SimTime) -> i128 {
        let mut acc = 0i128;
        let mut i = self.root;
        while i != NIL {
            let n = self.node(i);
            if n.key <= t {
                acc += self.sum_of(n.left) + n.delta;
                i = n.right;
            } else {
                i = n.left;
            }
        }
        acc
    }

    /// Peak committed load over `[start, end)` (all slots). `O(log n)`,
    /// read-only: the load at `start` plus the best prefix of the
    /// boundary deltas strictly inside the interval, computed by walking
    /// the two boundary paths of the key range.
    fn peak_in(&self, start: SimTime, end: SimTime) -> u64 {
        debug_assert!(start < end);
        let base = self.prefix_le(start);
        let inner = self.range_agg(self.root, start, end);
        let peak = match inner {
            Some((_, maxpre)) if maxpre > 0 => base + maxpre,
            _ => base,
        };
        debug_assert!(peak >= 0, "negative committed load");
        peak.max(0) as u64
    }

    /// `(sum, max_prefix)` over one subtree, `None` when empty.
    fn whole(&self, t: u32) -> Option<(i128, i128)> {
        if t == NIL {
            None
        } else {
            let n = self.node(t);
            Some((n.sum, n.max_prefix))
        }
    }

    /// Concatenate two in-order aggregates.
    fn combine(a: Option<(i128, i128)>, b: Option<(i128, i128)>) -> Option<(i128, i128)> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some((sa, ma)), Some((sb, mb))) => Some((sa + sb, ma.max(sa + mb))),
        }
    }

    /// Aggregate over keys strictly greater than `s` within subtree `t`
    /// (a suffix of its in-order sequence). Single-path descent.
    fn agg_gt(&self, t: u32, s: SimTime) -> Option<(i128, i128)> {
        if t == NIL {
            return None;
        }
        let n = self.node(t);
        if n.key <= s {
            self.agg_gt(n.right, s)
        } else {
            let left = self.agg_gt(n.left, s);
            let here = Some((n.delta, n.delta));
            Self::combine(Self::combine(left, here), self.whole(n.right))
        }
    }

    /// Aggregate over keys strictly less than `e` within subtree `t`
    /// (a prefix of its in-order sequence). Single-path descent.
    fn agg_lt(&self, t: u32, e: SimTime) -> Option<(i128, i128)> {
        if t == NIL {
            return None;
        }
        let n = self.node(t);
        if n.key >= e {
            self.agg_lt(n.left, e)
        } else {
            let here = Some((n.delta, n.delta));
            let right = self.agg_lt(n.right, e);
            Self::combine(Self::combine(self.whole(n.left), here), right)
        }
    }

    /// Aggregate over keys in the open range `(s, e)`: descend to the
    /// topmost node inside the range, then take a suffix of its left
    /// subtree and a prefix of its right one.
    fn range_agg(&self, t: u32, s: SimTime, e: SimTime) -> Option<(i128, i128)> {
        if t == NIL {
            return None;
        }
        let n = self.node(t);
        if n.key <= s {
            self.range_agg(n.right, s, e)
        } else if n.key >= e {
            self.range_agg(n.left, s, e)
        } else {
            let left = self.agg_gt(n.left, s);
            let here = Some((n.delta, n.delta));
            let right = self.agg_lt(n.right, e);
            Self::combine(Self::combine(left, here), right)
        }
    }

    // -- the admission API ---------------------------------------------

    /// Free capacity at the tightest instant of `[start, end)` (0 when the
    /// interval is already committed at or over capacity).
    pub fn available(&self, start: SimTime, end: SimTime) -> u64 {
        let peak = self.peak_in(start, end);
        self.capacity.saturating_sub(peak)
    }

    /// Peak committed amount over all time (the all-slots high-water
    /// mark). `O(1)`: the root's max-prefix aggregate.
    pub fn max_peak(&self) -> u64 {
        match self.max_prefix_of(self.root) {
            Some(m) if m > 0 => m as u64,
            _ => 0,
        }
    }

    /// How far the committed peak exceeds capacity (0 when within bounds).
    /// Nonzero only transiently, after a capacity-lowering
    /// [`SlotTable::set_capacity`]; admission never creates overcommit.
    pub fn max_overcommit(&self) -> u64 {
        self.max_peak().saturating_sub(self.capacity)
    }

    /// Admit `amount` over `[start, end)` or reject without side effects.
    pub fn try_insert(
        &mut self,
        start: SimTime,
        end: SimTime,
        amount: u64,
    ) -> Result<SlotId, Rejected> {
        self.try_insert_tenant(start, end, amount, 0)
    }

    /// [`SlotTable::try_insert`] with a tenant tag; slots of the same
    /// tenant are the unit [`SlotTable::compact`] may merge.
    pub fn try_insert_tenant(
        &mut self,
        start: SimTime,
        end: SimTime,
        amount: u64,
        tenant: u64,
    ) -> Result<SlotId, Rejected> {
        assert!(start < end, "empty reservation interval");
        let peak = self.peak_in(start, end);
        if peak.saturating_add(amount) > self.capacity {
            return Err(Rejected {
                requested: amount,
                available: self.capacity.saturating_sub(peak),
                reason: RejectReason::OverCapacity,
            });
        }
        Ok(self.insert_unchecked(start, end, amount, tenant))
    }

    /// Insert a slot's boundaries and bookkeeping without admission.
    fn insert_unchecked(
        &mut self,
        start: SimTime,
        end: SimTime,
        amount: u64,
        tenant: u64,
    ) -> SlotId {
        let id = self.next_id;
        self.next_id += 1;
        self.apply(start, amount as i128, 1);
        self.apply(end, -(amount as i128), 1);
        self.slots.insert(
            id,
            Slot {
                start,
                end,
                amount,
                tenant,
            },
        );
        SlotId(id)
    }

    /// All-or-nothing admission of a vector of co-reservations in one
    /// pass: every item is admitted, or none is and the first item (in
    /// input order) whose interval would exceed capacity is reported.
    /// The reported `available` counts the other items of the batch as
    /// committed load, exactly as a sequential admit-with-rollback loop
    /// would have seen them.
    pub fn try_insert_batch(
        &mut self,
        items: &[(SimTime, SimTime, u64)],
    ) -> Result<Vec<SlotId>, Rejected> {
        self.try_insert_batch_tenant(items, 0)
    }

    /// [`SlotTable::try_insert_batch`] with a tenant tag on every slot.
    pub fn try_insert_batch_tenant(
        &mut self,
        items: &[(SimTime, SimTime, u64)],
        tenant: u64,
    ) -> Result<Vec<SlotId>, Rejected> {
        for &(start, end, _) in items {
            assert!(start < end, "empty reservation interval");
        }
        // Optimistically commit every boundary, then audit each item's
        // interval against the combined load; roll back all on the first
        // offender. One O(log n) peak query per item either way — the
        // win over a sequential loop is that no interval is re-scanned
        // per mate and rollback never re-runs admission.
        let ids: Vec<SlotId> = items
            .iter()
            .map(|&(s, e, amount)| self.insert_unchecked(s, e, amount, tenant))
            .collect();
        for (i, &(s, e, amount)) in items.iter().enumerate() {
            let peak = self.peak_in(s, e);
            if peak > self.capacity {
                let available = self.capacity.saturating_sub(peak.saturating_sub(amount));
                for id in ids {
                    self.remove(id);
                }
                return Err(Rejected {
                    requested: items[i].2,
                    available,
                    reason: RejectReason::OverCapacity,
                });
            }
        }
        Ok(ids)
    }

    /// Remove an allocation; returns whether it existed.
    pub fn remove(&mut self, id: SlotId) -> bool {
        let Some(s) = self.slots.remove(&id.0) else {
            return false;
        };
        self.apply(s.start, -(s.amount as i128), -1);
        self.apply(s.end, s.amount as i128, -1);
        true
    }

    /// Change the amount of an existing allocation (reservation modify).
    /// On rejection the original allocation is kept unchanged. An unknown
    /// slot id is reported as [`RejectReason::UnknownSlot`], distinct from
    /// a genuine capacity refusal; either way `requested` carries
    /// `new_amount`.
    pub fn try_resize(&mut self, id: SlotId, new_amount: u64) -> Result<(), Rejected> {
        let Some(&slot) = self.slots.get(&id.0) else {
            return Err(Rejected {
                requested: new_amount,
                available: 0,
                reason: RejectReason::UnknownSlot,
            });
        };
        // Lift the slot's own load out of the tree, audit the interval
        // against everyone else, then commit either amount — O(log n)
        // throughout, no rescans.
        self.apply(slot.start, -(slot.amount as i128), 0);
        self.apply(slot.end, slot.amount as i128, 0);
        let peak_others = self.peak_in(slot.start, slot.end);
        if peak_others.saturating_add(new_amount) > self.capacity {
            self.apply(slot.start, slot.amount as i128, 0);
            self.apply(slot.end, -(slot.amount as i128), 0);
            return Err(Rejected {
                requested: new_amount,
                available: self.capacity.saturating_sub(peak_others),
                reason: RejectReason::OverCapacity,
            });
        }
        self.apply(slot.start, new_amount as i128, 0);
        self.apply(slot.end, -(new_amount as i128), 0);
        self.slots.get_mut(&id.0).unwrap().amount = new_amount;
        Ok(())
    }

    /// Set a slot's amount without admission control. This is the rollback
    /// primitive: restoring a previously admitted amount must never fail,
    /// even if capacity was reconfigured in between. Returns whether the
    /// slot existed.
    pub fn restore(&mut self, id: SlotId, amount: u64) -> bool {
        let Some(&slot) = self.slots.get(&id.0) else {
            return false;
        };
        self.apply(slot.start, amount as i128 - slot.amount as i128, 0);
        self.apply(slot.end, slot.amount as i128 - amount as i128, 0);
        self.slots.get_mut(&id.0).unwrap().amount = amount;
        true
    }

    /// Merge adjacent same-amount slots of the same tenant: whenever one
    /// slot ends exactly where the next (same tenant, same amount) begins,
    /// the pair collapses into the earlier slot and the later [`SlotId`]
    /// is retired. Long-running reservations that are extended by booking
    /// adjacent windows therefore keep the boundary tree flat. Returns
    /// `(absorbed, survivor)` pairs so holders can remap their handles;
    /// the committed load profile is unchanged.
    pub fn compact(&mut self) -> Vec<(SlotId, SlotId)> {
        let mut order: Vec<(u64, Slot)> = self.slots.iter().map(|(&id, &s)| (id, s)).collect();
        // Deterministic sweep order regardless of hash-map iteration.
        order.sort_by_key(|&(id, s)| (s.tenant, s.start, s.end, id));
        let mut merged = Vec::new();
        let mut i = 0;
        while i + 1 < order.len() {
            let (sid, s) = order[i];
            let (tid, t) = order[i + 1];
            if s.tenant == t.tenant && s.amount == t.amount && s.end == t.start {
                // The shared boundary carries +amount and -amount from the
                // pair; both endpoints retire together.
                self.apply(s.end, 0, -2);
                self.slots.remove(&tid);
                let surv = self.slots.get_mut(&sid).unwrap();
                surv.end = t.end;
                merged.push((SlotId(tid), SlotId(sid)));
                // The survivor may chain with the next slot.
                order[i].1.end = t.end;
                order.remove(i + 1);
            } else {
                i += 1;
            }
        }
        merged
    }

    /// Current amount of an allocation, if it exists.
    pub fn amount_of(&self, id: SlotId) -> Option<u64> {
        self.slots.get(&id.0).map(|s| s.amount)
    }

    /// Tenant tag of an allocation, if it exists.
    pub fn tenant_of(&self, id: SlotId) -> Option<u64> {
        self.slots.get(&id.0).map(|s| s.tenant)
    }

    /// Committed amount at instant `t`. `O(log n)`.
    pub fn load_at(&self, t: SimTime) -> u64 {
        let v = self.prefix_le(t);
        debug_assert!(v >= 0, "negative committed load");
        v.max(0) as u64
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Live boundary nodes in the tree (distinct slot-endpoint instants).
    /// Compaction exists to keep this from growing without bound under
    /// adjacent-extension churn; `bench_gara` reports it per table size.
    pub fn boundary_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn admits_up_to_capacity() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(0), t(10), 60).unwrap();
        st.try_insert(t(0), t(10), 40).unwrap();
        let err = st.try_insert(t(0), t(10), 1).unwrap_err();
        assert_eq!(err.available, 0);
    }

    #[test]
    fn non_overlapping_intervals_are_independent() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(0), t(10), 100).unwrap();
        st.try_insert(t(10), t(20), 100).unwrap();
        assert_eq!(st.load_at(t(5)), 100);
        assert_eq!(st.load_at(t(15)), 100);
        // Endpoint is exclusive: a reservation ending at 10 frees 10.
        assert_eq!(st.available(t(9), t(10)), 0);
    }

    #[test]
    fn advance_reservation_blocks_future_window() {
        let mut st = SlotTable::new(100);
        // Book the future.
        st.try_insert(t(100), t(200), 80).unwrap();
        // An open-ended request crossing it must fit under the peak.
        assert!(st.try_insert(t(0), t(300), 30).is_err());
        st.try_insert(t(0), t(300), 20).unwrap();
    }

    #[test]
    fn remove_frees_capacity() {
        let mut st = SlotTable::new(100);
        let id = st.try_insert(t(0), t(10), 100).unwrap();
        assert!(st.try_insert(t(0), t(10), 1).is_err());
        assert!(st.remove(id));
        assert!(!st.remove(id));
        st.try_insert(t(0), t(10), 100).unwrap();
    }

    #[test]
    fn resize_checks_against_others_only() {
        let mut st = SlotTable::new(100);
        let a = st.try_insert(t(0), t(10), 60).unwrap();
        st.try_insert(t(0), t(10), 40).unwrap();
        // Growing a is impossible (0 free), shrinking fine, regrow to 60 fine.
        assert!(st.try_resize(a, 61).is_err());
        st.try_resize(a, 10).unwrap();
        st.try_resize(a, 60).unwrap();
        assert_eq!(st.load_at(t(5)), 100);
    }

    #[test]
    fn rejection_reports_tightest_point() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(5), t(6), 90).unwrap();
        let err = st.try_insert(t(0), t(10), 20).unwrap_err();
        assert_eq!(err.available, 10);
    }

    #[test]
    fn overcommitted_table_reports_zero_available_not_underflow() {
        // Regression: `capacity - peak` underflowed (panicking in debug,
        // wrapping to ~u64::MAX available in release) whenever existing
        // slots exceeded a lowered capacity.
        let mut st = SlotTable::new(100);
        let a = st.try_insert(t(0), t(10), 80).unwrap();
        st.set_capacity(60);
        assert_eq!(st.max_overcommit(), 20);
        assert_eq!(st.available(t(0), t(10)), 0);
        let err = st.try_insert(t(0), t(10), 1).unwrap_err();
        assert_eq!(err.available, 0);
        assert_eq!(err.reason, RejectReason::OverCapacity);
        // Growing the overcommitted slot is refused with a saturated report;
        // shrinking it back under the new capacity is allowed.
        let err = st.try_resize(a, 81).unwrap_err();
        assert_eq!(err.available, 60);
        assert_eq!(err.reason, RejectReason::OverCapacity);
        st.try_resize(a, 50).unwrap();
        assert_eq!(st.max_overcommit(), 0);
    }

    #[test]
    fn resize_of_unknown_slot_is_distinguished() {
        let mut st = SlotTable::new(100);
        let a = st.try_insert(t(0), t(10), 100).unwrap();
        let err = st.try_resize(SlotId(999), 10).unwrap_err();
        assert_eq!(err.reason, RejectReason::UnknownSlot);
        // The UnknownSlot refusal still reports what was asked for.
        assert_eq!(err.requested, 10);
        assert_eq!(err.available, 0);
        // A genuine capacity refusal keeps its own reason.
        st.remove(a);
        let a = st.try_insert(t(0), t(10), 50).unwrap();
        st.try_insert(t(0), t(10), 50).unwrap();
        let err = st.try_resize(a, 51).unwrap_err();
        assert_eq!(err.reason, RejectReason::OverCapacity);
    }

    #[test]
    fn restore_is_infallible_even_over_capacity() {
        let mut st = SlotTable::new(100);
        let a = st.try_insert(t(0), t(10), 80).unwrap();
        st.set_capacity(10);
        // try_resize would refuse; restore (rollback) must not.
        assert!(st.try_resize(a, 80).is_err());
        assert!(st.restore(a, 80));
        assert_eq!(st.amount_of(a), Some(80));
        assert!(!st.restore(SlotId(999), 5));
    }

    #[test]
    fn max_peak_tracks_staircase() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(0), t(4), 30).unwrap();
        st.try_insert(t(2), t(6), 30).unwrap();
        st.try_insert(t(3), t(5), 30).unwrap();
        assert_eq!(st.max_peak(), 90);
        assert_eq!(st.max_overcommit(), 0);
    }

    #[test]
    fn staircase_peak_detection() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(0), t(4), 30).unwrap();
        st.try_insert(t(2), t(6), 30).unwrap();
        st.try_insert(t(3), t(5), 30).unwrap();
        // Peak is 90 in [3,4).
        assert_eq!(st.available(t(0), t(10)), 10);
        assert!(st.try_insert(t(0), t(10), 11).is_err());
        st.try_insert(t(0), t(10), 10).unwrap();
    }

    #[test]
    fn batch_is_all_or_nothing() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(0), t(10), 50).unwrap();
        // Combined 60 over the committed 50 exceeds 100: nothing lands.
        let err = st
            .try_insert_batch(&[(t(0), t(5), 30), (t(2), t(8), 30)])
            .unwrap_err();
        assert_eq!(err.reason, RejectReason::OverCapacity);
        assert_eq!(err.requested, 30);
        // The other mate (30) plus the standing 50 leave 20 at the pinch.
        assert_eq!(err.available, 20);
        assert_eq!(st.len(), 1);
        assert_eq!(st.max_peak(), 50);
        // Disjoint mates that each fit are admitted together.
        let ids = st
            .try_insert_batch(&[(t(0), t(5), 50), (t(5), t(10), 50)])
            .unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(st.load_at(t(2)), 100);
        assert_eq!(st.load_at(t(7)), 100);
    }

    #[test]
    fn batch_matches_sequential_admission_decision() {
        // Batch admits exactly when a sequential loop over the same items
        // would: combined load within capacity at every instant.
        let items = [(t(0), t(4), 40), (t(2), t(6), 40), (t(3), t(5), 20)];
        let mut batch = SlotTable::new(100);
        let mut seq = SlotTable::new(100);
        let b = batch.try_insert_batch(&items);
        let mut ok = true;
        let mut held = Vec::new();
        for &(s, e, a) in &items {
            match seq.try_insert(s, e, a) {
                Ok(id) => held.push(id),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        assert_eq!(b.is_ok(), ok);
        assert_eq!(batch.max_peak(), seq.max_peak());
    }

    #[test]
    fn compact_merges_adjacent_same_amount_slots_of_a_tenant() {
        let mut st = SlotTable::new(100);
        let a = st.try_insert_tenant(t(0), t(10), 40, 7).unwrap();
        let b = st.try_insert_tenant(t(10), t(20), 40, 7).unwrap();
        let c = st.try_insert_tenant(t(20), t(30), 40, 7).unwrap();
        // Different tenant and different amount stay untouched.
        let other = st.try_insert_tenant(t(30), t(40), 40, 8).unwrap();
        let thinner = st.try_insert_tenant(t(40), t(50), 30, 7).unwrap();
        let before = st.boundary_count();
        let merged = st.compact();
        assert_eq!(
            merged,
            vec![(b, a), (c, a)],
            "the chain folds into the earliest slot"
        );
        assert_eq!(st.len(), 3);
        assert!(st.boundary_count() < before);
        assert_eq!(st.amount_of(a), Some(40));
        assert_eq!(st.amount_of(b), None);
        assert_eq!(st.amount_of(c), None);
        assert_eq!(st.amount_of(other), Some(40));
        assert_eq!(st.amount_of(thinner), Some(30));
        // The load profile is unchanged.
        for s in 0..50 {
            let expect = if s < 30 || (30..40).contains(&s) {
                40
            } else {
                30
            };
            assert_eq!(st.load_at(t(s)), expect, "load changed at t={s}");
        }
        // And the merged slot behaves like one long reservation.
        st.try_resize(a, 60).unwrap();
        assert_eq!(st.load_at(t(15)), 60);
    }

    #[test]
    fn compact_keeps_overlapping_slots_apart() {
        let mut st = SlotTable::new(100);
        st.try_insert_tenant(t(0), t(10), 40, 1).unwrap();
        st.try_insert_tenant(t(5), t(15), 40, 1).unwrap();
        assert!(st.compact().is_empty(), "overlap is not adjacency");
        assert_eq!(st.len(), 2);
        assert_eq!(st.load_at(t(7)), 80);
    }

    #[test]
    fn boundary_nodes_are_shared_and_reclaimed() {
        let mut st = SlotTable::new(100);
        let a = st.try_insert(t(0), t(10), 30).unwrap();
        let b = st.try_insert(t(0), t(10), 30).unwrap();
        // Shared endpoints collapse onto two boundary nodes.
        assert_eq!(st.boundary_count(), 2);
        st.remove(a);
        assert_eq!(st.boundary_count(), 2);
        st.remove(b);
        assert_eq!(st.boundary_count(), 0);
        assert!(st.is_empty());
        assert_eq!(st.max_peak(), 0);
    }

    #[test]
    fn deep_tables_stay_exact() {
        // A few thousand staggered slots: the tree's point and peak
        // queries must agree with brute-force summation everywhere.
        let mut st = SlotTable::new(1_000_000);
        let mut held: Vec<(SlotId, u64, u64, u64)> = Vec::new();
        for i in 0..2_000u64 {
            let s = (i * 37) % 500;
            let e = s + 3 + (i % 11);
            let amount = 100 + (i % 17) * 10;
            if let Ok(id) = st.try_insert(t(s), t(e), amount) {
                held.push((id, s, e, amount));
            }
        }
        let mut brute_peak = 0;
        for probe in 0..520u64 {
            let brute: u64 = held
                .iter()
                .filter(|&&(_, s, e, _)| s <= probe && probe < e)
                .map(|&(_, _, _, a)| a)
                .sum();
            assert_eq!(st.load_at(t(probe)), brute, "load differs at t={probe}");
            brute_peak = brute_peak.max(brute);
        }
        assert_eq!(st.max_peak(), brute_peak);
        assert!(st.max_peak() <= 1_000_000);
        // Remove everything; the tree must drain completely.
        for (id, ..) in held {
            assert!(st.remove(id));
        }
        assert_eq!(st.boundary_count(), 0);
        assert_eq!(st.max_peak(), 0);
    }
}
