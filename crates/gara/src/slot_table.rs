//! Slot tables: interval-based capacity accounting for admission control.
//!
//! "This manager uses a slot table to keep track of reservations and invokes
//! resource-specific operations to enforce reservations." (§4.2, citing
//! Degermark et al. and the LBNL bandwidth broker design.)
//!
//! A [`SlotTable`] tracks allocations of a scalar capacity (bits/s of EF
//! bandwidth on a link, percent of a CPU, MB/s of a storage server) over
//! time intervals, supporting immediate and *advance* reservations with
//! all-or-nothing admission.

use mpichgq_sim::SimTime;
use std::collections::HashMap;

/// Identifies an allocation within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub u64);

#[derive(Debug, Clone, Copy)]
struct Slot {
    start: SimTime,
    end: SimTime,
    amount: u64,
}

/// Why an admission or resize attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RejectReason {
    /// The interval lacks capacity at its tightest instant.
    #[default]
    OverCapacity,
    /// [`SlotTable::try_resize`] named a slot this table does not hold.
    UnknownSlot,
}

/// Admission failure: how much was free at the worst point of the interval.
///
/// `available` is reported with saturating arithmetic: if existing slots
/// already exceed capacity (possible transiently after a capacity-lowering
/// [`SlotTable::set_capacity`]), it reads 0 rather than wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    pub requested: u64,
    pub available: u64,
    pub reason: RejectReason,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            RejectReason::OverCapacity => write!(
                f,
                "reservation of {} rejected; only {} available in the interval",
                self.requested, self.available
            ),
            RejectReason::UnknownSlot => {
                write!(f, "resize to {} rejected: no such slot", self.requested)
            }
        }
    }
}
impl std::error::Error for Rejected {}

/// Capacity-over-time bookkeeping with all-or-nothing admission.
#[derive(Debug, Clone)]
pub struct SlotTable {
    capacity: u64,
    slots: HashMap<u64, Slot>,
    next_id: u64,
}

impl SlotTable {
    pub fn new(capacity: u64) -> Self {
        SlotTable {
            capacity,
            slots: HashMap::new(),
            next_id: 0,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Reconfigure the capacity in place, keeping every existing slot.
    /// Lowering it below the committed peak leaves the table transiently
    /// overcommitted — admission of *new* load is refused until enough
    /// slots end or are removed, and auditors can quantify the overshoot
    /// via [`SlotTable::max_overcommit`].
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
    }

    /// Peak committed amount over `[start, end)`, excluding slot `except`.
    fn peak_in(&self, start: SimTime, end: SimTime, except: Option<SlotId>) -> u64 {
        // Sweep the overlapping slots' boundary points. With the modest
        // reservation counts GARA sees, O(n²) over overlaps is fine.
        let mut points: Vec<SimTime> = vec![start];
        for s in self.overlapping(start, end, except) {
            if s.start > start {
                points.push(s.start);
            }
        }
        let mut peak = 0;
        for &p in &points {
            let load: u64 = self
                .overlapping(start, end, except)
                .filter(|s| s.start <= p && p < s.end)
                .map(|s| s.amount)
                .sum();
            peak = peak.max(load);
        }
        peak
    }

    fn overlapping(
        &self,
        start: SimTime,
        end: SimTime,
        except: Option<SlotId>,
    ) -> impl Iterator<Item = &Slot> {
        self.slots.iter().filter_map(move |(&id, s)| {
            if Some(SlotId(id)) == except {
                return None;
            }
            if s.start < end && start < s.end {
                Some(s)
            } else {
                None
            }
        })
    }

    /// Free capacity at the tightest instant of `[start, end)` (0 when the
    /// interval is already committed at or over capacity).
    pub fn available(&self, start: SimTime, end: SimTime) -> u64 {
        self.capacity.saturating_sub(self.peak_in(start, end, None))
    }

    /// Peak committed amount over all time (the all-slots high-water mark).
    pub fn max_peak(&self) -> u64 {
        // The peak is always attained at some slot's start boundary.
        self.slots
            .values()
            .map(|s| {
                self.slots
                    .values()
                    .filter(|o| o.start <= s.start && s.start < o.end)
                    .map(|o| o.amount)
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }

    /// How far the committed peak exceeds capacity (0 when within bounds).
    /// Nonzero only transiently, after a capacity-lowering
    /// [`SlotTable::set_capacity`]; admission never creates overcommit.
    pub fn max_overcommit(&self) -> u64 {
        self.max_peak().saturating_sub(self.capacity)
    }

    /// Admit `amount` over `[start, end)` or reject without side effects.
    pub fn try_insert(
        &mut self,
        start: SimTime,
        end: SimTime,
        amount: u64,
    ) -> Result<SlotId, Rejected> {
        assert!(start < end, "empty reservation interval");
        let peak = self.peak_in(start, end, None);
        if peak.saturating_add(amount) > self.capacity {
            return Err(Rejected {
                requested: amount,
                available: self.capacity.saturating_sub(peak),
                reason: RejectReason::OverCapacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.slots.insert(id, Slot { start, end, amount });
        Ok(SlotId(id))
    }

    /// Remove an allocation; returns whether it existed.
    pub fn remove(&mut self, id: SlotId) -> bool {
        self.slots.remove(&id.0).is_some()
    }

    /// Change the amount of an existing allocation (reservation modify).
    /// On rejection the original allocation is kept unchanged. An unknown
    /// slot id is reported as [`RejectReason::UnknownSlot`], distinct from
    /// a genuine capacity refusal.
    pub fn try_resize(&mut self, id: SlotId, new_amount: u64) -> Result<(), Rejected> {
        let Some(&slot) = self.slots.get(&id.0) else {
            return Err(Rejected {
                requested: new_amount,
                available: 0,
                reason: RejectReason::UnknownSlot,
            });
        };
        let peak_others = self.peak_in(slot.start, slot.end, Some(id));
        if peak_others.saturating_add(new_amount) > self.capacity {
            return Err(Rejected {
                requested: new_amount,
                available: self.capacity.saturating_sub(peak_others),
                reason: RejectReason::OverCapacity,
            });
        }
        self.slots.get_mut(&id.0).unwrap().amount = new_amount;
        Ok(())
    }

    /// Set a slot's amount without admission control. This is the rollback
    /// primitive: restoring a previously admitted amount must never fail,
    /// even if capacity was reconfigured in between. Returns whether the
    /// slot existed.
    pub fn restore(&mut self, id: SlotId, amount: u64) -> bool {
        match self.slots.get_mut(&id.0) {
            Some(s) => {
                s.amount = amount;
                true
            }
            None => false,
        }
    }

    /// Current amount of an allocation, if it exists.
    pub fn amount_of(&self, id: SlotId) -> Option<u64> {
        self.slots.get(&id.0).map(|s| s.amount)
    }

    /// Committed amount at instant `t`.
    pub fn load_at(&self, t: SimTime) -> u64 {
        self.slots
            .values()
            .filter(|s| s.start <= t && t < s.end)
            .map(|s| s.amount)
            .sum()
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn admits_up_to_capacity() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(0), t(10), 60).unwrap();
        st.try_insert(t(0), t(10), 40).unwrap();
        let err = st.try_insert(t(0), t(10), 1).unwrap_err();
        assert_eq!(err.available, 0);
    }

    #[test]
    fn non_overlapping_intervals_are_independent() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(0), t(10), 100).unwrap();
        st.try_insert(t(10), t(20), 100).unwrap();
        assert_eq!(st.load_at(t(5)), 100);
        assert_eq!(st.load_at(t(15)), 100);
        // Endpoint is exclusive: a reservation ending at 10 frees 10.
        assert_eq!(st.available(t(9), t(10)), 0);
    }

    #[test]
    fn advance_reservation_blocks_future_window() {
        let mut st = SlotTable::new(100);
        // Book the future.
        st.try_insert(t(100), t(200), 80).unwrap();
        // An open-ended request crossing it must fit under the peak.
        assert!(st.try_insert(t(0), t(300), 30).is_err());
        st.try_insert(t(0), t(300), 20).unwrap();
    }

    #[test]
    fn remove_frees_capacity() {
        let mut st = SlotTable::new(100);
        let id = st.try_insert(t(0), t(10), 100).unwrap();
        assert!(st.try_insert(t(0), t(10), 1).is_err());
        assert!(st.remove(id));
        assert!(!st.remove(id));
        st.try_insert(t(0), t(10), 100).unwrap();
    }

    #[test]
    fn resize_checks_against_others_only() {
        let mut st = SlotTable::new(100);
        let a = st.try_insert(t(0), t(10), 60).unwrap();
        st.try_insert(t(0), t(10), 40).unwrap();
        // Growing a is impossible (0 free), shrinking fine, regrow to 60 fine.
        assert!(st.try_resize(a, 61).is_err());
        st.try_resize(a, 10).unwrap();
        st.try_resize(a, 60).unwrap();
        assert_eq!(st.load_at(t(5)), 100);
    }

    #[test]
    fn rejection_reports_tightest_point() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(5), t(6), 90).unwrap();
        let err = st.try_insert(t(0), t(10), 20).unwrap_err();
        assert_eq!(err.available, 10);
    }

    #[test]
    fn overcommitted_table_reports_zero_available_not_underflow() {
        // Regression: `capacity - peak` underflowed (panicking in debug,
        // wrapping to ~u64::MAX available in release) whenever existing
        // slots exceeded a lowered capacity.
        let mut st = SlotTable::new(100);
        let a = st.try_insert(t(0), t(10), 80).unwrap();
        st.set_capacity(60);
        assert_eq!(st.max_overcommit(), 20);
        assert_eq!(st.available(t(0), t(10)), 0);
        let err = st.try_insert(t(0), t(10), 1).unwrap_err();
        assert_eq!(err.available, 0);
        assert_eq!(err.reason, RejectReason::OverCapacity);
        // Growing the overcommitted slot is refused with a saturated report;
        // shrinking it back under the new capacity is allowed.
        let err = st.try_resize(a, 81).unwrap_err();
        assert_eq!(err.available, 60);
        assert_eq!(err.reason, RejectReason::OverCapacity);
        st.try_resize(a, 50).unwrap();
        assert_eq!(st.max_overcommit(), 0);
    }

    #[test]
    fn resize_of_unknown_slot_is_distinguished() {
        let mut st = SlotTable::new(100);
        let a = st.try_insert(t(0), t(10), 100).unwrap();
        let err = st.try_resize(SlotId(999), 10).unwrap_err();
        assert_eq!(err.reason, RejectReason::UnknownSlot);
        // A genuine capacity refusal keeps its own reason.
        st.remove(a);
        let a = st.try_insert(t(0), t(10), 50).unwrap();
        st.try_insert(t(0), t(10), 50).unwrap();
        let err = st.try_resize(a, 51).unwrap_err();
        assert_eq!(err.reason, RejectReason::OverCapacity);
    }

    #[test]
    fn restore_is_infallible_even_over_capacity() {
        let mut st = SlotTable::new(100);
        let a = st.try_insert(t(0), t(10), 80).unwrap();
        st.set_capacity(10);
        // try_resize would refuse; restore (rollback) must not.
        assert!(st.try_resize(a, 80).is_err());
        assert!(st.restore(a, 80));
        assert_eq!(st.amount_of(a), Some(80));
        assert!(!st.restore(SlotId(999), 5));
    }

    #[test]
    fn max_peak_tracks_staircase() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(0), t(4), 30).unwrap();
        st.try_insert(t(2), t(6), 30).unwrap();
        st.try_insert(t(3), t(5), 30).unwrap();
        assert_eq!(st.max_peak(), 90);
        assert_eq!(st.max_overcommit(), 0);
    }

    #[test]
    fn staircase_peak_detection() {
        let mut st = SlotTable::new(100);
        st.try_insert(t(0), t(4), 30).unwrap();
        st.try_insert(t(2), t(6), 30).unwrap();
        st.try_insert(t(3), t(5), 30).unwrap();
        // Peak is 90 in [3,4).
        assert_eq!(st.available(t(0), t(10)), 10);
        assert!(st.try_insert(t(0), t(10), 11).is_err());
        st.try_insert(t(0), t(10), 10).unwrap();
    }
}
